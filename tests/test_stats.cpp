#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace spnl {
namespace {

TEST(Stats, DegreeStatsUniformGraph) {
  const Graph g = generate_ring_lattice(100, 4);
  const auto stats = out_degree_stats(g);
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_EQ(stats.max, 4u);
  EXPECT_EQ(stats.median, 4u);
  EXPECT_NEAR(stats.gini, 0.0, 1e-9);
}

TEST(Stats, GiniDetectsSkew) {
  GraphBuilder builder(10);
  for (VertexId u = 1; u < 10; ++u) builder.add_edge(0, u);  // one hub
  const auto stats = out_degree_stats(builder.finish());
  EXPECT_GT(stats.gini, 0.8);
}

TEST(Stats, EmptyGraphSafe) {
  Graph g;
  const auto degrees = out_degree_stats(g);
  EXPECT_EQ(degrees.mean, 0.0);
  const auto locality = locality_stats(g);
  EXPECT_EQ(locality.mean_normalized_gap, 0.0);
}

TEST(Stats, LocalityOfRingIsTight) {
  const Graph g = generate_ring_lattice(1000, 2);
  const auto stats = locality_stats(g, 10);
  // All gaps are 1 or 2 except the wrap-around edges.
  EXPECT_GT(stats.fraction_within_window, 0.99);
  EXPECT_LT(stats.mean_normalized_gap, 0.01);
}

TEST(Stats, DefaultWindowIsOnePercent) {
  const Graph g = generate_ring_lattice(1000, 1);
  EXPECT_EQ(locality_stats(g).window, 10u);
}

TEST(Stats, HistogramBucketsAndTail) {
  GraphBuilder builder(4);
  for (VertexId u = 1; u < 4; ++u) builder.add_edge(0, u);  // degree 3
  builder.add_edge(1, 0);                                   // degree 1
  const auto hist = degree_histogram(builder.finish(), 2);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 2u);  // vertices 2, 3
  EXPECT_EQ(hist[1], 1u);  // vertex 1
  EXPECT_EQ(hist[2], 1u);  // vertex 0, clamped into the tail bucket
}

TEST(Stats, DescribeContainsCounts) {
  const Graph g = generate_ring_lattice(10, 1);
  const std::string text = describe(g, "ring");
  EXPECT_NE(text.find("ring"), std::string::npos);
  EXPECT_NE(text.find("|V|=10"), std::string::npos);
}

TEST(Datasets, EightSpecsWithPaperSizes) {
  const auto& specs = paper_datasets();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs.front().name, "stanford");
  EXPECT_EQ(specs.back().name, "uk2007");
  for (const auto& spec : specs) {
    EXPECT_GT(spec.paper_num_vertices, 0u);
    EXPECT_GT(spec.paper_num_edges, spec.paper_num_vertices);
  }
}

TEST(Datasets, LookupByName) {
  EXPECT_EQ(dataset_by_name("uk2002").name, "uk2002");
  EXPECT_THROW(dataset_by_name("nope"), std::out_of_range);
}

TEST(Datasets, ScaleShrinksGraph) {
  const auto& spec = dataset_by_name("stanford");
  const Graph big = load_dataset(spec, 0.2);
  const Graph small = load_dataset(spec, 0.1);
  EXPECT_NEAR(static_cast<double>(big.num_vertices()) / small.num_vertices(), 2.0, 0.1);
  EXPECT_THROW(load_dataset(spec, 0.0), std::invalid_argument);
}

TEST(Datasets, SkewedSpecsAreSkewed) {
  const Graph eu = load_dataset(dataset_by_name("eu2015"), 0.2);
  const Graph uk = load_dataset(dataset_by_name("uk2002"), 0.2);
  EXPECT_GT(out_degree_stats(eu).gini, out_degree_stats(uk).gini);
}

TEST(Datasets, StrongLocalitySpecsAreLocal) {
  const Graph uk07 = load_dataset(dataset_by_name("uk2007"), 0.1);
  const Graph stan = load_dataset(dataset_by_name("stanford"), 1.0);
  EXPECT_LT(locality_stats(uk07).mean_normalized_gap,
            locality_stats(stan).mean_normalized_gap);
}

}  // namespace
}  // namespace spnl
