// The tentpole soak for the partitioning service: 55 interleaved client
// sessions against a live server with injected client disconnects, raw
// torn-frame attackers, a slow-loris writer, and one mid-soak
// SIGTERM-drain/restart cycle. Contract under test:
//
//  * every completed session's route is byte-identical to a direct
//    sequential run of the same config;
//  * no crash, no wedge — every thread joins;
//  * session bookkeeping reconciles on both server generations
//    (opened + restored == completed + reaped + drained + live).
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/session.hpp"
#include "util/net.hpp"
#include "util/shutdown.hpp"

namespace spnl {
namespace {

struct SoakWorkload {
  Graph graph;
  WireSessionConfig config;
  std::vector<PartitionId> expected;
};

class ServerSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "spnl_soak";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    reset_shutdown_flag();
  }
  void TearDown() override {
    reset_shutdown_flag();
    std::filesystem::remove_all(dir_);
  }

  ServerOptions soak_options() const {
    ServerOptions options;
    options.endpoint.kind = Endpoint::Kind::kUnix;
    options.endpoint.path = (dir_ / "s.sock").string();
    options.admission.max_sessions = 64;
    // Tight timeouts: quarantined/abandoned sessions are collected during
    // the soak, and the slow-loris connection is cut quickly.
    options.idle_timeout_seconds = 1.0;
    options.read_timeout_seconds = 0.5;
    options.io_timeout_seconds = 2.0;
    options.reaper_interval_seconds = 0.1;
    options.drain_dir = (dir_ / "drain").string();
    options.retry_after_ms = 50;
    options.watch_shutdown_flag = true;
    return options;
  }

  std::filesystem::path dir_;
};

/// Eight distinct workloads cycled across the client fleet; mixed algos and
/// sizes so sessions finish at very different speeds and the SIGTERM lands
/// with some complete, some mid-stream, some not yet started.
std::vector<SoakWorkload> build_workloads() {
  const char* algos[] = {"spnl", "ldg", "spn", "fennel",
                         "spnl", "hash", "ldg", "spnl"};
  std::vector<SoakWorkload> workloads;
  for (int i = 0; i < 8; ++i) {
    SoakWorkload w;
    // 2k..16k vertices: the big ones take hundreds of record batches.
    const VertexId n = 2000 * (1 + i);
    w.graph = generate_webcrawl({.num_vertices = n,
                                 .avg_out_degree = 5.0,
                                 .locality = 0.8,
                                 .locality_scale = 20.0,
                                 .seed = 100 + i});
    w.config.algo = algos[i];
    w.config.num_vertices = w.graph.num_vertices();
    w.config.num_edges = w.graph.num_edges();
    w.config.num_partitions = 2 + (i % 4);
    InMemoryStream stream(w.graph);
    auto partitioner = make_session_partitioner(w.config);
    w.expected = run_streaming(stream, *partitioner).route;
    workloads.push_back(std::move(w));
  }
  return workloads;
}

/// Wraps a stream with a per-record delay so the session is still mid-flight
/// when the SIGTERM lands — without it the whole wave finishes in tens of
/// milliseconds and the drain has nothing to checkpoint.
class ThrottledStream final : public AdjacencyStream {
 public:
  ThrottledStream(const Graph& graph, std::chrono::microseconds every_batch)
      : inner_(graph), delay_(every_batch) {}

  std::optional<VertexRecord> next() override {
    if (++count_ % 64 == 0) std::this_thread::sleep_for(delay_);
    return inner_.next();
  }
  void reset() override {
    inner_.reset();
    count_ = 0;
  }
  VertexId num_vertices() const override { return inner_.num_vertices(); }
  EdgeId num_edges() const override { return inner_.num_edges(); }

 private:
  InMemoryStream inner_;
  std::chrono::microseconds delay_;
  std::uint64_t count_ = 0;
};

/// One client session driven to completion through every failure the soak
/// throws at it. Returns true iff the route came back byte-identical.
bool run_client(const Endpoint& endpoint, const SoakWorkload& workload,
                int index, std::atomic<int>* mismatches) {
  ClientOptions options;
  options.endpoint = endpoint;
  options.deadline_seconds = 120.0;
  options.max_attempts = 60;  // survives the whole drain/restart gap
  options.backoff_base_ms = 20;
  options.backoff_max_ms = 500;
  options.jitter_seed = static_cast<std::uint64_t>(index) * 977 + 13;
  options.batch_records = 64;  // many round trips -> SIGTERM lands mid-stream
  if (index % 3 == 0) {
    // Every third client tears its own connection once mid-stream and
    // exercises resume-by-token.
    options.inject_disconnect_after_records = 50 + (index * 37) % 400;
  }
  try {
    SpnlClient client(options);
    // Odd-indexed clients stream slowly (several hundred ms end to end) so a
    // SIGTERM ~250ms in catches them mid-session; even-indexed ones race
    // through and finish before it.
    std::unique_ptr<AdjacencyStream> stream;
    if (index % 2 == 1) {
      stream = std::make_unique<ThrottledStream>(
          workload.graph, std::chrono::microseconds(3000));
    } else {
      stream = std::make_unique<InMemoryStream>(workload.graph);
    }
    const ClientRunResult result = client.partition(*stream, workload.config);
    if (result.route != workload.expected) {
      mismatches->fetch_add(1);
      ADD_FAILURE() << "client " << index << " route mismatch";
      return false;
    }
    return true;
  } catch (const std::exception& e) {
    mismatches->fetch_add(1);
    ADD_FAILURE() << "client " << index << " failed: " << e.what();
    return false;
  }
}

/// Raw attacker: completes the handshake, opens a real session, then writes
/// garbage bytes. The server must quarantine that session only.
void run_torn_frame_attacker(const Endpoint& endpoint) {
  try {
    Socket sock = connect_endpoint(endpoint, 2000);
    StateWriter hello;
    hello.put_u32(kProtocolVersion);
    write_frame(sock, MsgType::kHello, hello, 2000);
    if (!read_frame(sock, 2000)) return;
    WireSessionConfig config;
    config.algo = "hash";
    config.num_vertices = 64;
    config.num_edges = 64;
    config.num_partitions = 2;
    StateWriter open;
    config.save(open);
    write_frame(sock, MsgType::kOpen, open, 2000);
    auto ack = read_frame(sock, 2000);
    if (!ack || ack->type != MsgType::kOpenAck) return;  // Busy under load
    const char junk[32] = {'t', 'o', 'r', 'n'};
    sock.write_all(junk, sizeof(junk), 2000);
    read_frame(sock, 2000);  // kError (or the server already hung up)
  } catch (...) {
    // Attacker failures are fine — the assertion is that the SERVER's other
    // sessions and counters are unaffected, checked by the main thread.
  }
}

/// Slow-loris: dribbles a frame header slower than the read timeout allows.
/// The server must cut the connection instead of parking a handler forever.
void run_slow_loris(const Endpoint& endpoint) {
  try {
    Socket sock = connect_endpoint(endpoint, 2000);
    const unsigned char header[8] = {0x50, 0x53, 0x01, 0x00, 64, 0, 0, 0};
    for (unsigned char byte : header) {
      sock.write_all(&byte, 1, 2000);
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
    // Never send the payload; the server's read timeout fires first.
    std::this_thread::sleep_for(std::chrono::milliseconds(800));
  } catch (...) {
    // Expected: the server resets the connection mid-dribble.
  }
}

TEST_F(ServerSoakTest, InterleavedSessionsSurviveFaultsAndRestart) {
  const std::vector<SoakWorkload> workloads = build_workloads();
  const ServerOptions options = soak_options();

  // --- Generation 1: accepts the first client wave, then SIGTERM-drains.
  arm_shutdown_flag();
  auto server1 = std::make_unique<SpnlServer>(soak_options());
  server1->start();
  const Endpoint endpoint = server1->endpoint();

  std::atomic<int> mismatches{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  constexpr int kWave1 = 30;
  constexpr int kWave2 = 25;
  for (int i = 0; i < kWave1; ++i) {
    clients.emplace_back([&, i] {
      if (run_client(endpoint, workloads[i % workloads.size()], i, &mismatches)) {
        completed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> attackers;
  for (int i = 0; i < 3; ++i) {
    attackers.emplace_back([&] { run_torn_frame_attacker(endpoint); });
  }
  attackers.emplace_back([&] { run_slow_loris(endpoint); });

  // Let the fleet get airborne, then deliver the real signal. The accept
  // loop turns the flag into a drain; in-flight clients get kDraining or a
  // dead socket and retry with backoff until generation 2 is listening.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  ASSERT_EQ(std::raise(SIGTERM), 0);
  server1->wait();
  const ServerStats stats1 = server1->stats();
  EXPECT_TRUE(stats1.draining);
  EXPECT_TRUE(stats1.reconciles())
      << "gen1: opened=" << stats1.opened << " restored=" << stats1.restored
      << " completed=" << stats1.completed << " reaped=" << stats1.reaped
      << " drained=" << stats1.drained << " live=" << stats1.live;
  server1.reset();  // unlinks the socket path before generation 2 binds it

  // --- Generation 2: same drain_dir restores checkpointed sessions; the
  // same socket path lets stranded clients reconnect transparently.
  reset_shutdown_flag();
  auto server2 = std::make_unique<SpnlServer>(options);
  server2->start();

  for (int i = 0; i < kWave2; ++i) {
    const int index = kWave1 + i;
    clients.emplace_back([&, index] {
      if (run_client(endpoint, workloads[index % workloads.size()], index,
                     &mismatches)) {
        completed.fetch_add(1);
      }
    });
  }

  for (std::thread& t : clients) t.join();
  for (std::thread& t : attackers) t.join();

  // Every client session completed with a byte-identical route.
  EXPECT_EQ(completed.load(), kWave1 + kWave2);
  EXPECT_EQ(mismatches.load(), 0);

  // Wind down generation 2 through the drain path too: every remaining
  // session (e.g. quarantined attackers not yet reaped) leaves the registry
  // and the books must still balance.
  server2->request_drain();
  server2->wait();
  const ServerStats stats2 = server2->stats();
  EXPECT_TRUE(stats2.reconciles())
      << "gen2: opened=" << stats2.opened << " restored=" << stats2.restored
      << " completed=" << stats2.completed << " reaped=" << stats2.reaped
      << " drained=" << stats2.drained << " live=" << stats2.live;

  // Cross-generation accounting: at least the 55 client sessions completed
  // (attacker sessions never complete), every session restored in gen2 was
  // checkpointed by gen1's drain, and nothing is left alive anywhere.
  EXPECT_GE(stats1.completed + stats2.completed,
            static_cast<std::uint64_t>(kWave1 + kWave2));
  // The drain actually caught live sessions mid-flight (the throttled
  // clients guarantee some), and generation 2 restored every one of them.
  EXPECT_GE(stats1.sessions_checkpointed_on_drain, 1u);
  EXPECT_EQ(stats2.sessions_restored_from_drain,
            stats1.sessions_checkpointed_on_drain);
  EXPECT_EQ(stats2.live, 0u);
  EXPECT_GE(stats1.opened + stats2.opened,
            static_cast<std::uint64_t>(kWave1 + kWave2));

  // The soak exercised what it claims to: fault injection actually fired.
  EXPECT_GE(stats1.connections_accepted + stats2.connections_accepted,
            static_cast<std::uint64_t>(kWave1 + kWave2));
  EXPECT_GE(stats1.quarantined + stats2.quarantined, 1u);
  EXPECT_GE(stats1.midstream_disconnects + stats2.midstream_disconnects, 1u);

  // Coverage summary (shows in ctest logs which paths the run actually hit).
  std::printf(
      "soak: gen1 opened=%llu completed=%llu checkpointed=%llu "
      "quarantined=%llu midstream=%llu busy=%llu | gen2 restored=%llu "
      "completed=%llu reaped=%llu drained=%llu\n",
      static_cast<unsigned long long>(stats1.opened),
      static_cast<unsigned long long>(stats1.completed),
      static_cast<unsigned long long>(stats1.sessions_checkpointed_on_drain),
      static_cast<unsigned long long>(stats1.quarantined),
      static_cast<unsigned long long>(stats1.midstream_disconnects),
      static_cast<unsigned long long>(stats1.rejected_busy),
      static_cast<unsigned long long>(stats2.sessions_restored_from_drain),
      static_cast<unsigned long long>(stats2.completed),
      static_cast<unsigned long long>(stats2.reaped),
      static_cast<unsigned long long>(stats2.drained));
}

}  // namespace
}  // namespace spnl
