// Byte-identity property test of the fused scoring kernel.
//
// core/score_kernel.hpp promises that the fused SPN/SPNL place() path
// performs the same floating-point operations in the same order as the
// original formulation, so routes are *bit-identical*, not merely similar.
// The original formulation is retained verbatim in reference_partitioners.hpp
// and raced here across fuzzed graphs (including multi-edges and self-loops),
// both Γ estimators, both slide modes, several shard counts and λ values —
// for every vertex of every run the placements must agree exactly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "partition/driver.hpp"
#include "reference_partitioners.hpp"
#include "util/rng.hpp"

namespace spnl {
namespace {

/// Random digraph with duplicate edges, self-loops, and forward edges — the
/// nastiest stream the kernel can see (generators emit clean sorted lists).
Graph fuzz_graph(VertexId n, double avg_degree, std::uint64_t seed) {
  GraphBuilder builder(n);
  Rng rng(seed);
  for (VertexId v = 0; v < n; ++v) {
    const auto degree = static_cast<EdgeId>(rng.next_below(
        static_cast<std::uint64_t>(2.0 * avg_degree) + 1));
    for (EdgeId e = 0; e < degree; ++e) {
      VertexId u;
      if (rng.next_bool(0.05)) {
        u = v;  // self-loop
      } else if (rng.next_bool(0.6)) {
        // Local target (exercises the Γ window around the head).
        const auto offset = static_cast<VertexId>(rng.next_below(32));
        u = (v + offset) % n;
      } else {
        u = static_cast<VertexId>(rng.next_below(n));
      }
      builder.add_edge(v, u);
      if (rng.next_bool(0.15)) builder.add_edge(v, u);  // duplicate
    }
  }
  return builder.finish();
}

struct KernelCase {
  InNeighborEstimator estimator;
  SlideMode slide;
  std::uint32_t shards;
  double lambda;
};

std::vector<KernelCase> kernel_cases() {
  std::vector<KernelCase> cases;
  for (auto estimator :
       {InNeighborEstimator::kSelf, InNeighborEstimator::kNeighborSum}) {
    for (auto slide : {SlideMode::kFine, SlideMode::kCoarse}) {
      for (std::uint32_t shards : {1u, 7u, 64u}) {
        for (double lambda : {0.5, 0.3, 0.9}) {
          cases.push_back({estimator, slide, shards, lambda});
        }
      }
    }
  }
  return cases;
}

std::string describe(const KernelCase& c, std::uint64_t seed) {
  return std::string("estimator=") +
         (c.estimator == InNeighborEstimator::kSelf ? "self" : "neighbor-sum") +
         " slide=" + (c.slide == SlideMode::kFine ? "fine" : "coarse") +
         " shards=" + std::to_string(c.shards) +
         " lambda=" + std::to_string(c.lambda) +
         " seed=" + std::to_string(seed);
}

std::vector<PartitionId> run(const Graph& graph, StreamingPartitioner& p) {
  InMemoryStream stream(graph);
  return run_streaming(stream, p).route;
}

TEST(ScoringKernel, SpnRoutesByteIdenticalToReference) {
  PartitionConfig config;
  config.num_partitions = 5;
  config.slack = 1.05;  // tight: exercises the full-partition fallback
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const Graph graph = fuzz_graph(400, 6.0, seed);
    for (const KernelCase& c : kernel_cases()) {
      SpnOptions options{.lambda = c.lambda,
                         .num_shards = c.shards,
                         .estimator = c.estimator,
                         .slide = c.slide};
      SpnPartitioner fused(graph.num_vertices(), graph.num_edges(), config,
                           options);
      ReferenceSpnPartitioner reference(graph.num_vertices(), graph.num_edges(),
                                        config, options);
      EXPECT_EQ(run(graph, fused), run(graph, reference))
          << describe(c, seed);
    }
  }
}

TEST(ScoringKernel, SpnlRoutesByteIdenticalToReference) {
  PartitionConfig config;
  config.num_partitions = 5;
  config.slack = 1.05;
  for (std::uint64_t seed : {44ull, 55ull}) {
    const Graph graph = fuzz_graph(400, 6.0, seed);
    for (const KernelCase& c : kernel_cases()) {
      SpnlOptions options{.lambda = c.lambda,
                          .num_shards = c.shards,
                          .estimator = c.estimator,
                          .slide = c.slide};
      SpnlPartitioner fused(graph.num_vertices(), graph.num_edges(), config,
                            options);
      ReferenceSpnlPartitioner reference(graph.num_vertices(), graph.num_edges(),
                                         config, options);
      EXPECT_EQ(run(graph, fused), run(graph, reference))
          << describe(c, seed);
    }
  }
}

TEST(ScoringKernel, WebcrawlRoutesByteIdenticalAllBalanceModes) {
  // A realistic clean stream, and the edge/both balance modes (compute_loads
  // must mirror GreedyStreamingBase::load() exactly in all three).
  WebCrawlParams params;
  params.num_vertices = 2000;
  params.avg_out_degree = 8.0;
  params.seed = 7;
  const Graph graph = generate_webcrawl(params);
  for (BalanceMode mode :
       {BalanceMode::kVertex, BalanceMode::kEdge, BalanceMode::kBoth}) {
    PartitionConfig config;
    config.num_partitions = 8;
    config.balance = mode;
    SpnOptions options{.num_shards = 4};
    SpnPartitioner fused(graph.num_vertices(), graph.num_edges(), config,
                         options);
    ReferenceSpnPartitioner reference(graph.num_vertices(), graph.num_edges(),
                                      config, options);
    EXPECT_EQ(run(graph, fused), run(graph, reference))
        << "balance mode " << static_cast<int>(mode);

    SpnlOptions spnl_options{.num_shards = 4};
    SpnlPartitioner fused_l(graph.num_vertices(), graph.num_edges(), config,
                            spnl_options);
    ReferenceSpnlPartitioner reference_l(graph.num_vertices(), graph.num_edges(),
                                         config, spnl_options);
    EXPECT_EQ(run(graph, fused_l), run(graph, reference_l))
        << "balance mode " << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace spnl
