// Checkpoint/resume: container integrity (magic/version/CRC/truncation) and
// the core contract — a run killed at an arbitrary placement and resumed
// from its latest snapshot produces a byte-identical route to an
// uninterrupted run, for the sequential greedy partitioners and the RCT
// parallel driver.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/parallel_driver.hpp"
#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "partition/driver.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "spnl_checkpoint_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

/// Yields only the first `limit` records of the wrapped stream — simulates a
/// process killed mid-stream (everything after the kill point is never seen).
class TruncatedStream final : public AdjacencyStream {
 public:
  TruncatedStream(AdjacencyStream& inner, std::uint64_t limit)
      : inner_(&inner), limit_(limit) {}

  std::optional<VertexRecord> next() override {
    if (emitted_ >= limit_) return std::nullopt;
    ++emitted_;
    return inner_->next();
  }
  void reset() override {
    inner_->reset();
    emitted_ = 0;
  }
  VertexId num_vertices() const override { return inner_->num_vertices(); }
  EdgeId num_edges() const override { return inner_->num_edges(); }

 private:
  AdjacencyStream* inner_;
  std::uint64_t limit_;
  std::uint64_t emitted_ = 0;
};

Graph test_graph(VertexId n = 3000) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 6.0,
                            .locality = 0.85, .locality_scale = 25.0,
                            .seed = 11});
}

// ---------------------------------------------------------------------------
// Payload stream primitives.

TEST(CheckpointState, WriterReaderRoundTrip) {
  StateWriter out;
  out.put_u32(42);
  out.put_u64(0xdeadbeefcafeULL);
  out.put_f64(3.5);
  out.put_string("spnl");
  out.put_vec(std::vector<std::uint32_t>{1, 2, 3});
  out.put_vec(std::vector<double>{});

  StateReader in(out.bytes());
  EXPECT_EQ(in.get_u32(), 42u);
  EXPECT_EQ(in.get_u64(), 0xdeadbeefcafeULL);
  EXPECT_DOUBLE_EQ(in.get_f64(), 3.5);
  EXPECT_EQ(in.get_string(), "spnl");
  EXPECT_EQ(in.get_vec<std::uint32_t>(), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(in.get_vec<double>().empty());
  EXPECT_TRUE(in.exhausted());
}

TEST(CheckpointState, ReaderUnderflowThrows) {
  StateWriter out;
  out.put_u32(7);
  StateReader in(out.bytes());
  in.get_u32();
  EXPECT_THROW(in.get_u64(), CheckpointError);
}

TEST(CheckpointState, VectorLengthBeyondPayloadThrows) {
  StateWriter out;
  out.put_u64(std::uint64_t{1} << 40);  // claims 2^40 elements, payload has none
  StateReader in(out.bytes());
  EXPECT_THROW(in.get_vec<std::uint32_t>(), CheckpointError);
}

TEST(CheckpointState, ExpectGuardsNameTheMismatch) {
  StateWriter out;
  out.put_u32(8);
  out.put_string("spn");
  StateReader in(out.bytes());
  try {
    in.expect_u32(16, "partition count");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("partition count"), std::string::npos);
  }
}

TEST(CheckpointState, Crc32MatchesKnownVector) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
}

// ---------------------------------------------------------------------------
// Container integrity.

TEST_F(CheckpointTest, ContainerRoundTrip) {
  StateWriter out;
  out.put_string("hello");
  out.put_u64(99);
  write_checkpoint_file(path("ok.ckpt"), out);
  StateReader in = read_checkpoint_file(path("ok.ckpt"));
  EXPECT_EQ(in.get_string(), "hello");
  EXPECT_EQ(in.get_u64(), 99u);
}

TEST_F(CheckpointTest, MissingFileThrows) {
  EXPECT_THROW(read_checkpoint_file(path("nope.ckpt")), CheckpointError);
}

TEST_F(CheckpointTest, CorruptedPayloadFailsCrc) {
  StateWriter out;
  out.put_vec(std::vector<std::uint64_t>(64, 7));
  write_checkpoint_file(path("c.ckpt"), out);
  // Flip one payload byte (past the 24-byte header).
  std::fstream f(path("c.ckpt"), std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(40);
  char b = 0;
  f.seekg(40);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0xff);
  f.seekp(40);
  f.write(&b, 1);
  f.close();
  EXPECT_THROW(read_checkpoint_file(path("c.ckpt")), CheckpointError);
}

TEST_F(CheckpointTest, TruncatedFileThrows) {
  StateWriter out;
  out.put_vec(std::vector<std::uint64_t>(64, 7));
  write_checkpoint_file(path("t.ckpt"), out);
  const auto size = std::filesystem::file_size(path("t.ckpt"));
  std::filesystem::resize_file(path("t.ckpt"), size / 2);
  EXPECT_THROW(read_checkpoint_file(path("t.ckpt")), CheckpointError);
}

TEST_F(CheckpointTest, TruncatedHeaderThrows) {
  // A crash can leave a file shorter than even the 24-byte container header
  // at a NON-atomic path (e.g. a .tmp manually promoted, or external
  // corruption). Every prefix length must be rejected as a typed error, not
  // parsed as garbage.
  StateWriter out;
  out.put_vec(std::vector<std::uint64_t>(8, 3));
  write_checkpoint_file(path("h.ckpt"), out);
  for (std::uintmax_t keep : {0u, 1u, 7u, 8u, 12u, 20u, 23u}) {
    std::filesystem::copy_file(path("h.ckpt"), path("h_cut.ckpt"),
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(path("h_cut.ckpt"), keep);
    EXPECT_THROW(read_checkpoint_file(path("h_cut.ckpt")), CheckpointError)
        << "header prefix of " << keep << " bytes was accepted";
  }
}

TEST_F(CheckpointTest, StaleTmpNeverShadowsPublishedSnapshot) {
  // Crash-atomicity contract of write_checkpoint_file: bytes land in
  // <path>.tmp and are renamed over <path> only when complete. A crash
  // mid-write leaves a torn .tmp behind — readers of the published path must
  // be unaffected, and the next successful write must replace the leftover.
  StateWriter good;
  good.put_string("published");
  good.put_u64(42);
  write_checkpoint_file(path("s.ckpt"), good);

  // Simulate the mid-write crash: a torn, garbage .tmp next to the snapshot.
  {
    std::ofstream torn(path("s.ckpt.tmp"), std::ios::binary);
    torn.write("SPNL-partial-garbage", 20);
  }
  StateReader in = read_checkpoint_file(path("s.ckpt"));
  EXPECT_EQ(in.get_string(), "published");
  EXPECT_EQ(in.get_u64(), 42u);

  // The next snapshot overwrites the stale .tmp and publishes atomically.
  StateWriter next;
  next.put_string("second");
  next.put_u64(43);
  write_checkpoint_file(path("s.ckpt"), next);
  EXPECT_FALSE(std::filesystem::exists(path("s.ckpt.tmp")));
  StateReader again = read_checkpoint_file(path("s.ckpt"));
  EXPECT_EQ(again.get_string(), "second");
  EXPECT_EQ(again.get_u64(), 43u);
}

TEST_F(CheckpointTest, UnwritableCheckpointPathThrowsTyped) {
  StateWriter out;
  out.put_u32(1);
  EXPECT_THROW(
      write_checkpoint_file(path("no/such/dir/x.ckpt"), out),
      CheckpointError);
}

TEST_F(CheckpointTest, BadMagicThrows) {
  StateWriter out;
  out.put_u32(1);
  write_checkpoint_file(path("m.ckpt"), out);
  std::fstream f(path("m.ckpt"), std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(0);
  f.write("XXXXXXXX", 8);
  f.close();
  EXPECT_THROW(read_checkpoint_file(path("m.ckpt")), CheckpointError);
}

TEST_F(CheckpointTest, VersionSkewThrows) {
  StateWriter out;
  out.put_u32(1);
  write_checkpoint_file(path("v.ckpt"), out);
  std::fstream f(path("v.ckpt"), std::ios::in | std::ios::out | std::ios::binary);
  const std::uint32_t future_version = 999;
  f.seekp(8);  // version field follows the u64 magic
  f.write(reinterpret_cast<const char*>(&future_version), sizeof(future_version));
  f.close();
  EXPECT_THROW(read_checkpoint_file(path("v.ckpt")), CheckpointError);
}

TEST(CheckpointerPolicy, CadenceAndEnablement) {
  Checkpointer off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.due(100));
  Checkpointer every50("x.ckpt", 50);
  EXPECT_TRUE(every50.enabled());
  EXPECT_FALSE(every50.due(0));
  EXPECT_FALSE(every50.due(49));
  EXPECT_TRUE(every50.due(50));
  EXPECT_TRUE(every50.due(250));
  EXPECT_FALSE(every50.due(251));
}

// ---------------------------------------------------------------------------
// Kill-and-resume determinism, sequential drivers.

template <typename MakePartitioner>
void expect_kill_resume_identical(const Graph& g, const std::string& ckpt,
                                  MakePartitioner make) {
  const PartitionId k = 8;
  // Reference: uninterrupted run.
  std::vector<PartitionId> reference;
  {
    auto p = make(g, k);
    InMemoryStream stream(g);
    reference = run_streaming(stream, *p).route;
  }
  validate_route(reference, k, g.num_vertices());

  const std::uint64_t every = 256;
  for (const std::uint64_t kill_at : {std::uint64_t{300}, std::uint64_t{1024},
                                      std::uint64_t{2905}}) {
    // Phase 1: run until the "crash", snapshotting every 256 placements.
    {
      auto p = make(g, k);
      InMemoryStream inner(g);
      TruncatedStream stream(inner, kill_at);
      const RunResult partial =
          run_streaming(stream, *p, {.path = ckpt, .every = every});
      EXPECT_EQ(partial.checkpoints_written, kill_at / every);
    }
    // Phase 2: a fresh process resumes from the latest snapshot.
    auto p = make(g, k);
    InMemoryStream stream(g);
    const RunResult resumed = resume_streaming(stream, *p, ckpt);
    EXPECT_EQ(resumed.resumed_at, (kill_at / every) * every);
    EXPECT_EQ(resumed.route, reference)
        << "route diverged after resume at kill point " << kill_at;
  }
}

TEST_F(CheckpointTest, KillAndResumeSpnIsByteIdentical) {
  const Graph g = test_graph();
  expect_kill_resume_identical(g, path("spn.ckpt"), [](const Graph& gr, PartitionId k) {
    return std::make_unique<SpnPartitioner>(gr.num_vertices(), gr.num_edges(),
                                            PartitionConfig{.num_partitions = k},
                                            SpnOptions{});
  });
}

TEST_F(CheckpointTest, KillAndResumeSpnlIsByteIdentical) {
  const Graph g = test_graph();
  expect_kill_resume_identical(g, path("spnl.ckpt"), [](const Graph& gr, PartitionId k) {
    return std::make_unique<SpnlPartitioner>(gr.num_vertices(), gr.num_edges(),
                                             PartitionConfig{.num_partitions = k},
                                             SpnlOptions{});
  });
}

TEST_F(CheckpointTest, KillAndResumeLdgIsByteIdentical) {
  const Graph g = test_graph();
  expect_kill_resume_identical(g, path("ldg.ckpt"), [](const Graph& gr, PartitionId k) {
    return std::make_unique<LdgPartitioner>(gr.num_vertices(), gr.num_edges(),
                                            PartitionConfig{.num_partitions = k});
  });
}

TEST_F(CheckpointTest, KillAndResumeCoarseSlideIsByteIdentical) {
  // Coarse (shard-by-shard) sliding keeps the window base pinned mid-shard,
  // so a snapshot taken between shard jumps must restore both the stale base
  // and the untouched counters of the partially retired shard. Kills are
  // pinned to shard boundaries (n=3000, 6 shards -> W=500: 500, 1000) and
  // mid-shard (750, 1250) via checkpoint_every=250.
  const Graph g = test_graph();
  const PartitionId k = 8;
  const std::uint64_t every = 250;
  for (const bool use_spnl : {false, true}) {
    auto make = [&](const Graph& gr) -> std::unique_ptr<StreamingPartitioner> {
      if (use_spnl) {
        return std::make_unique<SpnlPartitioner>(
            gr.num_vertices(), gr.num_edges(),
            PartitionConfig{.num_partitions = k},
            SpnlOptions{.num_shards = 6, .slide = SlideMode::kCoarse});
      }
      return std::make_unique<SpnPartitioner>(
          gr.num_vertices(), gr.num_edges(), PartitionConfig{.num_partitions = k},
          SpnOptions{.num_shards = 6, .slide = SlideMode::kCoarse});
    };
    std::vector<PartitionId> reference;
    {
      auto p = make(g);
      InMemoryStream stream(g);
      reference = run_streaming(stream, *p).route;
    }
    validate_route(reference, k, g.num_vertices());
    for (const std::uint64_t kill_at :
         {std::uint64_t{500}, std::uint64_t{750}, std::uint64_t{1000},
          std::uint64_t{1250}}) {
      {
        auto p = make(g);
        InMemoryStream inner(g);
        TruncatedStream stream(inner, kill_at);
        run_streaming(stream, *p, {.path = path("coarse.ckpt"), .every = every});
      }
      auto p = make(g);
      InMemoryStream stream(g);
      const RunResult resumed = resume_streaming(stream, *p, path("coarse.ckpt"));
      EXPECT_EQ(resumed.resumed_at, kill_at);  // kill points align with cadence
      EXPECT_EQ(resumed.route, reference)
          << (use_spnl ? "SPNL" : "SPN") << " coarse-slide route diverged after "
          << "resume at kill point " << kill_at;
    }
  }
}

TEST_F(CheckpointTest, ResumeIntoWrongPartitionerThrows) {
  const Graph g = test_graph(500);
  const PartitionId k = 4;
  {
    SpnPartitioner p(g.num_vertices(), g.num_edges(),
                     PartitionConfig{.num_partitions = k}, SpnOptions{});
    InMemoryStream stream(g);
    run_streaming(stream, p, {.path = path("w.ckpt"), .every = 100});
  }
  LdgPartitioner wrong(g.num_vertices(), g.num_edges(),
                       PartitionConfig{.num_partitions = k});
  InMemoryStream stream(g);
  EXPECT_THROW(resume_streaming(stream, wrong, path("w.ckpt")), CheckpointError);
}

TEST_F(CheckpointTest, ResumeWithShorterStreamThrows) {
  const Graph g = test_graph(500);
  const PartitionId k = 4;
  {
    SpnPartitioner p(g.num_vertices(), g.num_edges(),
                     PartitionConfig{.num_partitions = k}, SpnOptions{});
    InMemoryStream stream(g);
    run_streaming(stream, p, {.path = path("s.ckpt"), .every = 100});
  }
  SpnPartitioner p(g.num_vertices(), g.num_edges(),
                   PartitionConfig{.num_partitions = k}, SpnOptions{});
  InMemoryStream inner(g);
  TruncatedStream shorter(inner, 50);  // shorter than the snapshot cursor (500)
  EXPECT_THROW(resume_streaming(shorter, p, path("s.ckpt")), CheckpointError);
}

TEST_F(CheckpointTest, CheckpointingRequiresSupport) {
  // A partitioner without save/restore support must be rejected up front,
  // not fail at the first snapshot.
  class Opaque final : public StreamingPartitioner {
   public:
    PartitionId place(VertexId v, std::span<const VertexId>) override {
      if (v >= route_.size()) route_.resize(v + 1, 0);
      return 0;
    }
    const std::vector<PartitionId>& route() const override { return route_; }
    std::size_t memory_footprint_bytes() const override { return 0; }
    std::string name() const override { return "opaque"; }

   private:
    std::vector<PartitionId> route_;
  };
  Opaque p;
  const Graph g = test_graph(100);
  InMemoryStream stream(g);
  EXPECT_THROW(run_streaming(stream, p, {.path = path("o.ckpt"), .every = 10}),
               CheckpointError);
}

// ---------------------------------------------------------------------------
// Kill-and-resume determinism, RCT parallel driver (1 worker thread ->
// deterministic schedule; the quiesce protocol guarantees snapshot
// consistency at any thread count).

TEST_F(CheckpointTest, KillAndResumeParallelDriverIsByteIdentical) {
  const Graph g = test_graph();
  const PartitionConfig config{.num_partitions = 8};
  ParallelOptions base;
  base.num_threads = 1;

  std::vector<PartitionId> reference;
  {
    InMemoryStream stream(g);
    reference = run_parallel(stream, config, base).route;
  }
  validate_route(reference, 8, g.num_vertices());

  const std::uint64_t every = 512;
  for (const std::uint64_t kill_at : {std::uint64_t{700}, std::uint64_t{1600},
                                      std::uint64_t{2700}}) {
    {
      ParallelOptions opts = base;
      opts.checkpoint_path = path("par.ckpt");
      opts.checkpoint_every = every;
      InMemoryStream inner(g);
      TruncatedStream stream(inner, kill_at);
      const auto partial = run_parallel(stream, config, opts);
      EXPECT_GE(partial.checkpoints_written, kill_at / every);
    }
    ParallelOptions opts = base;
    opts.resume_from = path("par.ckpt");
    InMemoryStream stream(g);
    const auto resumed = run_parallel(stream, config, opts);
    EXPECT_EQ(resumed.resumed_at, (kill_at / every) * every);
    EXPECT_EQ(resumed.route, reference)
        << "parallel route diverged after resume at kill point " << kill_at;
  }
}

TEST_F(CheckpointTest, KillAndResumeMidEpochDeltaIsByteIdentical) {
  // Lock-free hot path with a deliberately awkward cadence: epoch length 10
  // does not divide checkpoint_every=512 and the 8-row delta buffer also
  // publishes on fullness, so every checkpoint quiesce lands MID-EPOCH with
  // a part-full delta buffer. The quiesce drain must publish every worker's
  // buffer (worker-index order) before the snapshot, or the resumed run
  // starts from an under-counted Γ window and diverges.
  const Graph g = test_graph();
  const PartitionConfig config{.num_partitions = 8};
  ParallelOptions base;
  base.num_threads = 1;
  base.hot_path = HotPathMode::kLockFree;
  base.gamma_epoch_records = 10;
  base.gamma_delta_rows = 8;

  std::vector<PartitionId> reference;
  {
    InMemoryStream stream(g);
    reference = run_parallel(stream, config, base).route;
  }
  validate_route(reference, 8, g.num_vertices());

  for (const std::uint64_t kill_at : {std::uint64_t{700}, std::uint64_t{1600},
                                      std::uint64_t{2700}}) {
    {
      ParallelOptions opts = base;
      opts.checkpoint_path = path("par-epoch.ckpt");
      opts.checkpoint_every = 512;
      InMemoryStream inner(g);
      TruncatedStream stream(inner, kill_at);
      const auto partial = run_parallel(stream, config, opts);
      EXPECT_GE(partial.checkpoints_written, kill_at / 512);
    }
    ParallelOptions opts = base;
    opts.resume_from = path("par-epoch.ckpt");
    InMemoryStream stream(g);
    const auto resumed = run_parallel(stream, config, opts);
    EXPECT_EQ(resumed.route, reference)
        << "mid-epoch resume diverged at kill point " << kill_at;
  }
}

TEST_F(CheckpointTest, KillAndResumeParallelOddBatchStrideIsByteIdentical) {
  // Batch size 7 does not divide checkpoint_every=512, so `produced` steps
  // OVER the exact multiples and the crossing-aware Checkpointer::due must
  // fire on the first batch boundary past each one. The snapshot cursor
  // therefore lands at 518/1029/1540 (the first multiples of 7 past 512/
  // 1024/1536) — and the resumed route must still be byte-identical: with
  // one worker the placement sequence is the stream order for any batching.
  const Graph g = test_graph();
  const PartitionConfig config{.num_partitions = 8};
  ParallelOptions base;
  base.num_threads = 1;
  base.batch_size = 7;

  std::vector<PartitionId> reference;
  {
    InMemoryStream stream(g);
    reference = run_parallel(stream, config, base).route;
  }
  validate_route(reference, 8, g.num_vertices());

  {
    ParallelOptions opts = base;
    opts.checkpoint_path = path("par-odd.ckpt");
    opts.checkpoint_every = 512;
    InMemoryStream inner(g);
    TruncatedStream stream(inner, 1600);
    const auto partial = run_parallel(stream, config, opts);
    EXPECT_EQ(partial.checkpoints_written, 3u);  // past 512, 1024, 1536
  }
  ParallelOptions opts = base;
  opts.resume_from = path("par-odd.ckpt");
  InMemoryStream stream(g);
  const auto resumed = run_parallel(stream, config, opts);
  EXPECT_EQ(resumed.resumed_at, 1540u);  // 220 * 7, first stride past 1536
  EXPECT_EQ(resumed.route, reference);
}

TEST_F(CheckpointTest, ResumeWithDifferentBatchSizeIsByteIdentical) {
  // The micro-batch size is a transport knob, not partitioner state: a
  // snapshot taken by a batch-64 run must resume under batch-3 (or any
  // other) into the same route.
  const Graph g = test_graph();
  const PartitionConfig config{.num_partitions = 8};
  ParallelOptions base;
  base.num_threads = 1;

  std::vector<PartitionId> reference;
  {
    InMemoryStream stream(g);
    reference = run_parallel(stream, config, base).route;
  }

  {
    ParallelOptions opts = base;
    opts.batch_size = 64;
    opts.checkpoint_path = path("par-xbatch.ckpt");
    opts.checkpoint_every = 512;
    InMemoryStream inner(g);
    TruncatedStream stream(inner, 1600);
    run_parallel(stream, config, opts);
  }
  ParallelOptions opts = base;
  opts.batch_size = 3;
  opts.resume_from = path("par-xbatch.ckpt");
  InMemoryStream stream(g);
  const auto resumed = run_parallel(stream, config, opts);
  EXPECT_EQ(resumed.resumed_at, 1536u);
  EXPECT_EQ(resumed.route, reference);
}

TEST_F(CheckpointTest, ParallelCheckpointUnderContentionStaysConsistent) {
  // With several workers the route is schedule-dependent, so byte equality
  // is out of scope — but every snapshot must restore into a valid state
  // that completes the remaining stream into a complete assignment.
  const Graph g = test_graph(4000);
  const PartitionConfig config{.num_partitions = 8};
  ParallelOptions opts;
  opts.num_threads = 4;
  opts.checkpoint_path = path("mt.ckpt");
  opts.checkpoint_every = 777;
  {
    InMemoryStream inner(g);
    TruncatedStream stream(inner, 3000);
    const auto partial = run_parallel(stream, config, opts);
    ASSERT_GE(partial.checkpoints_written, 1u);
  }
  ParallelOptions resume;
  resume.num_threads = 4;
  resume.resume_from = path("mt.ckpt");
  InMemoryStream stream(g);
  const auto result = run_parallel(stream, config, resume);
  EXPECT_GT(result.resumed_at, 0u);
  validate_route(result.route, 8, g.num_vertices());
}

}  // namespace
}  // namespace spnl
