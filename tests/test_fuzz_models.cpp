// Model-based fuzzing: each core data structure is driven with long random
// operation sequences and cross-checked against a simple reference model
// after every step. Seeds are fixed, so failures are reproducible.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/rct.hpp"
#include "dynamic/incremental.hpp"
#include "graph/graph.hpp"
#include "partition/metrics.hpp"
#include "util/rng.hpp"

namespace spnl {
namespace {

TEST(FuzzModels, GraphBuilderMatchesEdgeMultiset) {
  Rng rng(101);
  for (int round = 0; round < 20; ++round) {
    const VertexId n = 2 + static_cast<VertexId>(rng.next_below(50));
    GraphBuilder builder(n);
    std::multiset<std::pair<VertexId, VertexId>> model;
    const int ops = 1 + static_cast<int>(rng.next_below(200));
    for (int i = 0; i < ops; ++i) {
      const auto from = static_cast<VertexId>(rng.next_below(n));
      const auto to = static_cast<VertexId>(rng.next_below(n));
      builder.add_edge(from, to);
      model.emplace(from, to);
    }
    const Graph g = builder.finish();
    ASSERT_EQ(g.num_edges(), model.size());
    std::multiset<std::pair<VertexId, VertexId>> rebuilt;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (VertexId u : g.out_neighbors(v)) rebuilt.emplace(v, u);
    }
    ASSERT_EQ(rebuilt, model) << "round " << round;
  }
}

TEST(FuzzModels, GraphBuilderDedupMatchesSetModel) {
  Rng rng(103);
  for (int round = 0; round < 10; ++round) {
    const VertexId n = 2 + static_cast<VertexId>(rng.next_below(30));
    GraphBuilder builder(n);
    std::set<std::pair<VertexId, VertexId>> model;
    for (int i = 0; i < 300; ++i) {
      const auto from = static_cast<VertexId>(rng.next_below(n));
      const auto to = static_cast<VertexId>(rng.next_below(n));
      builder.add_edge(from, to);
      if (from != to) model.emplace(from, to);
    }
    const Graph g = builder.finish(
        {.strip_self_loops = true, .strip_duplicate_edges = true});
    ASSERT_EQ(g.num_edges(), model.size());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (VertexId u : g.out_neighbors(v)) {
        ASSERT_TRUE(model.count({v, u})) << v << "->" << u;
      }
    }
  }
}

TEST(FuzzModels, RctMatchesReferenceCounters) {
  Rng rng(105);
  Rct rct(32);
  std::map<VertexId, std::uint32_t> model;  // registered -> counter
  std::set<VertexId> parked;
  const VertexId universe = 64;
  for (int step = 0; step < 20000; ++step) {
    const auto v = static_cast<VertexId>(rng.next_below(universe));
    switch (rng.next_below(4)) {
      case 0: {  // register
        const bool ok = rct.register_vertex(v);
        const bool expect = model.size() < 32 && !model.count(v);
        ASSERT_EQ(ok, expect);
        if (ok) model[v] = 0;
        break;
      }
      case 1: {  // bump
        rct.bump_if_present(v);
        if (auto it = model.find(v); it != model.end()) ++it->second;
        break;
      }
      case 2: {  // park
        OwnedVertexRecord record{v, {}};
        const bool ok = rct.park(std::move(record));
        const bool expect = parked.size() < 32 && model.count(v) && !parked.count(v);
        ASSERT_EQ(ok, expect) << "step " << step;
        if (ok) parked.insert(v);
        break;
      }
      case 3: {  // place with a few random out-neighbors
        std::vector<VertexId> out;
        for (int i = 0; i < 3; ++i) {
          out.push_back(static_cast<VertexId>(rng.next_below(universe)));
        }
        auto released = rct.on_placed(v, out);
        model.erase(v);
        parked.erase(v);
        for (VertexId u : out) {
          if (auto it = model.find(u); it != model.end() && it->second > 0) {
            --it->second;
          }
        }
        for (const auto& record : released) {
          ASSERT_TRUE(parked.count(record.id));
          ASSERT_EQ(model.at(record.id), 0u);
          parked.erase(record.id);
        }
        break;
      }
    }
    // Invariants after every step.
    ASSERT_EQ(rct.size(), model.size());
    ASSERT_EQ(rct.parked_size(), parked.size());
    double expected_mean = 0.0;
    int nonzero = 0;
    for (const auto& [id, count] : model) {
      if (count > 0) {
        expected_mean += count;
        ++nonzero;
      }
    }
    expected_mean = nonzero == 0 ? 0.0 : expected_mean / nonzero;
    ASSERT_DOUBLE_EQ(rct.mean_nonzero_count(), expected_mean) << "step " << step;
    ASSERT_EQ(rct.count(v), model.count(v) ? model[v] : 0u);
  }
}

TEST(FuzzModels, IncrementalCutMatchesRecount) {
  Rng rng(107);
  const VertexId n = 200;
  IncrementalPartitioner inc({.num_partitions = 4, .slack = 1.5}, n, 2000);
  // Reference adjacency (multiset of directed edges).
  std::multiset<std::pair<VertexId, VertexId>> edges;

  auto recount_cut = [&] {
    EdgeId cut = 0;
    for (const auto& [from, to] : edges) {
      if (inc.partition_of(from) != inc.partition_of(to)) ++cut;
    }
    return cut;
  };

  for (int step = 0; step < 4000; ++step) {
    const double dice = rng.next_double();
    const auto a = static_cast<VertexId>(rng.next_below(n));
    const auto b = static_cast<VertexId>(rng.next_below(n));
    if (dice < 0.55) {
      inc.add_edge(a, b);
      edges.emplace(a, b);
    } else if (dice < 0.8) {
      const bool removed = inc.remove_edge(a, b);
      auto it = edges.find({a, b});
      ASSERT_EQ(removed, it != edges.end());
      if (it != edges.end()) edges.erase(it);
    } else {
      inc.refine(3);
    }
    if (step % 200 == 0) {
      ASSERT_EQ(inc.cut_edges(), recount_cut()) << "step " << step;
      ASSERT_EQ(inc.num_edges(), edges.size());
    }
  }
  ASSERT_EQ(inc.cut_edges(), recount_cut());
}

}  // namespace
}  // namespace spnl
