// Kill-9 crash-consistency harness: forks real children that die by SIGKILL
// (or a torn-write _exit) at deterministic, seeded syscall boundaries inside
// checkpoint writes, checkpoint drains, and sadj conversions — then verifies
// from the parent that every surviving artifact is either the complete old
// file, a complete new file, or absent. Never a torn artifact accepted as
// valid: the checkpoint CRC and the sadj reader's eager validation are the
// arbiters.
//
// Its own binary: children inherit the gtest process image and die by
// SIGKILL mid-syscall; that must never share a process with other suites.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stream_binary.hpp"
#include "util/fault_fs.hpp"

namespace spnl {
namespace {

class CrashConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faultfs::disarm();
    dir_ = std::filesystem::temp_directory_path() / "spnl_crash_consistency";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    faultfs::disarm();
    std::filesystem::remove_all(dir_);
  }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  /// Forks; the child runs `work` and _exit(0)s if it survives it. Returns
  /// the child's wait status. The child's fault plan typically kills it
  /// first (SIGKILL or the torn-write exit), which is the point.
  static int run_child(const std::function<void()>& work) {
    ::fflush(nullptr);  // don't double-flush inherited stdio buffers
    const pid_t pid = ::fork();
    if (pid == 0) {
      try {
        work();
      } catch (...) {
        ::_exit(3);  // child died by exception, not by kill: also fine
      }
      ::_exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return status;
  }

  static bool died_by_kill_or_torn_exit(int status) {
    if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) return true;
    if (WIFEXITED(status) && WEXITSTATUS(status) == faultfs::kTornExitCode) {
      return true;
    }
    return false;
  }

  static StateWriter payload(std::uint64_t tag) {
    StateWriter w;
    w.put_u64(tag);
    std::vector<std::uint64_t> body(4096, tag);
    w.put_vec(body);
    return w;
  }

  /// Reads the checkpoint at `p` and returns its tag; throws on any
  /// corruption (the verifier the harness trusts).
  static std::uint64_t read_tag(const std::string& p) {
    StateReader r = read_checkpoint_file(p);
    const std::uint64_t tag = r.get_u64();
    const auto body = r.get_vec<std::uint64_t>();
    for (std::uint64_t v : body) {
      if (v != tag) throw CheckpointError("payload does not match its tag");
    }
    return tag;
  }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Checkpoint kill matrix: SIGKILL at the write, the fsync, the rename, plus
// a torn write followed by death. Whatever the site, the published path must
// hold the complete old snapshot or the complete new one.

TEST_F(CrashConsistencyTest, CheckpointKillMatrixNeverPublishesTornSnapshot) {
  const char* kill_plans[] = {
      "kill:write@1",
      "kill:fsync@1",
      "kill:rename@1",
      "torn:1",
      "torn:1@7",  // tear after 7 bytes — not even a whole header field
  };
  for (const char* plan : kill_plans) {
    const std::string p = path("ckpt.bin");
    std::filesystem::remove(p);
    std::filesystem::remove(p + ".tmp");
    write_checkpoint_file(p, payload(1));

    const int status = run_child([&] {
      faultfs::configure(plan);
      write_checkpoint_file(p, payload(2));
    });
    ASSERT_TRUE(died_by_kill_or_torn_exit(status))
        << "plan " << plan << ": child survived, status " << status;

    // The artifact must verify; at these sites (all pre-rename) it must
    // still be the OLD snapshot. A stale .tmp is allowed — it is not the
    // published path — but the published path must be whole.
    EXPECT_EQ(read_tag(p), 1u) << "plan " << plan;
  }
}

TEST_F(CrashConsistencyTest, SeededKillSitesAcrossADrainLoop) {
  // "Mid-drain": a child checkpointing a sequence of states 1..12 to the
  // same path, killed at a seeded random write. The survivor must be one
  // complete member of the sequence — which one depends on the seed, but
  // torn hybrids must be impossible.
  const std::string p = path("drain.bin");
  write_checkpoint_file(p, payload(1));
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::string plan = "seed:" + std::to_string(seed) + ",kill:write@r12";
    const int status = run_child([&] {
      faultfs::configure(plan);
      for (std::uint64_t tag = 2; tag <= 13; ++tag) {
        write_checkpoint_file(p, payload(tag));
      }
    });
    ASSERT_TRUE(died_by_kill_or_torn_exit(status)) << "seed " << seed;
    const std::uint64_t tag = read_tag(p);  // throws on corruption
    EXPECT_GE(tag, 1u);
    EXPECT_LE(tag, 13u);
  }
}

TEST_F(CrashConsistencyTest, ResumedCheckpointIsByteIdenticalAfterKill) {
  // The acceptance bar for resume: the snapshot that survives a kill must be
  // byte-identical to one written with no fault at all — not merely CRC-valid.
  const std::string clean = path("clean.bin");
  const std::string killed = path("killed.bin");
  write_checkpoint_file(clean, payload(5));
  write_checkpoint_file(killed, payload(5));

  const int status = run_child([&] {
    faultfs::configure("kill:fsync@1");
    write_checkpoint_file(killed, payload(6));  // dies before publish
  });
  ASSERT_TRUE(died_by_kill_or_torn_exit(status));

  std::ifstream a(clean, std::ios::binary), b(killed, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
}

// ---------------------------------------------------------------------------
// sadj conversion killed mid-body: the published file is always a complete,
// fully-decodable conversion of the old input or the new one.

TEST_F(CrashConsistencyTest, SadjConversionKillMatrix) {
  const Graph old_graph = generate_webcrawl(
      {.num_vertices = 2000, .avg_out_degree = 5.0, .seed = 21});
  const Graph new_graph = generate_webcrawl(
      {.num_vertices = 3000, .avg_out_degree = 5.0, .seed = 22});
  const std::string p = path("graph.sadj");
  {
    InMemoryStream s(old_graph);
    write_sadj(s, p);
  }

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::string plan =
        "seed:" + std::to_string(seed) + ",kill:write@r2,torn:r3";
    const int status = run_child([&] {
      faultfs::configure(plan);
      InMemoryStream s(new_graph);
      write_sadj(s, p);
    });
    ASSERT_TRUE(died_by_kill_or_torn_exit(status)) << "seed " << seed;

    // Eager validation + full decode is the verifier: every record of the
    // surviving file must stream, and the totals must match exactly one of
    // the two inputs.
    BinaryAdjacencyStream reader(p);
    const Graph survivor = materialize(reader);
    const bool is_old = survivor.num_vertices() == old_graph.num_vertices() &&
                        survivor.num_edges() == old_graph.num_edges();
    const bool is_new = survivor.num_vertices() == new_graph.num_vertices() &&
                        survivor.num_edges() == new_graph.num_edges();
    EXPECT_TRUE(is_old || is_new) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Parent-side real SIGKILL: no plan, no cooperation — the parent kills the
// child at arbitrary wall-clock points in a checkpoint loop. Slower and
// nondeterministic, so few iterations; the seeded matrix above is the
// reproducible workhorse, this is the no-cheating cross-check.

TEST_F(CrashConsistencyTest, AsynchronousSigkillDuringCheckpointLoop) {
  const std::string p = path("async.bin");
  write_checkpoint_file(p, payload(1));
  for (int round = 0; round < 4; ++round) {
    ::fflush(nullptr);
    const pid_t pid = ::fork();
    if (pid == 0) {
      for (std::uint64_t tag = 2;; tag = (tag % 1000) + 2) {
        write_checkpoint_file(p, payload(tag));
      }
      ::_exit(0);  // unreachable
    }
    // Let the child get mid-flight, then kill it cold.
    ::usleep(10000 + 7000 * round);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
    EXPECT_NO_THROW(read_tag(p)) << "round " << round;
  }
}

}  // namespace
}  // namespace spnl
