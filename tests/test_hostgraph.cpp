#include <gtest/gtest.h>

#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "partition/driver.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"
#include "core/spn.hpp"

namespace spnl {
namespace {

TEST(HostGraph, DeterministicAndWellFormed) {
  HostGraphParams params;
  params.num_vertices = 5000;
  params.seed = 3;
  const Graph a = generate_hostgraph(params);
  const Graph b = generate_hostgraph(params);
  EXPECT_EQ(a.targets(), b.targets());
  EXPECT_EQ(a.num_vertices(), 5000u);
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto out = a.out_neighbors(v);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_NE(out[i], v);
      if (i > 0) {
        EXPECT_LT(out[i - 1], out[i]);
      }
      EXPECT_LT(out[i], a.num_vertices());
    }
  }
}

TEST(HostGraph, RoughlyHitsAverageDegree) {
  HostGraphParams params;
  params.num_vertices = 20000;
  params.avg_out_degree = 10.0;
  params.seed = 5;
  const Graph g = generate_hostgraph(params);
  const double avg = static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 15.0);
}

TEST(HostGraph, IntraHostParameterControlsLocality) {
  HostGraphParams local;
  local.num_vertices = 20000;
  local.intra_host = 0.95;
  local.seed = 7;
  HostGraphParams global = local;
  global.intra_host = 0.1;
  const auto ls = locality_stats(generate_hostgraph(local));
  const auto gs = locality_stats(generate_hostgraph(global));
  EXPECT_LT(ls.mean_normalized_gap, gs.mean_normalized_gap / 2);
}

TEST(HostGraph, EmptyAndInvalid) {
  EXPECT_EQ(generate_hostgraph({}).num_vertices(), 0u);
  HostGraphParams bad;
  bad.num_vertices = 10;
  bad.host_alpha = 1.0;
  EXPECT_THROW(generate_hostgraph(bad), std::invalid_argument);
}

TEST(HostGraph, SingleVertex) {
  HostGraphParams params;
  params.num_vertices = 1;
  const Graph g = generate_hostgraph(params);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(HostGraph, SpnRecoversWhatLdgLoses) {
  // The cluster-width regime: LDG collapses, SPN's in-neighbor expectation
  // recovers most of the quality (the paper's central mechanism).
  HostGraphParams params;
  params.num_vertices = 30000;
  params.seed = 9;
  const Graph g = generate_hostgraph(params);
  const PartitionConfig config{.num_partitions = 32};

  LdgPartitioner ldg(g.num_vertices(), g.num_edges(), config);
  InMemoryStream s1(g);
  const double ldg_ecr =
      evaluate_partition(g, run_streaming(s1, ldg).route, 32).ecr;

  SpnPartitioner spn(g.num_vertices(), g.num_edges(), config);
  InMemoryStream s2(g);
  const double spn_ecr =
      evaluate_partition(g, run_streaming(s2, spn).route, 32).ecr;

  EXPECT_LT(spn_ecr, ldg_ecr * 0.6);  // paper: up to 47% reduction
}

}  // namespace
}  // namespace spnl
