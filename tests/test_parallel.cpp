#include "core/parallel_driver.hpp"

#include <gtest/gtest.h>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 10000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.9, .locality_scale = 30.0,
                            .seed = seed});
}

ParallelRunResult run(const Graph& g, unsigned threads, bool use_rct = true,
                      PartitionId k = 8) {
  InMemoryStream stream(g);
  PartitionConfig config{.num_partitions = k};
  ParallelOptions options;
  options.num_threads = threads;
  options.use_rct = use_rct;
  return run_parallel(stream, config, options);
}

double sequential_ecr(const Graph& g, PartitionId k = 8) {
  PartitionConfig config{.num_partitions = k};
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  const auto route = run_streaming(stream, partitioner).route;
  return evaluate_partition(g, route, k).ecr;
}

TEST(Parallel, SingleWorkerProducesCompleteBalancedPartition) {
  const Graph g = crawl();
  const auto result = run(g, 1);
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
  const auto metrics = evaluate_partition(g, result.route, 8);
  EXPECT_LE(metrics.delta_v, 1.12);
}

TEST(Parallel, MultiWorkerProducesCompleteBalancedPartition) {
  const Graph g = crawl();
  const auto result = run(g, 4);
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
  const auto metrics = evaluate_partition(g, result.route, 8);
  EXPECT_LE(metrics.delta_v, 1.15);
}

TEST(Parallel, QualityNearSequential) {
  // The paper's claim: RCT keeps parallel degradation small (<= ~6%).
  // Allow generous slack — scheduling is nondeterministic.
  const Graph g = crawl(20000, 3);
  const double seq = sequential_ecr(g);
  const auto par = run(g, 4);
  const double par_ecr = evaluate_partition(g, par.route, 8).ecr;
  EXPECT_LT(par_ecr, seq + 0.08);
}

TEST(Parallel, RctReducesDegradation) {
  // Averaged over a few seeds, RCT-on should not be worse than RCT-off.
  double with_rct = 0.0, without_rct = 0.0;
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const Graph g = crawl(10000, seed);
    with_rct += evaluate_partition(g, run(g, 4, true).route, 8).ecr;
    without_rct += evaluate_partition(g, run(g, 4, false).route, 8).ecr;
  }
  EXPECT_LE(with_rct, without_rct + 0.02 * 3);
}

TEST(Parallel, DelayedVerticesAreCounted) {
  const Graph g = crawl(20000, 9);
  const auto result = run(g, 4);
  // With 4 workers on a clustered stream some conflicts must be detected.
  // (Not guaranteed on every schedule, so only sanity-bound it.)
  EXPECT_LE(result.delayed_vertices, g.num_vertices());
  EXPECT_LE(result.forced_vertices, result.delayed_vertices);
}

TEST(Parallel, EveryVertexPlacedExactlyOnce) {
  const Graph g = crawl(5000, 11);
  const auto result = run(g, 8);
  ASSERT_EQ(result.route.size(), g.num_vertices());
  std::vector<VertexId> counts(8, 0);
  for (PartitionId p : result.route) {
    ASSERT_LT(p, 8u);
    ++counts[p];
  }
  VertexId total = 0;
  for (VertexId c : counts) total += c;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Parallel, WorksWithoutLocality) {
  const Graph g = crawl(5000, 13);
  InMemoryStream stream(g);
  PartitionConfig config{.num_partitions = 8};
  ParallelOptions options;
  options.num_threads = 2;
  options.use_locality = false;  // parallel SPN
  const auto result = run_parallel(stream, config, options);
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
}

TEST(Parallel, ZeroThreadsRejected) {
  const Graph g = crawl(100, 15);
  InMemoryStream stream(g);
  ParallelOptions options;
  options.num_threads = 0;
  EXPECT_THROW(run_parallel(stream, {.num_partitions = 2}, options),
               std::invalid_argument);
}

TEST(Parallel, TinyQueueStillCompletes) {
  const Graph g = crawl(2000, 17);
  InMemoryStream stream(g);
  ParallelOptions options;
  options.num_threads = 3;
  options.queue_capacity = 2;
  const auto result = run_parallel(stream, {.num_partitions = 4}, options);
  EXPECT_TRUE(is_complete_assignment(result.route, 4));
}

TEST(Parallel, EmptyGraph) {
  Graph g;
  InMemoryStream stream(g);
  ParallelOptions options;
  options.num_threads = 2;
  const auto result = run_parallel(stream, {.num_partitions = 4}, options);
  EXPECT_TRUE(result.route.empty());
}

TEST(Parallel, ReportsMemoryFootprint) {
  const Graph g = crawl(5000, 19);
  const auto result = run(g, 2);
  EXPECT_GT(result.peak_partitioner_bytes, 0u);
}

}  // namespace
}  // namespace spnl
