#include "core/parallel_driver.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/metrics.hpp"
#include "reference_partitioners.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 10000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.9, .locality_scale = 30.0,
                            .seed = seed});
}

ParallelRunResult run(const Graph& g, unsigned threads, bool use_rct = true,
                      PartitionId k = 8) {
  InMemoryStream stream(g);
  PartitionConfig config{.num_partitions = k};
  ParallelOptions options;
  options.num_threads = threads;
  options.use_rct = use_rct;
  return run_parallel(stream, config, options);
}

double sequential_ecr(const Graph& g, PartitionId k = 8) {
  PartitionConfig config{.num_partitions = k};
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  const auto route = run_streaming(stream, partitioner).route;
  return evaluate_partition(g, route, k).ecr;
}

TEST(Parallel, SingleWorkerProducesCompleteBalancedPartition) {
  const Graph g = crawl();
  const auto result = run(g, 1);
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
  const auto metrics = evaluate_partition(g, result.route, 8);
  EXPECT_LE(metrics.delta_v, 1.12);
}

TEST(Parallel, MultiWorkerProducesCompleteBalancedPartition) {
  const Graph g = crawl();
  const auto result = run(g, 4);
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
  const auto metrics = evaluate_partition(g, result.route, 8);
  EXPECT_LE(metrics.delta_v, 1.15);
}

TEST(Parallel, QualityNearSequential) {
  // The paper's claim: RCT keeps parallel degradation small (<= ~6%).
  // Allow generous slack — scheduling is nondeterministic.
  const Graph g = crawl(20000, 3);
  const double seq = sequential_ecr(g);
  const auto par = run(g, 4);
  const double par_ecr = evaluate_partition(g, par.route, 8).ecr;
  EXPECT_LT(par_ecr, seq + 0.08);
}

TEST(Parallel, RctReducesDegradation) {
  // Averaged over a few seeds, RCT-on should not be worse than RCT-off.
  double with_rct = 0.0, without_rct = 0.0;
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const Graph g = crawl(10000, seed);
    with_rct += evaluate_partition(g, run(g, 4, true).route, 8).ecr;
    without_rct += evaluate_partition(g, run(g, 4, false).route, 8).ecr;
  }
  EXPECT_LE(with_rct, without_rct + 0.02 * 3);
}

TEST(Parallel, DelayedVerticesAreCounted) {
  const Graph g = crawl(20000, 9);
  const auto result = run(g, 4);
  // With 4 workers on a clustered stream some conflicts must be detected.
  // (Not guaranteed on every schedule, so only sanity-bound it.)
  EXPECT_LE(result.delayed_vertices, g.num_vertices());
  EXPECT_LE(result.forced_vertices, result.delayed_vertices);
}

TEST(Parallel, EveryVertexPlacedExactlyOnce) {
  const Graph g = crawl(5000, 11);
  const auto result = run(g, 8);
  ASSERT_EQ(result.route.size(), g.num_vertices());
  std::vector<VertexId> counts(8, 0);
  for (PartitionId p : result.route) {
    ASSERT_LT(p, 8u);
    ++counts[p];
  }
  VertexId total = 0;
  for (VertexId c : counts) total += c;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Parallel, WorksWithoutLocality) {
  const Graph g = crawl(5000, 13);
  InMemoryStream stream(g);
  PartitionConfig config{.num_partitions = 8};
  ParallelOptions options;
  options.num_threads = 2;
  options.use_locality = false;  // parallel SPN
  const auto result = run_parallel(stream, config, options);
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
}

TEST(Parallel, ZeroThreadsRejected) {
  const Graph g = crawl(100, 15);
  InMemoryStream stream(g);
  ParallelOptions options;
  options.num_threads = 0;
  EXPECT_THROW(run_parallel(stream, {.num_partitions = 2}, options),
               std::invalid_argument);
}

TEST(Parallel, TinyQueueStillCompletes) {
  const Graph g = crawl(2000, 17);
  InMemoryStream stream(g);
  ParallelOptions options;
  options.num_threads = 3;
  options.queue_capacity = 2;
  const auto result = run_parallel(stream, {.num_partitions = 4}, options);
  EXPECT_TRUE(is_complete_assignment(result.route, 4));
}

TEST(Parallel, EmptyGraph) {
  Graph g;
  InMemoryStream stream(g);
  ParallelOptions options;
  options.num_threads = 2;
  const auto result = run_parallel(stream, {.num_partitions = 4}, options);
  EXPECT_TRUE(result.route.empty());
}

TEST(Parallel, ReportsMemoryFootprint) {
  const Graph g = crawl(5000, 19);
  const auto result = run(g, 2);
  EXPECT_GT(result.peak_partitioner_bytes, 0u);
}

TEST(Parallel, ValidatedBatchSizeClampsAndRejects) {
  EXPECT_EQ(validated_batch_size(1, 4096), 1u);
  EXPECT_EQ(validated_batch_size(64, 4096), 64u);
  EXPECT_EQ(validated_batch_size(64, 10), 10u);   // clamp to queue capacity
  EXPECT_EQ(validated_batch_size(5, 0), 1u);      // degenerate queue
  EXPECT_THROW(validated_batch_size(0, 4096), std::invalid_argument);
  EXPECT_THROW(validated_batch_size(-3, 4096), std::invalid_argument);
}

TEST(Parallel, ZeroBatchSizeRejected) {
  const Graph g = crawl(100, 15);
  InMemoryStream stream(g);
  ParallelOptions options;
  options.num_threads = 2;
  options.batch_size = 0;
  EXPECT_THROW(run_parallel(stream, {.num_partitions = 2}, options),
               std::invalid_argument);
}

TEST(Parallel, BatchLargerThanQueueIsClampedNotFatal) {
  const Graph g = crawl(2000, 17);
  InMemoryStream stream(g);
  ParallelOptions options;
  options.num_threads = 3;
  options.queue_capacity = 2;
  options.batch_size = 1024;  // > capacity: must clamp, not throw or wedge
  const auto result = run_parallel(stream, {.num_partitions = 4}, options);
  EXPECT_TRUE(is_complete_assignment(result.route, 4));
}

TEST(Parallel, SingleWorkerRouteInvariantAcrossBatchSizes) {
  // Batching changes how records cross the queue, not what the (single)
  // worker does with them: with M=1 the placement sequence is the stream
  // order for every batch size, so the routes must be byte-identical.
  const Graph g = crawl(4000, 33);
  std::vector<PartitionId> reference;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
    InMemoryStream stream(g);
    ParallelOptions options;
    options.num_threads = 1;
    options.batch_size = batch;
    const auto result = run_parallel(stream, {.num_partitions = 8}, options);
    if (reference.empty()) {
      reference = result.route;
      EXPECT_TRUE(is_complete_assignment(reference, 8));
    } else {
      EXPECT_EQ(result.route, reference) << "batch size " << batch;
    }
  }
}

TEST(Parallel, UntrackedOverflowSurfacesInResult) {
  // Admission is global now, so a refusal means the whole table was full —
  // not just one stripe. A deliberately undersized RCT (ε = 0.25 with four
  // workers gives capacity ceil(1) = 1, no per-stripe floor inflating it)
  // overflows whenever two workers merely overlap in flight, so some
  // registrations must be refused — and every refusal must be visible in
  // the result instead of silently degrading quality. Summed over seeds so
  // one lucky schedule cannot zero the expectation.
  std::uint64_t total_overflow = 0;
  for (std::uint64_t seed : {41u, 43u, 47u}) {
    const Graph g = crawl(10000, seed);
    InMemoryStream stream(g);
    ParallelOptions options;
    options.num_threads = 4;
    options.epsilon = 0.25;  // capacity ceil(0.25 * 4) = 1 entry, globally
    const auto result = run_parallel(stream, {.num_partitions = 8}, options);
    EXPECT_TRUE(is_complete_assignment(result.route, 8));
    total_overflow += result.untracked_overflow;
  }
  EXPECT_GT(total_overflow, 0u);
}

// The 24-config fuzz race of the micro-batched pipeline: worker counts ×
// batch sizes × Γ-window shards × injected stragglers. Every configuration
// must produce a complete in-range route, hold the capacity balance, and
// stay quality-equivalent (~5% edge-cut) to the sequential oracle in
// reference_partitioners.hpp.
TEST(Parallel, BatchedFuzzRaceStaysValidBalancedAndNearOracle) {
  const Graph g = crawl(4000, 37);
  const PartitionId k = 8;
  const PartitionConfig config{.num_partitions = k};

  // Sequential oracle per window setting (the window width changes what any
  // partitioner, sequential or parallel, can see).
  auto oracle_ecr = [&](std::uint32_t shards) {
    ReferenceSpnlPartitioner oracle(g.num_vertices(), g.num_edges(), config,
                                    SpnlOptions{.num_shards = shards});
    InMemoryStream stream(g);
    return evaluate_partition(g, run_streaming(stream, oracle).route, k).ecr;
  };
  const double oracle_default = oracle_ecr(1);  // 1 shard = full window
  const double oracle_sharded = oracle_ecr(4);

  int configs = 0;
  for (const unsigned threads : {2u, 4u}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{5}, std::size_t{64}}) {
      for (const std::uint32_t shards : {1u, 4u}) {
        for (const bool slow : {false, true}) {
          ++configs;
          ParallelOptions options;
          options.num_threads = threads;
          options.batch_size = batch;
          options.spnl.num_shards = shards;
          if (slow) {
            options.faults.slow.push_back(
                {.worker = 0, .delay_seconds = 0.0002, .every = 16});
          }
          InMemoryStream stream(g);
          const auto result = run_parallel(stream, config, options);
          const std::string label = "threads=" + std::to_string(threads) +
                                    " batch=" + std::to_string(batch) +
                                    " shards=" + std::to_string(shards) +
                                    " slow=" + std::to_string(slow);
          EXPECT_TRUE(is_complete_assignment(result.route, k)) << label;
          const auto metrics = evaluate_partition(g, result.route, k);
          EXPECT_LE(metrics.delta_v, 1.2) << label;
          const double oracle = shards == 1 ? oracle_default : oracle_sharded;
          // ±5% edge-cut equivalence, with a small absolute floor so a
          // near-zero oracle cut cannot make the bound vacuous-tight.
          EXPECT_LE(metrics.ecr, oracle + std::max(0.05 * oracle, 0.04)) << label;
        }
      }
    }
  }
  EXPECT_EQ(configs, 24);
}

TEST(Parallel, EpochDeltaM1ByteIdentityFuzz) {
  // The tentpole proof for the epoch-local Γ delta path: at M=1 the
  // buffered route must be BYTE-IDENTICAL to the eager striped baseline for
  // every delta-buffer size, epoch cadence and batch size. The worker reads
  // its own unpublished delta on top of the shared counters (summed in
  // uint64 before the one double conversion), so publish timing is
  // unobservable — any divergence here means the read-your-own-writes
  // overlay or the retired-row drop rule is wrong.
  const Graph g = crawl(4000, 51);
  const PartitionConfig config{.num_partitions = 8};

  std::vector<PartitionId> reference;
  {
    InMemoryStream stream(g);
    ParallelOptions options;
    options.num_threads = 1;
    options.hot_path = HotPathMode::kStriped;
    reference = run_parallel(stream, config, options).route;
  }
  ASSERT_TRUE(is_complete_assignment(reference, 8));

  int configs = 0;
  for (const std::size_t rows : {std::size_t{4}, std::size_t{64}, std::size_t{256}}) {
    for (const std::uint64_t epoch : {std::uint64_t{0}, std::uint64_t{1},
                                      std::uint64_t{7}, std::uint64_t{64}}) {
      for (const std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
        ++configs;
        InMemoryStream stream(g);
        ParallelOptions options;
        options.num_threads = 1;
        options.hot_path = HotPathMode::kLockFree;
        options.gamma_delta_rows = rows;
        options.gamma_epoch_records = epoch;
        options.batch_size = batch;
        const auto result = run_parallel(stream, config, options);
        EXPECT_EQ(result.route, reference)
            << "rows=" << rows << " epoch=" << epoch << " batch=" << batch;
      }
    }
  }
  EXPECT_EQ(configs, 24);
}

TEST(Parallel, EpochMergeMultiWorkerFuzzStaysValidAndNearOracle) {
  // Satellite fuzz: M ∈ {2, 4, 8} with varied epoch cadences and delta
  // buffer sizes (including a 4-row buffer that publishes on fullness
  // constantly, and cadence 1 that publishes every commit). Routes are
  // schedule-dependent at M > 1, so the contract is structural: complete
  // in-range assignment, capacity balance, and edge-cut equivalence to the
  // sequential oracle.
  const Graph g = crawl(4000, 53);
  const PartitionId k = 8;
  const PartitionConfig config{.num_partitions = k};

  ReferenceSpnlPartitioner oracle_partitioner(g.num_vertices(), g.num_edges(),
                                              config, SpnlOptions{});
  double oracle = 0.0;
  {
    InMemoryStream stream(g);
    oracle = evaluate_partition(
                 g, run_streaming(stream, oracle_partitioner).route, k)
                 .ecr;
  }

  int configs = 0;
  for (const unsigned threads : {2u, 4u, 8u}) {
    for (const std::uint64_t epoch : {std::uint64_t{1}, std::uint64_t{16}}) {
      for (const std::size_t rows : {std::size_t{4}, std::size_t{128}}) {
        for (const std::size_t batch : {std::size_t{5}, std::size_t{64}}) {
          ++configs;
          InMemoryStream stream(g);
          ParallelOptions options;
          options.num_threads = threads;
          options.gamma_epoch_records = epoch;
          options.gamma_delta_rows = rows;
          options.batch_size = batch;
          const auto result = run_parallel(stream, config, options);
          const std::string label = "threads=" + std::to_string(threads) +
                                    " epoch=" + std::to_string(epoch) +
                                    " rows=" + std::to_string(rows) +
                                    " batch=" + std::to_string(batch);
          EXPECT_TRUE(is_complete_assignment(result.route, k)) << label;
          const auto metrics = evaluate_partition(g, result.route, k);
          EXPECT_LE(metrics.delta_v, 1.2) << label;
          EXPECT_LE(metrics.ecr, oracle + std::max(0.05 * oracle, 0.04))
              << label;
        }
      }
    }
  }
  EXPECT_EQ(configs, 24);
}

TEST(Parallel, ContentionReportDistinguishesHotPathModes) {
  // The ContentionReport must show the structural difference between the
  // disciplines: lock-free merges Γ deltas (publishes > 0) and takes far
  // fewer exclusive RCT locks; striped never touches the delta path. The
  // RCT tallies are always-on; queue/Γ tallies need the perf sink.
  const Graph g = crawl(10000, 57);
  const PartitionConfig config{.num_partitions = 8};

  auto run_mode = [&](HotPathMode mode) {
    InMemoryStream stream(g);
    PerfStats perf;
    ParallelOptions options;
    options.num_threads = 4;
    options.hot_path = mode;
    options.perf = &perf;
    return run_parallel(stream, config, options).contention;
  };
  const ContentionReport lockfree = run_mode(HotPathMode::kLockFree);
  const ContentionReport striped = run_mode(HotPathMode::kStriped);

  EXPECT_GT(lockfree.gamma_delta_publishes, 0u);
  EXPECT_GT(lockfree.gamma_delta_cells, 0u);
  EXPECT_EQ(striped.gamma_delta_publishes, 0u);
  EXPECT_GT(lockfree.rct_exclusive_acquires, 0u);
  EXPECT_LT(lockfree.rct_exclusive_acquires, striped.rct_exclusive_acquires);
  // Both modes cross the bounded queue; the instrumented run tallies every
  // mutex acquisition.
  EXPECT_GT(lockfree.queue_lock_acquires, 0u);
  EXPECT_GT(striped.queue_lock_acquires, 0u);
}

TEST(Parallel, ContentionReportRctTalliesAreAlwaysOn) {
  // Without a perf sink the instrumented tallies read zero but the RCT's
  // own relaxed-atomic counters still populate the report.
  const Graph g = crawl(5000, 59);
  InMemoryStream stream(g);
  ParallelOptions options;
  options.num_threads = 2;
  const auto result = run_parallel(stream, {.num_partitions = 8}, options);
  EXPECT_GT(result.contention.rct_exclusive_acquires, 0u);
  EXPECT_EQ(result.contention.queue_lock_acquires, 0u);
  EXPECT_EQ(result.contention.gamma_delta_publishes, 0u);
}

}  // namespace
}  // namespace spnl
