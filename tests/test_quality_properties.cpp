// Metamorphic quality properties:
//  * ECR / balance / recovery are invariant under renaming partition ids
//    (the metrics must not care what a partition is called),
//  * SPNL routes are equivariant under vertex relabeling when the id-keyed
//    knowledge is neutralized (Γ term off via lambda=1, logical table off
//    via EtaPolicy::kZero) and the presentation sequence is held fixed —
//    the windowed/logical default config is deliberately NOT invariant
//    (topology locality in the numbering is the paper's whole premise),
//  * recovery_rate lands in [1/K, 1] for C == K on arbitrary routes.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "partition/driver.hpp"
#include "partition/metrics.hpp"
#include "util/rng.hpp"

namespace spnl {
namespace {

std::vector<PartitionId> random_partition_permutation(PartitionId k,
                                                      std::uint64_t seed) {
  std::vector<PartitionId> sigma(k);
  std::iota(sigma.begin(), sigma.end(), PartitionId{0});
  Rng rng(seed);
  for (PartitionId i = k; i > 1; --i) {
    std::swap(sigma[i - 1], sigma[rng.next_below(i)]);
  }
  return sigma;
}

TEST(QualityProperties, MetricsInvariantUnderPartitionRenaming) {
  PlantedPartitionParams params;
  params.num_vertices = 4'000;
  params.num_communities = 8;
  params.mixing = 0.2;
  const PartitionId k = 8;
  for (const std::uint64_t seed : {1u, 5u, 9u}) {
    params.seed = seed;
    const PlantedGraph planted = generate_planted_partition(params);
    PartitionConfig config;
    config.num_partitions = k;
    SpnlPartitioner partitioner(planted.graph.num_vertices(),
                                planted.graph.num_edges(), config);
    InMemoryStream stream(planted.graph);
    const std::vector<PartitionId> route =
        run_streaming(stream, partitioner).route;

    const auto sigma = random_partition_permutation(k, seed * 31 + 7);
    std::vector<PartitionId> renamed(route.size());
    for (std::size_t v = 0; v < route.size(); ++v) renamed[v] = sigma[route[v]];

    const QualityMetrics original = evaluate_partition(planted.graph, route, k);
    const QualityMetrics permuted =
        evaluate_partition(planted.graph, renamed, k);
    EXPECT_EQ(original.cut_edges, permuted.cut_edges);
    EXPECT_DOUBLE_EQ(original.ecr, permuted.ecr);
    EXPECT_DOUBLE_EQ(original.delta_v, permuted.delta_v);
    EXPECT_DOUBLE_EQ(original.delta_e, permuted.delta_e);
    EXPECT_DOUBLE_EQ(
        recovery_rate(planted.labels, planted.num_communities, route, k),
        recovery_rate(planted.labels, planted.num_communities, renamed, k));
    // Renaming the TRUTH labels instead of the route must not matter either.
    std::vector<PartitionId> renamed_truth(planted.labels.size());
    for (std::size_t v = 0; v < planted.labels.size(); ++v) {
      renamed_truth[v] = sigma[planted.labels[v]];
    }
    EXPECT_DOUBLE_EQ(
        recovery_rate(planted.labels, planted.num_communities, route, k),
        recovery_rate(renamed_truth, planted.num_communities, route, k));
  }
}

TEST(QualityProperties, SpnlRouteEquivariantUnderVertexRelabeling) {
  // Neutralize the id-keyed knowledge: lambda=1 drops the windowed Γ term
  // (its window base tracks the arriving id, so it is id-keyed BY DESIGN —
  // even at shards=1 an out-of-order presentation sheds rows), and kZero
  // turns the contiguous-range logical term off. What remains — physical
  // out-neighbor scoring, capacity weighting, tie-breaking — must be
  // name-blind: with the presentation sequence held fixed the route must
  // commute with the relabeling, route2[pi(v)] == route1[v].
  WebCrawlParams params;
  params.num_vertices = 2'000;
  params.avg_out_degree = 6.0;
  params.seed = 13;
  const Graph g = generate_webcrawl(params);
  const VertexId n = g.num_vertices();
  const std::vector<VertexId> pi = random_order(n, 99);
  const Graph relabeled = apply_permutation(g, pi);

  PartitionConfig config;
  config.num_partitions = 8;
  SpnlOptions options;
  options.lambda = 1.0;
  options.num_shards = 1;
  options.eta_policy = EtaPolicy::kZero;
  SpnlPartitioner original(n, g.num_edges(), config, options);
  SpnlPartitioner renamed(n, relabeled.num_edges(), config, options);

  std::vector<VertexId> mapped_out;
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId p1 = original.place(v, g.out_neighbors(v));
    // Present pi(v) with the SAME out-list content under new names. The
    // relabeled graph stores exactly these targets; sort to match the
    // canonical order an InMemoryStream of `relabeled` would hand over.
    const auto out = relabeled.out_neighbors(pi[v]);
    mapped_out.assign(out.begin(), out.end());
    std::sort(mapped_out.begin(), mapped_out.end());
    const PartitionId p2 = renamed.place(pi[v], mapped_out);
    ASSERT_EQ(p1, p2) << "diverged at vertex " << v;
  }
}

TEST(QualityProperties, RecoveryBoundsFuzzed) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const auto k = static_cast<PartitionId>(2 + rng.next_below(9));
    const auto n = static_cast<VertexId>(1 + rng.next_below(500));
    std::vector<PartitionId> truth(n), route(n);
    for (VertexId v = 0; v < n; ++v) {
      truth[v] = static_cast<PartitionId>(rng.next_below(k));
      route[v] = static_cast<PartitionId>(rng.next_below(k));
    }
    const double rate = recovery_rate(truth, k, route, k);
    EXPECT_GE(rate, 1.0 / k) << "k=" << k << " n=" << n;
    EXPECT_LE(rate, 1.0);
    // Perfect recovery up to renaming scores exactly 1.
    std::vector<PartitionId> shifted(n);
    for (VertexId v = 0; v < n; ++v) {
      shifted[v] = static_cast<PartitionId>((truth[v] + 1) % k);
    }
    EXPECT_DOUBLE_EQ(recovery_rate(truth, k, shifted, k), 1.0);
  }
}

TEST(QualityProperties, RecoveryValidatesInput) {
  const std::vector<PartitionId> truth = {0, 1, 0, 1};
  EXPECT_THROW(recovery_rate(truth, 2, {0, 1, 0}, 2), std::invalid_argument);
  EXPECT_THROW(recovery_rate(truth, 2, {0, 1, 0, 2}, 2), std::invalid_argument);
  EXPECT_THROW(recovery_rate({0, 2, 0, 1}, 2, truth, 2), std::invalid_argument);
  EXPECT_DOUBLE_EQ(recovery_rate({}, 4, {}, 4), 1.0);
}

}  // namespace
}  // namespace spnl
