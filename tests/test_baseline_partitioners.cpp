// Unit tests for the baseline streaming partitioners (Hash, Range, LDG,
// FENNEL) and the shared greedy base machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/fennel.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"
#include "partition/range_partitioner.hpp"

namespace spnl {
namespace {

Graph test_graph(VertexId n = 5000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.85, .locality_scale = 30.0,
                            .seed = seed});
}

template <typename P, typename... Args>
std::vector<PartitionId> run(const Graph& g, const PartitionConfig& config,
                             Args&&... args) {
  P partitioner(g.num_vertices(), g.num_edges(), config, std::forward<Args>(args)...);
  InMemoryStream stream(g);
  return run_streaming(stream, partitioner).route;
}

TEST(Hash, CompleteAndRoughlyBalanced) {
  const Graph g = test_graph();
  const PartitionConfig config{.num_partitions = 8};
  const auto route = run<HashPartitioner>(g, config);
  EXPECT_TRUE(is_complete_assignment(route, 8));
  const auto metrics = evaluate_partition(g, route, 8);
  EXPECT_LT(metrics.delta_v, 1.15);
  // Hash ignores topology: ECR near 1 - 1/K.
  EXPECT_NEAR(metrics.ecr, 1.0 - 1.0 / 8, 0.05);
}

TEST(Hash, SeedChangesAssignment) {
  const Graph g = test_graph(500);
  const PartitionConfig config{.num_partitions = 4};
  const auto a = run<HashPartitioner>(g, config, 1);
  const auto b = run<HashPartitioner>(g, config, 2);
  EXPECT_NE(a, b);
}

TEST(RangeTableTest, ContiguousNearEqualRanges) {
  RangeTable table(10, 3);  // sizes 4, 3, 3
  EXPECT_EQ(table.range_size(0), 4u);
  EXPECT_EQ(table.range_size(1), 3u);
  EXPECT_EQ(table.range_size(2), 3u);
  EXPECT_EQ(table.partition_of(0), 0u);
  EXPECT_EQ(table.partition_of(3), 0u);
  EXPECT_EQ(table.partition_of(4), 1u);
  EXPECT_EQ(table.partition_of(6), 1u);
  EXPECT_EQ(table.partition_of(7), 2u);
  EXPECT_EQ(table.partition_of(9), 2u);
}

TEST(RangeTableTest, ExactDivision) {
  RangeTable table(12, 4);
  for (PartitionId i = 0; i < 4; ++i) EXPECT_EQ(table.range_size(i), 3u);
  EXPECT_EQ(table.partition_of(11), 3u);
}

TEST(RangeTableTest, MorePartitionsThanVertices) {
  RangeTable table(2, 5);
  EXPECT_EQ(table.partition_of(0), 0u);
  EXPECT_EQ(table.partition_of(1), 1u);
  EXPECT_EQ(table.range_size(4), 0u);
}

TEST(RangeTableTest, RejectsZeroK) {
  EXPECT_THROW(RangeTable(10, 0), std::invalid_argument);
}

TEST(Range, ProducesContiguousBlocks) {
  const Graph g = test_graph(1000);
  const PartitionConfig config{.num_partitions = 4};
  const auto route = run<RangePartitioner>(g, config);
  EXPECT_TRUE(is_complete_assignment(route, 4));
  for (VertexId v = 1; v < 1000; ++v) EXPECT_GE(route[v], route[v - 1]);
  EXPECT_NEAR(evaluate_partition(g, route, 4).delta_v, 1.0, 1e-9);
}

TEST(Ldg, CompleteBalancedAndBetterThanHash) {
  const Graph g = test_graph();
  const PartitionConfig config{.num_partitions = 8};
  const auto ldg = evaluate_partition(g, run<LdgPartitioner>(g, config), 8);
  const auto hash = evaluate_partition(g, run<HashPartitioner>(g, config), 8);
  EXPECT_LE(ldg.delta_v, config.slack + 0.01);
  EXPECT_LT(ldg.ecr, hash.ecr * 0.8);
}

TEST(Ldg, PlacesWithMajorityOfPlacedNeighbors) {
  // Paper Fig. 1: with equal capacities, the partition holding the only
  // placed out-neighbor wins.
  GraphBuilder builder(8);
  builder.add_edge(7, 6);  // 6 will be placed before 7
  const Graph g = builder.finish();
  PartitionConfig config{.num_partitions = 3, .slack = 3.0};
  LdgPartitioner partitioner(8, 1, config);
  // Manually stream vertices 0..6 with empty lists, then 7 -> [6].
  for (VertexId v = 0; v < 7; ++v) partitioner.place(v, {});
  const PartitionId p6 = partitioner.route()[6];
  const PartitionId p7 = partitioner.place(7, g.out_neighbors(7));
  EXPECT_EQ(p7, p6);
}

TEST(Ldg, DoublePlacementThrows) {
  PartitionConfig config{.num_partitions = 2};
  LdgPartitioner partitioner(4, 0, config);
  partitioner.place(0, {});
  EXPECT_THROW(partitioner.place(0, {}), std::logic_error);
}

TEST(Ldg, OutOfRangeVertexThrows) {
  PartitionConfig config{.num_partitions = 2};
  LdgPartitioner partitioner(4, 0, config);
  EXPECT_THROW(partitioner.place(4, {}), std::out_of_range);
}

TEST(Ldg, HardCapRespectedUpToOverflow) {
  // 10 vertices, K=2, slack 1.0 -> capacity 5 each.
  PartitionConfig config{.num_partitions = 2, .slack = 1.0};
  LdgPartitioner partitioner(10, 0, config);
  for (VertexId v = 0; v < 10; ++v) partitioner.place(v, {});
  EXPECT_EQ(partitioner.vertex_count(0), 5u);
  EXPECT_EQ(partitioner.vertex_count(1), 5u);
}

TEST(Ldg, DeterministicRoute) {
  const Graph g = test_graph(2000);
  const PartitionConfig config{.num_partitions = 8};
  EXPECT_EQ(run<LdgPartitioner>(g, config), run<LdgPartitioner>(g, config));
}

TEST(Ldg, EdgeBalanceModeBoundsEdges) {
  // A few huge-degree vertices: vertex balance lets delta_e blow up,
  // edge balance reins it in.
  WebCrawlParams params{.num_vertices = 4000, .avg_out_degree = 10.0,
                        .degree_alpha = 1.3, .seed = 6};
  params.dense_core_fraction = 0.02;
  params.dense_core_multiplier = 25.0;
  const Graph g = generate_webcrawl(params);
  PartitionConfig vertex_cfg{.num_partitions = 8, .balance = BalanceMode::kVertex};
  PartitionConfig edge_cfg{.num_partitions = 8, .balance = BalanceMode::kEdge};
  const auto mv = evaluate_partition(g, run<LdgPartitioner>(g, vertex_cfg), 8);
  const auto me = evaluate_partition(g, run<LdgPartitioner>(g, edge_cfg), 8);
  EXPECT_LT(me.delta_e, mv.delta_e);
}

TEST(Ldg, MultiConstraintBoundsBothSides) {
  // A skewed graph under kBoth: vertex slack 1.1, edge slack 2.0 — both
  // must hold (up to one adjacency list of overflow on the edge side).
  WebCrawlParams params{.num_vertices = 6000, .avg_out_degree = 10.0,
                        .degree_alpha = 1.4, .seed = 8};
  params.dense_core_fraction = 0.02;
  params.dense_core_multiplier = 20.0;
  const Graph g = generate_webcrawl(params);
  PartitionConfig config{.num_partitions = 8, .balance = BalanceMode::kBoth,
                         .slack = 1.1, .edge_slack = 2.0};
  const auto metrics = evaluate_partition(g, run<LdgPartitioner>(g, config), 8);
  EXPECT_LE(metrics.delta_v, 1.12);
  const double edge_overflow =
      static_cast<double>(g.max_out_degree()) * 8 / g.num_edges();
  EXPECT_LE(metrics.delta_e, 2.0 + edge_overflow + 1e-9);
  // Vertex-only balance on the same graph lets delta_e run much higher.
  PartitionConfig vertex_only{.num_partitions = 8, .slack = 1.1};
  const auto loose = evaluate_partition(g, run<LdgPartitioner>(g, vertex_only), 8);
  EXPECT_GT(loose.delta_e, metrics.delta_e);
}

TEST(Fennel, CompleteAndWithinBalance) {
  const Graph g = test_graph();
  const PartitionConfig config{.num_partitions = 8};
  const auto route = run<FennelPartitioner>(g, config);
  EXPECT_TRUE(is_complete_assignment(route, 8));
  EXPECT_LE(evaluate_partition(g, route, 8).delta_v, config.slack + 0.01);
}

TEST(Fennel, DefaultAlphaMatchesFormula) {
  const PartitionConfig config{.num_partitions = 16};
  FennelPartitioner partitioner(10000, 80000, config);
  const double expected = 4.0 * 80000 / std::pow(10000.0, 1.5);
  EXPECT_NEAR(partitioner.alpha(), expected, 1e-9);
  EXPECT_DOUBLE_EQ(partitioner.gamma(), 1.5);
}

TEST(Fennel, RejectsBadGamma) {
  const PartitionConfig config{.num_partitions = 2};
  EXPECT_THROW(FennelPartitioner(10, 10, config, {.gamma = 1.0}),
               std::invalid_argument);
}

TEST(Fennel, BetterThanHashOnClusteredGraph) {
  const Graph g = test_graph();
  const PartitionConfig config{.num_partitions = 8};
  const auto fennel = evaluate_partition(g, run<FennelPartitioner>(g, config), 8);
  const auto hash = evaluate_partition(g, run<HashPartitioner>(g, config), 8);
  EXPECT_LT(fennel.ecr, hash.ecr);
}

TEST(GreedyBase, MemoryFootprintScalesWithN) {
  const PartitionConfig config{.num_partitions = 4};
  LdgPartitioner small(1000, 0, config);
  LdgPartitioner large(100000, 0, config);
  EXPECT_GT(large.memory_footprint_bytes(), small.memory_footprint_bytes() * 50);
}

}  // namespace
}  // namespace spnl
