#include "partition/restream.hpp"

#include <gtest/gtest.h>

#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 8000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.85, .locality_scale = 30.0,
                            .seed = seed});
}

TEST(Restream, OnePassEqualsLdg) {
  const Graph g = crawl(3000, 3);
  const PartitionConfig config{.num_partitions = 8};
  InMemoryStream stream(g);
  const auto restreamed = restream_partition(stream, config, {.passes = 1});
  LdgPartitioner ldg(g.num_vertices(), g.num_edges(), config);
  stream.reset();
  const auto ldg_route = run_streaming(stream, ldg).route;
  EXPECT_EQ(restreamed, ldg_route);
}

TEST(Restream, MorePassesImproveCut) {
  const Graph g = crawl(10000, 5);
  const PartitionConfig config{.num_partitions = 8};
  InMemoryStream stream(g);
  const auto one = restream_partition(stream, config, {.passes = 1});
  stream.reset();
  const auto three = restream_partition(stream, config, {.passes = 3});
  const double ecr1 = evaluate_partition(g, one, 8).ecr;
  const double ecr3 = evaluate_partition(g, three, 8).ecr;
  EXPECT_LT(ecr3, ecr1);
}

TEST(Restream, StaysBalanced) {
  const Graph g = crawl(5000, 7);
  const PartitionConfig config{.num_partitions = 8};
  InMemoryStream stream(g);
  const auto route = restream_partition(stream, config, {.passes = 4});
  EXPECT_TRUE(is_complete_assignment(route, 8));
  EXPECT_LE(evaluate_partition(g, route, 8).delta_v, config.slack + 0.01);
}

TEST(Restream, SpnlSeedAtLeastAsGoodStart) {
  const Graph g = crawl(10000, 9);
  const PartitionConfig config{.num_partitions = 16};
  InMemoryStream stream(g);
  const auto ldg_seeded = restream_partition(stream, config, {.passes = 2});
  stream.reset();
  const auto spnl_seeded =
      restream_partition(stream, config, {.passes = 2, .seed_with_spnl = true});
  // SPNL seeding should not be substantially worse.
  EXPECT_LE(evaluate_partition(g, spnl_seeded, 16).ecr,
            evaluate_partition(g, ldg_seeded, 16).ecr + 0.05);
}

TEST(Restream, FennelRuleRunsAndStaysBalanced) {
  const Graph g = crawl(5000, 13);
  const PartitionConfig config{.num_partitions = 8};
  InMemoryStream stream(g);
  const auto route = restream_partition(
      stream, config, {.passes = 3, .rule = RestreamRule::kFennel});
  EXPECT_TRUE(is_complete_assignment(route, 8));
  EXPECT_LE(evaluate_partition(g, route, 8).delta_v, config.slack + 0.01);
}

TEST(Restream, PartialRestreamKeepsMostAssignments) {
  const Graph g = crawl(5000, 15);
  const PartitionConfig config{.num_partitions = 8};
  InMemoryStream stream(g);
  const auto full = restream_partition(stream, config, {.passes = 1});
  stream.reset();
  const auto partial = restream_partition(
      stream, config, {.passes = 2, .restream_fraction = 0.1});
  // With 10% re-streamed, at least ~80% of vertices keep their pass-1 home.
  VertexId same = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (full[v] == partial[v]) ++same;
  }
  EXPECT_GT(static_cast<double>(same) / g.num_vertices(), 0.8);
  EXPECT_TRUE(is_complete_assignment(partial, 8));
}

TEST(Restream, PartialFractionValidated) {
  const Graph g = crawl(100, 17);
  InMemoryStream stream(g);
  EXPECT_THROW(restream_partition(stream, {.num_partitions = 2},
                                  {.passes = 2, .restream_fraction = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(restream_partition(stream, {.num_partitions = 2},
                                  {.passes = 2, .restream_fraction = 1.5}),
               std::invalid_argument);
}

TEST(Restream, RejectsZeroPasses) {
  const Graph g = crawl(100, 11);
  InMemoryStream stream(g);
  EXPECT_THROW(restream_partition(stream, {.num_partitions = 2}, {.passes = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace spnl
