#include "dynamic/incremental.hpp"

#include <gtest/gtest.h>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 5000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.9, .locality_scale = 30.0,
                            .seed = seed});
}

std::vector<PartitionId> spnl_route(const Graph& g, PartitionId k) {
  PartitionConfig config{.num_partitions = k};
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  return run_streaming(stream, partitioner).route;
}

TEST(Incremental, BootstrapMatchesEvaluator) {
  const Graph g = crawl();
  const auto route = spnl_route(g, 8);
  IncrementalPartitioner inc(g, route, {.num_partitions = 8});
  const auto metrics = evaluate_partition(g, route, 8);
  EXPECT_EQ(inc.cut_edges(), metrics.cut_edges);
  EXPECT_DOUBLE_EQ(inc.ecr(), metrics.ecr);
  EXPECT_NEAR(inc.delta_v(), metrics.delta_v, 1e-12);
  EXPECT_EQ(inc.num_edges(), g.num_edges());
}

TEST(Incremental, AddVertexPlacesAndCounts) {
  const Graph g = crawl(1000, 3);
  IncrementalPartitioner inc(g, spnl_route(g, 4), {.num_partitions = 4},
                             {.expected_vertices = 1200});
  const VertexId v = 1000;
  const std::vector<VertexId> out = {1, 2, 3};
  const PartitionId p = inc.add_vertex(v, out);
  EXPECT_LT(p, 4u);
  EXPECT_EQ(inc.num_vertices(), 1001u);
  EXPECT_EQ(inc.num_edges(), g.num_edges() + 3);
  EXPECT_EQ(inc.partition_of(v), p);
}

TEST(Incremental, NewVertexJoinsItsNeighbors) {
  // A vertex whose whole adjacency lives in one partition must join it.
  const Graph g = crawl(1000, 5);
  const auto route = spnl_route(g, 4);
  IncrementalPartitioner inc(g, route, {.num_partitions = 4},
                             {.expected_vertices = 1100});
  // Pick three vertices sharing a partition.
  std::vector<VertexId> same;
  for (VertexId u = 0; u < 1000 && same.size() < 3; ++u) {
    if (route[u] == route[0]) same.push_back(u);
  }
  const PartitionId p = inc.add_vertex(1000, same);
  EXPECT_EQ(p, route[0]);
}

TEST(Incremental, EdgeInsertAndRemoveMaintainCut) {
  const Graph g = crawl(500, 7);
  IncrementalPartitioner inc(g, spnl_route(g, 4), {.num_partitions = 4});
  // Find a cross-partition pair and a same-partition pair.
  VertexId cross_a = kInvalidVertex, cross_b = kInvalidVertex;
  VertexId same_a = kInvalidVertex, same_b = kInvalidVertex;
  for (VertexId a = 0; a < 500 && (cross_a == kInvalidVertex ||
                                   same_a == kInvalidVertex); ++a) {
    for (VertexId b = a + 1; b < 500; ++b) {
      if (inc.partition_of(a) != inc.partition_of(b) && cross_a == kInvalidVertex) {
        cross_a = a;
        cross_b = b;
      }
      if (inc.partition_of(a) == inc.partition_of(b) && same_a == kInvalidVertex) {
        same_a = a;
        same_b = b;
      }
    }
  }
  const EdgeId cut0 = inc.cut_edges();
  inc.add_edge(cross_a, cross_b);
  EXPECT_EQ(inc.cut_edges(), cut0 + 1);
  inc.add_edge(same_a, same_b);
  EXPECT_EQ(inc.cut_edges(), cut0 + 1);
  EXPECT_TRUE(inc.remove_edge(cross_a, cross_b));
  EXPECT_EQ(inc.cut_edges(), cut0);
  EXPECT_FALSE(inc.remove_edge(cross_a, cross_b));  // already gone
}

TEST(Incremental, EdgeToUnknownVertexAutoRegisters) {
  const Graph g = crawl(100, 9);
  IncrementalPartitioner inc(g, spnl_route(g, 4), {.num_partitions = 4},
                             {.expected_vertices = 200});
  inc.add_edge(5, 150);
  EXPECT_LT(inc.partition_of(150), 4u);
  EXPECT_EQ(inc.num_vertices(), 101u);
  // Providing the adjacency later keeps the partition, ingests edges.
  const PartitionId before = inc.partition_of(150);
  const std::vector<VertexId> out = {1, 2};
  EXPECT_EQ(inc.add_vertex(150, out), before);
  EXPECT_EQ(inc.num_edges(), g.num_edges() + 3);
}

TEST(Incremental, RefineImprovesCutAndRespectsBudget) {
  // Start from a deliberately bad (hash-like) assignment.
  const Graph g = crawl(3000, 11);
  std::vector<PartitionId> bad(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) bad[v] = v % 4;
  IncrementalPartitioner inc(g, bad, {.num_partitions = 4, .slack = 1.3});
  const EdgeId cut0 = inc.cut_edges();

  // Mark everything dirty via a no-op edge churn.
  inc.add_edge(0, 1);
  inc.remove_edge(0, 1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) inc.add_edge(v, (v + 1) % 3000);
  for (VertexId v = 0; v < g.num_vertices(); ++v) inc.remove_edge(v, (v + 1) % 3000);

  const auto stats = inc.refine(200);
  EXPECT_LE(stats.moves, 200u);
  EXPECT_GT(stats.moves, 0u);
  EXPECT_LT(inc.cut_edges(), cut0);
  // The maintained counter must equal a fresh evaluation.
  GraphBuilder builder(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.out_neighbors(v)) builder.add_edge(v, u);
  }
  const Graph rebuilt = builder.finish();
  const auto metrics = evaluate_partition(rebuilt, inc.route(), 4);
  EXPECT_EQ(metrics.cut_edges, inc.cut_edges());
  EXPECT_LE(metrics.delta_v, 1.3 + 0.01);
}

TEST(Incremental, RefineIsStableOnGoodPartition) {
  const Graph g = crawl(2000, 13);
  IncrementalPartitioner inc(g, spnl_route(g, 8), {.num_partitions = 8});
  const auto stats = inc.refine(1000);
  // Moves may happen, but the cut must never get worse.
  EXPECT_GE(stats.cut_improvement, 0);
}

TEST(Incremental, EmptyStartGrowsIncrementally) {
  IncrementalPartitioner inc({.num_partitions = 4}, 100, 400);
  const Graph g = crawl(100, 15);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    inc.add_vertex(v, g.out_neighbors(v));
  }
  EXPECT_EQ(inc.num_vertices(), 100u);
  EXPECT_EQ(inc.num_edges(), g.num_edges());
  const auto metrics = evaluate_partition(g, inc.route(), 4);
  EXPECT_EQ(metrics.cut_edges, inc.cut_edges());
  EXPECT_LE(metrics.delta_v, 1.35);
}

TEST(Incremental, RejectsBadConfig) {
  const Graph g = crawl(50, 17);
  auto route = spnl_route(g, 2);
  EXPECT_THROW(IncrementalPartitioner(
                   g, route,
                   {.num_partitions = 2, .balance = BalanceMode::kEdge}),
               std::invalid_argument);
  route.pop_back();
  EXPECT_THROW(IncrementalPartitioner(g, route, {.num_partitions = 2}),
               std::invalid_argument);
}

TEST(Incremental, MemoryReported) {
  const Graph g = crawl(1000, 19);
  IncrementalPartitioner inc(g, spnl_route(g, 4), {.num_partitions = 4});
  EXPECT_GT(inc.memory_footprint_bytes(), g.num_edges() * sizeof(VertexId));
}

}  // namespace
}  // namespace spnl
