#include "partition/metrics.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/partitioning.hpp"

namespace spnl {
namespace {

Graph square_cycle() {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  builder.add_edge(3, 0);
  return builder.finish();
}

TEST(Metrics, PerfectSplitOfCycle) {
  // {0,1} vs {2,3}: cut edges are (1,2) and (3,0).
  const auto metrics = evaluate_partition(square_cycle(), {0, 0, 1, 1}, 2);
  EXPECT_EQ(metrics.cut_edges, 2u);
  EXPECT_DOUBLE_EQ(metrics.ecr, 0.5);
  EXPECT_DOUBLE_EQ(metrics.delta_v, 1.0);
  EXPECT_DOUBLE_EQ(metrics.delta_e, 1.0);
}

TEST(Metrics, AllInOnePartition) {
  const auto metrics = evaluate_partition(square_cycle(), {0, 0, 0, 0}, 2);
  EXPECT_EQ(metrics.cut_edges, 0u);
  EXPECT_DOUBLE_EQ(metrics.ecr, 0.0);
  EXPECT_DOUBLE_EQ(metrics.delta_v, 2.0);  // maximally imbalanced
  EXPECT_DOUBLE_EQ(metrics.delta_e, 2.0);
}

TEST(Metrics, EdgesCountedAtSourcePartition) {
  // Vertex 0 has out-degree 3; vertex partitioning carries the whole
  // adjacency list with the vertex.
  GraphBuilder builder(4);
  for (VertexId u = 1; u < 4; ++u) builder.add_edge(0, u);
  const auto metrics = evaluate_partition(builder.finish(), {0, 1, 1, 1}, 2);
  EXPECT_EQ(metrics.edges_per_partition[0], 3u);
  EXPECT_EQ(metrics.edges_per_partition[1], 0u);
  EXPECT_EQ(metrics.cut_edges, 3u);
}

TEST(Metrics, RejectsBadInput) {
  const Graph g = square_cycle();
  EXPECT_THROW(evaluate_partition(g, {0, 0, 1}, 2), std::invalid_argument);  // size
  EXPECT_THROW(evaluate_partition(g, {0, 0, 1, 5}, 2), std::invalid_argument);  // id
  EXPECT_THROW(evaluate_partition(g, {0, 0, 1, kUnassigned}, 2), std::invalid_argument);
  EXPECT_THROW(evaluate_partition(g, {0, 0, 0, 0}, 0), std::invalid_argument);  // k=0
}

TEST(Metrics, CommunicationVolumeEqualsCutForDirected) {
  const Graph g = square_cycle();
  const std::vector<PartitionId> route = {0, 1, 0, 1};
  EXPECT_EQ(communication_volume(g, route),
            evaluate_partition(g, route, 2).cut_edges);
}

TEST(Metrics, IsCompleteAssignment) {
  EXPECT_TRUE(is_complete_assignment({0, 1, 1}, 2));
  EXPECT_FALSE(is_complete_assignment({0, 1, 2}, 2));
  EXPECT_FALSE(is_complete_assignment({0, kUnassigned}, 2));
}

TEST(Metrics, SummarizeMentionsEcr) {
  const auto metrics = evaluate_partition(square_cycle(), {0, 0, 1, 1}, 2);
  EXPECT_NE(summarize(metrics).find("ECR=0.5"), std::string::npos);
}

TEST(Metrics, EmptyGraph) {
  Graph g;
  const auto metrics = evaluate_partition(g, {}, 4);
  EXPECT_EQ(metrics.cut_edges, 0u);
  EXPECT_EQ(metrics.ecr, 0.0);
}

TEST(PartitionCapacity, FollowsModeAndSlack) {
  PartitionConfig config{.num_partitions = 4, .balance = BalanceMode::kVertex,
                         .slack = 1.5};
  EXPECT_DOUBLE_EQ(partition_capacity(100, 1000, config), 37.5);
  config.balance = BalanceMode::kEdge;
  EXPECT_DOUBLE_EQ(partition_capacity(100, 1000, config), 375.0);
}

TEST(PartitionCapacity, Validates) {
  EXPECT_THROW(partition_capacity(10, 10, {.num_partitions = 0}),
               std::invalid_argument);
  EXPECT_THROW(partition_capacity(10, 10, {.num_partitions = 2, .slack = 0.5}),
               std::invalid_argument);
}

TEST(PartitionCapacity, NeverBelowOne) {
  PartitionConfig config{.num_partitions = 64, .balance = BalanceMode::kEdge,
                         .slack = 1.0};
  EXPECT_DOUBLE_EQ(partition_capacity(10, 0, config), 1.0);
}

}  // namespace
}  // namespace spnl
