#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace spnl {
namespace {

Graph triangle() {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 0);
  return builder.finish();
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_out_degree(), 0u);
}

TEST(Graph, TriangleBasics) {
  Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_neighbors(0)[0], 1u);
  EXPECT_EQ(g.max_out_degree(), 1u);
}

TEST(Graph, BuilderPreservesAdjacencyOrder) {
  GraphBuilder builder(4);
  builder.add_edge(0, 3);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  Graph g = builder.finish();
  const auto out = g.out_neighbors(0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[1], 1u);
  EXPECT_EQ(out[2], 2u);
}

TEST(Graph, BuilderGrowsVertexCount) {
  GraphBuilder builder;
  builder.add_edge(5, 9);
  Graph g = builder.finish();
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, AddVertexRecord) {
  GraphBuilder builder(3);
  const std::vector<VertexId> out = {1, 2};
  builder.add_vertex(0, out);
  Graph g = builder.finish();
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST(Graph, StripSelfLoops) {
  GraphBuilder builder(2);
  builder.add_edge(0, 0);
  builder.add_edge(0, 1);
  Graph g = builder.finish({.strip_self_loops = true});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.out_neighbors(0)[0], 1u);
}

TEST(Graph, StripDuplicateEdges) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(0, 1);
  Graph g = builder.finish({.strip_duplicate_edges = true});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, Reversed) {
  Graph g = triangle();
  Graph r = g.reversed();
  EXPECT_EQ(r.num_edges(), 3u);
  ASSERT_EQ(r.out_degree(1), 1u);
  EXPECT_EQ(r.out_neighbors(1)[0], 0u);  // edge (0,1) reversed
}

TEST(Graph, ReversedTwiceMatchesEdgeSet) {
  GraphBuilder builder(5);
  builder.add_edge(0, 4);
  builder.add_edge(4, 2);
  builder.add_edge(2, 0);
  builder.add_edge(3, 1);
  Graph g = builder.finish();
  Graph rr = g.reversed().reversed();
  EXPECT_EQ(rr.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(rr.out_degree(v), g.out_degree(v));
  }
}

TEST(Graph, SymmetrizedAddsBackEdges) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  Graph sym = builder.finish().symmetrized();
  EXPECT_EQ(sym.num_edges(), 2u);
  EXPECT_EQ(sym.out_degree(0), 1u);
  EXPECT_EQ(sym.out_degree(1), 1u);
}

TEST(Graph, SymmetrizedDeduplicates) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1);
  builder.add_edge(1, 0);
  Graph sym = builder.finish().symmetrized();
  EXPECT_EQ(sym.num_edges(), 2u);  // one each way, not four
}

TEST(Graph, InvalidCsrRejected) {
  EXPECT_THROW(Graph({0, 2}, {1}), std::invalid_argument);          // offsets vs targets
  EXPECT_THROW(Graph({0, 1}, {5}), std::invalid_argument);          // target out of range
  EXPECT_THROW(Graph({1, 1}, {}), std::invalid_argument);           // first offset != 0
  EXPECT_THROW(Graph({0, 2, 1, 3}, {0, 0, 0}), std::invalid_argument);  // decreasing
}

TEST(Graph, MemoryFootprintPositive) {
  EXPECT_GT(triangle().memory_footprint_bytes(), 0u);
}

}  // namespace
}  // namespace spnl
