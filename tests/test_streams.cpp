#include "graph/adjacency_stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"

namespace spnl {
namespace {

Graph small_graph() {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(1, 3);
  builder.add_edge(3, 0);
  return builder.finish();
}

TEST(InMemoryStream, YieldsAllVerticesInOrder) {
  const Graph g = small_graph();
  InMemoryStream stream(g);
  VertexId expected = 0;
  while (auto record = stream.next()) {
    EXPECT_EQ(record->id, expected++);
  }
  EXPECT_EQ(expected, 4u);
}

TEST(InMemoryStream, ResetRestarts) {
  const Graph g = small_graph();
  InMemoryStream stream(g);
  while (stream.next()) {
  }
  stream.reset();
  auto record = stream.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->id, 0u);
}

TEST(InMemoryStream, CountsMatchGraph) {
  const Graph g = small_graph();
  InMemoryStream stream(g);
  EXPECT_EQ(stream.num_vertices(), 4u);
  EXPECT_EQ(stream.num_edges(), 4u);
}

TEST(OrderedStream, RespectsCustomOrder) {
  const Graph g = small_graph();
  OrderedStream stream(g, {3, 1, 0, 2});
  auto r = stream.next();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->id, 3u);
  EXPECT_EQ(r->out.size(), 1u);
  EXPECT_EQ(stream.next()->id, 1u);
}

TEST(OrderedStream, RejectsNonPermutations) {
  const Graph g = small_graph();
  EXPECT_THROW(OrderedStream(g, {0, 1, 2}), std::invalid_argument);       // short
  EXPECT_THROW(OrderedStream(g, {0, 1, 2, 2}), std::invalid_argument);    // dup
  EXPECT_THROW(OrderedStream(g, {0, 1, 2, 9}), std::invalid_argument);    // range
}

TEST(Materialize, RoundTripsGraph) {
  const Graph g = generate_webcrawl({.num_vertices = 500, .avg_out_degree = 5.0, .seed = 3});
  InMemoryStream stream(g);
  const Graph copy = materialize(stream);
  EXPECT_EQ(copy.num_vertices(), g.num_vertices());
  EXPECT_EQ(copy.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(copy.out_degree(v), g.out_degree(v));
  }
}

class FileStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() / "spnl_stream_test.adj";
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(FileStreamTest, ReadsAdjacencyFileWithHeader) {
  std::ofstream out(path_);
  out << "# V 3 E 3\n0 1 2\n1 2\n2\n";
  out.close();
  FileAdjacencyStream stream(path_.string());
  EXPECT_EQ(stream.num_vertices(), 3u);
  EXPECT_EQ(stream.num_edges(), 3u);
  auto r = stream.next();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->id, 0u);
  ASSERT_EQ(r->out.size(), 2u);
  EXPECT_EQ(r->out[0], 1u);
  EXPECT_EQ(stream.next()->id, 1u);
  auto last = stream.next();
  ASSERT_TRUE(last);
  EXPECT_EQ(last->out.size(), 0u);
  EXPECT_FALSE(stream.next().has_value());
}

TEST_F(FileStreamTest, InfersCountsWithoutHeader) {
  std::ofstream out(path_);
  out << "# a comment\n0 1\n1 0 2\n2\n";
  out.close();
  FileAdjacencyStream stream(path_.string());
  EXPECT_EQ(stream.num_vertices(), 3u);
  EXPECT_EQ(stream.num_edges(), 3u);
}

TEST_F(FileStreamTest, ResetReplaysFromStart) {
  std::ofstream out(path_);
  out << "# V 2 E 1\n0 1\n1\n";
  out.close();
  FileAdjacencyStream stream(path_.string());
  while (stream.next()) {
  }
  stream.reset();
  EXPECT_EQ(stream.next()->id, 0u);
}

TEST_F(FileStreamTest, MalformedLineThrows) {
  std::ofstream out(path_);
  out << "# V 2 E 1\n0 xyz\n";
  out.close();
  FileAdjacencyStream stream(path_.string());
  EXPECT_THROW(stream.next(), std::runtime_error);
}

TEST_F(FileStreamTest, MissingFileThrows) {
  EXPECT_THROW(FileAdjacencyStream("/nonexistent/file.adj"), std::runtime_error);
}

class EdgeListStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() / "spnl_el_stream_test.el";
  }
  void TearDown() override { std::filesystem::remove(path_); }
  void write(const char* contents) {
    std::ofstream out(path_);
    out << contents;
  }
  std::filesystem::path path_;
};

TEST_F(EdgeListStreamTest, GroupsEdgesIntoRecords) {
  write("# comment\n0 1\n0 2\n2 0\n2 3\n");
  EdgeListAdjacencyStream stream(path_.string());
  EXPECT_EQ(stream.num_vertices(), 4u);
  EXPECT_EQ(stream.num_edges(), 4u);
  auto r0 = stream.next();
  ASSERT_TRUE(r0);
  EXPECT_EQ(r0->id, 0u);
  ASSERT_EQ(r0->out.size(), 2u);
  EXPECT_EQ(r0->out[1], 2u);
  auto r1 = stream.next();  // vertex 1 has no out-edges: empty record
  ASSERT_TRUE(r1);
  EXPECT_EQ(r1->id, 1u);
  EXPECT_TRUE(r1->out.empty());
  auto r2 = stream.next();
  ASSERT_TRUE(r2);
  EXPECT_EQ(r2->out.size(), 2u);
  auto r3 = stream.next();  // vertex 3: sink, empty record
  ASSERT_TRUE(r3);
  EXPECT_TRUE(r3->out.empty());
  EXPECT_FALSE(stream.next().has_value());
}

TEST_F(EdgeListStreamTest, MaterializeMatchesDirectLoad) {
  write("0 1\n1 0\n1 2\n3 1\n");
  EdgeListAdjacencyStream stream(path_.string());
  const Graph g = materialize(stream);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(1), 2u);
}

TEST_F(EdgeListStreamTest, ResetReplays) {
  write("0 1\n1 0\n");
  EdgeListAdjacencyStream stream(path_.string());
  while (stream.next()) {
  }
  stream.reset();
  EXPECT_EQ(stream.next()->id, 0u);
}

TEST_F(EdgeListStreamTest, RejectsUnsortedSources) {
  write("1 0\n0 1\n");
  EXPECT_THROW(EdgeListAdjacencyStream(path_.string()), std::runtime_error);
}

TEST_F(EdgeListStreamTest, RejectsMalformedLines) {
  write("0 1 2\n");
  EXPECT_THROW(EdgeListAdjacencyStream(path_.string()), std::runtime_error);
}

TEST(OwnedVertexRecord, CopiesSpanContents) {
  std::vector<VertexId> storage = {5, 6, 7};
  VertexRecord record{1, storage};
  OwnedVertexRecord owned = OwnedVertexRecord::from(record);
  storage[0] = 99;
  EXPECT_EQ(owned.out[0], 5u);
  EXPECT_EQ(owned.id, 1u);
}

}  // namespace
}  // namespace spnl
