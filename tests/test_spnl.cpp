#include "core/spnl.hpp"

#include <gtest/gtest.h>

#include "core/spn.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "partition/driver.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 10000, double locality = 0.92, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = locality, .locality_scale = 30.0,
                            .seed = seed});
}

std::vector<PartitionId> run_spnl(const Graph& g, const PartitionConfig& config,
                                  SpnlOptions options = {}) {
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(), config, options);
  InMemoryStream stream(g);
  return run_streaming(stream, partitioner).route;
}

std::vector<PartitionId> run_spn(const Graph& g, const PartitionConfig& config,
                                 SpnOptions options = {}) {
  SpnPartitioner partitioner(g.num_vertices(), g.num_edges(), config, options);
  InMemoryStream stream(g);
  return run_streaming(stream, partitioner).route;
}

TEST(Spnl, CompleteAndBalanced) {
  const Graph g = crawl();
  const PartitionConfig config{.num_partitions = 8};
  const auto route = run_spnl(g, config);
  EXPECT_TRUE(is_complete_assignment(route, 8));
  EXPECT_LE(evaluate_partition(g, route, 8).delta_v, config.slack + 0.01);
}

TEST(Spnl, EtaZeroPolicyMatchesSpn) {
  // With the logical term disabled, SPNL must reproduce SPN exactly.
  const Graph g = crawl(5000, 0.9, 3);
  const PartitionConfig config{.num_partitions = 8};
  const auto spnl = run_spnl(g, config, {.eta_policy = EtaPolicy::kZero});
  const auto spn = run_spn(g, config);
  EXPECT_EQ(spnl, spn);
}

TEST(Spnl, EtaStartsAtOneAndDecays) {
  const PartitionConfig config{.num_partitions = 4, .slack = 2.0};
  SpnlPartitioner partitioner(100, 0, config);
  EXPECT_DOUBLE_EQ(partitioner.eta(0), 1.0);  // nothing placed yet
  for (VertexId v = 0; v < 50; ++v) partitioner.place(v, {});
  // Partitions have been filling; eta must have dropped somewhere.
  double min_eta = 1.0;
  for (PartitionId i = 0; i < 4; ++i) min_eta = std::min(min_eta, partitioner.eta(i));
  EXPECT_LT(min_eta, 1.0);
}

TEST(Spnl, PaperExampleFigure4) {
  // Fig. 4 (0-indexed): 15 vertices, K=3, logical ranges {0-4},{5-9},{10-14}.
  // Physical: V1={2,4}, V2={0,1}, V3={3,5}. Arriving vertex 6 with
  // N_out={5,8,9}: placed in-neighbors 1 (P2) and 5 (P3) give Γ(6)=(0,1,1);
  // placed out-neighbor 5 in P3 gives (0,0,1); logical out-neighbors 8,9 in
  // range 2 (partition 1) give (0,2,0). Unweighted total (0,3,2) -> P2.
  const PartitionConfig config{.num_partitions = 3, .slack = 3.0};
  SpnlOptions options{.lambda = 0.5, .num_shards = 1};
  SpnlPartitioner partitioner(15, 18, config, options);
  const std::vector<std::vector<VertexId>> adj = {
      {5, 7, 8}, {3, 6, 7}, {3, 4, 10}, {10, 11, 14}, {1, 2, 13}, {3, 6, 12},
  };
  for (VertexId v = 0; v < 6; ++v) partitioner.place(v, adj[v]);
  // Verify logical table matches the range pre-assignment.
  EXPECT_EQ(partitioner.logical_table().partition_of(8), 1u);
  EXPECT_EQ(partitioner.logical_table().partition_of(9), 1u);
  // Γ(6) accumulated from vertices placed with 6 in their out-list.
  std::uint32_t gamma_total = 0;
  for (PartitionId i = 0; i < 3; ++i) gamma_total += partitioner.gamma().get(i, 6);
  EXPECT_EQ(gamma_total, 2u);  // vertices 1 and 5 point at 6
}

TEST(Spnl, TracksRangesOnPerfectLocalityGraph) {
  // A ring lattice streamed in order: SPNL should essentially reproduce
  // range partitioning (near-minimal cut).
  const Graph g = generate_ring_lattice(8000, 4);
  const PartitionConfig config{.num_partitions = 8};
  const auto spnl = evaluate_partition(g, run_spnl(g, config), 8);
  // Ring with K=8: only boundary edges cut; ECR well under 5%.
  EXPECT_LT(spnl.ecr, 0.05);
}

TEST(Spnl, BeatsSpnOnStrongLocalityGraph) {
  const Graph g = crawl(20000, 0.96, 5);
  const PartitionConfig config{.num_partitions = 32};
  const auto spnl = evaluate_partition(g, run_spnl(g, config), 32);
  const auto spn = evaluate_partition(g, run_spn(g, config), 32);
  EXPECT_LE(spnl.ecr, spn.ecr * 1.05);  // at least comparable, usually better
}

TEST(Spnl, LogicalCountsReachZeroAtEnd) {
  const Graph g = crawl(2000, 0.9, 7);
  const PartitionConfig config{.num_partitions = 4};
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  run_streaming(stream, partitioner);
  for (PartitionId i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(partitioner.eta(i), 0.0);
}

TEST(Spnl, EtaPolicies) {
  const Graph g = crawl(3000, 0.9, 9);
  const PartitionConfig config{.num_partitions = 8};
  for (EtaPolicy policy : {EtaPolicy::kPaper, EtaPolicy::kLinear,
                           EtaPolicy::kConstant, EtaPolicy::kZero}) {
    const auto route = run_spnl(g, config, {.eta_policy = policy});
    EXPECT_TRUE(is_complete_assignment(route, 8));
  }
}

TEST(Spnl, ShuffledNumberingHurtsQuality) {
  // Destroying id locality invalidates the logical pre-assignment: SPNL on
  // the shuffled graph must be clearly worse (the locality ablation).
  const Graph g = crawl(15000, 0.95, 11);
  const Graph shuffled = random_renumber(g, 123);
  const PartitionConfig config{.num_partitions = 16};
  const auto local = evaluate_partition(g, run_spnl(g, config), 16);
  const auto destroyed = evaluate_partition(shuffled, run_spnl(shuffled, config), 16);
  EXPECT_LT(local.ecr, destroyed.ecr);
}

TEST(Spnl, RejectsBadLambda) {
  const PartitionConfig config{.num_partitions = 2};
  EXPECT_THROW(SpnlPartitioner(10, 10, config, {.lambda = 2.0}),
               std::invalid_argument);
}

TEST(Spnl, Deterministic) {
  const Graph g = crawl(3000, 0.9, 13);
  const PartitionConfig config{.num_partitions = 8};
  EXPECT_EQ(run_spnl(g, config), run_spnl(g, config));
}

TEST(Spnl, WorksWithEdgeBalance) {
  const Graph g = crawl(5000, 0.9, 15);
  const PartitionConfig config{.num_partitions = 8, .balance = BalanceMode::kEdge};
  const auto metrics = evaluate_partition(g, run_spnl(g, config), 8);
  EXPECT_LT(metrics.delta_e, 1.5);
}

TEST(Spnl, KLargerThanAvailableVerticesStillCompletes) {
  const Graph g = crawl(100, 0.9, 17);
  const PartitionConfig config{.num_partitions = 64, .slack = 2.0};
  const auto route = run_spnl(g, config);
  EXPECT_TRUE(is_complete_assignment(route, 64));
}

}  // namespace
}  // namespace spnl
