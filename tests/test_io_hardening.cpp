// Hardened graph I/O: every corrupt, truncated or structurally invalid
// input throws a typed IoError at load time instead of producing a graph or
// route that fails (or silently corrupts results) far from the load site.
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"

namespace spnl {
namespace {

class IoHardeningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "spnl_io_hardening_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  /// Writes a valid binary graph and returns its path.
  std::string valid_binary(const char* name) {
    const Graph g = generate_webcrawl(
        {.num_vertices = 200, .avg_out_degree = 4.0, .seed = 3});
    const std::string p = path(name);
    write_binary(g, p);
    return p;
  }

  /// Overwrites sizeof(T) bytes at `offset` with `value`.
  template <typename T>
  static void patch(const std::string& p, std::uint64_t offset, T value) {
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(reinterpret_cast<const char*>(&value), sizeof(value));
  }

  std::filesystem::path dir_;
};

// Header layout of the binary format: u64 magic, u64 n, u64 m, then
// (n+1) u64 offsets, then m u32 targets.
constexpr std::uint64_t kOffN = 8;
constexpr std::uint64_t kOffM = 16;
constexpr std::uint64_t kOffOffsets = 24;

TEST_F(IoHardeningTest, BinaryRoundTripStillWorks) {
  const Graph g = generate_webcrawl(
      {.num_vertices = 200, .avg_out_degree = 4.0, .seed = 3});
  write_binary(g, path("ok.bin"));
  const Graph loaded = read_binary(path("ok.bin"));
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.offsets(), g.offsets());
  EXPECT_EQ(loaded.targets(), g.targets());
}

TEST_F(IoHardeningTest, BinaryTruncatedHeaderThrows) {
  const std::string p = valid_binary("th.bin");
  std::filesystem::resize_file(p, 12);  // mid-header
  EXPECT_THROW(read_binary(p), IoError);
}

TEST_F(IoHardeningTest, BinaryTruncatedPayloadThrows) {
  const std::string p = valid_binary("tp.bin");
  const auto size = std::filesystem::file_size(p);
  std::filesystem::resize_file(p, size - 64);
  EXPECT_THROW(read_binary(p), IoError);
}

TEST_F(IoHardeningTest, BinaryOversizedFileThrows) {
  const std::string p = valid_binary("ov.bin");
  std::ofstream f(p, std::ios::binary | std::ios::app);
  f.write("garbage", 7);
  f.close();
  EXPECT_THROW(read_binary(p), IoError);
}

TEST_F(IoHardeningTest, BinaryHugeVertexCountRejectedBeforeAllocation) {
  // A corrupt header claiming 2^60 vertices must be rejected by the
  // size-vs-header check, not by attempting a multi-exabyte allocation.
  const std::string p = valid_binary("huge.bin");
  patch<std::uint64_t>(p, kOffN, std::uint64_t{1} << 60);
  EXPECT_THROW(read_binary(p), IoError);
}

TEST_F(IoHardeningTest, BinaryEdgeCountMismatchThrows) {
  const std::string p = valid_binary("em.bin");
  patch<std::uint64_t>(p, kOffM, 1);  // header m no longer matches the file
  EXPECT_THROW(read_binary(p), IoError);
}

TEST_F(IoHardeningTest, BinaryNonMonotoneOffsetsThrow) {
  const std::string p = valid_binary("nm.bin");
  // offsets[1] := huge — decreasing at offsets[2], and > m.
  patch<std::uint64_t>(p, kOffOffsets + 8, std::uint64_t{1} << 40);
  EXPECT_THROW(read_binary(p), IoError);
}

TEST_F(IoHardeningTest, BinaryFirstOffsetNonZeroThrows) {
  const std::string p = valid_binary("fo.bin");
  patch<std::uint64_t>(p, kOffOffsets, 1);
  EXPECT_THROW(read_binary(p), IoError);
}

TEST_F(IoHardeningTest, BinaryTargetOutOfRangeThrows) {
  const std::string p = valid_binary("tr.bin");
  // First target := n (one past the last valid vertex id).
  std::ifstream in(p, std::ios::binary);
  in.seekg(kOffN);
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.close();
  const std::uint64_t targets_at = kOffOffsets + (n + 1) * sizeof(std::uint64_t);
  patch<std::uint32_t>(p, targets_at, static_cast<std::uint32_t>(n));
  EXPECT_THROW(read_binary(p), IoError);
}

TEST_F(IoHardeningTest, BinaryBadMagicThrows) {
  const std::string p = valid_binary("bm.bin");
  patch<std::uint64_t>(p, 0, 0x1234567812345678ULL);
  EXPECT_THROW(read_binary(p), IoError);
}

// ---------------------------------------------------------------------------
// Edge-list text format.

TEST_F(IoHardeningTest, EdgeListExtraFieldThrows) {
  std::ofstream out(path("three.el"));
  out << "1 2 3\n";  // three fields on an edge line
  out.close();
  EXPECT_THROW(read_edge_list(path("three.el")), IoError);
}

TEST_F(IoHardeningTest, EdgeListOverflowingIdThrows) {
  std::ofstream out(path("big.el"));
  out << "4294967295 0\n";  // == kInvalidVertex: would wrap into a "valid" id
  out.close();
  EXPECT_THROW(read_edge_list(path("big.el")), IoError);
  std::ofstream out2(path("big2.el"));
  out2 << "0 99999999999\n";  // > 2^32
  out2.close();
  EXPECT_THROW(read_edge_list(path("big2.el")), IoError);
}

TEST_F(IoHardeningTest, EdgeListCompactIdsAcceptsSparseRawIds) {
  // With compaction the raw ids are remapped, so huge raw ids are fine.
  std::ofstream out(path("sparse.el"));
  out << "99999999999 5\n5 99999999999\n";
  out.close();
  const Graph g = read_edge_list(path("sparse.el"), /*compact_ids=*/true);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
}

// ---------------------------------------------------------------------------
// Route tables.

TEST_F(IoHardeningTest, RouteTableDuplicateVertexThrows) {
  std::ofstream out(path("dup.route"));
  out << "0 1\n1 2\n0 3\n";  // vertex 0 assigned twice
  out.close();
  EXPECT_THROW(read_route_table(path("dup.route")), IoError);
}

TEST_F(IoHardeningTest, RouteTableOverflowingPartitionThrows) {
  std::ofstream out(path("bigp.route"));
  out << "0 4294967295\n";  // == kUnassigned sentinel
  out.close();
  EXPECT_THROW(read_route_table(path("bigp.route")), IoError);
}

TEST_F(IoHardeningTest, ValidatedReadRejectsHolesAndRange) {
  std::ofstream out(path("holes.route"));
  out << "0 1\n2 1\n";  // vertex 1 missing
  out.close();
  EXPECT_THROW(read_route_table(path("holes.route"), 4), IoError);

  std::ofstream out2(path("range.route"));
  out2 << "0 1\n1 9\n";  // partition 9 with k=4
  out2.close();
  EXPECT_THROW(read_route_table(path("range.route"), 4), IoError);

  std::ofstream out3(path("good.route"));
  out3 << "0 1\n1 3\n2 0\n";
  out3.close();
  const auto route = read_route_table(path("good.route"), 4);
  EXPECT_EQ(route, (std::vector<PartitionId>{1, 3, 0}));
}

// ---------------------------------------------------------------------------
// Bounded quarantine for malformed mid-stream records (file streams).

class QuarantineTest : public IoHardeningTest {
 protected:
  /// Adjacency file: 6 vertices, two malformed mid-stream lines (garbage
  /// token, truncated/garbage id).
  std::string dirty_adjacency(const char* name) {
    const std::string p = path(name);
    std::ofstream out(p);
    out << "# V 6 E 6\n"
        << "0 1 2\n"
        << "1 2\n"
        << "2 3 oops\n"  // garbage token mid-line
        << "3 4\n"
        << "4x 5\n"  // garbage vertex id
        << "5 0\n";
    return p;
  }

  static std::uint64_t count_records(AdjacencyStream& stream) {
    std::uint64_t n = 0;
    while (stream.next().has_value()) ++n;
    return n;
  }
};

TEST_F(QuarantineTest, DisabledByDefaultMalformedLineThrows) {
  const std::string p = dirty_adjacency("strict.adj");
  FileAdjacencyStream stream(p);
  EXPECT_THROW(count_records(stream), std::runtime_error);
}

TEST_F(QuarantineTest, SkipsCountsAndLogsBadLines) {
  const std::string p = dirty_adjacency("tolerant.adj");
  const std::string log = path("bad.txt");
  FileAdjacencyStream stream(p, {.max_bad_records = 10, .quarantine_log = log});
  EXPECT_EQ(count_records(stream), 4u);  // 6 lines, 2 quarantined
  EXPECT_EQ(stream.bad_records(), 2u);

  std::ifstream in(log);
  std::string line;
  std::vector<std::string> logged;
  while (std::getline(in, line)) logged.push_back(line);
  ASSERT_EQ(logged.size(), 2u);
  EXPECT_EQ(logged[0], "2 3 oops");
  EXPECT_EQ(logged[1], "4x 5");
}

TEST_F(QuarantineTest, ThrowsPastTheBound) {
  const std::string p = dirty_adjacency("bounded.adj");
  FileAdjacencyStream stream(p, {.max_bad_records = 1, .quarantine_log = {}});
  EXPECT_THROW(count_records(stream), std::runtime_error);
}

TEST_F(QuarantineTest, ResetRecountsPerPass) {
  const std::string p = dirty_adjacency("repass.adj");
  FileAdjacencyStream stream(p, {.max_bad_records = 10, .quarantine_log = {}});
  EXPECT_EQ(count_records(stream), 4u);
  EXPECT_EQ(stream.bad_records(), 2u);
  stream.reset();
  EXPECT_EQ(stream.bad_records(), 0u);
  EXPECT_EQ(count_records(stream), 4u);
  EXPECT_EQ(stream.bad_records(), 2u);
}

TEST_F(QuarantineTest, ResetTruncatesQuarantineLogBetweenPasses) {
  // Regression: reset_count() zeroed the counter but left the append-mode
  // log open, so every re-streaming pass (two-pass wrappers, resume, the
  // --stream metrics pass) appended the same quarantined lines again — a log
  // consumer saw each bad record once per pass instead of once.
  const std::string p = dirty_adjacency("relog.adj");
  const std::string log = path("relog.txt");
  FileAdjacencyStream stream(p, {.max_bad_records = 10, .quarantine_log = log});
  EXPECT_EQ(count_records(stream), 4u);
  stream.reset();
  EXPECT_EQ(count_records(stream), 4u);
  stream.reset();
  EXPECT_EQ(count_records(stream), 4u);

  std::ifstream in(log);
  std::string line;
  std::vector<std::string> logged;
  while (std::getline(in, line)) logged.push_back(line);
  ASSERT_EQ(logged.size(), 2u) << "log must hold one pass, not three";
  EXPECT_EQ(logged[0], "2 3 oops");
  EXPECT_EQ(logged[1], "4x 5");
}

TEST_F(QuarantineTest, MaterializeToleratesQuarantinedVertices) {
  const std::string p = dirty_adjacency("mat.adj");
  FileAdjacencyStream stream(p, {.max_bad_records = 10, .quarantine_log = {}});
  const Graph g = materialize(stream);
  // Quarantined vertices become isolated; the rest keep their edges.
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.out_degree(2), 0u);
  EXPECT_EQ(g.out_degree(4), 0u);
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST_F(QuarantineTest, UnwritableQuarantineLogFailsFastAtConstruction) {
  // An unwritable --quarantine-log used to be discovered at the first bad
  // record and then silently swallowed — exactly the records the operator
  // asked to keep were lost. The log is now opened eagerly: a bad path is a
  // typed IoError at stream construction, before any record is consumed.
  const std::string p = dirty_adjacency("failfast.adj");
  const std::string bad_log = path("no/such/dir/bad.txt");
  EXPECT_THROW(
      FileAdjacencyStream(p, {.max_bad_records = 10, .quarantine_log = bad_log}),
      IoError);
  EXPECT_THROW(
      EdgeListAdjacencyStream(path("nope.el"),
                              {.max_bad_records = 10, .quarantine_log = bad_log}),
      std::runtime_error);  // either the log or the missing input, both typed

  // Quarantine without a log and a writable log both still construct.
  FileAdjacencyStream no_log(p, {.max_bad_records = 10, .quarantine_log = {}});
  FileAdjacencyStream good_log(
      p, {.max_bad_records = 10, .quarantine_log = path("ok.txt")});
  EXPECT_EQ(count_records(no_log), 4u);
  EXPECT_EQ(count_records(good_log), 4u);
}

TEST_F(QuarantineTest, EdgeListStreamQuarantinesGarbagePairs) {
  const std::string p = path("dirty.el");
  {
    std::ofstream out(p);
    out << "0 1\n"
        << "0 2 2\n"  // three fields
        << "1 2\n"
        << "2 zzz\n"  // garbage target
        << "2 0\n";
  }
  // Strict: the constructor's pre-scan already rejects the file.
  EXPECT_THROW(EdgeListAdjacencyStream{p}, std::runtime_error);
  // Tolerant: 2 quarantined, 3 good edges over 3 vertices survive.
  EdgeListAdjacencyStream stream(p, {.max_bad_records = 5, .quarantine_log = {}});
  EXPECT_EQ(stream.num_edges(), 3u);
  std::uint64_t edges = 0, records = 0;
  stream.reset();
  while (auto record = stream.next()) {
    ++records;
    edges += record->out.size();
  }
  EXPECT_EQ(records, 3u);
  EXPECT_EQ(edges, 3u);
  EXPECT_EQ(stream.bad_records(), 2u);
}

TEST(ValidateRoute, ChecksSizeHolesAndRange) {
  const std::vector<PartitionId> good{0, 1, 2, 1};
  EXPECT_NO_THROW(validate_route(good, 3));
  EXPECT_NO_THROW(validate_route(good, 3, 4));
  EXPECT_THROW(validate_route(good, 3, 5), IoError);   // wrong size
  EXPECT_THROW(validate_route(good, 2), IoError);      // id 2 with k=2
  std::vector<PartitionId> holes{0, kUnassigned, 1};
  EXPECT_THROW(validate_route(holes, 2), IoError);     // unassigned hole
  EXPECT_NO_THROW(validate_route({}, 1));              // empty is complete
}

}  // namespace
}  // namespace spnl
