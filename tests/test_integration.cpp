// Cross-module integration tests: whole pipelines exercised end to end,
// with independent reference computations where available.
#include <gtest/gtest.h>

#include <numeric>

#include "core/parallel_driver.hpp"
#include "core/spnl.hpp"
#include "engine/algorithms.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "offline/label_prop.hpp"
#include "offline/multilevel.hpp"
#include "partition/driver.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

/// Union-find over the symmetrized edges — the WCC ground truth.
std::vector<VertexId> union_find_components(const Graph& g) {
  std::vector<VertexId> parent(g.num_vertices());
  std::iota(parent.begin(), parent.end(), VertexId{0});
  std::function<VertexId(VertexId)> find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.out_neighbors(v)) {
      const VertexId rv = find(v), ru = find(u);
      if (rv != ru) parent[std::max(rv, ru)] = std::min(rv, ru);
    }
  }
  // Labels = smallest member id, matching the engine's min-label semantics.
  std::vector<VertexId> label(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) label[v] = find(v);
  return label;
}

TEST(Integration, WccMatchesUnionFind) {
  const Graph g = generate_webcrawl({.num_vertices = 3000, .avg_out_degree = 2.0,
                                     .locality = 0.7, .seed = 41});
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(),
                              {.num_partitions = 4});
  InMemoryStream stream(g);
  const auto route = run_streaming(stream, partitioner).route;
  const auto result = connected_components(g, route, 4);
  const auto expected = union_find_components(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(static_cast<VertexId>(result.values[v]), expected[v]) << v;
  }
}

TEST(Integration, AllEightAnaloguesPartitionCleanly) {
  // Tiny-scale sweep over the full dataset registry through the full
  // pipeline: generate -> stream SPNL -> evaluate.
  for (const auto& spec : paper_datasets()) {
    const Graph g = load_dataset(spec, 0.05);
    const PartitionConfig config{.num_partitions = 8};
    SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(), config);
    InMemoryStream stream(g);
    const auto route = run_streaming(stream, partitioner).route;
    const auto metrics = evaluate_partition(g, route, 8);
    EXPECT_TRUE(is_complete_assignment(route, 8)) << spec.name;
    EXPECT_LE(metrics.delta_v, config.slack + 8.0 / g.num_vertices() + 1e-9)
        << spec.name;
    EXPECT_LT(metrics.ecr, 0.95) << spec.name;
  }
}

TEST(Integration, StreamingBeatsOfflineOnCombinedCostEverywhere) {
  // The paper's core economics on every analogue (small scale): SPNL's
  // PT is a small fraction of the multilevel baseline's.
  const Graph g = load_dataset(dataset_by_name("uk2002"), 0.2);
  const PartitionConfig config{.num_partitions = 16};

  SpnlPartitioner spnl(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  const RunResult streaming = run_streaming(stream, spnl);
  const auto offline = multilevel_partition(g, config);

  EXPECT_LT(streaming.partition_seconds, offline.partition_seconds / 3);
  const double streaming_ecr = evaluate_partition(g, streaming.route, 16).ecr;
  const double offline_ecr = evaluate_partition(g, offline.route, 16).ecr;
  EXPECT_LT(streaming_ecr, offline_ecr * 1.25);  // comparable or better
}

TEST(Integration, ParallelDriverAgreesWithSequentialOnQuality) {
  // Quality parity within tolerance across several datasets.
  for (const char* name : {"uk2002", "indo2004"}) {
    const Graph g = load_dataset(dataset_by_name(name), 0.1);
    const PartitionConfig config{.num_partitions = 8};

    SpnlPartitioner sequential(g.num_vertices(), g.num_edges(), config);
    InMemoryStream stream(g);
    const double seq_ecr =
        evaluate_partition(g, run_streaming(stream, sequential).route, 8).ecr;

    stream.reset();
    ParallelOptions options;
    options.num_threads = 4;
    const auto par = run_parallel(stream, config, options);
    const double par_ecr = evaluate_partition(g, par.route, 8).ecr;
    EXPECT_NEAR(par_ecr, seq_ecr, 0.05) << name;
  }
}

TEST(Integration, EdgeBalanceHoldsAcrossDrivers) {
  // Edge-balance mode through the sequential, parallel and restream paths.
  const Graph g = load_dataset(dataset_by_name("eu2015"), 0.1);
  const PartitionConfig config{.num_partitions = 8,
                               .balance = BalanceMode::kEdge, .slack = 1.3};
  const double overflow =
      static_cast<double>(g.max_out_degree()) * 8 / g.num_edges();

  SpnlPartitioner sequential(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  const auto seq = evaluate_partition(g, run_streaming(stream, sequential).route, 8);
  EXPECT_LE(seq.delta_e, config.slack + overflow + 1e-9);

  stream.reset();
  ParallelOptions options;
  options.num_threads = 2;
  const auto par = run_parallel(stream, config, options);
  const auto par_metrics = evaluate_partition(g, par.route, 8);
  // Parallel capacity checks are racy by design: allow one extra record per
  // worker beyond the sequential bound.
  EXPECT_LE(par_metrics.delta_e, config.slack + 3 * overflow + 0.05);
}

TEST(Integration, LabelPropNeverBeatsMultilevelBadly) {
  // Regression guard on the offline pair's relative standing (Table V
  // shape: multilevel quality >= label-prop quality on crawl graphs).
  const Graph g = load_dataset(dataset_by_name("web2001"), 0.1);
  const PartitionConfig config{.num_partitions = 8};
  const double ml =
      evaluate_partition(g, multilevel_partition(g, config).route, 8).ecr;
  const double lp =
      evaluate_partition(g, label_prop_partition(g, config).route, 8).ecr;
  EXPECT_LT(ml, lp * 1.1);
}

TEST(Integration, DescribeRunsOnEveryAnalogue) {
  for (const auto& spec : paper_datasets()) {
    const Graph g = load_dataset(spec, 0.02);
    EXPECT_FALSE(describe(g, spec.name).empty());
  }
}

}  // namespace
}  // namespace spnl
