// Storage-fault injection: the faultfs plan grammar, the hardened writers'
// behavior under ENOSPC / EINTR storms / short writes / failed fsync+rename,
// crash-atomic publish of checkpoints and sadj conversions, quarantine-log
// drop counting, and SIGBUS-safe mmap readers (a file truncated under the
// mapping surfaces as a typed IoError, never process death).
#include "util/fault_fs.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/mmap_stream.hpp"
#include "graph/stream_binary.hpp"
#include "util/checked_io.hpp"
#include "util/sigbus_guard.hpp"

namespace spnl {
namespace {

class FaultFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faultfs::disarm();
    dir_ = std::filesystem::temp_directory_path() / "spnl_fault_fs_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    faultfs::disarm();
    std::filesystem::remove_all(dir_);
  }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  static StateWriter payload(std::uint64_t tag) {
    StateWriter w;
    w.put_u64(tag);
    w.put_string("payload-" + std::to_string(tag));
    std::vector<std::uint32_t> body(1000, static_cast<std::uint32_t>(tag));
    w.put_vec(body);
    return w;
  }

  static std::uint64_t read_tag(const std::string& p) {
    StateReader r = read_checkpoint_file(p);
    return r.get_u64();
  }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Plan grammar.

TEST_F(FaultFsTest, GrammarRejectsMalformedPlans) {
  EXPECT_THROW(faultfs::configure("bogus"), std::runtime_error);
  EXPECT_THROW(faultfs::configure("fail:write"), std::runtime_error);
  EXPECT_THROW(faultfs::configure("fail:teleport@1"), std::runtime_error);
  EXPECT_THROW(faultfs::configure("fail:write@0"), std::runtime_error);
  EXPECT_THROW(faultfs::configure("fail:write@abc"), std::runtime_error);
  EXPECT_THROW(faultfs::configure("fail:write@1@ebogus"), std::runtime_error);
  EXPECT_THROW(faultfs::configure("short:fsync@1"), std::runtime_error);
  EXPECT_THROW(faultfs::configure("enospc:notbytes"), std::runtime_error);
  EXPECT_THROW(faultfs::configure("kill:write"), std::runtime_error);
  EXPECT_THROW(faultfs::configure("seed:xyz,fail:write@r4"), std::runtime_error);
  EXPECT_THROW(faultfs::configure("wat:write@1"), std::runtime_error);
  EXPECT_FALSE(faultfs::armed());  // a rejected plan never arms
}

TEST_F(FaultFsTest, EmptySpecDisarms) {
  faultfs::configure("fail:write@1");
  EXPECT_TRUE(faultfs::armed());
  faultfs::configure("");
  EXPECT_FALSE(faultfs::armed());
}

TEST_F(FaultFsTest, OperationsAreCountedOnlyWhileArmed) {
  // An index far past anything this test performs: armed but never firing.
  faultfs::configure("fail:write@1000000");
  FdWriter w(path("counted.txt"));
  w.append("hello");
  w.flush();
  w.close();
  EXPECT_GE(faultfs::op_count(faultfs::Op::kOpen), 1u);
  EXPECT_GE(faultfs::op_count(faultfs::Op::kWrite), 1u);
  EXPECT_EQ(faultfs::injected_faults(), 0u);
  faultfs::disarm();
  EXPECT_EQ(faultfs::op_count(faultfs::Op::kOpen), 0u);
}

TEST_F(FaultFsTest, SeededRandomIndicesAreDeterministic) {
  // `rN` draws at parse time from the plan's seed: the same plan string must
  // name the same schedule on every run — that is what makes a torture-matrix
  // failure reproducible from its log line.
  auto failing_write_index = [&](const std::string& spec) -> std::uint64_t {
    faultfs::configure(spec);
    std::uint64_t index = 0;
    FdWriter w(path("det.txt"));
    for (std::uint64_t i = 1; i <= 64; ++i) {
      try {
        w.append("0123456789abcdef");
        w.flush();
      } catch (const IoError&) {
        index = i;
        break;
      }
    }
    faultfs::disarm();
    return index;
  };
  const std::uint64_t first = failing_write_index("seed:42,fail:write@r16");
  const std::uint64_t second = failing_write_index("seed:42,fail:write@r16");
  const std::uint64_t third = failing_write_index("seed:43,fail:write@r16");
  ASSERT_GT(first, 0u);
  ASSERT_LE(first, 16u);
  EXPECT_EQ(first, second);
  // Different seed: almost always a different draw; equal draws are legal,
  // so only assert the bound.
  ASSERT_GT(third, 0u);
  ASSERT_LE(third, 16u);
}

// ---------------------------------------------------------------------------
// Checkpoint writer under storage faults.

TEST_F(FaultFsTest, CheckpointSurvivesEintrStorm) {
  const std::string p = path("ckpt.bin");
  faultfs::configure("eintr:write@1@5,eintr:fsync@2@2");
  write_checkpoint_file(p, payload(7));
  EXPECT_GE(faultfs::injected_faults(), 5u);
  faultfs::disarm();
  EXPECT_EQ(read_tag(p), 7u);
}

TEST_F(FaultFsTest, CheckpointSurvivesShortWrites) {
  const std::string p = path("ckpt.bin");
  faultfs::configure("short:write@1@4,short:write@2@3");
  write_checkpoint_file(p, payload(9));
  faultfs::disarm();
  EXPECT_EQ(read_tag(p), 9u);
}

TEST_F(FaultFsTest, CheckpointEnospcPreservesOldSnapshot) {
  const std::string p = path("ckpt.bin");
  write_checkpoint_file(p, payload(1));
  faultfs::configure("enospc:64");  // disk fills 64 bytes into the tmp file
  EXPECT_THROW(write_checkpoint_file(p, payload(2)), CheckpointError);
  faultfs::disarm();
  EXPECT_EQ(read_tag(p), 1u);  // old snapshot intact
  EXPECT_FALSE(std::filesystem::exists(p + ".tmp"));  // partial tmp removed
}

TEST_F(FaultFsTest, CheckpointFailedFsyncPreservesOldSnapshot) {
  const std::string p = path("ckpt.bin");
  write_checkpoint_file(p, payload(1));
  faultfs::configure("fail:fsync@1@eio");
  EXPECT_THROW(write_checkpoint_file(p, payload(2)), CheckpointError);
  faultfs::disarm();
  EXPECT_EQ(read_tag(p), 1u);
  EXPECT_FALSE(std::filesystem::exists(p + ".tmp"));
}

TEST_F(FaultFsTest, CheckpointFailedRenamePreservesOldSnapshot) {
  const std::string p = path("ckpt.bin");
  write_checkpoint_file(p, payload(1));
  faultfs::configure("fail:rename@1@eio");
  EXPECT_THROW(write_checkpoint_file(p, payload(2)), CheckpointError);
  faultfs::disarm();
  EXPECT_EQ(read_tag(p), 1u);
  EXPECT_FALSE(std::filesystem::exists(p + ".tmp"));
}

TEST_F(FaultFsTest, CheckpointFailedOpenIsTyped) {
  faultfs::configure("fail:open@1@eacces");
  EXPECT_THROW(write_checkpoint_file(path("ckpt.bin"), payload(1)),
               CheckpointError);
}

// ---------------------------------------------------------------------------
// sadj conversion: crash-atomic overwrite.

TEST_F(FaultFsTest, SadjOverwriteFailureLeavesOldFileParseable) {
  const Graph old_graph = generate_webcrawl(
      {.num_vertices = 300, .avg_out_degree = 4.0, .seed = 5});
  const Graph new_graph = generate_webcrawl(
      {.num_vertices = 500, .avg_out_degree = 4.0, .seed = 6});
  const std::string p = path("graph.sadj");
  {
    InMemoryStream s(old_graph);
    write_sadj(s, p);
  }
  faultfs::configure("enospc:512");
  {
    InMemoryStream s(new_graph);
    EXPECT_THROW(write_sadj(s, p), IoError);
  }
  faultfs::disarm();
  EXPECT_FALSE(std::filesystem::exists(p + ".tmp"));
  BinaryAdjacencyStream reader(p);
  EXPECT_EQ(reader.num_vertices(), old_graph.num_vertices());
  const Graph round = materialize(reader);
  EXPECT_EQ(round.num_edges(), old_graph.num_edges());
}

// ---------------------------------------------------------------------------
// Graph/route writers: unchecked-ofstream bug class.

TEST_F(FaultFsTest, RouteWriterSurfacesEnospc) {
  // The old ofstream writer reported full-disk success; FdWriter must throw.
  std::vector<PartitionId> route(10000, 1);
  faultfs::configure("enospc:128");
  EXPECT_THROW(write_route_table(route, path("route.txt")), IoError);
  faultfs::disarm();
}

TEST_F(FaultFsTest, GraphWritersSurfaceWriteFailures) {
  const Graph g = generate_webcrawl(
      {.num_vertices = 2000, .avg_out_degree = 6.0, .seed = 3});
  faultfs::configure("fail:write@1@enospc");
  EXPECT_THROW(write_adjacency_list(g, path("g.adj")), IoError);
  faultfs::configure("fail:write@1@eio");
  EXPECT_THROW(write_edge_list(g, path("g.el")), IoError);
  faultfs::configure("fail:write@1@enospc");
  EXPECT_THROW(write_binary(g, path("g.bin")), IoError);
  faultfs::disarm();
  // And with no plan armed all three succeed and round-trip.
  write_binary(g, path("g.bin"));
  EXPECT_EQ(read_binary(path("g.bin")).num_edges(), g.num_edges());
}

// ---------------------------------------------------------------------------
// Quarantine log: write failures are counted drops, not aborts.

TEST_F(FaultFsTest, QuarantineLogWriteFailuresAreCountedNotFatal) {
  const std::string input = path("dirty.adj");
  {
    FdWriter w(input);
    w.append("0 1 2\nzzz\n1 0\n??\n2 0 1\n");
    w.close();
  }
  // enospc:0 — every log write fails, but the log OPEN still succeeds, so
  // construction passes and the failure lands mid-stream where it used to
  // abort the run.
  faultfs::configure("enospc:0");
  FileAdjacencyStream stream(
      input, {.max_bad_records = 10, .quarantine_log = path("bad.txt")});
  std::uint64_t records = 0;
  while (stream.next()) ++records;
  faultfs::disarm();
  EXPECT_EQ(records, 3u);
  EXPECT_EQ(stream.bad_records(), 2u);
  EXPECT_EQ(stream.quarantine_log_drops(), 2u);  // both lines lost, counted
}

TEST_F(FaultFsTest, QuarantineLogHealthyPathCountsNoDrops) {
  const std::string input = path("dirty.adj");
  {
    FdWriter w(input);
    w.append("0 1\nzzz\n1 0\n");
    w.close();
  }
  FileAdjacencyStream stream(
      input, {.max_bad_records = 10, .quarantine_log = path("bad.txt")});
  while (stream.next()) {
  }
  EXPECT_EQ(stream.bad_records(), 1u);
  EXPECT_EQ(stream.quarantine_log_drops(), 0u);
}

// ---------------------------------------------------------------------------
// SIGBUS-safe mmap readers. Each scenario maps a file that spans multiple
// pages, truncates it to exactly one page mid-stream (the kernel zaps every
// mapped page past the new EOF), and expects a typed IoError from the decode
// loop — previously an uncatchable SIGBUS process death.

constexpr std::size_t kPage = 4096;

// Writes an adjacency text file guaranteed to span well past `kPage` bytes.
std::string big_adj_file(const std::filesystem::path& dir) {
  const std::string p = (dir / "big.adj").string();
  FdWriter w(p);
  w.append("# V 3000 E 2999\n");
  for (int v = 0; v + 1 < 3000; ++v) {
    w.append_u64(static_cast<std::uint64_t>(v));
    w.append_char(' ');
    w.append_u64(static_cast<std::uint64_t>(v + 1));
    w.append_char('\n');
  }
  w.close();
  return p;
}

TEST_F(FaultFsTest, TextMmapReaderSurvivesMidStreamTruncationAsIoError) {
  const std::string p = big_adj_file(dir_);
  ASSERT_GT(std::filesystem::file_size(p), 3 * kPage);
  MmapAdjacencyStream stream(p);
  ASSERT_TRUE(stream.next().has_value());
  // Yank pages 2..n out from under the reader mid-pass.
  ASSERT_EQ(::truncate(p.c_str(), static_cast<off_t>(kPage)), 0);
  bool threw = false;
  try {
    while (stream.next()) {
    }
  } catch (const IoError& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
  EXPECT_TRUE(threw);
  EXPECT_TRUE(sigbus_handler_installed());
  // The process is alive and the stream is still safely rejectable.
  EXPECT_THROW(stream.reset(), IoError);  // fstat check at the pass boundary
}

TEST_F(FaultFsTest, BinaryMmapReaderSurvivesMidStreamTruncationAsIoError) {
  const Graph g = generate_webcrawl(
      {.num_vertices = 4000, .avg_out_degree = 6.0, .seed = 11});
  const std::string p = path("big.sadj");
  {
    InMemoryStream s(g);
    write_sadj(s, p);
  }
  ASSERT_GT(std::filesystem::file_size(p), 3 * kPage);
  BinaryAdjacencyStream stream(p);  // header validated while file is whole
  ASSERT_TRUE(stream.next().has_value());
  ASSERT_EQ(::truncate(p.c_str(), static_cast<off_t>(kPage)), 0);
  bool threw = false;
  try {
    while (stream.next()) {
    }
  } catch (const IoError& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
  EXPECT_TRUE(threw);
}

TEST_F(FaultFsTest, EdgeListMmapReaderSurvivesMidStreamTruncationAsIoError) {
  const std::string p = path("big.el");
  {
    FdWriter w(p);
    for (int v = 0; v + 1 < 3000; ++v) {
      w.append_u64(static_cast<std::uint64_t>(v));
      w.append_char(' ');
      w.append_u64(static_cast<std::uint64_t>(v + 1));
      w.append_char('\n');
    }
    w.close();
  }
  ASSERT_GT(std::filesystem::file_size(p), 3 * kPage);
  MmapEdgeListStream stream(p);
  ASSERT_TRUE(stream.next().has_value());
  ASSERT_EQ(::truncate(p.c_str(), static_cast<off_t>(kPage)), 0);
  bool threw = false;
  try {
    while (stream.next()) {
    }
  } catch (const IoError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST_F(FaultFsTest, ResetOnShrunkFileFailsUpFrontWithoutTouchingPages) {
  const std::string p = big_adj_file(dir_);
  MmapAdjacencyStream stream(p);
  ASSERT_EQ(::truncate(p.c_str(), static_cast<off_t>(kPage)), 0);
  // The fstat-vs-mapping check fires before any page access.
  EXPECT_THROW(stream.reset(), IoError);
}

TEST_F(FaultFsTest, IntactFilesStreamIdenticallyWithGuardsInstalled) {
  // The guard must be semantics-free on the happy path: a healthy file
  // streams every record, twice (reset between passes exercises
  // throw_if_shrunk on the un-shrunk file).
  const std::string p = big_adj_file(dir_);
  MmapAdjacencyStream stream(p);
  std::uint64_t first_pass = 0, second_pass = 0;
  while (stream.next()) ++first_pass;
  stream.reset();
  while (stream.next()) ++second_pass;
  EXPECT_EQ(first_pass, 2999u);
  EXPECT_EQ(first_pass, second_pass);
}

// ---------------------------------------------------------------------------
// Injected mmap/open failures surface through MmapFile's typed errors.

TEST_F(FaultFsTest, InjectedOpenAndMmapFailuresAreTyped) {
  const std::string p = big_adj_file(dir_);
  faultfs::configure("fail:open@1@emfile");
  EXPECT_THROW(MmapAdjacencyStream{p}, IoError);
  faultfs::configure("fail:mmap@1@12");  // ENOMEM by number
  EXPECT_THROW(MmapAdjacencyStream{p}, IoError);
  faultfs::disarm();
}

}  // namespace
}  // namespace spnl
