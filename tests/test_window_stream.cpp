#include "partition/window_stream.hpp"

#include <gtest/gtest.h>

#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "partition/driver.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 8000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.88, .locality_scale = 30.0,
                            .seed = seed});
}

TEST(WindowStream, CompleteAndBalanced) {
  const Graph g = crawl();
  const PartitionConfig config{.num_partitions = 8};
  InMemoryStream stream(g);
  const auto result = window_stream_partition(stream, config, {.window_size = 512});
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
  EXPECT_LE(evaluate_partition(g, result.route, 8).delta_v, config.slack + 0.01);
}

TEST(WindowStream, WindowOneEqualsLdg) {
  // A window of one candidate degenerates to plain LDG (same scoring, same
  // order).
  const Graph g = crawl(3000, 3);
  const PartitionConfig config{.num_partitions = 8};
  InMemoryStream stream(g);
  const auto windowed = window_stream_partition(stream, config, {.window_size = 1});
  LdgPartitioner ldg(g.num_vertices(), g.num_edges(), config);
  stream.reset();
  const auto ldg_route = run_streaming(stream, ldg).route;
  EXPECT_EQ(windowed.route, ldg_route);
}

TEST(WindowStream, HelpsOnAdversarialOrder) {
  // On a randomly ordered stream, picking confident vertices first should
  // beat strict arrival order.
  const Graph g = random_renumber(crawl(10000, 5), 77);
  const PartitionConfig config{.num_partitions = 8};
  InMemoryStream stream(g);
  LdgPartitioner ldg(g.num_vertices(), g.num_edges(), config);
  const double plain =
      evaluate_partition(g, run_streaming(stream, ldg).route, 8).ecr;
  stream.reset();
  const auto windowed =
      window_stream_partition(stream, config, {.window_size = 2048});
  const double selected = evaluate_partition(g, windowed.route, 8).ecr;
  EXPECT_LT(selected, plain);
}

TEST(WindowStream, LogicalPriorRuns) {
  const Graph g = crawl(4000, 7);
  const PartitionConfig config{.num_partitions = 8};
  InMemoryStream stream(g);
  const auto result = window_stream_partition(
      stream, config, {.window_size = 256, .logical_weight = 0.5});
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
}

TEST(WindowStream, WindowLargerThanGraph) {
  const Graph g = crawl(300, 9);
  const PartitionConfig config{.num_partitions = 4};
  InMemoryStream stream(g);
  const auto result = window_stream_partition(stream, config, {.window_size = 10000});
  EXPECT_TRUE(is_complete_assignment(result.route, 4));
}

TEST(WindowStream, ZeroWindowRejected) {
  const Graph g = crawl(100, 11);
  InMemoryStream stream(g);
  EXPECT_THROW(
      window_stream_partition(stream, {.num_partitions = 2}, {.window_size = 0}),
      std::invalid_argument);
}

TEST(WindowStream, Deterministic) {
  const Graph g = crawl(3000, 13);
  const PartitionConfig config{.num_partitions = 8};
  InMemoryStream s1(g), s2(g);
  EXPECT_EQ(window_stream_partition(s1, config, {.window_size = 128}).route,
            window_stream_partition(s2, config, {.window_size = 128}).route);
}

}  // namespace
}  // namespace spnl
