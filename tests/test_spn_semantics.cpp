// Semantic ground-truth checks for the Γ expectation machinery: with the
// full table (X=1), at the moment vertex v arrives, Γ_i(v) must equal
// |V_i^pt ∩ N_in(v)| — the number of v's in-neighbors already placed into
// P_i (computed independently from the reversed graph). With a window
// (X>1), Γ_i(v) must equal the same count restricted to in-neighbors placed
// while v was inside the window.
#include <gtest/gtest.h>

#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "graph/generators.hpp"

namespace spnl {
namespace {

class GammaGroundTruth : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GammaGroundTruth, SpnGammaEqualsPlacedInNeighborCount) {
  const std::uint32_t shards = GetParam();
  const Graph g = generate_webcrawl({.num_vertices = 2000, .avg_out_degree = 7.0,
                                     .locality = 0.8, .locality_scale = 40.0,
                                     .seed = 31});
  const Graph rev = g.reversed();
  const PartitionId k = 8;
  const PartitionConfig config{.num_partitions = k};
  SpnPartitioner partitioner(g.num_vertices(), g.num_edges(), config,
                             SpnOptions{.num_shards = shards});
  const VertexId window = (g.num_vertices() + shards - 1) / shards;

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Expected Γ_i(v) before v is placed: in-neighbors u < v (already
    // placed) whose placement happened while v was in the window, i.e.
    // v < u's-arrival-head + window <=> v - u < window... the window at u's
    // placement time starts at u, so v is counted iff v < u + window.
    std::vector<std::uint32_t> expected(k, 0);
    for (VertexId u : rev.out_neighbors(v)) {
      if (u >= v) continue;  // not yet placed
      if (v - u >= window) continue;  // v was outside the window then
      ++expected[partitioner.route()[u]];
    }
    for (PartitionId i = 0; i < k; ++i) {
      ASSERT_EQ(partitioner.gamma().get(i, v), expected[i])
          << "v=" << v << " i=" << i << " shards=" << shards;
    }
    partitioner.place(v, g.out_neighbors(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, GammaGroundTruth,
                         ::testing::Values(1u, 2u, 10u, 100u, 500u));

TEST(GammaGroundTruth, SpnlSharesTheSameGammaSemantics) {
  const Graph g = generate_webcrawl({.num_vertices = 1500, .avg_out_degree = 6.0,
                                     .locality = 0.85, .locality_scale = 30.0,
                                     .seed = 33});
  const Graph rev = g.reversed();
  const PartitionId k = 4;
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(),
                              {.num_partitions = k}, SpnlOptions{.num_shards = 1});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::vector<std::uint32_t> expected(k, 0);
    for (VertexId u : rev.out_neighbors(v)) {
      if (u < v) ++expected[partitioner.route()[u]];
    }
    for (PartitionId i = 0; i < k; ++i) {
      ASSERT_EQ(partitioner.gamma().get(i, v), expected[i]) << "v=" << v;
    }
    partitioner.place(v, g.out_neighbors(v));
  }
}

// Multigraph semantics (documented in spn.hpp): parallel edges count with
// multiplicity in both the λ out-neighbor term and the Γ increments, and a
// self-loop yields one (inert) Γ increment for the placed vertex itself.
// Callers wanting simple-graph semantics dedupe at the load layer
// (GraphBuilder::FinishOptions); the last test closes that loop.

TEST(MultigraphSemantics, ParallelEdgesVoteWithMultiplicity) {
  // λ=1 (pure out-neighbor term), K=2, n=3. v0 -> P0 (empty tie, lowest id),
  // v1 -> P1 (score tie, lower load). v2's list [1, 1, 0] then scores P1=2
  // vs P0=1 under multiplicity; deduplicated it would tie 1-1 and fall to P0
  // (equal loads, lower id) — so the placement distinguishes the semantics.
  const PartitionConfig config{.num_partitions = 2};
  SpnPartitioner spn(3, 3, config, SpnOptions{.lambda = 1.0, .num_shards = 1});
  EXPECT_EQ(spn.place(0, std::vector<VertexId>{}), 0u);
  EXPECT_EQ(spn.place(1, std::vector<VertexId>{}), 1u);
  EXPECT_EQ(spn.place(2, std::vector<VertexId>{1, 1, 0}), 1u);

  // SPNL with the logical term silenced behaves identically.
  SpnlPartitioner spnl(3, 3, config,
                       SpnlOptions{.lambda = 1.0, .num_shards = 1,
                                   .eta_policy = EtaPolicy::kZero});
  EXPECT_EQ(spnl.place(0, std::vector<VertexId>{}), 0u);
  EXPECT_EQ(spnl.place(1, std::vector<VertexId>{}), 1u);
  EXPECT_EQ(spnl.place(2, std::vector<VertexId>{1, 1, 0}), 1u);
}

TEST(MultigraphSemantics, GammaCountsParallelEdgesWithMultiplicity) {
  // Γ_i(u) is the number of placed-edge endpoints into u, not the number of
  // distinct placed in-neighbors: two parallel edges 0->5 leave Γ_pid(5)=2.
  SpnPartitioner spn(8, 3, {.num_partitions = 2},
                     SpnOptions{.num_shards = 1});
  const PartitionId pid = spn.place(0, std::vector<VertexId>{5, 5, 7});
  EXPECT_EQ(spn.gamma().get(pid, 5), 2u);
  EXPECT_EQ(spn.gamma().get(pid, 7), 1u);
  EXPECT_EQ(spn.gamma().get(1 - pid, 5), 0u);
}

TEST(MultigraphSemantics, SelfLoopGammaIncrementIsDefinitionFaithful) {
  // At scoring time v is unplaced, so a self-loop adds nothing to any term;
  // after placement v IS a placed in-neighbor of itself, so Γ_pid(v) = 1.
  // The count is inert (v's row is never read again) but keeps Γ equal to
  // |V_i^pt ∩ N_in(u)| for every in-window u, self-loops included.
  SpnPartitioner spn(4, 2, {.num_partitions = 2}, SpnOptions{.num_shards = 1});
  const PartitionId pid = spn.place(0, std::vector<VertexId>{0, 2});
  EXPECT_EQ(spn.gamma().get(pid, 0), 1u);
  EXPECT_EQ(spn.gamma().get(pid, 2), 1u);

  SpnlPartitioner spnl(4, 2, {.num_partitions = 2},
                       SpnlOptions{.num_shards = 1});
  const PartitionId lpid = spnl.place(0, std::vector<VertexId>{0, 2});
  EXPECT_EQ(spnl.gamma().get(lpid, 0), 1u);
  EXPECT_EQ(spnl.gamma().get(lpid, 2), 1u);
}

TEST(MultigraphSemantics, LoadLayerDedupRestoresSimpleGraphPlacement) {
  // The supported path to simple-graph semantics: strip duplicates and
  // self-loops when building the graph. The same edge list as the first test
  // then routes v2 to P0 (1-1 score tie, equal loads, lowest id).
  GraphBuilder builder(3);
  builder.add_edge(2, 1);
  builder.add_edge(2, 1);
  builder.add_edge(2, 0);
  builder.add_edge(2, 2);
  const Graph g = builder.finish({.strip_self_loops = true,
                                  .strip_duplicate_edges = true});
  ASSERT_EQ(g.out_neighbors(2).size(), 2u);
  SpnPartitioner spn(3, g.num_edges(), {.num_partitions = 2},
                     SpnOptions{.lambda = 1.0, .num_shards = 1});
  EXPECT_EQ(spn.place(0, g.out_neighbors(0)), 0u);
  EXPECT_EQ(spn.place(1, g.out_neighbors(1)), 1u);
  EXPECT_EQ(spn.place(2, g.out_neighbors(2)), 0u);
}

TEST(GammaGroundTruth, LambdaSweepKeepsInvariants) {
  const Graph g = generate_webcrawl({.num_vertices = 3000, .avg_out_degree = 6.0,
                                     .seed = 35});
  for (double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    SpnPartitioner partitioner(g.num_vertices(), g.num_edges(),
                               {.num_partitions = 8},
                               SpnOptions{.lambda = lambda});
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const PartitionId p = partitioner.place(v, g.out_neighbors(v));
      ASSERT_LT(p, 8u);
    }
    VertexId total = 0;
    for (PartitionId i = 0; i < 8; ++i) total += partitioner.vertex_count(i);
    EXPECT_EQ(total, g.num_vertices()) << "lambda=" << lambda;
  }
}

}  // namespace
}  // namespace spnl
