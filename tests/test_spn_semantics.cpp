// Semantic ground-truth checks for the Γ expectation machinery: with the
// full table (X=1), at the moment vertex v arrives, Γ_i(v) must equal
// |V_i^pt ∩ N_in(v)| — the number of v's in-neighbors already placed into
// P_i (computed independently from the reversed graph). With a window
// (X>1), Γ_i(v) must equal the same count restricted to in-neighbors placed
// while v was inside the window.
#include <gtest/gtest.h>

#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "graph/generators.hpp"

namespace spnl {
namespace {

class GammaGroundTruth : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GammaGroundTruth, SpnGammaEqualsPlacedInNeighborCount) {
  const std::uint32_t shards = GetParam();
  const Graph g = generate_webcrawl({.num_vertices = 2000, .avg_out_degree = 7.0,
                                     .locality = 0.8, .locality_scale = 40.0,
                                     .seed = 31});
  const Graph rev = g.reversed();
  const PartitionId k = 8;
  const PartitionConfig config{.num_partitions = k};
  SpnPartitioner partitioner(g.num_vertices(), g.num_edges(), config,
                             SpnOptions{.num_shards = shards});
  const VertexId window = (g.num_vertices() + shards - 1) / shards;

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Expected Γ_i(v) before v is placed: in-neighbors u < v (already
    // placed) whose placement happened while v was in the window, i.e.
    // v < u's-arrival-head + window <=> v - u < window... the window at u's
    // placement time starts at u, so v is counted iff v < u + window.
    std::vector<std::uint32_t> expected(k, 0);
    for (VertexId u : rev.out_neighbors(v)) {
      if (u >= v) continue;  // not yet placed
      if (v - u >= window) continue;  // v was outside the window then
      ++expected[partitioner.route()[u]];
    }
    for (PartitionId i = 0; i < k; ++i) {
      ASSERT_EQ(partitioner.gamma().get(i, v), expected[i])
          << "v=" << v << " i=" << i << " shards=" << shards;
    }
    partitioner.place(v, g.out_neighbors(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, GammaGroundTruth,
                         ::testing::Values(1u, 2u, 10u, 100u, 500u));

TEST(GammaGroundTruth, SpnlSharesTheSameGammaSemantics) {
  const Graph g = generate_webcrawl({.num_vertices = 1500, .avg_out_degree = 6.0,
                                     .locality = 0.85, .locality_scale = 30.0,
                                     .seed = 33});
  const Graph rev = g.reversed();
  const PartitionId k = 4;
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(),
                              {.num_partitions = k}, SpnlOptions{.num_shards = 1});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::vector<std::uint32_t> expected(k, 0);
    for (VertexId u : rev.out_neighbors(v)) {
      if (u < v) ++expected[partitioner.route()[u]];
    }
    for (PartitionId i = 0; i < k; ++i) {
      ASSERT_EQ(partitioner.gamma().get(i, v), expected[i]) << "v=" << v;
    }
    partitioner.place(v, g.out_neighbors(v));
  }
}

TEST(GammaGroundTruth, LambdaSweepKeepsInvariants) {
  const Graph g = generate_webcrawl({.num_vertices = 3000, .avg_out_degree = 6.0,
                                     .seed = 35});
  for (double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    SpnPartitioner partitioner(g.num_vertices(), g.num_edges(),
                               {.num_partitions = 8},
                               SpnOptions{.lambda = lambda});
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const PartitionId p = partitioner.place(v, g.out_neighbors(v));
      ASSERT_LT(p, 8u);
    }
    VertexId total = 0;
    for (PartitionId i = 0; i < 8; ++i) total += partitioner.vertex_count(i);
    EXPECT_EQ(total, g.num_vertices()) << "lambda=" << lambda;
  }
}

}  // namespace
}  // namespace spnl
