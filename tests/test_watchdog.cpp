// Pipeline watchdog: straggler detection, in-flight record rescue, and
// clean abort of a fully wedged pipeline. Unit tests drive the
// publish/claim/steal protocol directly; integration tests inject stuck and
// slow workers into run_parallel and assert the kill-path acceptance
// criteria — the run completes, the route validates, and quality stays
// within 10% of an un-faulted run.
#include "core/watchdog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/parallel_driver.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 10000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.9, .locality_scale = 30.0,
                            .seed = seed});
}

OwnedVertexRecord record_of(VertexId id) {
  OwnedVertexRecord record;
  record.id = id;
  record.out = {id + 1, id + 2};
  return record;
}

TEST(Watchdog, StalledPublishedRecordIsStolenAndRescued) {
  std::vector<VertexId> rescued;
  std::mutex rescued_mutex;
  std::atomic<bool> abort_called{false};
  PipelineWatchdog watchdog(
      1, {.timeout_seconds = 0.05},
      [&](unsigned worker, OwnedVertexRecord record) {
        std::lock_guard lock(rescued_mutex);
        EXPECT_EQ(worker, 0u);
        rescued.push_back(record.id);
      },
      [&] { abort_called = true; });
  watchdog.start();

  watchdog.publish(0, record_of(42));
  // Worker "wedges" here: never claims. The monitor must steal the record.
  EXPECT_TRUE(watchdog.wait_until_stolen(0, 5.0));
  EXPECT_FALSE(watchdog.claim(0));  // the worker lost the race
  watchdog.stop();

  EXPECT_EQ(rescued, (std::vector<VertexId>{42}));
  EXPECT_EQ(watchdog.rescued_records(), 1u);
  EXPECT_EQ(watchdog.stalled_workers(), 1u);
  // One stalled worker out of one published slot is not an all-wedged
  // pipeline: the published record was stealable.
  EXPECT_FALSE(abort_called.load());
  EXPECT_FALSE(watchdog.aborted());
}

TEST(Watchdog, PromptClaimAndCompleteAreNeverStolen) {
  std::atomic<std::uint64_t> rescues{0};
  PipelineWatchdog watchdog(
      2, {.timeout_seconds = 0.05},
      [&](unsigned, OwnedVertexRecord) { ++rescues; }, [] {});
  watchdog.start();
  for (int i = 0; i < 50; ++i) {
    const unsigned w = static_cast<unsigned>(i % 2);
    watchdog.publish(w, record_of(static_cast<VertexId>(i)));
    ASSERT_TRUE(watchdog.claim(w));
    watchdog.complete(w);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  watchdog.stop();
  EXPECT_EQ(rescues.load(), 0u);
  EXPECT_EQ(watchdog.rescued_records(), 0u);
  EXPECT_EQ(watchdog.stalled_workers(), 0u);
  EXPECT_FALSE(watchdog.aborted());
}

TEST(Watchdog, AllWorkersWedgedMidPlacementAborts) {
  std::atomic<bool> abort_called{false};
  PipelineWatchdog watchdog(
      2, {.timeout_seconds = 0.05}, [](unsigned, OwnedVertexRecord) {},
      [&] { abort_called = true; });
  watchdog.start();
  // Both workers claim (kProcessing — unstealable) and then stall.
  for (unsigned w = 0; w < 2; ++w) {
    watchdog.publish(w, record_of(w));
    ASSERT_TRUE(watchdog.claim(w));
  }
  EXPECT_TRUE(watchdog.wait_until_aborted(5.0));
  watchdog.stop();
  EXPECT_TRUE(abort_called.load());
  EXPECT_TRUE(watchdog.aborted());
  EXPECT_FALSE(watchdog.abort_reason().empty());
  EXPECT_EQ(watchdog.rescued_records(), 0u);  // kProcessing is never stolen
  EXPECT_EQ(watchdog.stalled_workers(), 2u);
}

TEST(Watchdog, HeartbeatKeepsProcessingWorkerAlive) {
  std::atomic<bool> abort_called{false};
  PipelineWatchdog watchdog(
      1, {.timeout_seconds = 0.08}, [](unsigned, OwnedVertexRecord) {},
      [&] { abort_called = true; });
  watchdog.start();
  watchdog.publish(0, record_of(1));
  ASSERT_TRUE(watchdog.claim(0));
  // A slow-but-alive placement: heartbeats inside the timeout window.
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    watchdog.heartbeat(0);
  }
  watchdog.complete(0);
  watchdog.stop();
  EXPECT_FALSE(abort_called.load());
  EXPECT_EQ(watchdog.stalled_workers(), 0u);
}

// ---------------------------------------------------------------------------
// Integration with run_parallel via the deterministic fault plan.

ParallelOptions watchdog_options(unsigned threads, double timeout = 0.15) {
  ParallelOptions options;
  options.num_threads = threads;
  options.watchdog_timeout_seconds = timeout;
  return options;
}

TEST(WatchdogIntegration, StuckWorkerIsRescuedAndRunCompletes) {
  const Graph g = crawl(10000, 21);
  const PartitionId k = 8;

  // Baseline quality without faults.
  InMemoryStream baseline_stream(g);
  const auto baseline =
      run_parallel(baseline_stream, {.num_partitions = k}, watchdog_options(4));
  const double baseline_ecr = evaluate_partition(g, baseline.route, k).ecr;

  // Worker 1 freezes between publish and claim on its 50th pop; the monitor
  // steals and places the record, the worker later resumes.
  ParallelOptions options = watchdog_options(4);
  options.faults.stuck.push_back(
      {.worker = 1, .at_pop = 50, .in_processing = false,
       .max_stall_seconds = 10.0});
  InMemoryStream stream(g);
  const auto result = run_parallel(stream, {.num_partitions = k}, options);

  EXPECT_FALSE(result.aborted);
  validate_route(result.route, k, g.num_vertices());
  EXPECT_GE(result.stalled_workers, 1u);
  EXPECT_GE(result.rescued_records, 1u);
  // Acceptance: quality within 10% of the un-faulted run.
  const double ecr = evaluate_partition(g, result.route, k).ecr;
  EXPECT_LE(ecr, baseline_ecr + 0.10);
  const auto metrics = evaluate_partition(g, result.route, k);
  EXPECT_LE(metrics.delta_v, 1.2);
}

TEST(WatchdogIntegration, SlowWorkerOnlyDelaysCompletion) {
  const Graph g = crawl(2000, 23);
  ParallelOptions options = watchdog_options(3, /*timeout=*/0.5);
  // 1ms per pop on worker 0: a straggler well inside the heartbeat window.
  options.faults.slow.push_back({.worker = 0, .delay_seconds = 0.001});
  InMemoryStream stream(g);
  const auto result = run_parallel(stream, {.num_partitions = 4}, options);
  EXPECT_FALSE(result.aborted);
  validate_route(result.route, 4, g.num_vertices());
  EXPECT_EQ(result.rescued_records, 0u);
}

TEST(WatchdogIntegration, FullyWedgedPipelineAbortsWithPartialRoute) {
  const Graph g = crawl(5000, 25);
  const PartitionId k = 4;
  ParallelOptions options = watchdog_options(1);
  // The only worker wedges INSIDE a placement: unstealable, so the monitor
  // must declare the pipeline dead instead of hanging.
  options.faults.stuck.push_back(
      {.worker = 0, .at_pop = 100, .in_processing = true,
       .max_stall_seconds = 30.0});
  InMemoryStream stream(g);
  try {
    run_parallel(stream, {.num_partitions = k}, options);
    FAIL() << "expected StreamAborted";
  } catch (const StreamAborted& e) {
    EXPECT_TRUE(e.result.aborted);
    EXPECT_FALSE(e.result.abort_reason.empty());
    EXPECT_GE(e.result.stalled_workers, 1u);
    // The partial route is valid: every assigned entry is in range, and at
    // least the pre-wedge prefix was placed.
    ASSERT_EQ(e.result.route.size(), g.num_vertices());
    VertexId assigned = 0;
    for (PartitionId p : e.result.route) {
      if (p == kUnassigned) continue;
      ASSERT_LT(p, k);
      ++assigned;
    }
    EXPECT_GE(assigned, 50u);
    EXPECT_LT(assigned, g.num_vertices());
  }
}

TEST(WatchdogIntegration, BallastPressureRunsToCompletion) {
  const Graph g = crawl(2000, 27);
  ParallelOptions options = watchdog_options(2);
  options.faults.ballast_bytes = 8u << 20;  // 8 MiB of touched heap ballast
  InMemoryStream stream(g);
  const auto result = run_parallel(stream, {.num_partitions = 4}, options);
  EXPECT_FALSE(result.aborted);
  validate_route(result.route, 4, g.num_vertices());
}

TEST(WatchdogIntegration, StuckWorkerWithoutWatchdogSelfReleases) {
  // Sanity for the fault plan itself: with no watchdog the stall simply
  // expires after max_stall_seconds and the run still completes.
  const Graph g = crawl(1000, 29);
  ParallelOptions options;
  options.num_threads = 2;
  options.faults.stuck.push_back(
      {.worker = 0, .at_pop = 10, .in_processing = false,
       .max_stall_seconds = 0.1});
  InMemoryStream stream(g);
  const auto result = run_parallel(stream, {.num_partitions = 4}, options);
  EXPECT_FALSE(result.aborted);
  validate_route(result.route, 4, g.num_vertices());
  EXPECT_EQ(result.rescued_records, 0u);
}

TEST(WatchdogIntegration, GovernorDegradesParallelPipeline) {
  const Graph g = crawl(20000, 31);
  const PartitionId k = 8;
  ParallelOptions options = watchdog_options(4);
  ResourceGovernor governor({.memory_budget_bytes = 1, .sample_interval = 256});
  options.governor = &governor;
  InMemoryStream stream(g);
  const auto result = run_parallel(stream, {.num_partitions = k}, options);
  EXPECT_FALSE(result.aborted);
  validate_route(result.route, k, g.num_vertices());
  ASSERT_GE(result.degradations.size(), 1u);
  // An impossible budget bottoms the ladder out in hash fallback; balance
  // still holds because hash votes flow through capacity weighting.
  EXPECT_EQ(result.degradations.back().stage, DegradationStage::kHashFallback);
  EXPECT_LE(evaluate_partition(g, result.route, k).delta_v, 1.2);
}

}  // namespace
}  // namespace spnl
