#include "graph/reorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace spnl {
namespace {

bool is_permutation_of_iota(const std::vector<VertexId>& p) {
  std::vector<VertexId> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (VertexId i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != i) return false;
  }
  return true;
}

TEST(Reorder, ApplyPermutationRelabelsEdges) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  const Graph g = builder.finish();
  // 0->2, 1->0, 2->1
  const Graph renamed = apply_permutation(g, {2, 0, 1});
  // old edge (0,1) becomes (2,0)
  ASSERT_EQ(renamed.out_degree(2), 1u);
  EXPECT_EQ(renamed.out_neighbors(2)[0], 0u);
  // old edge (1,2) becomes (0,1)
  ASSERT_EQ(renamed.out_degree(0), 1u);
  EXPECT_EQ(renamed.out_neighbors(0)[0], 1u);
}

TEST(Reorder, ApplyPermutationValidates) {
  const Graph g = generate_ring_lattice(4, 1);
  EXPECT_THROW(apply_permutation(g, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(apply_permutation(g, {0, 1, 2, 2}), std::invalid_argument);
  EXPECT_THROW(apply_permutation(g, {0, 1, 2, 9}), std::invalid_argument);
}

TEST(Reorder, PermutationPreservesStructure) {
  const Graph g = generate_webcrawl({.num_vertices = 1000, .avg_out_degree = 6.0, .seed = 8});
  const auto perm = random_order(g.num_vertices(), 42);
  const Graph shuffled = apply_permutation(g, perm);
  EXPECT_EQ(shuffled.num_edges(), g.num_edges());
  // degree multiset preserved
  std::vector<EdgeId> da, db;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    da.push_back(g.out_degree(v));
    db.push_back(shuffled.out_degree(v));
  }
  std::sort(da.begin(), da.end());
  std::sort(db.begin(), db.end());
  EXPECT_EQ(da, db);
}

TEST(Reorder, OrdersArePermutations) {
  const Graph g = generate_webcrawl({.num_vertices = 500, .avg_out_degree = 5.0, .seed = 1});
  EXPECT_TRUE(is_permutation_of_iota(bfs_order(g)));
  EXPECT_TRUE(is_permutation_of_iota(dfs_order(g)));
  EXPECT_TRUE(is_permutation_of_iota(random_order(500, 7)));
  EXPECT_TRUE(is_permutation_of_iota(degree_order(g)));
}

TEST(Reorder, BfsRootGetsIdZero) {
  const Graph g = generate_ring_lattice(10, 1);
  const auto order = bfs_order(g, 5);
  EXPECT_EQ(order[5], 0u);
}

TEST(Reorder, BfsCoversDisconnectedComponents) {
  GraphBuilder builder(6);
  builder.add_edge(0, 1);
  builder.add_edge(4, 5);
  const Graph g = builder.finish();
  EXPECT_TRUE(is_permutation_of_iota(bfs_order(g)));
}

TEST(Reorder, RandomRenumberDestroysLocality) {
  const Graph g = generate_webcrawl({.num_vertices = 20000, .avg_out_degree = 8.0,
                                     .locality = 0.95, .locality_scale = 40.0,
                                     .seed = 2});
  const auto before = locality_stats(g);
  const auto after = locality_stats(random_renumber(g, 3));
  EXPECT_LT(before.mean_normalized_gap, 0.1);
  EXPECT_GT(after.mean_normalized_gap, 0.2);  // random ~ 1/3
}

TEST(Reorder, BfsRenumberRestoresLocality) {
  const Graph g = generate_webcrawl({.num_vertices = 20000, .avg_out_degree = 8.0,
                                     .locality = 0.95, .locality_scale = 40.0,
                                     .seed = 2});
  const Graph shuffled = random_renumber(g, 3);
  const Graph restored = bfs_renumber(shuffled);
  // BFS levels are wide, so the recovered locality is real but far from the
  // generator's: require a clear improvement, not parity.
  EXPECT_LT(locality_stats(restored).mean_normalized_gap,
            locality_stats(shuffled).mean_normalized_gap * 0.75);
}

TEST(Reorder, DegreeOrderSortsDescending) {
  GraphBuilder builder(3);
  builder.add_edge(1, 0);
  builder.add_edge(1, 2);
  builder.add_edge(2, 0);
  const Graph g = builder.finish();  // degrees: 0, 2, 1
  const auto order = degree_order(g);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[0], 2u);
}

TEST(Reorder, EmptyGraph) {
  Graph g;
  EXPECT_TRUE(bfs_order(g).empty());
  EXPECT_TRUE(dfs_order(g).empty());
}

}  // namespace
}  // namespace spnl
