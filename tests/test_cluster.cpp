#include "cluster/simulator.hpp"

#include <gtest/gtest.h>

#include "engine/algorithms.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/range_partitioner.hpp"

namespace spnl {
namespace {

/// Hand-checkable scenario: 2 workers, one superstep, known traffic.
BspResult tiny_job(std::uint64_t local0, std::uint64_t cross01,
                   std::uint64_t cross10) {
  BspResult job;
  job.traffic.push_back({local0, cross01, cross10, 0});  // 2x2 row-major
  job.compute.push_back({local0 + cross01, cross10});
  return job;
}

TEST(Cluster, TimingMatchesHandComputation) {
  // Worker 0: 1000 local + 200 to worker 1; worker 1: 100 to worker 0.
  const BspResult job = tiny_job(1000, 200, 100);
  ClusterModel model;
  model.compute_rate = 1000.0;  // 1.2 s compute on worker 0
  model.bandwidth = 100.0;      // busiest link: 200 msgs -> 2 s
  model.barrier_latency = 0.5;
  const auto timeline = simulate_cluster(job, 2, model);
  ASSERT_EQ(timeline.supersteps.size(), 1u);
  EXPECT_DOUBLE_EQ(timeline.supersteps[0].compute_seconds, 1.2);
  EXPECT_DOUBLE_EQ(timeline.supersteps[0].network_seconds, 2.5);
  EXPECT_DOUBLE_EQ(timeline.total_seconds, 3.7);
}

TEST(Cluster, OverlapTakesMax) {
  const BspResult job = tiny_job(1000, 200, 100);
  ClusterModel model;
  model.compute_rate = 1000.0;
  model.bandwidth = 100.0;
  model.barrier_latency = 0.5;
  model.overlap = true;
  const auto timeline = simulate_cluster(job, 2, model);
  EXPECT_DOUBLE_EQ(timeline.total_seconds, 2.5);
}

TEST(Cluster, LocalMessagesCostNoNetwork) {
  const BspResult job = tiny_job(100000, 0, 0);
  ClusterModel model;
  model.barrier_latency = 0.0;
  const auto timeline = simulate_cluster(job, 2, model);
  EXPECT_DOUBLE_EQ(timeline.network_seconds, 0.0);
  EXPECT_GT(timeline.compute_seconds, 0.0);
}

TEST(Cluster, ValidatesInput) {
  BspResult job = tiny_job(1, 1, 1);
  EXPECT_THROW(simulate_cluster(job, 3), std::invalid_argument);  // k mismatch
  ClusterModel bad;
  bad.bandwidth = 0.0;
  EXPECT_THROW(simulate_cluster(job, 2, bad), std::invalid_argument);
  job.compute.clear();
  EXPECT_THROW(simulate_cluster(job, 2), std::invalid_argument);
}

TEST(Cluster, BetterPartitioningLowersSimulatedTime) {
  const Graph g = generate_webcrawl({.num_vertices = 20000, .avg_out_degree = 8.0,
                                     .locality = 0.95, .locality_scale = 25.0,
                                     .seed = 5});
  const PartitionConfig config{.num_partitions = 8};
  auto route_of = [&](StreamingPartitioner& p) {
    InMemoryStream stream(g);
    return run_streaming(stream, p).route;
  };
  HashPartitioner hash(g.num_vertices(), g.num_edges(), config);
  RangePartitioner range(g.num_vertices(), g.num_edges(), config);
  const auto hash_route = route_of(hash);
  const auto range_route = route_of(range);

  auto job_time = [&](const std::vector<PartitionId>& route) {
    // Run PageRank with traffic recording.
    const auto job = pagerank_with_traffic(g, route, 8, 5);
    return simulate_cluster(job, 8).total_seconds;
  };
  EXPECT_LT(job_time(range_route), job_time(hash_route));
}

TEST(Cluster, TrafficMatrixConsistentWithStats) {
  const Graph g = generate_webcrawl({.num_vertices = 5000, .avg_out_degree = 6.0,
                                     .seed = 7});
  const PartitionConfig config{.num_partitions = 4};
  RangePartitioner range(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  const auto route = run_streaming(stream, range).route;
  const auto job = pagerank_with_traffic(g, route, 4, 3);
  std::uint64_t local = 0, remote = 0;
  for (const auto& matrix : job.traffic) {
    for (PartitionId from = 0; from < 4; ++from) {
      for (PartitionId to = 0; to < 4; ++to) {
        const auto count = matrix[from * 4 + to];
        if (from == to) {
          local += count;
        } else {
          remote += count;
        }
      }
    }
  }
  EXPECT_EQ(local, job.stats.local_messages);
  EXPECT_EQ(remote, job.stats.remote_messages);
}

}  // namespace
}  // namespace spnl
