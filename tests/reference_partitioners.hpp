// Reference (pre-fusion) SPN/SPNL scoring oracles.
//
// These reproduce the original place() formulations verbatim: two passes over
// the out-list, per-id Γ increments, and the non-hoisted
// remaining_weight()/pick_best() capacity handling from GreedyStreamingBase.
// The fused kernel in core/score_kernel.hpp promises byte-identical routes to
// this formulation; test_scoring_kernel fuzzes that promise across estimators,
// slide modes and shard counts, and bench_microkernel measures the speedup
// against it. Kept under tests/ so the production sources carry exactly one
// scoring implementation.
#pragma once

#include <span>
#include <stdexcept>

#include "core/gamma_table.hpp"
#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "partition/partitioning.hpp"
#include "partition/range_partitioner.hpp"
#include "util/memory.hpp"

namespace spnl {

/// SPN exactly as first implemented: λ pass, Γ pass, weight loop, pick_best.
class ReferenceSpnPartitioner final : public GreedyStreamingBase {
 public:
  ReferenceSpnPartitioner(VertexId num_vertices, EdgeId num_edges,
                          const PartitionConfig& config, SpnOptions options = {})
      : GreedyStreamingBase(num_vertices, num_edges, config),
        options_(options),
        gamma_(num_vertices, config.num_partitions,
               options.num_shards == 0
                   ? GammaWindow::recommended_shards(num_vertices,
                                                     config.num_partitions)
                   : options.num_shards,
               options.slide) {
    if (options_.lambda < 0.0 || options_.lambda > 1.0) {
      throw std::invalid_argument("ReferenceSPN: lambda must be in [0,1]");
    }
  }

  PartitionId place(VertexId v, std::span<const VertexId> out) override {
    const PartitionId k = num_partitions();
    const double lambda = options_.lambda;

    gamma_.advance_to(v);

    scores_.assign(k, 0.0);
    for (VertexId u : out) {
      if (u < route_.size() && route_[u] != kUnassigned) {
        scores_[route_[u]] += lambda;
      }
    }

    if (options_.estimator == InNeighborEstimator::kSelf) {
      const auto row = gamma_.row(v);
      for (PartitionId i = 0; i < static_cast<PartitionId>(row.size()); ++i) {
        scores_[i] += (1.0 - lambda) * row[i];
      }
    } else {
      for (VertexId u : out) {
        const auto row = gamma_.row(u);
        for (PartitionId i = 0; i < static_cast<PartitionId>(row.size()); ++i) {
          scores_[i] += (1.0 - lambda) * row[i];
        }
      }
    }

    for (PartitionId i = 0; i < k; ++i) scores_[i] *= remaining_weight(i);
    const PartitionId pid = pick_best(scores_);
    commit(v, out, pid);

    for (VertexId u : out) gamma_.increment(pid, u);
    return pid;
  }

  std::string name() const override { return "ReferenceSPN"; }
  std::size_t memory_footprint_bytes() const override {
    return GreedyStreamingBase::memory_footprint_bytes() +
           gamma_.memory_footprint_bytes();
  }

 private:
  SpnOptions options_;
  GammaWindow gamma_;
};

/// SPNL exactly as first implemented (thread-local scratch replaced by plain
/// members; the arithmetic and its order are unchanged).
class ReferenceSpnlPartitioner final : public GreedyStreamingBase {
 public:
  ReferenceSpnlPartitioner(VertexId num_vertices, EdgeId num_edges,
                           const PartitionConfig& config, SpnlOptions options = {})
      : GreedyStreamingBase(num_vertices, num_edges, config),
        options_(options),
        gamma_(num_vertices, config.num_partitions,
               options.num_shards == 0
                   ? GammaWindow::recommended_shards(num_vertices,
                                                     config.num_partitions)
                   : options.num_shards,
               options.slide),
        logical_(num_vertices, config.num_partitions),
        logical_counts_(config.num_partitions, 0) {
    if (options_.lambda < 0.0 || options_.lambda > 1.0) {
      throw std::invalid_argument("ReferenceSPNL: lambda must be in [0,1]");
    }
    for (PartitionId i = 0; i < config.num_partitions; ++i) {
      logical_counts_[i] = logical_.range_size(i);
    }
  }

  double eta(PartitionId i) const {
    switch (options_.eta_policy) {
      case EtaPolicy::kPaper: {
        const double lt = logical_counts_[i];
        if (lt <= 0.0) return 0.0;
        const double e = (lt - static_cast<double>(vertex_count(i))) / lt;
        return e > 0.0 ? e : 0.0;
      }
      case EtaPolicy::kLinear:
        return num_vertices_ == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(placed_total_) / num_vertices_;
      case EtaPolicy::kConstant:
        return options_.eta0;
      case EtaPolicy::kZero:
        return 0.0;
    }
    return 0.0;
  }

  PartitionId place(VertexId v, std::span<const VertexId> out) override {
    const PartitionId k = num_partitions();
    const double lambda = options_.lambda;

    gamma_.advance_to(v);

    scores_.assign(k, 0.0);
    physical_.assign(k, 0.0);
    logical_hits_.assign(k, 0.0);
    for (VertexId u : out) {
      if (u >= route_.size()) continue;
      if (route_[u] != kUnassigned) {
        physical_[route_[u]] += 1.0;
      } else {
        logical_hits_[logical_.partition_of(u)] += 1.0;
      }
    }
    for (PartitionId i = 0; i < k; ++i) {
      const double e = eta(i);
      scores_[i] = lambda * ((1.0 - e) * physical_[i] + e * logical_hits_[i]);
    }

    if (options_.estimator == InNeighborEstimator::kSelf) {
      const auto row = gamma_.row(v);
      for (PartitionId i = 0; i < static_cast<PartitionId>(row.size()); ++i) {
        scores_[i] += (1.0 - lambda) * row[i];
      }
    } else {
      for (VertexId u : out) {
        const auto row = gamma_.row(u);
        for (PartitionId i = 0; i < static_cast<PartitionId>(row.size()); ++i) {
          scores_[i] += (1.0 - lambda) * row[i];
        }
      }
    }

    for (PartitionId i = 0; i < k; ++i) scores_[i] *= remaining_weight(i);
    const PartitionId pid = pick_best(scores_);
    commit(v, out, pid);

    const PartitionId lp = logical_.partition_of(v);
    if (logical_counts_[lp] > 0) --logical_counts_[lp];
    ++placed_total_;

    for (VertexId u : out) gamma_.increment(pid, u);
    return pid;
  }

  std::string name() const override { return "ReferenceSPNL"; }
  std::size_t memory_footprint_bytes() const override {
    return GreedyStreamingBase::memory_footprint_bytes() +
           gamma_.memory_footprint_bytes() + vector_bytes(logical_counts_) +
           2 * sizeof(VertexId) * num_partitions();
  }

 private:
  SpnlOptions options_;
  GammaWindow gamma_;
  RangeTable logical_;
  std::vector<VertexId> logical_counts_;
  VertexId placed_total_ = 0;
  std::vector<double> physical_, logical_hits_;
};

}  // namespace spnl
