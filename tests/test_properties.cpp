// Parameterized property suite: every streaming partitioner must uphold the
// core invariants on every graph family and every K.
//
//  P1 completeness: every vertex gets a partition id < K.
//  P2 balance: delta_v <= slack (+1 vertex of granularity).
//  P3 ECR in [0,1] and consistent with a brute-force recount.
//  P4 determinism: identical reruns produce identical route tables.
//  P5 partition loads tracked by the partitioner equal the evaluated ones.
#include <gtest/gtest.h>

#include <memory>

#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/fennel.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"
#include "partition/range_partitioner.hpp"
#include "partition/stanton_kliot.hpp"

namespace spnl {
namespace {

enum class Family { kWebCrawl, kRmat, kErdosRenyi, kRing, kGrid };

struct Case {
  const char* partitioner;
  Family family;
  PartitionId k;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const char* family = "";
  switch (info.param.family) {
    case Family::kWebCrawl: family = "web"; break;
    case Family::kRmat: family = "rmat"; break;
    case Family::kErdosRenyi: family = "er"; break;
    case Family::kRing: family = "ring"; break;
    case Family::kGrid: family = "grid"; break;
  }
  return std::string(info.param.partitioner) + "_" + family + "_K" +
         std::to_string(info.param.k);
}

Graph make_graph(Family family) {
  switch (family) {
    case Family::kWebCrawl:
      return generate_webcrawl({.num_vertices = 4000, .avg_out_degree = 7.0,
                                .locality = 0.85, .locality_scale = 25.0,
                                .seed = 21});
    case Family::kRmat:
      return generate_rmat({.scale = 12, .num_edges = 40000, .seed = 22});
    case Family::kErdosRenyi:
      return generate_erdos_renyi(4000, 30000, 23);
    case Family::kRing:
      return generate_ring_lattice(4000, 3);
    case Family::kGrid:
      return generate_grid(60, 60);
  }
  return Graph{};
}

std::unique_ptr<StreamingPartitioner> make_partitioner(
    const char* name, VertexId n, EdgeId m, const PartitionConfig& config) {
  const std::string id = name;
  if (id == "Hash") return std::make_unique<HashPartitioner>(n, m, config);
  if (id == "Range") return std::make_unique<RangePartitioner>(n, m, config);
  if (id == "LDG") return std::make_unique<LdgPartitioner>(n, m, config);
  if (id == "FENNEL") return std::make_unique<FennelPartitioner>(n, m, config);
  if (id == "SPN") return std::make_unique<SpnPartitioner>(n, m, config);
  if (id == "SPNL") return std::make_unique<SpnlPartitioner>(n, m, config);
  if (id == "SPNLwin") {
    return std::make_unique<SpnlPartitioner>(n, m, config,
                                             SpnlOptions{.num_shards = 16});
  }
  if (id == "SPNLcoarse") {
    return std::make_unique<SpnlPartitioner>(
        n, m, config,
        SpnlOptions{.num_shards = 16, .slide = SlideMode::kCoarse});
  }
  if (id == "Balanced") {
    return std::make_unique<SkPartitioner>(n, m, config, SkHeuristic::kBalanced);
  }
  if (id == "DG") {
    return std::make_unique<SkPartitioner>(n, m, config,
                                           SkHeuristic::kDeterministicGreedy);
  }
  if (id == "EDG") {
    return std::make_unique<SkPartitioner>(n, m, config,
                                           SkHeuristic::kExponentialGreedy);
  }
  ADD_FAILURE() << "unknown partitioner " << id;
  return nullptr;
}

class StreamingInvariants : public ::testing::TestWithParam<Case> {};

TEST_P(StreamingInvariants, HoldsOnAllFamiliesAndK) {
  const Case param = GetParam();
  const Graph graph = make_graph(param.family);
  const PartitionConfig config{.num_partitions = param.k};

  auto run_once = [&] {
    auto partitioner = make_partitioner(param.partitioner, graph.num_vertices(),
                                        graph.num_edges(), config);
    InMemoryStream stream(graph);
    return run_streaming(stream, *partitioner).route;
  };

  const auto route = run_once();

  // P1 completeness.
  ASSERT_EQ(route.size(), graph.num_vertices());
  EXPECT_TRUE(is_complete_assignment(route, param.k));

  const auto metrics = evaluate_partition(graph, route, param.k);

  // P2 balance (Range is exempt: it ignores runtime capacity by design, and
  // Hash is probabilistic — both still must stay within a loose factor).
  const std::string name = param.partitioner;
  if (name == "Balanced") {
    EXPECT_NEAR(metrics.delta_v, 1.0,
                static_cast<double>(param.k) / graph.num_vertices() + 1e-9);
  } else if (name != "Range" && name != "Hash") {
    const double granularity =
        static_cast<double>(param.k) / graph.num_vertices();
    EXPECT_LE(metrics.delta_v, config.slack + granularity + 1e-9)
        << summarize(metrics);
  } else {
    EXPECT_LE(metrics.delta_v, 2.0);
  }

  // P3 ECR bounds + brute-force recount.
  EXPECT_GE(metrics.ecr, 0.0);
  EXPECT_LE(metrics.ecr, 1.0);
  EdgeId cut = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId u : graph.out_neighbors(v)) {
      if (route[u] != route[v]) ++cut;
    }
  }
  EXPECT_EQ(cut, metrics.cut_edges);

  // P4 determinism.
  EXPECT_EQ(run_once(), route);

  // P5 load bookkeeping agrees with evaluation.
  auto partitioner = make_partitioner(param.partitioner, graph.num_vertices(),
                                      graph.num_edges(), config);
  InMemoryStream stream(graph);
  run_streaming(stream, *partitioner);
  if (auto* greedy = dynamic_cast<GreedyStreamingBase*>(partitioner.get())) {
    const auto again = evaluate_partition(graph, greedy->route(), param.k);
    for (PartitionId i = 0; i < param.k; ++i) {
      EXPECT_EQ(greedy->vertex_count(i), again.vertices_per_partition[i]);
      EXPECT_EQ(greedy->edge_count(i), again.edges_per_partition[i]);
    }
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const char* partitioner :
       {"Hash", "Range", "LDG", "FENNEL", "SPN", "SPNL", "SPNLwin",
        "SPNLcoarse", "Balanced", "DG", "EDG"}) {
    for (Family family : {Family::kWebCrawl, Family::kRmat, Family::kErdosRenyi,
                          Family::kRing, Family::kGrid}) {
      for (PartitionId k : {2u, 7u, 32u}) {
        cases.push_back({partitioner, family, k});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, StreamingInvariants,
                         ::testing::ValuesIn(all_cases()), case_name);

// Edge-balance variant of the invariant suite.
class EdgeBalanceInvariants : public ::testing::TestWithParam<Case> {};

TEST_P(EdgeBalanceInvariants, EdgeLoadsBounded) {
  const Case param = GetParam();
  const Graph graph = make_graph(param.family);
  const PartitionConfig config{.num_partitions = param.k,
                               .balance = BalanceMode::kEdge,
                               .slack = 1.2};
  auto partitioner = make_partitioner(param.partitioner, graph.num_vertices(),
                                      graph.num_edges(), config);
  InMemoryStream stream(graph);
  const auto route = run_streaming(stream, *partitioner).route;
  EXPECT_TRUE(is_complete_assignment(route, param.k));
  const auto metrics = evaluate_partition(graph, route, param.k);
  // One adjacency list may overflow the cap; bound by slack + max degree.
  const double overflow =
      static_cast<double>(graph.max_out_degree()) * param.k / graph.num_edges();
  EXPECT_LE(metrics.delta_e, config.slack + overflow + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    EdgeBalance, EdgeBalanceInvariants,
    ::testing::ValuesIn(std::vector<Case>{
        {"LDG", Family::kWebCrawl, 8},
        {"FENNEL", Family::kWebCrawl, 8},
        {"SPN", Family::kWebCrawl, 8},
        {"SPNL", Family::kWebCrawl, 8},
        {"SPNL", Family::kRmat, 16},
        {"SPN", Family::kRing, 4},
    }),
    case_name);

// Window sweep: quality must degrade gracefully, never corrupt invariants.
class WindowSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WindowSweep, SpnlValidAtEveryShardCount) {
  const std::uint32_t shards = GetParam();
  const Graph graph = make_graph(Family::kWebCrawl);
  const PartitionConfig config{.num_partitions = 8};
  SpnlPartitioner partitioner(graph.num_vertices(), graph.num_edges(), config,
                              SpnlOptions{.num_shards = shards});
  InMemoryStream stream(graph);
  const auto route = run_streaming(stream, partitioner).route;
  EXPECT_TRUE(is_complete_assignment(route, 8));
  EXPECT_LE(evaluate_partition(graph, route, 8).delta_v, config.slack + 0.01);
  // Memory must shrink monotonically in X.
  EXPECT_LE(partitioner.gamma().window_size(),
            (graph.num_vertices() + shards - 1) / shards);
}

INSTANTIATE_TEST_SUITE_P(Shards, WindowSweep,
                         ::testing::Values(1u, 2u, 8u, 64u, 512u, 4096u));

}  // namespace
}  // namespace spnl
