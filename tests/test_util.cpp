#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/bounded_queue.hpp"
#include "util/cli.hpp"
#include "util/memory.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

namespace spnl {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.millis(), 15.0);
  timer.restart();
  EXPECT_LT(timer.millis(), 15.0);
}

TEST(AccumTimer, AccumulatesAcrossIntervals) {
  AccumTimer timer;
  EXPECT_EQ(timer.seconds(), 0.0);
  timer.resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.pause();
  const double first = timer.seconds();
  EXPECT_GT(first, 0.0);
  timer.resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.pause();
  EXPECT_GT(timer.seconds(), first);
}

TEST(AccumTimer, DoubleResumePauseIsIdempotent) {
  AccumTimer timer;
  timer.resume();
  timer.resume();
  timer.pause();
  timer.pause();
  EXPECT_GE(timer.seconds(), 0.0);
}

TEST(Memory, RssReadable) {
  EXPECT_GT(current_rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);
}

TEST(Memory, FormatBytes) {
  EXPECT_EQ(format_bytes(500), "500B");
  EXPECT_EQ(format_bytes(1536), "1.50KB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.00MB");
}

TEST(Memory, VectorBytesTracksCapacity) {
  std::vector<int> v;
  v.reserve(100);
  EXPECT_EQ(vector_bytes(v), 100 * sizeof(int));
}

TEST(BoundedQueue, PushPopFifo) {
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
}

TEST(BoundedQueue, TryPopEmptyReturnsNullopt) {
  BoundedQueue<int> queue(4);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> queue(4);
  queue.push(7);
  queue.close();
  EXPECT_EQ(queue.pop(), 7);
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.push(9));
}

TEST(BoundedQueue, BlocksWhenFullUntilConsumed) {
  BoundedQueue<int> queue(1);
  queue.push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    queue.push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop(), 2);
}

TEST(BoundedQueue, PushForTimesOutWhenFullAndKeepsItem) {
  BoundedQueue<int> queue(1);
  queue.push(1);
  int item = 2;
  EXPECT_FALSE(queue.push_for(item, std::chrono::milliseconds(10)));
  EXPECT_EQ(item, 2);  // not consumed on timeout
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_TRUE(queue.push_for(item, std::chrono::milliseconds(10)));
  EXPECT_EQ(queue.pop(), 2);
}

TEST(BoundedQueue, TryPopForTimesOutOnEmpty) {
  BoundedQueue<int> queue(4);
  Timer timer;
  EXPECT_FALSE(queue.try_pop_for(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(timer.millis(), 15.0);
  queue.push(5);
  EXPECT_EQ(queue.try_pop_for(std::chrono::milliseconds(20)), 5);
}

TEST(BoundedQueue, StatsCountAcquisitionsAndHoldTime) {
  // With a QueueStats attached, every push/pop tallies one mutex
  // acquisition with its hold time; uncontended single-threaded use never
  // counts a contended acquire or wait time.
  BoundedQueue<int> queue(4);
  QueueStats stats;
  queue.set_stats(&stats);
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(stats.acquires.load(), 4u);
  EXPECT_EQ(stats.contended_acquires.load(), 0u);
  EXPECT_EQ(stats.lock_wait_nanos.load(), 0u);
  EXPECT_GT(stats.lock_hold_nanos.load(), 0u);

  PerfStats perf;
  stats.merge_into(perf);
  EXPECT_EQ(perf.count(PerfCounter::kQueueLockAcquires), 4u);
  EXPECT_EQ(perf.count(PerfCounter::kQueueLockContended), 0u);
  EXPECT_EQ(perf.calls(PerfStage::kQueueLockHold), 4u);
  EXPECT_EQ(perf.nanos(PerfStage::kQueueLockHold),
            stats.lock_hold_nanos.load());
}

TEST(BoundedQueue, StatsExcludeCondvarWaitFromHoldTime) {
  // A pop that blocks on the condvar releases the mutex while waiting; the
  // hold clock must pause across the wait or idle consumers would report
  // enormous bogus hold times.
  BoundedQueue<int> queue(1);
  QueueStats stats;
  queue.set_stats(&stats);
  std::thread consumer([&] { EXPECT_EQ(queue.pop(), 42); });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  queue.push(42);
  consumer.join();
  // The consumer idled ~60ms inside cv.wait but held the lock only briefly.
  EXPECT_LT(stats.lock_hold_nanos.load(), 30'000'000u);
}

TEST(BoundedQueue, StatsDetectContendedAcquire) {
  // Two threads churn push/pop on one mutex until a try_lock collision is
  // observed. Whether a collision happens on any given round is up to the
  // scheduler (a single-core box may serialize the threads perfectly), so
  // the round is retried with a generous cap and the test reports an honest
  // skip if the scheduler never produced overlap — the accounting invariants
  // (acquire totals, contended <= acquires) are asserted either way.
  for (int attempt = 0; attempt < 50; ++attempt) {
    BoundedQueue<int> queue(2);
    QueueStats stats;
    queue.set_stats(&stats);
    constexpr int kIters = 5000;
    std::thread spinner([&] {
      for (int i = 0; i < kIters; ++i) {
        queue.push(i);
        queue.pop();
      }
    });
    for (int i = 0; i < kIters; ++i) {
      queue.push(i);
      queue.pop();
    }
    spinner.join();
    ASSERT_EQ(stats.acquires.load(), 4u * kIters);
    ASSERT_LE(stats.contended_acquires.load(), stats.acquires.load());
    if (stats.contended_acquires.load() > 0) return;  // saw a collision
  }
  GTEST_SKIP() << "scheduler never overlapped the threads on this box";
}

TEST(BoundedQueue, AbortDiscardsItemsAndWakesEverybody) {
  BoundedQueue<int> queue(1);
  queue.push(1);  // full: blocked producers and a pending item
  std::atomic<bool> push_returned{false};
  std::atomic<bool> pop_returned{false};
  std::thread producer([&] {
    int item = 2;
    queue.push_for(item, std::chrono::seconds(30));
    push_returned = true;
  });
  std::thread consumer([&] {
    // Drain the one item so the queue is empty, then block.
    EXPECT_EQ(queue.pop(), 1);
    while (queue.pop().has_value()) {
    }
    pop_returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.abort();
  producer.join();
  consumer.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_TRUE(pop_returned.load());
  EXPECT_TRUE(queue.aborted());
  EXPECT_TRUE(queue.finished());
  // Post-abort: pushes fail, pops are empty, pending items were dropped.
  EXPECT_FALSE(queue.push(9));
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, AbortUnlikeCloseDropsUndelivered) {
  BoundedQueue<int> closed(4);
  closed.push(1);
  closed.close();
  EXPECT_FALSE(closed.finished());  // still an item to drain
  EXPECT_EQ(closed.pop(), 1);
  EXPECT_TRUE(closed.finished());

  BoundedQueue<int> aborted(4);
  aborted.push(1);
  aborted.abort();
  EXPECT_TRUE(aborted.finished());  // item dropped immediately
  EXPECT_FALSE(aborted.pop().has_value());
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  BoundedQueue<int> queue(16);
  constexpr int kPerProducer = 1000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.push(p * kPerProducer + i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        sum += *item;
        ++count;
      }
    });
  }
  for (auto& t : threads) t.join();
  queue.close();
  for (auto& t : consumers) t.join();
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long>(total) * (total - 1) / 2);
}

TEST(BoundedQueue, PushBatchPopBatchFifo) {
  BoundedQueue<int> queue(8);
  std::vector<int> batch{1, 2, 3, 4, 5};
  EXPECT_TRUE(queue.push_batch(batch));
  EXPECT_TRUE(batch.empty());  // consumed on success
  std::vector<int> out;
  EXPECT_EQ(queue.pop_batch(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.pop_batch(out, 10), 2u);  // partial take: only 2 remain
  EXPECT_EQ(out, (std::vector<int>{4, 5}));
}

TEST(BoundedQueue, PushBatchRejectsOversizedBatch) {
  BoundedQueue<int> queue(4);
  std::vector<int> batch{1, 2, 3, 4, 5};
  EXPECT_THROW(queue.push_batch(batch), std::length_error);
  EXPECT_EQ(batch.size(), 5u);  // intact after the throw
  EXPECT_THROW(queue.push_batch_for(batch, std::chrono::milliseconds(1)),
               std::length_error);
}

TEST(BoundedQueue, PushBatchForTimesOutAndKeepsBatch) {
  BoundedQueue<int> queue(4);
  std::vector<int> filler{1, 2, 3};
  ASSERT_TRUE(queue.push_batch(filler));
  std::vector<int> batch{4, 5};  // needs 2 free slots, only 1 available
  EXPECT_FALSE(queue.push_batch_for(batch, std::chrono::milliseconds(10)));
  EXPECT_EQ(batch, (std::vector<int>{4, 5}));  // intact on timeout
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_TRUE(queue.push_batch_for(batch, std::chrono::milliseconds(10)));
  EXPECT_TRUE(batch.empty());
}

TEST(BoundedQueue, PushBatchWaitsForWholeBatchRoom) {
  BoundedQueue<int> queue(4);
  std::vector<int> filler{1, 2, 3};
  ASSERT_TRUE(queue.push_batch(filler));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    std::vector<int> batch{4, 5, 6};
    queue.push_batch(batch);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // 1 free slot is not room for 3
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  producer.join();
  EXPECT_TRUE(pushed.load());
  std::vector<int> out;
  EXPECT_EQ(queue.pop_batch(out, 8), 4u);
  EXPECT_EQ(out, (std::vector<int>{3, 4, 5, 6}));
}

TEST(BoundedQueue, PopBatchDrainsPartialBatchAtClose) {
  BoundedQueue<int> queue(8);
  std::vector<int> batch{1, 2};
  ASSERT_TRUE(queue.push_batch(batch));
  queue.close();
  std::vector<int> out;
  EXPECT_EQ(queue.pop_batch(out, 64), 2u);  // partial batch flushed at EOS
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.pop_batch(out, 64), 0u);  // closed and drained
  EXPECT_TRUE(out.empty());
  std::vector<int> late{3};
  EXPECT_FALSE(queue.push_batch(late));
  EXPECT_EQ(late, (std::vector<int>{3}));  // intact after close
}

TEST(BoundedQueue, PopBatchReturnsZeroOnAbortAndDropsItems) {
  BoundedQueue<int> queue(8);
  std::vector<int> batch{1, 2, 3};
  ASSERT_TRUE(queue.push_batch(batch));
  std::atomic<std::size_t> got{999};
  std::thread consumer([&] {
    std::vector<int> out;
    // Drain, then block on the empty queue until abort wakes us.
    while (queue.pop_batch(out, 2) > 0) {
    }
    got = 0;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.abort();
  consumer.join();
  EXPECT_EQ(got.load(), 0u);
  std::vector<int> out;
  EXPECT_EQ(queue.pop_batch(out, 4), 0u);
}

// The contended stress test for the batched wakeup protocol: mixed
// single-item and batched producers against mixed consumers, with exact item
// accounting. A lost wakeup (the bug class the baton-passing protocol
// prevents) shows up as a hang; a double-delivery or drop breaks the sum.
TEST(BoundedQueue, BatchedContendedStressExactAccounting) {
  BoundedQueue<int> queue(32);
  constexpr int kPerProducer = 4000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Deterministic per-producer mix of batch sizes 1..13, including the
      // single-item push path so both protocols interleave.
      std::vector<int> batch;
      int next = p * kPerProducer;
      const int end = next + kPerProducer;
      while (next < end) {
        const int batch_size = 1 + (next * 7 + p) % 13;
        if (batch_size == 1) {
          ASSERT_TRUE(queue.push(next++));
          continue;
        }
        batch.clear();
        for (int i = 0; i < batch_size && next < end; ++i) batch.push_back(next++);
        // Exercise the timed path occasionally; retry until accepted.
        if (batch_size % 3 == 0) {
          while (!queue.push_batch_for(batch, std::chrono::milliseconds(5))) {
            ASSERT_FALSE(queue.closed());
          }
        } else {
          ASSERT_TRUE(queue.push_batch(batch));
        }
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      if (c % 2 == 0) {
        std::vector<int> out;
        while (queue.pop_batch(out, 1 + c * 5) > 0) {
          for (int item : out) sum += item;
          count += static_cast<int>(out.size());
        }
      } else {
        while (auto item = queue.pop()) {
          sum += *item;
          ++count;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();
  const long total = static_cast<long>(kProducers) * kPerProducer;
  EXPECT_EQ(count.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

TEST(BoundedQueue, AbortRacesInFlightPushBatch) {
  // abort() must wake a producer blocked mid-push_batch (queue full, batch
  // does not fit) and make it return false with the batch intact — the
  // watchdog teardown path when the producer is wedged on a full queue.
  BoundedQueue<int> queue(4);
  std::vector<int> fill = {1, 2, 3, 4};
  ASSERT_TRUE(queue.push_batch(fill));
  std::atomic<bool> returned{false};
  bool accepted = true;
  std::vector<int> batch = {5, 6, 7};
  std::thread producer([&] {
    accepted = queue.push_batch(batch);  // blocks: only 0 of 3 slots free
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  queue.abort();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(accepted);
  EXPECT_EQ(batch.size(), 3u);  // batch left intact for the caller to dispose
  EXPECT_EQ(queue.size(), 0u);  // pending items dropped
}

TEST(BoundedQueue, AbortRacesInFlightPopBatch) {
  // abort() must wake a consumer blocked in pop_batch on an empty queue and
  // make it return 0 (the "no item will ever arrive" signal).
  BoundedQueue<int> queue(4);
  std::atomic<bool> returned{false};
  std::size_t taken = 99;
  std::thread consumer([&] {
    std::vector<int> out;
    taken = queue.pop_batch(out, 8);
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  queue.abort();
  consumer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_EQ(taken, 0u);
  EXPECT_TRUE(queue.finished());
}

TEST(BoundedQueue, AbortStormDuringBatchedTraffic) {
  // Concurrent producers + consumers with an abort landing mid-traffic:
  // nothing deadlocks, every thread returns promptly, and post-abort the
  // queue is terminally dead. Items may be lost (abort drops them) — the
  // assertion is liveness + terminal state, not accounting.
  BoundedQueue<int> queue(8);
  std::vector<std::thread> threads;
  std::atomic<int> running{0};
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&, p] {
      ++running;
      std::vector<int> batch;
      int next = p * 100000;
      for (;;) {
        batch.clear();
        for (int i = 0; i < 5; ++i) batch.push_back(next++);
        if (!queue.push_batch(batch)) return;  // closed or aborted
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      ++running;
      std::vector<int> out;
      while (queue.pop_batch(out, 3) > 0) {
      }
    });
  }
  while (running.load() < 4) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.abort();
  for (auto& t : threads) t.join();  // liveness: every waiter woke up
  EXPECT_TRUE(queue.aborted());
  EXPECT_TRUE(queue.finished());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.push(1));
}

TEST(BoundedQueue, DoubleCloseIsSafeNoOp) {
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.close();
  queue.close();  // second close must not wedge, throw, or drop the item
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, AbortAfterCloseAndCloseAfterAbortAreSafe) {
  // close() promises a drain; a later abort() revokes it (pipeline died
  // while draining). The reverse order must also hold terminally.
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.close();
  queue.abort();  // abort-after-close: undelivered item is now dropped
  EXPECT_TRUE(queue.closed());
  EXPECT_TRUE(queue.aborted());
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_EQ(queue.size(), 0u);

  BoundedQueue<int> other(4);
  other.abort();
  other.close();  // close-after-abort: stays dead, no revival
  other.abort();  // and double-abort is a no-op too
  EXPECT_TRUE(other.aborted());
  EXPECT_TRUE(other.finished());
  EXPECT_FALSE(other.push(2));
  EXPECT_FALSE(other.pop().has_value());
}

TEST(TablePrinter, FormatsAlignedTable) {
  TablePrinter table({"a", "bb"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4  |"), std::string::npos);
}

TEST(TablePrinter, RejectsWrongArity) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, NumericFormatters) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt(std::size_t{42}), "42");
  EXPECT_EQ(TablePrinter::fmt(-3), "-3");
}

TEST(Cli, ParsesKeyValueForms) {
  // Note: a bare flag followed by a non-flag token ("--flag pos") reads the
  // token as the flag's value by design, so positionals come first.
  const char* argv[] = {"prog", "pos", "--k=8", "--name", "foo", "--flag"};
  CliArgs args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("k", 0), 8);
  EXPECT_EQ(args.get("name", ""), "foo");
  EXPECT_TRUE(args.get_bool("flag", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(Cli, FallbacksApply) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_EQ(args.get_double("missing", 0.5), 0.5);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, MalformedNumericsThrowTypedError) {
  // Regression: get_int/get_double used strtol/strtod with a null endptr, so
  // "--batch-size=abc" silently parsed as 0 and "--k=4x" as 4. Malformed
  // values must now fail fast with CliError naming the flag.
  const char* argv[] = {"prog", "--batch-size=abc", "--k=4x", "--lambda=",
                        "--slack=0.5oops", "--shards=0x10"};
  CliArgs args(6, const_cast<char**>(argv));
  EXPECT_THROW(args.get_int("batch-size", 0), CliError);
  EXPECT_THROW(args.get_int("k", 0), CliError);
  EXPECT_THROW(args.get_double("lambda", 0.5), CliError);
  EXPECT_THROW(args.get_double("slack", 1.1), CliError);
  EXPECT_THROW(args.get_int("shards", 0), CliError);
  try {
    args.get_int("batch-size", 0);
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    EXPECT_NE(std::string(e.what()).find("batch-size"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
  }
}

TEST(Cli, WellFormedNumericsStillParse) {
  const char* argv[] = {"prog", "--k=12", "--lambda=0.75", "--neg=-3"};
  CliArgs args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("k", 0), 12);
  EXPECT_DOUBLE_EQ(args.get_double("lambda", 0.0), 0.75);
  EXPECT_EQ(args.get_int("neg", 0), -3);
}

}  // namespace
}  // namespace spnl
