// Seed-determinism goldens for every generator and stream-reorder mode:
//  * same seed -> byte-identical output (checked structurally via a 64-bit
//    FNV-1a digest over the CSR arrays / permutation),
//  * different seed -> different output for every seeded model,
//  * pinned digests for fixed seeds, snapshotted from a known-good build —
//    any change to a generator's draw sequence or a reorder's tie-breaking
//    shows up here immediately. Re-snapshot deliberately, never loosen.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/reorder.hpp"

namespace spnl {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t mix(std::uint64_t h, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    h = (h ^ ((word >> (8 * byte)) & 0xff)) * kFnvPrime;
  }
  return h;
}

std::uint64_t digest_graph(const Graph& g) {
  std::uint64_t h = mix(mix(kFnvOffset, g.num_vertices()), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    h = mix(h, g.out_degree(v));
    for (const VertexId u : g.out_neighbors(v)) h = mix(h, u);
  }
  return h;
}

template <typename T>
std::uint64_t digest_vector(const std::vector<T>& values) {
  std::uint64_t h = mix(kFnvOffset, values.size());
  for (const T value : values) h = mix(h, static_cast<std::uint64_t>(value));
  return h;
}

Graph small_webcrawl(std::uint64_t seed) {
  WebCrawlParams params;
  params.num_vertices = 2'000;
  params.avg_out_degree = 6.0;
  params.seed = seed;
  return generate_webcrawl(params);
}

Graph small_hostgraph(std::uint64_t seed) {
  HostGraphParams params;
  params.num_vertices = 2'000;
  params.seed = seed;
  return generate_hostgraph(params);
}

PlantedGraph small_planted(std::uint64_t seed) {
  PlantedPartitionParams params;
  params.num_vertices = 2'000;
  params.num_communities = 8;
  params.mixing = 0.3;
  params.seed = seed;
  return generate_planted_partition(params);
}

Graph small_rmat(std::uint64_t seed) {
  RmatParams params;
  params.scale = 11;
  params.num_edges = 1 << 14;
  params.seed = seed;
  return generate_rmat(params);
}

TEST(ScenarioGolden, GeneratorsDeterministicPerSeed) {
  EXPECT_EQ(digest_graph(small_webcrawl(1)), digest_graph(small_webcrawl(1)));
  EXPECT_EQ(digest_graph(small_hostgraph(1)), digest_graph(small_hostgraph(1)));
  EXPECT_EQ(digest_graph(small_rmat(1)), digest_graph(small_rmat(1)));
  const PlantedGraph a = small_planted(1);
  const PlantedGraph b = small_planted(1);
  EXPECT_EQ(digest_graph(a.graph), digest_graph(b.graph));
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(digest_graph(generate_erdos_renyi(2'000, 8'000, 1)),
            digest_graph(generate_erdos_renyi(2'000, 8'000, 1)));
}

TEST(ScenarioGolden, GeneratorsVaryAcrossSeeds) {
  EXPECT_NE(digest_graph(small_webcrawl(1)), digest_graph(small_webcrawl(2)));
  EXPECT_NE(digest_graph(small_hostgraph(1)), digest_graph(small_hostgraph(2)));
  EXPECT_NE(digest_graph(small_rmat(1)), digest_graph(small_rmat(2)));
  EXPECT_NE(digest_graph(small_planted(1).graph),
            digest_graph(small_planted(2).graph));
  EXPECT_NE(digest_graph(generate_erdos_renyi(2'000, 8'000, 1)),
            digest_graph(generate_erdos_renyi(2'000, 8'000, 2)));
}

TEST(ScenarioGolden, PinnedGeneratorDigests) {
  EXPECT_EQ(digest_graph(small_webcrawl(1)), 9930915293332024375ull);
  EXPECT_EQ(digest_graph(small_hostgraph(1)), 9541351001865483596ull);
  EXPECT_EQ(digest_graph(small_rmat(1)), 17149640425590869417ull);
  EXPECT_EQ(digest_graph(generate_erdos_renyi(2'000, 8'000, 1)),
            14253902972038839274ull);
  EXPECT_EQ(digest_graph(generate_ring_lattice(100, 3)),
            14364960841846734866ull);
  EXPECT_EQ(digest_graph(generate_grid(10, 12)), 11140272906695448158ull);
  const PlantedGraph planted = small_planted(1);
  EXPECT_EQ(digest_graph(planted.graph), 10735278665924693522ull);
  EXPECT_EQ(digest_vector(planted.labels), 1640253142316826136ull);
}

TEST(ScenarioGolden, ReorderModesDeterministicPerSeed) {
  const PlantedGraph planted = small_planted(1);
  for (const StreamOrder order :
       {StreamOrder::kId, StreamOrder::kRandom, StreamOrder::kDegree,
        StreamOrder::kDegreeAsc, StreamOrder::kTemporal,
        StreamOrder::kAdversarial}) {
    const auto a = make_stream_order(planted.graph, order, &planted.labels,
                                     planted.num_communities, 42);
    const auto b = make_stream_order(planted.graph, order, &planted.labels,
                                     planted.num_communities, 42);
    EXPECT_EQ(a, b) << stream_order_name(order);
  }
  // The seeded modes must actually respond to the seed.
  for (const StreamOrder order : {StreamOrder::kRandom, StreamOrder::kTemporal}) {
    EXPECT_NE(digest_vector(make_stream_order(planted.graph, order, nullptr, 0,
                                              42)),
              digest_vector(make_stream_order(planted.graph, order, nullptr, 0,
                                              43)))
        << stream_order_name(order);
  }
}

TEST(ScenarioGolden, PinnedReorderDigests) {
  const PlantedGraph planted = small_planted(1);
  const auto digest_of = [&](StreamOrder order) {
    return digest_vector(make_stream_order(
        planted.graph, order, &planted.labels, planted.num_communities, 42));
  };
  EXPECT_EQ(digest_of(StreamOrder::kId), 2506521288887829720ull);
  EXPECT_EQ(digest_of(StreamOrder::kRandom), 6299030529805478988ull);
  EXPECT_EQ(digest_of(StreamOrder::kDegree), 6242840175029298372ull);
  EXPECT_EQ(digest_of(StreamOrder::kDegreeAsc), 2909987752306560860ull);
  EXPECT_EQ(digest_of(StreamOrder::kTemporal), 9406316596579017432ull);
  EXPECT_EQ(digest_of(StreamOrder::kAdversarial), 15622068164204735624ull);
  // Unlabeled adversarial: contiguous-block pseudo-communities. The planted
  // labels ARE equal contiguous blocks (n divisible by C here), so this
  // matches the labeled digest by construction — pinned to lock that in.
  EXPECT_EQ(digest_vector(make_stream_order(planted.graph,
                                            StreamOrder::kAdversarial, nullptr,
                                            8, 42)),
            15622068164204735624ull);
}

TEST(ScenarioGolden, StreamOrderNamesRoundTrip) {
  for (const StreamOrder order :
       {StreamOrder::kId, StreamOrder::kRandom, StreamOrder::kDegree,
        StreamOrder::kDegreeAsc, StreamOrder::kTemporal,
        StreamOrder::kAdversarial}) {
    EXPECT_EQ(stream_order_by_name(stream_order_name(order)), order);
  }
  EXPECT_THROW(stream_order_by_name("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace spnl
