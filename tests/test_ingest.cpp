// Zero-copy ingestion tests: the sadj binary format (varint codecs, writer,
// mmap reader, corruption handling) and the mmap text readers' equivalence
// with the buffered readers — including the contract the whole PR rides on:
// every reader of the same graph produces a byte-identical route.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/mmap_stream.hpp"
#include "graph/stream_binary.hpp"
#include "partition/driver.hpp"

namespace spnl {
namespace {

// Hand-rollable stream over explicit records: full control over multigraph
// duplicates, self-loops, record count < V, and deliberately lying metadata.
class VecStream final : public AdjacencyStream {
 public:
  VecStream(std::vector<OwnedVertexRecord> records, VertexId v, EdgeId e)
      : records_(std::move(records)), num_vertices_(v), num_edges_(e) {}

  std::optional<VertexRecord> next() override {
    if (cursor_ >= records_.size()) return std::nullopt;
    const OwnedVertexRecord& r = records_[cursor_++];
    return VertexRecord{r.id, r.out};
  }
  void reset() override { cursor_ = 0; }
  VertexId num_vertices() const override { return num_vertices_; }
  EdgeId num_edges() const override { return num_edges_; }

 private:
  std::vector<OwnedVertexRecord> records_;
  std::size_t cursor_ = 0;
  VertexId num_vertices_;
  EdgeId num_edges_;
};

std::vector<OwnedVertexRecord> drain(AdjacencyStream& stream) {
  std::vector<OwnedVertexRecord> out;
  while (auto r = stream.next()) out.push_back(OwnedVertexRecord::from(*r));
  return out;
}

void expect_same_records(const std::vector<OwnedVertexRecord>& a,
                         const std::vector<OwnedVertexRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "record " << i;
    ASSERT_EQ(a[i].out.size(), b[i].out.size()) << "record " << i;
    for (std::size_t j = 0; j < a[i].out.size(); ++j) {
      EXPECT_EQ(a[i].out[j], b[i].out[j]) << "record " << i << " nbr " << j;
    }
  }
}

class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("spnl_ingest_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

// ---------------------------------------------------------------- varints --

TEST(SadjVarint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  ~0ull};
  for (std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    sadj::put_varint(buf, v);
    const std::uint8_t* p = buf.data();
    std::uint64_t decoded = 0;
    ASSERT_TRUE(sadj::get_varint(p, buf.data() + buf.size(), decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(p, buf.data() + buf.size());
  }
}

TEST(SadjVarint, RejectsTruncation) {
  std::vector<std::uint8_t> buf;
  sadj::put_varint(buf, 1ull << 40);
  ASSERT_GT(buf.size(), 1u);
  const std::uint8_t* p = buf.data();
  std::uint64_t decoded = 0;
  EXPECT_FALSE(sadj::get_varint(p, buf.data() + buf.size() - 1, decoded));
}

TEST(SadjVarint, RejectsOverlongTenthByte) {
  // Ten continuation-heavy bytes whose tenth carries bits that overflow 64:
  // a valid encoder never emits this, the decoder must not wrap silently.
  std::vector<std::uint8_t> buf(9, 0xFF);
  buf.push_back(0x7F);
  const std::uint8_t* p = buf.data();
  std::uint64_t decoded = 0;
  EXPECT_FALSE(sadj::get_varint(p, buf.data() + buf.size(), decoded));
}

TEST(SadjVarint, SignedZigzagRoundTrips) {
  const std::int64_t values[] = {0, 1, -1, 2, -2, 1000, -1000,
                                 INT64_MAX, INT64_MIN};
  for (std::int64_t v : values) {
    std::vector<std::uint8_t> buf;
    sadj::put_signed(buf, v);
    const std::uint8_t* p = buf.data();
    std::int64_t decoded = 0;
    ASSERT_TRUE(sadj::get_signed(p, buf.data() + buf.size(), decoded));
    EXPECT_EQ(decoded, v);
  }
}

// ------------------------------------------------------------ round trips --

class SadjRoundTrip : public TempDirTest {};

TEST_F(SadjRoundTrip, EmptyGraph) {
  VecStream src({}, 0, 0);
  EXPECT_EQ(write_sadj(src, path("empty.sadj")), 0u);
  BinaryAdjacencyStream bin(path("empty.sadj"));
  EXPECT_EQ(bin.num_vertices(), 0u);
  EXPECT_EQ(bin.num_edges(), 0u);
  EXPECT_EQ(bin.num_records(), 0u);
  EXPECT_FALSE(bin.next().has_value());
}

TEST_F(SadjRoundTrip, SingleVertexNoEdges) {
  VecStream src({{0, {}}}, 1, 0);
  EXPECT_EQ(write_sadj(src, path("one.sadj")), 1u);
  BinaryAdjacencyStream bin(path("one.sadj"));
  auto r = bin.next();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->id, 0u);
  EXPECT_TRUE(r->out.empty());
  EXPECT_FALSE(bin.next().has_value());
}

TEST_F(SadjRoundTrip, SelfLoopSurvives) {
  VecStream src({{0, {0, 1}}, {1, {1}}}, 2, 3);
  write_sadj(src, path("loop.sadj"));
  BinaryAdjacencyStream bin(path("loop.sadj"));
  src.reset();
  expect_same_records(drain(src), drain(bin));
}

TEST_F(SadjRoundTrip, MultigraphDuplicatesAndOrderSurvive) {
  // Duplicate edges and deliberately non-sorted neighbor order: both must
  // survive bit-exactly, because scoring accumulates floats in stream order.
  VecStream src({{0, {2, 2, 1, 2}}, {1, {0, 0}}, {2, {}}}, 3, 6);
  write_sadj(src, path("multi.sadj"));
  BinaryAdjacencyStream bin(path("multi.sadj"));
  src.reset();
  expect_same_records(drain(src), drain(bin));
  EXPECT_EQ(bin.num_records(), 3u);
}

TEST_F(SadjRoundTrip, FewerRecordsThanVertices) {
  // Text streams with quarantined lines legitimately emit fewer records
  // than V; the R header field carries that through.
  VecStream src({{0, {1}}, {4, {0}}}, 5, 2);
  EXPECT_EQ(write_sadj(src, path("holes.sadj")), 2u);
  BinaryAdjacencyStream bin(path("holes.sadj"));
  EXPECT_EQ(bin.num_vertices(), 5u);
  EXPECT_EQ(bin.num_records(), 2u);
  src.reset();
  expect_same_records(drain(src), drain(bin));
}

TEST_F(SadjRoundTrip, ResetReplaysIdentically) {
  const Graph g = generate_webcrawl(
      {.num_vertices = 200, .avg_out_degree = 4.0, .seed = 7});
  InMemoryStream src(g);
  write_sadj(src, path("reset.sadj"));
  BinaryAdjacencyStream bin(path("reset.sadj"));
  const auto first = drain(bin);
  bin.reset();
  expect_same_records(first, drain(bin));
}

TEST_F(SadjRoundTrip, WriterCrossChecksEdgeMetadata) {
  // A source stream lying about E must not bake a bad header silently.
  VecStream liar({{0, {1}}, {1, {0}}}, 2, 99);
  EXPECT_THROW(write_sadj(liar, path("liar.sadj")), IoError);
}

// -------------------------------------------------------------- corruption --

class SadjCorruption : public TempDirTest {
 protected:
  // A valid little file to mutate.
  std::vector<char> valid_bytes() {
    VecStream src({{0, {1, 2}}, {1, {0}}, {2, {}}}, 3, 3);
    write_sadj(src, path("valid.sadj"));
    std::ifstream in(path("valid.sadj"), std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in), {});
  }
  void write_bytes(const std::string& p, const std::vector<char>& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
};

TEST_F(SadjCorruption, TruncatedHeaderThrows) {
  auto bytes = valid_bytes();
  bytes.resize(sadj::kHeaderBytes - 1);
  write_bytes(path("trunc.sadj"), bytes);
  EXPECT_THROW(BinaryAdjacencyStream(path("trunc.sadj")), IoError);
}

TEST_F(SadjCorruption, TruncatedBodyThrows) {
  auto bytes = valid_bytes();
  bytes.pop_back();
  write_bytes(path("truncbody.sadj"), bytes);
  // The eager body-smaller-than-counts check catches this at construction;
  // either way the truncation must be a typed IoError, never a short read.
  EXPECT_THROW(
      {
        BinaryAdjacencyStream bin(path("truncbody.sadj"));
        drain(bin);
      },
      IoError);
}

TEST_F(SadjCorruption, TruncatedMidVarintThrowsAtDecode) {
  // A wide neighbor delta encodes to a multi-byte varint, so dropping one
  // byte leaves the body above the eager minimum-size bound — only the
  // decoder itself can notice the varint running off the end.
  VecStream src({{0, {1000000}}}, 1000001, 1);
  write_sadj(src, path("wide.sadj"));
  std::ifstream in(path("wide.sadj"), std::ios::binary);
  std::vector<char> bytes(std::istreambuf_iterator<char>(in), {});
  in.close();
  bytes.pop_back();
  write_bytes(path("widetrunc.sadj"), bytes);
  BinaryAdjacencyStream bin(path("widetrunc.sadj"));
  EXPECT_THROW(drain(bin), IoError);
}

TEST_F(SadjCorruption, BadMagicThrows) {
  auto bytes = valid_bytes();
  bytes[0] = 'X';
  write_bytes(path("magic.sadj"), bytes);
  EXPECT_THROW(BinaryAdjacencyStream(path("magic.sadj")), IoError);
}

TEST_F(SadjCorruption, VersionMismatchThrows) {
  auto bytes = valid_bytes();
  bytes[8] = static_cast<char>(sadj::kVersion + 1);
  write_bytes(path("version.sadj"), bytes);
  EXPECT_THROW(BinaryAdjacencyStream(path("version.sadj")), IoError);
}

TEST_F(SadjCorruption, NonZeroFlagsThrow) {
  auto bytes = valid_bytes();
  bytes[12] = 1;
  write_bytes(path("flags.sadj"), bytes);
  EXPECT_THROW(BinaryAdjacencyStream(path("flags.sadj")), IoError);
}

TEST_F(SadjCorruption, TrailingBytesThrow) {
  auto bytes = valid_bytes();
  bytes.push_back(0);
  write_bytes(path("trailing.sadj"), bytes);
  BinaryAdjacencyStream bin(path("trailing.sadj"));
  EXPECT_THROW(drain(bin), IoError);
}

TEST_F(SadjCorruption, TextFileRejectedAtConstruction) {
  std::ofstream out(path("text.sadj"));
  out << "# V 3 E 3\n0 1 2\n1 2\n2\n";
  out.close();
  EXPECT_THROW(BinaryAdjacencyStream(path("text.sadj")), IoError);
}

// ------------------------------------------------ mmap text reader parity --

class MmapParity : public TempDirTest {};

TEST_F(MmapParity, AdjacencyMatchesBufferedReader) {
  std::ofstream out(path("g.adj"));
  out << "# a comment\n# V 4 E 5\n0 1 2\n\n1 3\n# mid comment\n2 3 0\n3\n";
  out.close();
  FileAdjacencyStream buffered(path("g.adj"));
  MmapAdjacencyStream mapped(path("g.adj"));
  EXPECT_EQ(mapped.num_vertices(), buffered.num_vertices());
  EXPECT_EQ(mapped.num_edges(), buffered.num_edges());
  expect_same_records(drain(buffered), drain(mapped));
}

TEST_F(MmapParity, AdjacencyInfersCountsWithoutHeader) {
  std::ofstream out(path("nh.adj"));
  out << "0 1\n1 0 2\n2\n";
  out.close();
  MmapAdjacencyStream stream(path("nh.adj"));
  EXPECT_EQ(stream.num_vertices(), 3u);
  EXPECT_EQ(stream.num_edges(), 3u);
}

TEST_F(MmapParity, AdjacencyNoTrailingNewline) {
  std::ofstream out(path("nt.adj"));
  out << "0 1\n1 0";  // final line unterminated
  out.close();
  MmapAdjacencyStream mapped(path("nt.adj"));
  FileAdjacencyStream buffered(path("nt.adj"));
  expect_same_records(drain(buffered), drain(mapped));
}

TEST_F(MmapParity, AdjacencyCarriageReturnsTolerated) {
  std::ofstream out(path("crlf.adj"));
  out << "0 1\r\n1 0\r\n";
  out.close();
  MmapAdjacencyStream mapped(path("crlf.adj"));
  FileAdjacencyStream buffered(path("crlf.adj"));
  expect_same_records(drain(buffered), drain(mapped));
}

TEST_F(MmapParity, AdjacencyMalformedLineThrows) {
  std::ofstream out(path("bad.adj"));
  out << "# V 2 E 1\n0 xyz\n";
  out.close();
  MmapAdjacencyStream stream(path("bad.adj"));
  EXPECT_THROW(stream.next(), std::runtime_error);
}

TEST_F(MmapParity, AdjacencyQuarantineMatchesBuffered) {
  std::ofstream out(path("q.adj"));
  out << "0 1\nnot a line at all x\n1 0\n2 bogus!\n";
  out.close();
  StreamHardeningOptions hardening;
  hardening.max_bad_records = 4;
  FileAdjacencyStream buffered(path("q.adj"), hardening);
  MmapAdjacencyStream mapped(path("q.adj"), hardening);
  expect_same_records(drain(buffered), drain(mapped));
  EXPECT_EQ(mapped.bad_records(), buffered.bad_records());
  EXPECT_EQ(mapped.bad_records(), 2u);
}

TEST_F(MmapParity, AdjacencyQuarantineBoundEnforced) {
  std::ofstream out(path("qb.adj"));
  out << "0 1\nbad one x\nbad two y\n1 0\n";
  out.close();
  StreamHardeningOptions hardening;
  hardening.max_bad_records = 1;
  MmapAdjacencyStream stream(path("qb.adj"), hardening);
  EXPECT_THROW(drain(stream), std::runtime_error);
}

TEST_F(MmapParity, EdgeListMatchesBufferedReader) {
  std::ofstream out(path("g.el"));
  out << "# comment\n0 1\n0 2\n2 0\n2 3\n";
  out.close();
  EdgeListAdjacencyStream buffered(path("g.el"));
  MmapEdgeListStream mapped(path("g.el"));
  EXPECT_EQ(mapped.num_vertices(), buffered.num_vertices());
  EXPECT_EQ(mapped.num_edges(), buffered.num_edges());
  expect_same_records(drain(buffered), drain(mapped));
}

TEST_F(MmapParity, EdgeListRejectsUnsortedSources) {
  std::ofstream out(path("us.el"));
  out << "1 0\n0 1\n";
  out.close();
  EXPECT_THROW(MmapEdgeListStream(path("us.el")), std::runtime_error);
}

TEST_F(MmapParity, EdgeListRejectsMalformedLines) {
  std::ofstream out(path("ml.el"));
  out << "0 1 2\n";
  out.close();
  EXPECT_THROW(MmapEdgeListStream(path("ml.el")), std::runtime_error);
}

TEST_F(MmapParity, EmptyFileYieldsEmptyStream) {
  std::ofstream(path("empty.adj")).close();
  MmapAdjacencyStream stream(path("empty.adj"));
  EXPECT_EQ(stream.num_vertices(), 0u);
  EXPECT_FALSE(stream.next().has_value());
}

TEST_F(MmapParity, MissingFileThrows) {
  EXPECT_THROW(MmapAdjacencyStream(path("nope.adj")), std::runtime_error);
}

TEST_F(MmapParity, ResetReplaysAndRecounts) {
  std::ofstream out(path("r.adj"));
  out << "0 1\n1 0\n";
  out.close();
  MmapAdjacencyStream stream(path("r.adj"));
  const auto first = drain(stream);
  stream.reset();
  expect_same_records(first, drain(stream));
}

// ------------------------------------------------- route identity (fuzz) --

class RouteIdentity : public TempDirTest {
 protected:
  static std::vector<PartitionId> route_of(AdjacencyStream& stream,
                                           PartitionId k) {
    PartitionConfig config;
    config.num_partitions = k;
    SpnlPartitioner partitioner(stream.num_vertices(), stream.num_edges(),
                                config);
    return run_streaming(stream, partitioner).route;
  }
};

TEST_F(RouteIdentity, AllReadersProduceByteIdenticalRoutes) {
  // The PR's core contract, fuzzed: random graphs through the buffered text
  // reader, the mmap text reader, and the binary reader converted from each
  // must yield byte-identical SPNL routes.
  std::mt19937 rng(20260807);
  for (int round = 0; round < 6; ++round) {
    const VertexId n = 50 + static_cast<VertexId>(rng() % 400);
    const double deg = 1.0 + static_cast<double>(rng() % 60) / 10.0;
    const Graph g = generate_webcrawl(
        {.num_vertices = n, .avg_out_degree = deg,
         .seed = static_cast<std::uint64_t>(rng())});
    const std::string text = path("fuzz" + std::to_string(round) + ".adj");
    const std::string bin = path("fuzz" + std::to_string(round) + ".sadj");
    write_adjacency_list(g, text);
    {
      FileAdjacencyStream src(text);
      write_sadj(src, bin);
    }

    FileAdjacencyStream buffered(text);
    MmapAdjacencyStream mapped(text);
    BinaryAdjacencyStream binary(bin);
    const PartitionId k = 2 + static_cast<PartitionId>(rng() % 7);
    const auto base = route_of(buffered, k);
    EXPECT_EQ(route_of(mapped, k), base) << "mmap route diverged, round "
                                         << round;
    EXPECT_EQ(route_of(binary, k), base) << "binary route diverged, round "
                                         << round;
  }
}

}  // namespace
}  // namespace spnl
