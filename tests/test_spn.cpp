#include "core/spn.hpp"

#include <gtest/gtest.h>

#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 8000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.85, .locality_scale = 30.0,
                            .seed = seed});
}

std::vector<PartitionId> run_spn(const Graph& g, const PartitionConfig& config,
                                 SpnOptions options = {}) {
  SpnPartitioner partitioner(g.num_vertices(), g.num_edges(), config, options);
  InMemoryStream stream(g);
  return run_streaming(stream, partitioner).route;
}

TEST(Spn, CompleteAndBalanced) {
  const Graph g = crawl();
  const PartitionConfig config{.num_partitions = 8};
  const auto route = run_spn(g, config);
  EXPECT_TRUE(is_complete_assignment(route, 8));
  EXPECT_LE(evaluate_partition(g, route, 8).delta_v, config.slack + 0.01);
}

TEST(Spn, LambdaOneDegradesToLdgExactly) {
  // Paper Sec. IV-B: SPN with λ=1 ignores in-neighbors entirely and must
  // reproduce LDG's decisions bit for bit.
  const Graph g = crawl(4000, 5);
  const PartitionConfig config{.num_partitions = 16};
  const auto spn = run_spn(g, config, {.lambda = 1.0});
  LdgPartitioner ldg(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  const auto ldg_route = run_streaming(stream, ldg).route;
  EXPECT_EQ(spn, ldg_route);
}

TEST(Spn, BeatsLdgOnEcr) {
  const Graph g = crawl(10000, 7);
  const PartitionConfig config{.num_partitions = 16};
  const auto spn = evaluate_partition(g, run_spn(g, config), 16);
  LdgPartitioner ldg(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  const auto ldg_metrics =
      evaluate_partition(g, run_streaming(stream, ldg).route, 16);
  EXPECT_LT(spn.ecr, ldg_metrics.ecr);
}

TEST(Spn, InNeighborEstimateMatchesPaperExample) {
  // Paper Fig. 2 (1-indexed there, 0-indexed here): K=3, vertices 0..5
  // placed as V1={2,4}, V2={0,1}, V3={3,5}; adjacency lists
  //   2:[3,4,10] 4:[1,2,13] 0:[5,7,8] 1:[3,6,7] 3:[10,11,14] 5:[3,6,12].
  // Arriving vertex 6 has N_out = {5, 8, 9}; out-score (0,0,1) from placed
  // neighbor 5 in P3; in-score Γ(6) = (0,1,1) from in-neighbors 1 (P2) and
  // 5 (P3). Combined (removing λ as in the footnote): (0,1,2) -> P3.
  const VertexId n = 15;
  PartitionConfig config{.num_partitions = 3, .slack = 3.0};
  SpnOptions options{.lambda = 0.5, .num_shards = 1};
  SpnPartitioner partitioner(n, 18, config, options);

  // Stream vertices 0..5 in id order, forcing the Fig. 2 placement by
  // seeding each with an empty list is not possible (placement is decided by
  // the heuristic), so instead verify the Γ counters directly.
  const std::vector<std::vector<VertexId>> adj = {
      {5, 7, 8},    // 0 -> P? (first vertex, ties -> P0)
      {3, 6, 7},    // 1
      {3, 4, 10},   // 2
      {10, 11, 14}, // 3
      {1, 2, 13},   // 4
      {3, 6, 12},   // 5
  };
  std::vector<PartitionId> placed;
  for (VertexId v = 0; v < 6; ++v) {
    placed.push_back(partitioner.place(v, adj[v]));
  }
  // Γ_i(6) must equal the number of placed in-neighbors of 6 in partition i.
  std::vector<std::uint32_t> expected(3, 0);
  for (VertexId v = 0; v < 6; ++v) {
    for (VertexId u : adj[v]) {
      if (u == 6) ++expected[placed[v]];
    }
  }
  for (PartitionId i = 0; i < 3; ++i) {
    EXPECT_EQ(partitioner.gamma().get(i, 6), expected[i]);
  }
}

TEST(Spn, WindowedRunMatchesFullTableOnLocalGraph) {
  // With strong locality nearly all useful counts fall inside a generous
  // window, so quality should be near-identical (paper Fig. 7b plateau).
  const Graph g = generate_webcrawl({.num_vertices = 20000, .avg_out_degree = 8.0,
                                     .locality = 0.95, .locality_scale = 20.0,
                                     .seed = 3});
  const PartitionConfig config{.num_partitions = 8};
  const auto full = evaluate_partition(g, run_spn(g, config, {.num_shards = 1}), 8);
  const auto windowed =
      evaluate_partition(g, run_spn(g, config, {.num_shards = 16}), 8);
  EXPECT_NEAR(windowed.ecr, full.ecr, 0.02);
}

TEST(Spn, ExtremeWindowDegradesQuality) {
  // Paper Fig. 7b: an extremely large X starves the in-neighbor estimate.
  const Graph g = crawl(10000, 9);
  const PartitionConfig config{.num_partitions = 8};
  const auto full = evaluate_partition(g, run_spn(g, config, {.num_shards = 1}), 8);
  const auto tiny =
      evaluate_partition(g, run_spn(g, config, {.num_shards = 5000}), 8);
  EXPECT_GE(tiny.ecr + 1e-9, full.ecr);
}

TEST(Spn, RejectsBadLambda) {
  const PartitionConfig config{.num_partitions = 2};
  EXPECT_THROW(SpnPartitioner(10, 10, config, {.lambda = -0.1}), std::invalid_argument);
  EXPECT_THROW(SpnPartitioner(10, 10, config, {.lambda = 1.1}), std::invalid_argument);
}

TEST(Spn, MemoryIncludesGamma) {
  const PartitionConfig config{.num_partitions = 32};
  SpnPartitioner full(100000, 0, config, {.num_shards = 1});
  SpnPartitioner windowed(100000, 0, config, {.num_shards = 128});
  EXPECT_GT(full.memory_footprint_bytes(),
            windowed.memory_footprint_bytes() + 100000 * 32 * 3);
}

TEST(Spn, NeighborSumEstimatorRuns) {
  const Graph g = crawl(4000, 11);
  const PartitionConfig config{.num_partitions = 8};
  const auto route =
      run_spn(g, config, {.estimator = InNeighborEstimator::kNeighborSum});
  EXPECT_TRUE(is_complete_assignment(route, 8));
}

TEST(Spn, HandlesShuffledStreamGracefully) {
  // Non-monotone order: windows cannot help, but the run must stay valid.
  const Graph g = crawl(3000, 13);
  const PartitionConfig config{.num_partitions = 4};
  SpnPartitioner partitioner(g.num_vertices(), g.num_edges(), config,
                             {.num_shards = 8});
  std::vector<VertexId> order(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) order[v] = g.num_vertices() - 1 - v;
  OrderedStream stream(g, order);
  const auto route = run_streaming(stream, partitioner).route;
  EXPECT_TRUE(is_complete_assignment(route, 4));
}

TEST(Spn, Deterministic) {
  const Graph g = crawl(3000, 17);
  const PartitionConfig config{.num_partitions = 8};
  EXPECT_EQ(run_spn(g, config), run_spn(g, config));
}

}  // namespace
}  // namespace spnl
