#include "core/distributed_sim.hpp"

#include <gtest/gtest.h>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 10000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.9, .locality_scale = 30.0,
                            .seed = seed});
}

DistributedSimResult run(const Graph& g, const DistributedSimOptions& options,
                         PartitionId k = 8) {
  InMemoryStream stream(g);
  return distributed_stream_partition(stream, {.num_partitions = k}, options);
}

TEST(DistributedSim, CompleteAndBounded) {
  const Graph g = crawl();
  for (DistributedMode mode : {DistributedMode::kIndependent,
                               DistributedMode::kPeriodicSync}) {
    DistributedSimOptions options;
    options.mode = mode;
    const auto result = run(g, options);
    EXPECT_TRUE(is_complete_assignment(result.route, 8));
    // Capacity is enforced against STALE views, so balance drifts beyond
    // the slack — part of the distributed degradation the paper's
    // shared-memory design avoids. Bound it loosely.
    EXPECT_LE(evaluate_partition(g, result.route, 8).delta_v, 1.5);
  }
}

TEST(DistributedSim, OneWorkerFullSyncMatchesCentralizedQuality) {
  // W=1 with sync each step is just sequential streaming with this scoring
  // rule: staleness must be zero.
  const Graph g = crawl(4000, 3);
  DistributedSimOptions options;
  options.num_workers = 1;
  options.sync_interval = 1;
  const auto result = run(g, options);
  EXPECT_EQ(result.stale_decisions, 0u);
}

TEST(DistributedSim, StalenessGrowsWithSyncInterval) {
  const Graph g = crawl(8000, 5);
  DistributedSimOptions frequent;
  frequent.sync_interval = 64;
  DistributedSimOptions rare;
  rare.sync_interval = 4096;
  const auto often = run(g, frequent);
  const auto seldom = run(g, rare);
  EXPECT_LT(often.stale_decisions, seldom.stale_decisions);
}

TEST(DistributedSim, IndependentWorseThanSyncedWorseThanShared) {
  // The paper's Sec. III-C argument, reproduced end to end.
  const Graph g = crawl(15000, 7);
  const PartitionId k = 16;
  const PartitionConfig config{.num_partitions = k};

  SpnlPartitioner shared(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  const double shared_ecr =
      evaluate_partition(g, run_streaming(stream, shared).route, k).ecr;

  DistributedSimOptions synced;
  synced.num_workers = 8;
  synced.sync_interval = 256;
  const double synced_ecr =
      evaluate_partition(g, run(g, synced, k).route, k).ecr;

  DistributedSimOptions independent;
  independent.num_workers = 8;
  independent.mode = DistributedMode::kIndependent;
  const double independent_ecr =
      evaluate_partition(g, run(g, independent, k).route, k).ecr;

  EXPECT_LE(shared_ecr, synced_ecr + 0.02);
  EXPECT_LT(synced_ecr, independent_ecr);
}

TEST(DistributedSim, Validates) {
  const Graph g = crawl(100, 9);
  InMemoryStream stream(g);
  DistributedSimOptions bad;
  bad.num_workers = 0;
  EXPECT_THROW(distributed_stream_partition(stream, {.num_partitions = 2}, bad),
               std::invalid_argument);
  DistributedSimOptions bad2;
  bad2.sync_interval = 0;
  EXPECT_THROW(distributed_stream_partition(stream, {.num_partitions = 2}, bad2),
               std::invalid_argument);
}

TEST(DistributedSim, Deterministic) {
  const Graph g = crawl(3000, 11);
  DistributedSimOptions options;
  EXPECT_EQ(run(g, options).route, run(g, options).route);
}

TEST(DistributedSim, StalenessGrowsWithSyncIntervalOnClusteredGraph) {
  // Same monotonicity claim on a hostgraph — tight clusters make stale views
  // costlier (neighbors land in the window other workers haven't seen), so
  // the staleness signal must grow across the whole interval sweep, and the
  // realized cut must not improve while it does.
  const Graph g = generate_hostgraph({.num_vertices = 10000,
                                      .mean_host_size = 150.0,
                                      .avg_out_degree = 8.0,
                                      .intra_host = 0.9,
                                      .seed = 21});
  const PartitionId k = 8;
  std::uint64_t prev_stale = 0;
  double first_ecr = 0.0, last_ecr = 0.0;
  bool first = true;
  for (const VertexId interval : {64u, 512u, 4096u}) {
    DistributedSimOptions options;
    options.sync_interval = interval;
    const auto result = run(g, options, k);
    EXPECT_GT(result.stale_decisions, prev_stale)
        << "staleness did not grow at sync_interval=" << interval;
    prev_stale = result.stale_decisions;
    const double ecr = evaluate_partition(g, result.route, k).ecr;
    if (first) {
      first_ecr = ecr;
      first = false;
    }
    last_ecr = ecr;
  }
  EXPECT_GE(last_ecr + 0.02, first_ecr)
      << "rare sync should not beat frequent sync on a clustered graph";
}

TEST(DistributedSim, MoreWorkersThanVertices) {
  const Graph g = crawl(20, 13);
  DistributedSimOptions options;
  options.num_workers = 64;
  const auto result = run(g, options, 4);
  EXPECT_TRUE(is_complete_assignment(result.route, 4));
}

}  // namespace
}  // namespace spnl
