#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace spnl {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Mix64, IsAFunction) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

TEST(Xoshiro, DeterministicSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Xoshiro, NextBelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro, NextBoolExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Xoshiro, NextBoolRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Xoshiro, UniformBitGeneratorConcept) {
  static_assert(std::uniform_random_bit_generator<Rng>);
}

}  // namespace
}  // namespace spnl
