// Resource governor: enforced memory/deadline budgets with graceful
// degradation. Covers the governor object itself (sampling, ladder cursor,
// policies, byte-size parsing) and the kill-path acceptance scenario: a
// memory budget far below the natural Γ footprint forces >= 2 ladder steps,
// the budget holds at every sample point after enforcement, and the run
// still produces a full valid route.
#include "util/resource_governor.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "partition/driver.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 20000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.9, .locality_scale = 30.0,
                            .seed = seed});
}

TEST(ParseByteSize, SuffixesAndFractions) {
  EXPECT_EQ(parse_byte_size("4096"), 4096u);
  EXPECT_EQ(parse_byte_size("64K"), 64u * 1024);
  EXPECT_EQ(parse_byte_size("64k"), 64u * 1024);
  EXPECT_EQ(parse_byte_size("12M"), 12u * 1024 * 1024);
  EXPECT_EQ(parse_byte_size("1.5G"), static_cast<std::size_t>(1.5 * 1024 * 1024 * 1024));
  EXPECT_THROW(parse_byte_size(""), std::invalid_argument);
  EXPECT_THROW(parse_byte_size("abc"), std::invalid_argument);
  EXPECT_THROW(parse_byte_size("12Q"), std::invalid_argument);
  EXPECT_THROW(parse_byte_size("-5"), std::invalid_argument);
}

TEST(DegradationLadder, NextStageChain) {
  EXPECT_EQ(ResourceGovernor::next_stage(DegradationStage::kNone),
            DegradationStage::kShrinkWindow);
  EXPECT_EQ(ResourceGovernor::next_stage(DegradationStage::kShrinkWindow),
            DegradationStage::kCoarseSlide);
  EXPECT_EQ(ResourceGovernor::next_stage(DegradationStage::kCoarseSlide),
            DegradationStage::kHashFallback);
  EXPECT_EQ(ResourceGovernor::next_stage(DegradationStage::kHashFallback),
            DegradationStage::kNone);  // exhausted
}

TEST(ResourceGovernor, DisabledWithoutBudgets) {
  ResourceGovernor governor;
  EXPECT_FALSE(governor.enabled());
  EXPECT_FALSE(governor.due(256));
}

TEST(ResourceGovernor, DueRespectsSampleInterval) {
  ResourceGovernor governor({.memory_budget_bytes = 1 << 20,
                             .sample_interval = 100});
  EXPECT_TRUE(governor.enabled());
  EXPECT_FALSE(governor.due(0));
  EXPECT_FALSE(governor.due(99));
  EXPECT_TRUE(governor.due(100));
  EXPECT_FALSE(governor.due(101));
  EXPECT_TRUE(governor.due(200));
}

TEST(ResourceGovernor, SampleReportsMemoryBreachAndPeak) {
  ResourceGovernor governor({.memory_budget_bytes = 1000});
  EXPECT_FALSE(governor.sample(500).has_value());
  const auto breach = governor.sample(2000);
  ASSERT_TRUE(breach.has_value());
  EXPECT_TRUE(breach->over_memory);
  EXPECT_FALSE(breach->over_deadline);
  EXPECT_EQ(breach->partitioner_bytes, 2000u);
  EXPECT_EQ(governor.peak_partitioner_bytes(), 2000u);
  EXPECT_EQ(governor.samples_taken(), 2u);
}

TEST(ResourceGovernor, AbortPolicyThrows) {
  ResourceGovernor governor({.memory_budget_bytes = 1000,
                             .policy = DegradePolicy::kAbort});
  EXPECT_NO_THROW(governor.sample(500));
  EXPECT_THROW(governor.sample(2000), BudgetExceededError);
}

TEST(ResourceGovernor, EventsJsonListsStages) {
  DegradationEvent event;
  event.stage = DegradationStage::kShrinkWindow;
  event.at_placement = 512;
  event.reason = "memory";
  const std::string json = degradation_events_json({event});
  EXPECT_NE(json.find("shrink-window"), std::string::npos);
  EXPECT_NE(json.find("\"at_placement\":512"), std::string::npos);
  EXPECT_NE(json.find("memory"), std::string::npos);
  EXPECT_EQ(degradation_events_json({}), "[]");
}

TEST(Degradation, PartitionerLadderStepsAndReportsStage) {
  const Graph g = crawl(5000, 3);
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(),
                              {.num_partitions = 8});
  EXPECT_EQ(partitioner.degradation_stage(), DegradationStage::kNone);
  EXPECT_TRUE(partitioner.apply_degradation(DegradationStage::kShrinkWindow));
  EXPECT_EQ(partitioner.degradation_stage(), DegradationStage::kShrinkWindow);
  EXPECT_TRUE(partitioner.apply_degradation(DegradationStage::kCoarseSlide));
  // Coarse slide is one-shot.
  EXPECT_FALSE(partitioner.apply_degradation(DegradationStage::kCoarseSlide));
  EXPECT_TRUE(partitioner.apply_degradation(DegradationStage::kHashFallback));
  EXPECT_EQ(partitioner.degradation_stage(), DegradationStage::kHashFallback);
  EXPECT_FALSE(partitioner.apply_degradation(DegradationStage::kHashFallback));
}

TEST(Degradation, ShrinkWindowActuallyReducesFootprint) {
  const Graph g = crawl(20000, 5);
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(),
                              {.num_partitions = 8});
  const std::size_t before = partitioner.memory_footprint_bytes();
  ASSERT_TRUE(partitioner.apply_degradation(DegradationStage::kShrinkWindow));
  EXPECT_LT(partitioner.memory_footprint_bytes(), before);
}

// Kill-path acceptance: budget far below the natural Γ footprint -> the run
// degrades (>= 2 ladder steps), finishes with a full valid route, and the
// footprint is back under budget after enforcement at every sample.
TEST(Degradation, MemoryBudgetForcesLadderAndRunCompletes) {
  const Graph g = crawl(20000, 7);
  const PartitionId k = 8;
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(),
                              {.num_partitions = k});
  const std::size_t natural = partitioner.memory_footprint_bytes();
  ResourceGovernor governor({.memory_budget_bytes = natural / 8,
                             .sample_interval = 64});
  InMemoryStream stream(g);
  const RunResult run = run_streaming(stream, partitioner, {}, nullptr, &governor);

  validate_route(run.route, k, g.num_vertices());
  ASSERT_GE(run.degradations.size(), 2u);
  // Enforcement loops within the sample until under budget (or the ladder is
  // exhausted): the last applied step must land under budget.
  const DegradationEvent& last = run.degradations.back();
  if (!governor.exhausted()) {
    EXPECT_LE(last.post_bytes, governor.options().memory_budget_bytes);
  }
  // Each event is a strictly harsher (or repeated-shrink) rung, monotone.
  for (std::size_t i = 1; i < run.degradations.size(); ++i) {
    EXPECT_GE(static_cast<int>(run.degradations[i].stage),
              static_cast<int>(run.degradations[i - 1].stage));
    EXPECT_EQ(run.degradations[i].reason, "memory");
  }
  EXPECT_EQ(governor.stage(), run.degradations.back().stage);
}

TEST(Degradation, HashFallbackRunsAreDeterministicAndBalanced) {
  const Graph g = crawl(10000, 9);
  const PartitionId k = 8;
  std::vector<PartitionId> routes[2];
  for (int i = 0; i < 2; ++i) {
    SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(),
                                {.num_partitions = k});
    // Tiny budget: the ladder bottoms out in hash fallback almost instantly.
    ResourceGovernor governor({.memory_budget_bytes = 1, .sample_interval = 16});
    InMemoryStream stream(g);
    routes[i] = run_streaming(stream, partitioner, {}, nullptr, &governor).route;
    validate_route(routes[i], k, g.num_vertices());
    EXPECT_EQ(governor.stage(), DegradationStage::kHashFallback);
  }
  EXPECT_EQ(routes[0], routes[1]);
  // Hash votes still flow through capacity weighting: balance holds.
  const auto metrics = evaluate_partition(g, routes[0], k);
  EXPECT_LE(metrics.delta_v, 1.2);
}

TEST(Degradation, DeadlineBreachStepsOneRungPerSample) {
  const Graph g = crawl(20000, 11);
  SpnPartitioner partitioner(g.num_vertices(), g.num_edges(),
                             {.num_partitions = 4});
  // Already-expired deadline: every sample breaches, one rung at a time.
  ResourceGovernor governor({.deadline_seconds = 1e-9, .sample_interval = 64});
  InMemoryStream stream(g);
  const RunResult run = run_streaming(stream, partitioner, {}, nullptr, &governor);
  validate_route(run.route, 4, g.num_vertices());
  ASSERT_GE(run.degradations.size(), 1u);
  for (const DegradationEvent& event : run.degradations) {
    EXPECT_EQ(event.reason, "deadline");
  }
  // The ladder eventually bottoms out in hash fallback and stays there.
  EXPECT_EQ(run.degradations.back().stage, DegradationStage::kHashFallback);
}

TEST(Degradation, OffPolicyObservesWithoutIntervening) {
  const Graph g = crawl(10000, 13);
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(),
                              {.num_partitions = 8});
  ResourceGovernor governor({.memory_budget_bytes = 1,
                             .policy = DegradePolicy::kOff,
                             .sample_interval = 64});
  InMemoryStream stream(g);
  const RunResult run = run_streaming(stream, partitioner, {}, nullptr, &governor);
  validate_route(run.route, 8, g.num_vertices());
  EXPECT_TRUE(run.degradations.empty());
  EXPECT_EQ(partitioner.degradation_stage(), DegradationStage::kNone);
  EXPECT_GT(governor.samples_taken(), 0u);
}

TEST(Degradation, AbortPolicyThrowsOutOfTheDriver) {
  const Graph g = crawl(10000, 15);
  SpnlPartitioner partitioner(g.num_vertices(), g.num_edges(),
                              {.num_partitions = 8});
  ResourceGovernor governor({.memory_budget_bytes = 1,
                             .policy = DegradePolicy::kAbort,
                             .sample_interval = 64});
  InMemoryStream stream(g);
  EXPECT_THROW(run_streaming(stream, partitioner, {}, nullptr, &governor),
               BudgetExceededError);
}

// Degraded checkpoints round-trip: a snapshot taken after ladder steps
// restores the degraded shape and the resumed run completes under the same
// governor policy.
TEST(Degradation, CheckpointResumeCarriesDegradedStage) {
  const Graph g = crawl(20000, 17);
  const PartitionId k = 8;
  const auto dir =
      std::filesystem::temp_directory_path() / "spnl_governor_ckpt_test";
  std::filesystem::create_directories(dir);
  const std::string ckpt = (dir / "degraded.ckpt").string();

  SpnlPartitioner full(g.num_vertices(), g.num_edges(), {.num_partitions = k});
  ResourceGovernor governor(
      {.memory_budget_bytes = full.memory_footprint_bytes() / 8,
       .sample_interval = 64});
  InMemoryStream stream(g);
  const RunResult first =
      run_streaming(stream, full, {.path = ckpt, .every = 4096}, nullptr,
                    &governor);
  ASSERT_GE(first.checkpoints_written, 1u);
  ASSERT_GE(first.degradations.size(), 1u);

  // Resume from the (degraded) snapshot with a fresh partitioner + governor.
  SpnlPartitioner resumed_partitioner(g.num_vertices(), g.num_edges(),
                                      {.num_partitions = k});
  ResourceGovernor resumed_governor(
      {.memory_budget_bytes = governor.options().memory_budget_bytes,
       .sample_interval = 64});
  stream.reset();
  const RunResult resumed = resume_streaming(stream, resumed_partitioner, ckpt,
                                             {}, nullptr, &resumed_governor);
  EXPECT_GT(resumed.resumed_at, 0u);
  validate_route(resumed.route, k, g.num_vertices());
  // The restored stage seeds the resumed governor's ladder cursor.
  EXPECT_NE(resumed_partitioner.degradation_stage(), DegradationStage::kNone);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace spnl
