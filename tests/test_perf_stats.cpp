// PerfStats / PerfScope: accumulation, merge, null-gating, and the JSON
// shape consumed by BENCH_kernel.json and the --perf-report tooling.
#include "util/perf_stats.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/spn.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"

namespace spnl {
namespace {

TEST(PerfStats, AccumulatesPerStage) {
  PerfStats stats;
  stats.add(PerfStage::kScore, 100);
  stats.add(PerfStage::kScore, 50, 2);
  stats.add(PerfStage::kCommit, 7);
  EXPECT_EQ(stats.nanos(PerfStage::kScore), 150u);
  EXPECT_EQ(stats.calls(PerfStage::kScore), 3u);
  EXPECT_EQ(stats.nanos(PerfStage::kCommit), 7u);
  EXPECT_EQ(stats.calls(PerfStage::kQueueWait), 0u);
  EXPECT_EQ(stats.total_nanos(), 157u);
  stats.reset();
  EXPECT_EQ(stats.total_nanos(), 0u);
  EXPECT_EQ(stats.calls(PerfStage::kScore), 0u);
}

TEST(PerfStats, MergeSumsCells) {
  PerfStats a, b;
  a.add(PerfStage::kScore, 10);
  a.add(PerfStage::kQueueWait, 5);
  b.add(PerfStage::kScore, 30, 4);
  a.merge(b);
  EXPECT_EQ(a.nanos(PerfStage::kScore), 40u);
  EXPECT_EQ(a.calls(PerfStage::kScore), 5u);
  EXPECT_EQ(a.nanos(PerfStage::kQueueWait), 5u);
}

TEST(PerfStats, ScopeRecordsOnlyWhenAttached) {
  PerfStats stats;
  { PerfScope scope(nullptr, PerfStage::kScore); }  // disabled: no effect
  EXPECT_EQ(stats.calls(PerfStage::kScore), 0u);
  { PerfScope scope(&stats, PerfStage::kScore); }
  EXPECT_EQ(stats.calls(PerfStage::kScore), 1u);
}

TEST(PerfStats, StageNamesAreStable) {
  EXPECT_STREQ(perf_stage_name(PerfStage::kQueueWait), "queue_wait");
  EXPECT_STREQ(perf_stage_name(PerfStage::kWindowAdvance), "window_advance");
  EXPECT_STREQ(perf_stage_name(PerfStage::kScore), "score");
  EXPECT_STREQ(perf_stage_name(PerfStage::kCommit), "commit");
  EXPECT_STREQ(perf_stage_name(PerfStage::kGammaIncrement), "gamma_increment");
}

TEST(PerfStats, JsonHasExpectedShape) {
  PerfStats stats;
  stats.add(PerfStage::kScore, 200, 4);
  const std::string json = stats.to_json();
  EXPECT_NE(json.find("\"total_nanos\":200"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stage\":\"score\",\"calls\":4,\"nanos\":200,"
                      "\"mean_nanos\":50.0"),
            std::string::npos)
      << json;
  // All five stages present, object properly closed.
  for (const char* name : {"queue_wait", "window_advance", "score", "commit",
                           "gamma_increment"}) {
    EXPECT_NE(json.find(std::string("\"stage\":\"") + name), std::string::npos)
        << json;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(PerfStats, ReportMentionsEveryStage) {
  PerfStats stats;
  stats.add(PerfStage::kGammaIncrement, 1000, 10);
  const std::string report = stats.report();
  for (const char* name : {"queue_wait", "window_advance", "score", "commit",
                           "gamma_increment"}) {
    EXPECT_NE(report.find(name), std::string::npos) << report;
  }
}

TEST(PerfStats, DriverAttachesAndDetaches) {
  // An instrumented sequential run records per-record calls in every
  // partitioner-side stage, and the driver detaches the sink afterwards
  // (a second uninstrumented run must not touch it).
  const Graph g = generate_webcrawl(
      {.num_vertices = 500, .avg_out_degree = 5.0, .seed = 17});
  PerfStats perf;
  {
    SpnPartitioner p(g.num_vertices(), g.num_edges(), {.num_partitions = 4},
                     SpnOptions{.num_shards = 4});
    InMemoryStream stream(g);
    run_streaming(stream, p, {}, &perf);
  }
  EXPECT_EQ(perf.calls(PerfStage::kScore), g.num_vertices());
  EXPECT_EQ(perf.calls(PerfStage::kCommit), g.num_vertices());
  EXPECT_EQ(perf.calls(PerfStage::kWindowAdvance), g.num_vertices());
  EXPECT_EQ(perf.calls(PerfStage::kGammaIncrement), g.num_vertices());
  // One kQueueWait per record plus the end-of-stream probe.
  EXPECT_EQ(perf.calls(PerfStage::kQueueWait), g.num_vertices() + 1u);

  const std::uint64_t before = perf.calls(PerfStage::kScore);
  {
    SpnPartitioner p(g.num_vertices(), g.num_edges(), {.num_partitions = 4},
                     SpnOptions{.num_shards = 4});
    InMemoryStream stream(g);
    run_streaming(stream, p);  // no sink
  }
  EXPECT_EQ(perf.calls(PerfStage::kScore), before);
}

}  // namespace
}  // namespace spnl
