// PerfStats / PerfScope: accumulation, merge, null-gating, and the JSON
// shape consumed by BENCH_kernel.json and the --perf-report tooling.
#include "util/perf_stats.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/spn.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"

namespace spnl {
namespace {

TEST(PerfStats, AccumulatesPerStage) {
  PerfStats stats;
  stats.add(PerfStage::kScore, 100);
  stats.add(PerfStage::kScore, 50, 2);
  stats.add(PerfStage::kCommit, 7);
  EXPECT_EQ(stats.nanos(PerfStage::kScore), 150u);
  EXPECT_EQ(stats.calls(PerfStage::kScore), 3u);
  EXPECT_EQ(stats.nanos(PerfStage::kCommit), 7u);
  EXPECT_EQ(stats.calls(PerfStage::kQueueWait), 0u);
  EXPECT_EQ(stats.total_nanos(), 157u);
  stats.reset();
  EXPECT_EQ(stats.total_nanos(), 0u);
  EXPECT_EQ(stats.calls(PerfStage::kScore), 0u);
}

TEST(PerfStats, MergeSumsCells) {
  PerfStats a, b;
  a.add(PerfStage::kScore, 10);
  a.add(PerfStage::kQueueWait, 5);
  b.add(PerfStage::kScore, 30, 4);
  a.merge(b);
  EXPECT_EQ(a.nanos(PerfStage::kScore), 40u);
  EXPECT_EQ(a.calls(PerfStage::kScore), 5u);
  EXPECT_EQ(a.nanos(PerfStage::kQueueWait), 5u);
}

TEST(PerfStats, ScopeRecordsOnlyWhenAttached) {
  PerfStats stats;
  { PerfScope scope(nullptr, PerfStage::kScore); }  // disabled: no effect
  EXPECT_EQ(stats.calls(PerfStage::kScore), 0u);
  { PerfScope scope(&stats, PerfStage::kScore); }
  EXPECT_EQ(stats.calls(PerfStage::kScore), 1u);
}

TEST(PerfStats, StageNamesAreStable) {
  EXPECT_STREQ(perf_stage_name(PerfStage::kQueueWait), "queue_wait");
  EXPECT_STREQ(perf_stage_name(PerfStage::kWindowAdvance), "window_advance");
  EXPECT_STREQ(perf_stage_name(PerfStage::kScore), "score");
  EXPECT_STREQ(perf_stage_name(PerfStage::kCommit), "commit");
  EXPECT_STREQ(perf_stage_name(PerfStage::kGammaIncrement), "gamma_increment");
  EXPECT_STREQ(perf_stage_name(PerfStage::kGammaPublish), "gamma_publish");
  EXPECT_STREQ(perf_stage_name(PerfStage::kQueueLockWait), "queue_lock_wait");
  EXPECT_STREQ(perf_stage_name(PerfStage::kQueueLockHold), "queue_lock_hold");
}

TEST(PerfStats, CounterNamesAreStable) {
  EXPECT_STREQ(perf_counter_name(PerfCounter::kWatermarkCasRetries),
               "watermark_cas_retries");
  EXPECT_STREQ(perf_counter_name(PerfCounter::kGammaHeadCasRetries),
               "gamma_head_cas_retries");
  EXPECT_STREQ(perf_counter_name(PerfCounter::kGammaAdvanceContended),
               "gamma_advance_contended");
  EXPECT_STREQ(perf_counter_name(PerfCounter::kGammaDeltaPublishes),
               "gamma_delta_publishes");
  EXPECT_STREQ(perf_counter_name(PerfCounter::kGammaDeltaCells),
               "gamma_delta_cells");
  EXPECT_STREQ(perf_counter_name(PerfCounter::kGammaDeltaDropped),
               "gamma_delta_dropped");
  EXPECT_STREQ(perf_counter_name(PerfCounter::kRctSharedContended),
               "rct_shared_contended");
  EXPECT_STREQ(perf_counter_name(PerfCounter::kRctExclusiveContended),
               "rct_exclusive_contended");
  EXPECT_STREQ(perf_counter_name(PerfCounter::kRctExclusiveAcquires),
               "rct_exclusive_acquires");
  EXPECT_STREQ(perf_counter_name(PerfCounter::kRctClaimCasRetries),
               "rct_claim_cas_retries");
  EXPECT_STREQ(perf_counter_name(PerfCounter::kRctDecrementCasRetries),
               "rct_decrement_cas_retries");
  EXPECT_STREQ(perf_counter_name(PerfCounter::kQueueLockContended),
               "queue_lock_contended");
  EXPECT_STREQ(perf_counter_name(PerfCounter::kQueueLockAcquires),
               "queue_lock_acquires");
}

TEST(PerfStats, CountersAccumulateMergeAndReset) {
  PerfStats a, b;
  a.add_count(PerfCounter::kRctClaimCasRetries, 3);
  a.add_count(PerfCounter::kRctClaimCasRetries, 4);
  b.add_count(PerfCounter::kRctClaimCasRetries, 10);
  b.add_count(PerfCounter::kQueueLockAcquires, 2);
  a.merge(b);
  EXPECT_EQ(a.count(PerfCounter::kRctClaimCasRetries), 17u);
  EXPECT_EQ(a.count(PerfCounter::kQueueLockAcquires), 2u);
  EXPECT_EQ(a.count(PerfCounter::kWatermarkCasRetries), 0u);
  // Counters carry no time: the stage totals are untouched.
  EXPECT_EQ(a.total_nanos(), 0u);
  a.reset();
  EXPECT_EQ(a.count(PerfCounter::kRctClaimCasRetries), 0u);
}

TEST(PerfStats, JsonHasExpectedShape) {
  PerfStats stats;
  stats.add(PerfStage::kScore, 200, 4);
  const std::string json = stats.to_json();
  EXPECT_NE(json.find("\"total_nanos\":200"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stage\":\"score\",\"calls\":4,\"nanos\":200,"
                      "\"mean_nanos\":50.0"),
            std::string::npos)
      << json;
  // Every stage present, object properly closed.
  for (const char* name : {"queue_wait", "window_advance", "score", "commit",
                           "gamma_increment", "gamma_publish",
                           "queue_lock_wait", "queue_lock_hold"}) {
    EXPECT_NE(json.find(std::string("\"stage\":\"") + name), std::string::npos)
        << json;
  }
  // The counter plane is always emitted in full (zeros included) so JSON
  // consumers never have to special-case missing keys.
  stats.add_count(PerfCounter::kGammaDeltaPublishes, 6);
  const std::string with_counters = stats.to_json();
  EXPECT_NE(with_counters.find(
                "\"counter\":\"gamma_delta_publishes\",\"value\":6"),
            std::string::npos)
      << with_counters;
  EXPECT_NE(with_counters.find(
                "\"counter\":\"watermark_cas_retries\",\"value\":0"),
            std::string::npos)
      << with_counters;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(PerfStats, ReportMentionsEveryStage) {
  PerfStats stats;
  stats.add(PerfStage::kGammaIncrement, 1000, 10);
  const std::string report = stats.report();
  for (const char* name : {"queue_wait", "window_advance", "score", "commit",
                           "gamma_increment", "gamma_publish",
                           "queue_lock_wait", "queue_lock_hold"}) {
    EXPECT_NE(report.find(name), std::string::npos) << report;
  }
  // A sequential run has structurally-zero contention counters; the human
  // report suppresses them entirely to stay noise-free.
  EXPECT_EQ(report.find("watermark_cas_retries"), std::string::npos) << report;
  stats.add_count(PerfCounter::kWatermarkCasRetries, 5);
  EXPECT_NE(stats.report().find("watermark_cas_retries"), std::string::npos);
}

TEST(PerfStats, DriverAttachesAndDetaches) {
  // An instrumented sequential run records per-record calls in every
  // partitioner-side stage, and the driver detaches the sink afterwards
  // (a second uninstrumented run must not touch it).
  const Graph g = generate_webcrawl(
      {.num_vertices = 500, .avg_out_degree = 5.0, .seed = 17});
  PerfStats perf;
  {
    SpnPartitioner p(g.num_vertices(), g.num_edges(), {.num_partitions = 4},
                     SpnOptions{.num_shards = 4});
    InMemoryStream stream(g);
    run_streaming(stream, p, {}, &perf);
  }
  EXPECT_EQ(perf.calls(PerfStage::kScore), g.num_vertices());
  EXPECT_EQ(perf.calls(PerfStage::kCommit), g.num_vertices());
  EXPECT_EQ(perf.calls(PerfStage::kWindowAdvance), g.num_vertices());
  EXPECT_EQ(perf.calls(PerfStage::kGammaIncrement), g.num_vertices());
  // One kQueueWait per record plus the end-of-stream probe.
  EXPECT_EQ(perf.calls(PerfStage::kQueueWait), g.num_vertices() + 1u);

  const std::uint64_t before = perf.calls(PerfStage::kScore);
  {
    SpnPartitioner p(g.num_vertices(), g.num_edges(), {.num_partitions = 4},
                     SpnOptions{.num_shards = 4});
    InMemoryStream stream(g);
    run_streaming(stream, p);  // no sink
  }
  EXPECT_EQ(perf.calls(PerfStage::kScore), before);
}

}  // namespace
}  // namespace spnl
