#include "partition/stanton_kliot.hpp"

#include <gtest/gtest.h>

#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 6000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.88, .locality_scale = 30.0,
                            .seed = seed});
}

std::vector<PartitionId> run_sk(const Graph& g, SkHeuristic heuristic,
                                PartitionId k) {
  PartitionConfig config{.num_partitions = k};
  SkPartitioner partitioner(g.num_vertices(), g.num_edges(), config, heuristic, &g);
  InMemoryStream stream(g);
  return run_streaming(stream, partitioner).route;
}

TEST(StantonKliot, AllHeuristicsCompleteAndBalanced) {
  const Graph g = crawl();
  for (SkHeuristic h : {SkHeuristic::kBalanced, SkHeuristic::kDeterministicGreedy,
                        SkHeuristic::kExponentialGreedy, SkHeuristic::kTriangles}) {
    const auto route = run_sk(g, h, 8);
    EXPECT_TRUE(is_complete_assignment(route, 8));
    EXPECT_LE(evaluate_partition(g, route, 8).delta_v, 1.11);
  }
}

TEST(StantonKliot, BalancedIsPerfectlyBalancedAndTopologyBlind) {
  const Graph g = crawl(4000, 3);
  const auto route = run_sk(g, SkHeuristic::kBalanced, 8);
  const auto metrics = evaluate_partition(g, route, 8);
  EXPECT_NEAR(metrics.delta_v, 1.0, 0.01);
  // Round-robin by load: quality near hash.
  EXPECT_GT(metrics.ecr, 0.7);
}

TEST(StantonKliot, GreedyFamilyBeatsBalanced) {
  const Graph g = crawl(8000, 5);
  const double balanced =
      evaluate_partition(g, run_sk(g, SkHeuristic::kBalanced, 8), 8).ecr;
  for (SkHeuristic h : {SkHeuristic::kDeterministicGreedy,
                        SkHeuristic::kExponentialGreedy, SkHeuristic::kTriangles}) {
    EXPECT_LT(evaluate_partition(g, run_sk(g, h, 8), 8).ecr, balanced * 0.8);
  }
}

TEST(StantonKliot, TrianglesRequiresGraph) {
  PartitionConfig config{.num_partitions = 2};
  EXPECT_THROW(SkPartitioner(10, 10, config, SkHeuristic::kTriangles, nullptr),
               std::invalid_argument);
  // Others work without it.
  SkPartitioner ok(10, 10, config, SkHeuristic::kBalanced, nullptr);
  EXPECT_EQ(ok.name(), "Balanced");
}

TEST(StantonKliot, TriangleScoreCountsClosedWedges) {
  // v=3 arrives with neighbors {0, 1}; 0 and 1 are placed together in P0
  // and there is an edge (0, 1): the triangle score must prefer P0 even if
  // another partition also holds one neighbor.
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(3, 0);
  builder.add_edge(3, 1);
  builder.add_edge(3, 2);
  const Graph g = builder.finish();
  PartitionConfig config{.num_partitions = 2, .slack = 3.0};
  SkPartitioner partitioner(4, 4, config, SkHeuristic::kTriangles, &g);
  // Force placements: 0, 1 -> (scores zero) spread by load: 0->P0, 1->P1?
  // To control the layout, place 0,1,2 with explicit empty lists and check
  // the decision for 3 given the real route.
  partitioner.place(0, g.out_neighbors(0));  // P0 (first, ties to lowest)
  partitioner.place(1, std::span<const VertexId>{});
  partitioner.place(2, std::span<const VertexId>{});
  const PartitionId p0 = partitioner.route()[0];
  const PartitionId p1 = partitioner.route()[1];
  const PartitionId chosen = partitioner.place(3, g.out_neighbors(3));
  if (p0 == p1) {
    EXPECT_EQ(chosen, p0);  // wedge closed: triangle bonus decides
  } else {
    EXPECT_TRUE(chosen == p0 || chosen == p1);
  }
}

TEST(StantonKliot, ExponentialGreedyRespectsCapacityHarder) {
  const Graph g = crawl(4000, 7);
  const auto edg = evaluate_partition(
      g, run_sk(g, SkHeuristic::kExponentialGreedy, 8), 8);
  const auto dg = evaluate_partition(
      g, run_sk(g, SkHeuristic::kDeterministicGreedy, 8), 8);
  // Both bounded by the hard cap; EDG's soft penalty should not be worse on
  // balance.
  EXPECT_LE(edg.delta_v, dg.delta_v + 0.05);
}

TEST(StantonKliot, Deterministic) {
  const Graph g = crawl(3000, 9);
  EXPECT_EQ(run_sk(g, SkHeuristic::kExponentialGreedy, 8),
            run_sk(g, SkHeuristic::kExponentialGreedy, 8));
}

}  // namespace
}  // namespace spnl
