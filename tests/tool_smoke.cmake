# Smoke test for the CLI tools: spnl_gen writes a graph, spnl_partition
# partitions it with several backends and emits a route table.
file(MAKE_DIRECTORY ${WORK_DIR})
set(GRAPH ${WORK_DIR}/smoke.adj)
set(ROUTE ${WORK_DIR}/smoke.route)

execute_process(
  COMMAND ${SPNL_GEN} --out=${GRAPH} --model=webcrawl --vertices=5000
          --avg-degree=6 --seed=3
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spnl_gen failed (rc=${rc})")
endif()
if(NOT EXISTS ${GRAPH})
  message(FATAL_ERROR "spnl_gen did not write ${GRAPH}")
endif()

foreach(algo hash range ldg fennel spn spnl balanced dg edg triangles
        multilevel labelprop)
  execute_process(
    COMMAND ${SPNL_PARTITION} ${GRAPH} --k=8 --algo=${algo} --out=${ROUTE} --quiet
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "spnl_partition --algo=${algo} failed (rc=${rc})")
  endif()
  if(NOT EXISTS ${ROUTE})
    message(FATAL_ERROR "spnl_partition --algo=${algo} wrote no route table")
  endif()
  file(REMOVE ${ROUTE})
endforeach()

# Parallel, re-streaming and buffered modes.
execute_process(COMMAND ${SPNL_PARTITION} ${GRAPH} --k=8 --threads=3 --quiet
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "parallel spnl_partition failed (rc=${rc})")
endif()
execute_process(COMMAND ${SPNL_PARTITION} ${GRAPH} --k=8 --passes=2 --quiet
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "restream spnl_partition failed (rc=${rc})")
endif()
execute_process(COMMAND ${SPNL_PARTITION} ${GRAPH} --k=8 --buffer=512 --quiet
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "buffered spnl_partition failed (rc=${rc})")
endif()
execute_process(COMMAND ${SPNL_PARTITION} ${GRAPH} --k=8 --window=256 --quiet
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "windowed spnl_partition failed (rc=${rc})")
endif()

# Analyzer over a fresh route table.
execute_process(COMMAND ${SPNL_PARTITION} ${GRAPH} --k=8 --out=${ROUTE} --quiet
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spnl_partition for analyze failed (rc=${rc})")
endif()
execute_process(COMMAND ${SPNL_ANALYZE} ${GRAPH} ${ROUTE} --matrix --pagerank-steps=2
                RESULT_VARIABLE rc OUTPUT_VARIABLE analyze_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spnl_analyze failed (rc=${rc})")
endif()
if(NOT analyze_out MATCHES "communication matrix")
  message(FATAL_ERROR "spnl_analyze did not print the matrix")
endif()
# Mismatched route must fail cleanly.
file(WRITE ${WORK_DIR}/short.route "0 1\n")
execute_process(COMMAND ${SPNL_ANALYZE} ${GRAPH} ${WORK_DIR}/short.route
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "spnl_analyze accepted a mismatched route table")
endif()

# Unknown algorithm must fail cleanly.
execute_process(COMMAND ${SPNL_PARTITION} ${GRAPH} --k=8 --algo=bogus --quiet
                RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "bogus algo unexpectedly succeeded")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
