#include "engine/parallel_bsp.hpp"

#include <gtest/gtest.h>

#include "engine/algorithms.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/range_partitioner.hpp"

namespace spnl {
namespace {

std::vector<PartitionId> route_for(const Graph& g, PartitionId k) {
  PartitionConfig config{.num_partitions = k};
  RangePartitioner partitioner(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  return run_streaming(stream, partitioner).route;
}

/// Minimal copies of the algorithm programs (the library keeps them
/// internal); BFS via min-combiner is exactly order-insensitive, so the
/// threaded executor must match the sequential one bit-for-bit.
class BfsProgram final : public VertexProgram {
 public:
  explicit BfsProgram(VertexId source) : source_(source) {}
  bool init(VertexId v, const Graph&, double& value) override {
    value = v == source_ ? 0.0 : std::numeric_limits<double>::infinity();
    return v == source_;
  }
  std::optional<double> emit(VertexId, double value, const Graph&) override {
    return value + 1.0;
  }
  double combine(double a, double b) override { return std::min(a, b); }
  bool apply(VertexId, double& value, std::optional<double> inbox, int,
             const Graph&) override {
    if (inbox && *inbox < value) {
      value = *inbox;
      return true;
    }
    return false;
  }

 private:
  VertexId source_;
};

class PageRankProgram final : public VertexProgram {
 public:
  explicit PageRankProgram(int supersteps) : supersteps_(supersteps) {}
  bool init(VertexId, const Graph& graph, double& value) override {
    value = 1.0 / std::max<VertexId>(graph.num_vertices(), 1);
    return true;
  }
  std::optional<double> emit(VertexId v, double value, const Graph& graph) override {
    const EdgeId degree = graph.out_degree(v);
    if (degree == 0) return std::nullopt;
    return 0.85 * value / degree;
  }
  double combine(double a, double b) override { return a + b; }
  bool apply(VertexId, double& value, std::optional<double> inbox, int superstep,
             const Graph& graph) override {
    value = 0.15 / graph.num_vertices() + inbox.value_or(0.0);
    return superstep + 1 < supersteps_;
  }

 private:
  int supersteps_;
};

TEST(PartitionedGraphTest, ShardsCoverTheGraph) {
  const Graph g = generate_webcrawl({.num_vertices = 2000, .avg_out_degree = 6.0,
                                     .seed = 3});
  const auto route = route_for(g, 4);
  PartitionedGraph pg(g, route, 4);
  VertexId vertices = 0;
  EdgeId edges = 0;
  for (PartitionId p = 0; p < 4; ++p) {
    const GraphShard& shard = pg.shard(p);
    vertices += shard.num_local();
    edges += shard.internal_edges + shard.external_edges;
    // Shard adjacency matches the original per vertex.
    for (VertexId lv = 0; lv < shard.num_local(); ++lv) {
      const VertexId v = shard.global_ids[lv];
      ASSERT_EQ(shard.offsets[lv + 1] - shard.offsets[lv], g.out_degree(v));
      ASSERT_EQ(pg.owner(v), p);
      ASSERT_EQ(pg.local_id(v), lv);
    }
  }
  EXPECT_EQ(vertices, g.num_vertices());
  EXPECT_EQ(edges, g.num_edges());
}

TEST(PartitionedGraphTest, GhostsAreRemoteAndDeduplicated) {
  GraphBuilder builder(4);
  builder.add_edge(0, 2);
  builder.add_edge(0, 2);  // duplicate edge -> one ghost
  builder.add_edge(0, 3);
  builder.add_edge(1, 0);  // local under route below
  const Graph g = builder.finish();
  const std::vector<PartitionId> route = {0, 0, 1, 1};
  PartitionedGraph pg(g, route, 2);
  EXPECT_EQ(pg.shard(0).ghosts.size(), 2u);  // {2, 3}
  EXPECT_EQ(pg.shard(0).internal_edges, 1u);
  EXPECT_EQ(pg.shard(0).external_edges, 3u);
  EXPECT_EQ(pg.total_ghosts(), 2u);
}

TEST(PartitionedGraphTest, Validates) {
  const Graph g = generate_ring_lattice(10, 1);
  EXPECT_THROW(PartitionedGraph(g, {0, 1}, 2), std::invalid_argument);
  std::vector<PartitionId> bad(10, 7);
  EXPECT_THROW(PartitionedGraph(g, bad, 2), std::invalid_argument);
}

TEST(ParallelBsp, BfsMatchesSequentialExactly) {
  const Graph g = generate_webcrawl({.num_vertices = 5000, .avg_out_degree = 6.0,
                                     .locality = 0.85, .seed = 5});
  const auto route = route_for(g, 8);
  const auto sequential = bfs_depths(g, route, 8, 0);

  PartitionedGraph pg(g, route, 8);
  BfsProgram program(0);
  const auto parallel = run_bsp_parallel(
      g, pg, program, {.max_supersteps = static_cast<int>(g.num_vertices()) + 1});
  ASSERT_EQ(parallel.values.size(), sequential.values.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(parallel.values[v], sequential.values[v]) << "vertex " << v;
  }
  EXPECT_EQ(parallel.stats.supersteps, sequential.stats.supersteps);
  EXPECT_EQ(parallel.stats.local_messages, sequential.stats.local_messages);
  EXPECT_EQ(parallel.stats.remote_messages, sequential.stats.remote_messages);
}

TEST(ParallelBsp, PageRankMatchesSequentialNumerically) {
  const Graph g = generate_webcrawl({.num_vertices = 3000, .avg_out_degree = 8.0,
                                     .seed = 7});
  const auto route = route_for(g, 4);
  const auto sequential = pagerank(g, route, 4, 10);

  PartitionedGraph pg(g, route, 4);
  PageRankProgram program(10);
  const auto parallel = run_bsp_parallel(g, pg, program, {.max_supersteps = 10});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Summation order differs across partitions: allow reassociation error.
    ASSERT_NEAR(parallel.values[v], sequential.values[v], 1e-9) << "vertex " << v;
  }
  EXPECT_EQ(parallel.stats.remote_messages, sequential.stats.remote_messages);
}

TEST(ParallelBsp, SinglePartitionHasNoRemoteTraffic) {
  const Graph g = generate_ring_lattice(500, 2);
  const std::vector<PartitionId> route(500, 0);
  PartitionedGraph pg(g, route, 1);
  PageRankProgram program(5);
  const auto result = run_bsp_parallel(g, pg, program, {.max_supersteps = 5});
  EXPECT_EQ(result.stats.remote_messages, 0u);
  EXPECT_GT(result.stats.local_messages, 0u);
}

TEST(ParallelBsp, ManyPartitionsTerminate) {
  const Graph g = generate_webcrawl({.num_vertices = 2000, .avg_out_degree = 5.0,
                                     .seed = 9});
  const auto route = route_for(g, 16);
  PartitionedGraph pg(g, route, 16);
  BfsProgram program(0);
  const auto result = run_bsp_parallel(g, pg, program, {.max_supersteps = 3000});
  EXPECT_GT(result.stats.supersteps, 0);
  EXPECT_LT(result.stats.supersteps, 3000);
}

}  // namespace
}  // namespace spnl
