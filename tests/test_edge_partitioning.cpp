#include <gtest/gtest.h>

#include "edge/edge_partitioners.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 8000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.9, .locality_scale = 30.0,
                            .degree_alpha = 1.7, .seed = seed});
}

template <typename P, typename... Args>
EdgePartitionMetrics run(const Graph& g, PartitionId k, Args&&... args) {
  PartitionConfig config{.num_partitions = k};
  P partitioner(g.num_vertices(), g.num_edges(), config, std::forward<Args>(args)...);
  InMemoryStream stream(g);
  run_edge_streaming(stream, partitioner);
  return evaluate_edge_partition(partitioner, g.num_vertices());
}

TEST(ReplicaTableTest, TracksMaskAndTotals) {
  ReplicaTable table(4, 8);
  EXPECT_TRUE(table.add_replica(1, 3));
  EXPECT_FALSE(table.add_replica(1, 3));  // duplicate
  EXPECT_TRUE(table.add_replica(1, 5));
  EXPECT_EQ(table.replica_count(1), 2);
  EXPECT_TRUE(table.has_replica(1, 3));
  EXPECT_FALSE(table.has_replica(1, 0));
  EXPECT_EQ(table.total_replicas(), 2u);
}

TEST(ReplicaTableTest, RejectsKOver64) {
  EXPECT_THROW(ReplicaTable(4, 65), std::invalid_argument);
  EXPECT_THROW(ReplicaTable(4, 0), std::invalid_argument);
  ReplicaTable ok(4, 64);
  EXPECT_TRUE(ok.add_replica(0, 63));
}

TEST(EdgePartitioners, AllPlaceEveryEdgeAndStayBounded) {
  const Graph g = crawl();
  const PartitionId k = 8;
  const PartitionConfig config{.num_partitions = k};
  const EdgeId m = g.num_edges();

  auto check = [&](EdgePartitioner& partitioner, double balance_bound) {
    InMemoryStream stream(g);
    run_edge_streaming(stream, partitioner);
    const auto metrics = evaluate_edge_partition(partitioner, g.num_vertices());
    EXPECT_EQ(metrics.placed_edges, m);
    EXPECT_GE(metrics.replication_factor, 1.0);
    EXPECT_LE(metrics.replication_factor, static_cast<double>(k));
    EXPECT_LE(metrics.edge_balance, balance_bound) << partitioner.name();
  };

  HashEdgePartitioner hash(g.num_vertices(), m, config);
  check(hash, 1.3);
  DbhPartitioner dbh(g.num_vertices(), m, config);
  check(dbh, 1.6);
  GreedyEdgePartitioner greedy(g.num_vertices(), m, config);
  check(greedy, 1.3);
  HdrfPartitioner hdrf(g.num_vertices(), m, config);
  check(hdrf, 1.3);
  HdrfLPartitioner hdrfl(g.num_vertices(), m, config);
  check(hdrfl, 1.3);
}

TEST(EdgePartitioners, QualityOrdering) {
  // Classic result: hash has the worst RF; DBH improves it on skewed
  // graphs; greedy/HDRF improve it further.
  const Graph g = crawl(10000, 3);
  const auto hash = run<HashEdgePartitioner>(g, 16);
  const auto dbh = run<DbhPartitioner>(g, 16);
  const auto hdrf = run<HdrfPartitioner>(g, 16);
  EXPECT_LT(dbh.replication_factor, hash.replication_factor);
  EXPECT_LT(hdrf.replication_factor, dbh.replication_factor);
}

TEST(EdgePartitioners, LocalityVariantHelpsOnCrawlGraphs) {
  // The paper's future-work transplant: on a crawl-numbered graph the range
  // prior should reduce replication vs plain HDRF.
  const Graph g = generate_webcrawl({.num_vertices = 20000, .avg_out_degree = 8.0,
                                     .locality = 0.95, .locality_scale = 25.0,
                                     .seed = 5});
  const auto hdrf = run<HdrfPartitioner>(g, 16);
  const auto hdrfl = run<HdrfLPartitioner>(g, 16);
  EXPECT_LT(hdrfl.replication_factor, hdrf.replication_factor);
}

TEST(EdgePartitioners, Grid2dBoundsReplicationBySqrtK) {
  // The 2D guarantee: every vertex replicates to at most 2*side - 1 cells.
  const Graph g = crawl(5000, 11);
  const PartitionId k = 16;  // side = 4
  PartitionConfig config{.num_partitions = k};
  Grid2dPartitioner grid(g.num_vertices(), g.num_edges(), config);
  EXPECT_EQ(grid.grid_side(), 4u);
  InMemoryStream stream(g);
  run_edge_streaming(stream, grid);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(grid.replicas().replica_count(v), 2 * 4 - 1) << "vertex " << v;
  }
  const auto metrics = evaluate_edge_partition(grid, g.num_vertices());
  // Better than plain hash, worse than the greedy family on RF.
  const auto hash = run<HashEdgePartitioner>(g, k);
  EXPECT_LT(metrics.replication_factor, hash.replication_factor);
}

TEST(EdgePartitioners, Grid2dNonSquareKStillValid) {
  const Graph g = crawl(2000, 13);
  PartitionConfig config{.num_partitions = 7};  // side = 3, folded
  Grid2dPartitioner grid(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  run_edge_streaming(stream, grid);
  const auto metrics = evaluate_edge_partition(grid, g.num_vertices());
  EXPECT_EQ(metrics.placed_edges, g.num_edges());
}

TEST(EdgePartitioners, SingleEdgeGraph) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1);
  const Graph g = builder.finish();
  const auto metrics = run<GreedyEdgePartitioner>(g, 4);
  EXPECT_EQ(metrics.placed_edges, 1u);
  EXPECT_EQ(metrics.total_replicas, 2u);
  EXPECT_DOUBLE_EQ(metrics.replication_factor, 1.0);
}

TEST(EdgePartitioners, GreedyKeepsPairTogether) {
  // Repeated edges between the same endpoints land in the same partition.
  PartitionConfig config{.num_partitions = 8};
  GreedyEdgePartitioner greedy(10, 100, config);
  const PartitionId first = greedy.place_edge(1, 2);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(greedy.place_edge(1, 2), first);
}

TEST(EdgePartitioners, DeterministicRuns) {
  const Graph g = crawl(3000, 7);
  const auto a = run<HdrfPartitioner>(g, 8);
  const auto b = run<HdrfPartitioner>(g, 8);
  EXPECT_DOUBLE_EQ(a.replication_factor, b.replication_factor);
  EXPECT_EQ(a.total_replicas, b.total_replicas);
}

TEST(EdgePartitioners, MemoryFootprintsReported) {
  PartitionConfig config{.num_partitions = 8};
  HdrfPartitioner hdrf(100000, 0, config);
  DbhPartitioner dbh(100000, 0, config);
  EXPECT_GT(hdrf.memory_footprint_bytes(), 100000u * 8);
  EXPECT_GT(dbh.memory_footprint_bytes(), 100000u * 8);
}

TEST(EdgePartitioners, ReplicationFactorIgnoresIsolatedVertices) {
  GraphBuilder builder(10);  // vertices 2..9 isolated
  builder.add_edge(0, 1);
  const Graph g = builder.finish();
  const auto metrics = run<HashEdgePartitioner>(g, 4);
  EXPECT_DOUBLE_EQ(metrics.replication_factor, 1.0);
}

}  // namespace
}  // namespace spnl
