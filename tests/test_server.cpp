// Partitioning service internals: endpoint parsing, the frame codec's
// hostile-input behavior, session ingest idempotence and quarantine, the
// registry's admission control and reconciliation counters, and drain
// save/restore round trips. The full concurrent soak (50+ interleaved
// clients, SIGTERM mid-run) lives in test_server_soak.cpp.
#include "server/server.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/session.hpp"
#include "server/session_registry.hpp"
#include "util/net.hpp"

namespace spnl {
namespace {

// ---------------------------------------------------------------------------
// Endpoints.

TEST(Endpoint, ParsesUnixAndTcp) {
  const Endpoint u = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(u.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  EXPECT_EQ(u.describe(), "unix:/tmp/x.sock");

  const Endpoint t = Endpoint::parse("tcp:127.0.0.1:9000");
  EXPECT_EQ(t.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 9000);
}

TEST(Endpoint, RejectsMalformedSpecs) {
  EXPECT_THROW(Endpoint::parse(""), NetError);
  EXPECT_THROW(Endpoint::parse("bogus:/x"), NetError);
  EXPECT_THROW(Endpoint::parse("unix:"), NetError);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1"), NetError);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:notaport"), NetError);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:99999"), NetError);
}

TEST(Endpoint, RejectsTrailingGarbageInPort) {
  // Regression: the port went through std::stoul, which parses a numeric
  // prefix and ignores the rest — "tcp:host:80abc" bound port 80. The whole
  // token must be digits now.
  EXPECT_THROW(Endpoint::parse("tcp:host:80abc"), NetError);
  EXPECT_THROW(Endpoint::parse("tcp:host:8 0"), NetError);
  EXPECT_THROW(Endpoint::parse("tcp:host:-80"), NetError);
  EXPECT_THROW(Endpoint::parse("tcp:host:"), NetError);
  EXPECT_EQ(Endpoint::parse("tcp:host:80").port, 80);
}

// ---------------------------------------------------------------------------
// Frame codec over a real socketpair-style loopback listener.

class CodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Endpoint ep;
    ep.kind = Endpoint::Kind::kTcp;
    ep.host = "127.0.0.1";
    ep.port = 0;  // ephemeral
    listener_ = ListenSocket(ep);
    client_ = connect_endpoint(listener_.endpoint(), 2000);
    auto accepted = listener_.accept(2000);
    ASSERT_TRUE(accepted.has_value());
    server_ = std::move(*accepted);
  }

  ListenSocket listener_;
  Socket client_;
  Socket server_;
};

TEST_F(CodecTest, FrameRoundTrip) {
  StateWriter payload;
  payload.put_u64(7);
  payload.put_string("hello");
  write_frame(client_, MsgType::kOpen, payload, 2000);

  auto frame = read_frame(server_, 2000);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kOpen);
  EXPECT_EQ(frame->payload.get_u64(), 7u);
  EXPECT_EQ(frame->payload.get_string(), "hello");
}

TEST_F(CodecTest, CleanEofIsNullopt) {
  client_.close();
  bool timed_out = true;
  auto frame = read_frame(server_, 2000, &timed_out);
  EXPECT_FALSE(frame.has_value());
  EXPECT_FALSE(timed_out);  // orderly close, not a timeout
}

TEST_F(CodecTest, TimeoutIsNulloptWithFlag) {
  bool timed_out = false;
  auto frame = read_frame(server_, 30, &timed_out);
  EXPECT_FALSE(frame.has_value());
  EXPECT_TRUE(timed_out);
}

TEST_F(CodecTest, GarbageMagicIsProtocolError) {
  const char junk[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
  client_.write_all(junk, sizeof(junk), 2000);
  EXPECT_THROW(read_frame(server_, 2000), ProtocolError);
}

TEST_F(CodecTest, UnknownTypeIsProtocolError) {
  // Valid magic, hostile type byte 0xEE, zero-length payload.
  const unsigned char header[8] = {0x50, 0x53, 0xEE, 0x00, 0x00, 0x00, 0x00, 0x00};
  client_.write_all(header, sizeof(header), 2000);
  EXPECT_THROW(read_frame(server_, 2000), ProtocolError);
}

TEST_F(CodecTest, OversizedLengthIsProtocolError) {
  // Length field far above kMaxFrameBytes must be rejected before any
  // allocation — the classic allocation-of-death probe.
  unsigned char header[8] = {0x50, 0x53, 0x01, 0x00, 0xFF, 0xFF, 0xFF, 0xFF};
  client_.write_all(header, sizeof(header), 2000);
  EXPECT_THROW(read_frame(server_, 2000), ProtocolError);
}

TEST_F(CodecTest, TornPayloadIsNetError) {
  // Header promises 100 payload bytes; the peer dies after 10. EOF inside a
  // message must read as a torn frame (NetError), never as clean EOF.
  unsigned char header[8] = {0x50, 0x53, 0x01, 0x00, 100, 0x00, 0x00, 0x00};
  client_.write_all(header, sizeof(header), 2000);
  const char partial[10] = {};
  client_.write_all(partial, sizeof(partial), 2000);
  client_.close();
  EXPECT_THROW(read_frame(server_, 2000), NetError);
}

// ---------------------------------------------------------------------------
// Session: factory, idempotent ingest, quarantine, save/restore.

WireSessionConfig small_config(std::uint32_t k = 2) {
  WireSessionConfig config;
  config.algo = "ldg";
  config.num_vertices = 8;
  config.num_edges = 8;
  config.num_partitions = k;
  return config;
}

TEST(SessionFactory, RejectsBadConfigTyped) {
  WireSessionConfig bad = small_config();
  bad.algo = "quantum";
  try {
    make_session_partitioner(bad);
    FAIL() << "unknown algo accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), WireError::kBadConfig);
  }

  bad = small_config();
  bad.num_vertices = 0;
  EXPECT_THROW(make_session_partitioner(bad), ProtocolError);
  bad = small_config();
  bad.num_partitions = 0;
  EXPECT_THROW(make_session_partitioner(bad), ProtocolError);
  bad = small_config();
  bad.balance = 9;
  EXPECT_THROW(make_session_partitioner(bad), ProtocolError);
}

TEST(SessionFactory, BuildsEverySupportedAlgo) {
  for (const char* algo : {"spnl", "spn", "ldg", "fennel", "hash", "range"}) {
    WireSessionConfig config = small_config();
    config.algo = algo;
    EXPECT_NE(make_session_partitioner(config), nullptr) << algo;
  }
}

TEST(Session, IdempotentFeedDropsRetransmit) {
  Session session("tok", 1, small_config());
  const std::vector<VertexId> ids = {0, 1};
  const std::vector<std::uint32_t> degrees = {1, 1};
  const std::vector<VertexId> neighbors = {1, 0};
  EXPECT_EQ(session.feed(0, ids, degrees, neighbors), 2u);
  // Full retransmit of the same batch (torn-ack recovery): dropped, same
  // committed count, no double placement.
  EXPECT_EQ(session.feed(0, ids, degrees, neighbors), 2u);
  EXPECT_EQ(session.records_received(), 2u);

  const std::vector<VertexId> ids2 = {2, 3};
  const std::vector<VertexId> neighbors2 = {3, 2};
  EXPECT_EQ(session.feed(2, ids2, degrees, neighbors2), 4u);
}

TEST(Session, SequenceGapQuarantines) {
  Session session("tok", 1, small_config());
  const std::vector<VertexId> ids = {0};
  const std::vector<std::uint32_t> degrees = {0};
  try {
    session.feed(5, ids, degrees, {});  // skips ahead of committed count 0
    FAIL() << "gap accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), WireError::kSequenceGap);
  }
  EXPECT_EQ(session.state(), SessionState::kQuarantined);
  // A quarantined session rejects everything that follows.
  EXPECT_THROW(session.feed(0, ids, degrees, {}), ProtocolError);
  EXPECT_THROW(session.finish(0), ProtocolError);
  EXPECT_FALSE(session.attach());
}

TEST(Session, FinishVerifiesTotalAndIsIdempotent) {
  Session session("tok", 1, small_config());
  const std::vector<VertexId> ids = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::uint32_t> degrees(8, 0);
  session.feed(0, ids, degrees, {});
  const std::vector<PartitionId> route = session.finish(8);
  EXPECT_EQ(route.size(), 8u);
  // Re-finish (route refetch after a torn RouteDone) returns the same route.
  EXPECT_EQ(session.finish(8), route);
}

TEST(Session, FinishWithMissingRecordsQuarantines) {
  Session session("tok", 1, small_config());
  const std::vector<VertexId> ids = {0, 1};
  const std::vector<std::uint32_t> degrees = {0, 0};
  session.feed(0, ids, degrees, {});
  EXPECT_THROW(session.finish(8), ProtocolError);  // only 2 of 8 arrived
  EXPECT_EQ(session.state(), SessionState::kQuarantined);
}

TEST(Session, SingleWriterAttach) {
  Session session("tok", 1, small_config());
  EXPECT_TRUE(session.attach());
  EXPECT_FALSE(session.attach());  // second connection, same token
  session.detach();
  EXPECT_TRUE(session.attach());
}

TEST(Session, SaveRestoreContinuesByteIdentically) {
  // Feed half the records, checkpoint, restore, feed the rest — the final
  // route must equal an uninterrupted session's.
  WireSessionConfig config = small_config();
  config.algo = "spnl";
  config.num_vertices = 64;
  config.num_edges = 63;
  std::vector<VertexId> ids(64);
  std::vector<std::uint32_t> degrees(64);
  std::vector<VertexId> neighbors;
  for (VertexId v = 0; v < 64; ++v) {
    ids[v] = v;
    degrees[v] = v > 0 ? 1 : 0;
    if (v > 0) neighbors.push_back(v - 1);
  }
  auto feed_range = [&](Session& s, VertexId lo, VertexId hi) {
    std::vector<VertexId> part_ids(ids.begin() + lo, ids.begin() + hi);
    std::vector<std::uint32_t> part_deg(degrees.begin() + lo, degrees.begin() + hi);
    std::vector<VertexId> part_nbrs;
    for (VertexId v = lo; v < hi; ++v) {
      if (degrees[v] > 0) part_nbrs.push_back(v - 1);
    }
    s.feed(lo, part_ids, part_deg, part_nbrs);
  };

  Session uninterrupted("a", 1, config);
  feed_range(uninterrupted, 0, 64);
  const std::vector<PartitionId> expected = uninterrupted.finish(64);

  Session first("b", 2, config);
  feed_range(first, 0, 32);
  StateWriter out;
  first.save(out);

  StateReader in(out.bytes());
  std::unique_ptr<Session> second = Session::restore(in);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->token(), "b");
  EXPECT_EQ(second->records_received(), 32u);
  feed_range(*second, 32, 64);
  EXPECT_EQ(second->finish(64), expected);
}

// ---------------------------------------------------------------------------
// Registry: admission, reaping, reconciliation.

TEST(SessionRegistry, AdmissionCapsLiveSessions) {
  SessionRegistry registry({.max_sessions = 2, .memory_budget_bytes = 0}, 7);
  std::string reason;
  auto a = registry.open(small_config(), &reason);
  auto b = registry.open(small_config(), &reason);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->token(), b->token());

  auto c = registry.open(small_config(), &reason);
  EXPECT_EQ(c, nullptr);
  EXPECT_NE(reason.find("sessions"), std::string::npos) << reason;

  // Completing one frees a slot.
  registry.remove_completed(a->token());
  auto d = registry.open(small_config(), &reason);
  EXPECT_NE(d, nullptr);

  const RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.opened, 3u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.rejected_busy, 1u);
  EXPECT_EQ(stats.live, 2u);
  EXPECT_TRUE(stats.reconciles());
}

TEST(SessionRegistry, AdmissionEnforcesMemoryBudget) {
  // The budget is a hard cap on the summed partitioner footprint: a budget
  // sized for one session admits the first and rejects the second with a
  // "memory" reason; a 1-byte budget rejects even the first.
  WireSessionConfig config = small_config();
  config.algo = "spnl";
  config.num_vertices = 4096;
  const std::size_t one =
      make_session_partitioner(config)->memory_footprint_bytes();
  ASSERT_GT(one, 0u);

  SessionRegistry registry(
      {.max_sessions = 64, .memory_budget_bytes = one + one / 2}, 7);
  std::string reason;
  auto a = registry.open(config, &reason);
  ASSERT_NE(a, nullptr);
  auto b = registry.open(config, &reason);
  EXPECT_EQ(b, nullptr);
  EXPECT_NE(reason.find("memory"), std::string::npos) << reason;

  SessionRegistry strict({.max_sessions = 64, .memory_budget_bytes = 1}, 7);
  EXPECT_EQ(strict.open(config, &reason), nullptr);
  EXPECT_TRUE(strict.stats().reconciles());
}

TEST(SessionRegistry, ReapsOnlyIdleDetachedSessions) {
  SessionRegistry registry({.max_sessions = 8, .memory_budget_bytes = 0}, 7);
  std::string reason;
  auto idle = registry.open(small_config(), &reason);
  auto busy = registry.open(small_config(), &reason);
  ASSERT_NE(idle, nullptr);
  ASSERT_NE(busy, nullptr);
  busy->attach();  // an attached session is never reaped

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(registry.reap_idle(3600.0), 0u);  // neither is idle enough
  EXPECT_EQ(registry.reap_idle(0.01), 1u);    // idle-detached one goes
  EXPECT_EQ(registry.find(idle->token()), nullptr);
  EXPECT_NE(registry.find(busy->token()), nullptr);
  EXPECT_TRUE(registry.stats().reconciles());
}

TEST(SessionRegistry, UnknownTokenFindsNothing) {
  SessionRegistry registry({}, 7);
  EXPECT_EQ(registry.find("deadbeef"), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end over a live server: client library against SpnlServer.

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "spnl_server_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static ServerOptions loopback_options() {
    ServerOptions options;
    options.endpoint.kind = Endpoint::Kind::kTcp;
    options.endpoint.host = "127.0.0.1";
    options.endpoint.port = 0;
    options.idle_timeout_seconds = 5.0;
    options.read_timeout_seconds = 2.0;
    options.io_timeout_seconds = 2.0;
    return options;
  }

  std::filesystem::path dir_;
};

TEST_F(ServerTest, ClientRouteMatchesDirectRun) {
  const Graph graph = generate_webcrawl(
      {.num_vertices = 1500, .avg_out_degree = 5.0, .seed = 21});
  WireSessionConfig config;
  config.algo = "spnl";
  config.num_vertices = graph.num_vertices();
  config.num_edges = graph.num_edges();
  config.num_partitions = 4;

  // Ground truth: the sequential driver.
  InMemoryStream direct_stream(graph);
  auto direct = make_session_partitioner(config);
  const RunResult expected = run_streaming(direct_stream, *direct);

  SpnlServer server(loopback_options());
  server.start();

  ClientOptions copts;
  copts.endpoint = server.endpoint();
  SpnlClient client(copts);
  InMemoryStream stream(graph);
  const ClientRunResult run = client.partition(stream, config);
  EXPECT_EQ(run.route, expected.route);
  EXPECT_EQ(run.attempts, 1u);

  server.request_stop();
  server.wait();
  EXPECT_TRUE(server.stats().reconciles());
}

TEST_F(ServerTest, GarbageConnectionQuarantinesNothingElse) {
  // A connection that sends garbage after opening a session poisons only
  // that session; a well-behaved client on the same server is unaffected.
  SpnlServer server(loopback_options());
  server.start();

  {
    Socket attacker = connect_endpoint(server.endpoint(), 2000);
    StateWriter hello;
    hello.put_u32(kProtocolVersion);
    write_frame(attacker, MsgType::kHello, hello, 2000);
    ASSERT_TRUE(read_frame(attacker, 2000).has_value());  // HelloAck
    StateWriter open;
    small_config().save(open);
    write_frame(attacker, MsgType::kOpen, open, 2000);
    ASSERT_TRUE(read_frame(attacker, 2000).has_value());  // OpenAck
    const char junk[16] = {'g', 'a', 'r', 'b', 'a', 'g', 'e'};
    attacker.write_all(junk, sizeof(junk), 2000);
    // Server replies kError and quarantines; connection then closes.
    auto reply = read_frame(attacker, 2000);
    if (reply) EXPECT_EQ(reply->type, MsgType::kError);
  }

  const Graph graph = generate_webcrawl(
      {.num_vertices = 400, .avg_out_degree = 4.0, .seed = 5});
  WireSessionConfig config;
  config.algo = "ldg";
  config.num_vertices = graph.num_vertices();
  config.num_edges = graph.num_edges();
  config.num_partitions = 2;
  ClientOptions copts;
  copts.endpoint = server.endpoint();
  SpnlClient client(copts);
  InMemoryStream stream(graph);
  const ClientRunResult run = client.partition(stream, config);
  EXPECT_EQ(run.route.size(), graph.num_vertices());

  server.request_stop();
  server.wait();
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.protocol_errors, 1u);
  EXPECT_GE(stats.quarantined, 1u);
  EXPECT_TRUE(stats.reconciles());
}

TEST_F(ServerTest, BusyReplyCarriesRetryAfterAndClientWaits) {
  ServerOptions options = loopback_options();
  options.admission.max_sessions = 1;
  options.retry_after_ms = 50;
  // The abandoned occupier frees its slot via the idle reaper; keep both
  // timeouts tight so the waiting client converges fast.
  options.idle_timeout_seconds = 0.3;
  options.reaper_interval_seconds = 0.1;
  SpnlServer server(options);
  server.start();

  // Occupy the single slot with a raw half-open session.
  Socket occupier = connect_endpoint(server.endpoint(), 2000);
  StateWriter hello;
  hello.put_u32(kProtocolVersion);
  write_frame(occupier, MsgType::kHello, hello, 2000);
  ASSERT_TRUE(read_frame(occupier, 2000).has_value());
  StateWriter open;
  small_config().save(open);
  write_frame(occupier, MsgType::kOpen, open, 2000);
  auto ack = read_frame(occupier, 2000);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, MsgType::kOpenAck);

  // A second client sees Busy, backs off, and succeeds once the slot frees.
  const Graph graph = generate_webcrawl(
      {.num_vertices = 300, .avg_out_degree = 4.0, .seed = 9});
  WireSessionConfig config;
  config.algo = "hash";
  config.num_vertices = graph.num_vertices();
  config.num_edges = graph.num_edges();
  config.num_partitions = 2;
  ClientOptions copts;
  copts.endpoint = server.endpoint();
  copts.deadline_seconds = 30.0;
  SpnlClient client(copts);
  InMemoryStream stream(graph);

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    // Bye detaches the occupying session; the idle reaper then frees the
    // admission slot for the waiting client.
    write_frame(occupier, MsgType::kBye, 2000);
    occupier.close();
  });

  const ClientRunResult run = client.partition(stream, config);
  releaser.join();
  EXPECT_EQ(run.route.size(), graph.num_vertices());
  EXPECT_GE(run.busy_retries, 1u);

  server.request_stop();
  server.wait();
  EXPECT_GE(server.stats().rejected_busy, 1u);
}

TEST_F(ServerTest, DrainCheckpointsAndRestoreResumes) {
  // Open a session, feed half the records, drain the server; a second
  // server on the same drain_dir restores it and the client-side resume
  // completes with a route identical to an uninterrupted run.
  const Graph graph = generate_webcrawl(
      {.num_vertices = 800, .avg_out_degree = 4.0, .seed = 13});
  WireSessionConfig config;
  config.algo = "spnl";
  config.num_vertices = graph.num_vertices();
  config.num_edges = graph.num_edges();
  config.num_partitions = 4;

  InMemoryStream direct_stream(graph);
  auto direct = make_session_partitioner(config);
  const RunResult expected = run_streaming(direct_stream, *direct);

  ServerOptions options = loopback_options();
  options.drain_dir = (dir_ / "drain").string();
  SpnlServer first(options);
  first.start();

  // Drive the first half by hand so we control exactly when the drain hits.
  Socket conn = connect_endpoint(first.endpoint(), 2000);
  StateWriter hello;
  hello.put_u32(kProtocolVersion);
  write_frame(conn, MsgType::kHello, hello, 2000);
  ASSERT_TRUE(read_frame(conn, 2000).has_value());
  StateWriter open;
  config.save(open);
  write_frame(conn, MsgType::kOpen, open, 2000);
  auto ack = read_frame(conn, 2000);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, MsgType::kOpenAck);
  const std::string token = ack->payload.get_string();

  InMemoryStream stream(graph);
  std::vector<VertexId> ids;
  std::vector<std::uint32_t> degrees;
  std::vector<VertexId> neighbors;
  const VertexId half = graph.num_vertices() / 2;
  for (VertexId v = 0; v < half; ++v) {
    auto record = stream.next();
    ASSERT_TRUE(record.has_value());
    ids.push_back(record->id);
    degrees.push_back(static_cast<std::uint32_t>(record->out.size()));
    neighbors.insert(neighbors.end(), record->out.begin(), record->out.end());
  }
  StateWriter records;
  records.put_u64(0);
  records.put_vec(ids);
  records.put_vec(degrees);
  records.put_vec(neighbors);
  write_frame(conn, MsgType::kRecords, records, 2000);
  auto rack = read_frame(conn, 2000);
  ASSERT_TRUE(rack.has_value());
  ASSERT_EQ(rack->type, MsgType::kRecordsAck);
  EXPECT_EQ(rack->payload.get_u64(), half);
  conn.close();  // detach; the session stays live

  first.request_drain();
  first.wait();
  const ServerStats drained = first.stats();
  EXPECT_EQ(drained.sessions_checkpointed_on_drain, 1u);
  EXPECT_EQ(drained.drained, 1u);
  EXPECT_TRUE(drained.reconciles());
  ASSERT_FALSE(std::filesystem::is_empty(options.drain_dir));

  // Second generation: restore and let the client library resume by token.
  SpnlServer second(options);
  second.start();
  EXPECT_EQ(second.stats().sessions_restored_from_drain, 1u);

  Socket conn2 = connect_endpoint(second.endpoint(), 2000);
  write_frame(conn2, MsgType::kHello, hello, 2000);
  ASSERT_TRUE(read_frame(conn2, 2000).has_value());
  StateWriter resume;
  resume.put_string(token);
  write_frame(conn2, MsgType::kResume, resume, 2000);
  auto resume_ack = read_frame(conn2, 2000);
  ASSERT_TRUE(resume_ack.has_value());
  ASSERT_EQ(resume_ack->type, MsgType::kResumeAck);
  EXPECT_EQ(resume_ack->payload.get_u64(), half);

  ids.clear();
  degrees.clear();
  neighbors.clear();
  while (auto record = stream.next()) {
    ids.push_back(record->id);
    degrees.push_back(static_cast<std::uint32_t>(record->out.size()));
    neighbors.insert(neighbors.end(), record->out.begin(), record->out.end());
  }
  StateWriter rest;
  rest.put_u64(half);
  rest.put_vec(ids);
  rest.put_vec(degrees);
  rest.put_vec(neighbors);
  write_frame(conn2, MsgType::kRecords, rest, 2000);
  ASSERT_TRUE(read_frame(conn2, 2000).has_value());
  StateWriter finish;
  finish.put_u64(graph.num_vertices());
  write_frame(conn2, MsgType::kFinish, finish, 2000);

  std::vector<PartitionId> route(graph.num_vertices(), kUnassigned);
  for (;;) {
    auto frame = read_frame(conn2, 5000);
    ASSERT_TRUE(frame.has_value());
    if (frame->type == MsgType::kRouteDone) {
      EXPECT_EQ(frame->payload.get_u64(), route.size());
      EXPECT_EQ(frame->payload.get_u32(),
                crc32(route.data(), route.size() * sizeof(PartitionId)));
      break;
    }
    ASSERT_EQ(frame->type, MsgType::kRouteChunk);
    const std::uint64_t offset = frame->payload.get_u64();
    const auto chunk = frame->payload.get_vec<PartitionId>();
    ASSERT_LE(offset + chunk.size(), route.size());
    std::copy(chunk.begin(), chunk.end(), route.begin() + offset);
  }
  EXPECT_EQ(route, expected.route);

  second.request_stop();
  second.wait();
  EXPECT_TRUE(second.stats().reconciles());
}

TEST_F(ServerTest, CorruptDrainCheckpointIsSkippedNotFatal) {
  ServerOptions options = loopback_options();
  options.drain_dir = (dir_ / "drain").string();
  std::filesystem::create_directories(options.drain_dir);
  {
    std::ofstream torn(options.drain_dir + "/deadbeef.ckpt", std::ios::binary);
    torn.write("not a checkpoint", 16);
  }
  SpnlServer server(options);
  server.start();  // must not throw
  EXPECT_EQ(server.stats().sessions_restored_from_drain, 0u);
  EXPECT_TRUE(
      std::filesystem::exists(options.drain_dir + "/deadbeef.ckpt.corrupt"));
  server.request_stop();
  server.wait();
}

}  // namespace
}  // namespace spnl
