// Golden regression tests: exact cut-edge counts for fixed seeds and
// configurations, snapshotted from a known-good build. Any change to the
// generators, scoring rules, tie-breaking or capacity handling shows up
// here immediately.
//
// These values depend on IEEE-754 double arithmetic being evaluated
// identically; if a platform's FP contraction differs, re-snapshot rather
// than loosen (the point is bit-stability on a fixed toolchain).
#include <gtest/gtest.h>

#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/datasets.hpp"
#include "partition/driver.hpp"
#include "partition/fennel.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

struct Golden {
  const char* dataset;
  const char* partitioner;
  EdgeId cut_edges;
};

constexpr Golden kGolden[] = {
    {"stanford", "LDG", 29259},   {"stanford", "FENNEL", 41111},
    {"stanford", "SPN", 19803},   {"stanford", "SPNL", 20007},
    {"uk2002", "LDG", 33967},     {"uk2002", "FENNEL", 100522},
    {"uk2002", "SPN", 28763},     {"uk2002", "SPNL", 28404},
};

class GoldenRegression : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenRegression, CutEdgesMatchSnapshot) {
  const Golden golden = GetParam();
  const Graph graph = load_dataset(dataset_by_name(golden.dataset), 0.25);
  const PartitionConfig config{.num_partitions = 16};
  std::unique_ptr<StreamingPartitioner> partitioner;
  const std::string name = golden.partitioner;
  if (name == "LDG") {
    partitioner = std::make_unique<LdgPartitioner>(graph.num_vertices(),
                                                   graph.num_edges(), config);
  } else if (name == "FENNEL") {
    partitioner = std::make_unique<FennelPartitioner>(graph.num_vertices(),
                                                      graph.num_edges(), config);
  } else if (name == "SPN") {
    partitioner = std::make_unique<SpnPartitioner>(graph.num_vertices(),
                                                   graph.num_edges(), config);
  } else {
    partitioner = std::make_unique<SpnlPartitioner>(graph.num_vertices(),
                                                    graph.num_edges(), config);
  }
  InMemoryStream stream(graph);
  const auto route = run_streaming(stream, *partitioner).route;
  EXPECT_EQ(evaluate_partition(graph, route, 16).cut_edges, golden.cut_edges);
}

INSTANTIATE_TEST_SUITE_P(Snapshots, GoldenRegression, ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           return std::string(info.param.dataset) + "_" +
                                  info.param.partitioner;
                         });

}  // namespace
}  // namespace spnl
