#include "core/rct.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace spnl {
namespace {

OwnedVertexRecord record(VertexId id, std::vector<VertexId> out = {}) {
  return {id, std::move(out)};
}

TEST(Rct, RegisterAndCapacity) {
  Rct rct(2);
  EXPECT_TRUE(rct.register_vertex(1));
  EXPECT_TRUE(rct.register_vertex(2));
  EXPECT_FALSE(rct.register_vertex(3));  // full
  EXPECT_EQ(rct.size(), 2u);
}

TEST(Rct, DuplicateRegistrationRejected) {
  Rct rct(4);
  EXPECT_TRUE(rct.register_vertex(1));
  EXPECT_FALSE(rct.register_vertex(1));
}

TEST(Rct, BumpOnlyAffectsInFlight) {
  Rct rct(4);
  rct.register_vertex(1);
  rct.bump_if_present(1);
  rct.bump_if_present(2);  // not registered: dropped
  EXPECT_EQ(rct.count(1), 1u);
  EXPECT_EQ(rct.count(2), 0u);
}

TEST(Rct, MeanNonzeroCount) {
  Rct rct(8);
  rct.register_vertex(1);
  rct.register_vertex(2);
  rct.register_vertex(3);
  rct.bump_if_present(1);
  rct.bump_if_present(1);
  rct.bump_if_present(1);
  rct.bump_if_present(2);
  // counters: 3, 1, 0 -> mean of non-zero = 2.
  EXPECT_DOUBLE_EQ(rct.mean_nonzero_count(), 2.0);
}

TEST(Rct, ShouldDelayUsesThreshold) {
  Rct rct(8);
  rct.register_vertex(1);
  rct.register_vertex(2);
  rct.bump_if_present(1);
  rct.bump_if_present(1);
  rct.bump_if_present(2);
  // mean = 1.5; vertex 1 (count 2) delayed, vertex 2 (count 1) not.
  EXPECT_TRUE(rct.should_delay(1));
  EXPECT_FALSE(rct.should_delay(2));
  EXPECT_FALSE(rct.should_delay(99));  // untracked
}

TEST(Rct, PlacementDecrementsAndReleases) {
  // Fig. 6 scenario: vertex 1 depends on 2, 3, 4 (they are its in-flight
  // in-neighbors). Parking 1, then placing 2-4 releases it.
  Rct rct(8);
  for (VertexId v : {1u, 2u, 3u, 4u}) rct.register_vertex(v);
  // Scoring 2, 3, 4: each has out-edge to 1.
  rct.bump_if_present(1);
  rct.bump_if_present(1);
  rct.bump_if_present(1);
  ASSERT_TRUE(rct.should_delay(1));
  EXPECT_TRUE(rct.park(record(1, {})));

  EXPECT_TRUE(rct.on_placed(2, std::vector<VertexId>{1}).empty());
  EXPECT_TRUE(rct.on_placed(3, std::vector<VertexId>{1}).empty());
  const auto released = rct.on_placed(4, std::vector<VertexId>{1});
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].id, 1u);
  EXPECT_EQ(rct.parked_size(), 0u);
}

TEST(Rct, ParkFailsWhenUntracked) {
  Rct rct(4);
  auto r = record(9, {1, 2});
  EXPECT_FALSE(rct.park(std::move(r)));
  // Failed park leaves the record usable.
  EXPECT_EQ(r.id, 9u);
  EXPECT_EQ(r.out.size(), 2u);
}

TEST(Rct, ParkCapacityBound) {
  Rct rct(1);
  rct.register_vertex(1);
  EXPECT_TRUE(rct.park(record(1)));
  // Parked set is at capacity 1 now.
  auto r2 = record(1);
  EXPECT_FALSE(rct.park(std::move(r2)));
}

TEST(Rct, DrainParkedSortedById) {
  Rct rct(8);
  for (VertexId v : {5u, 2u, 9u}) {
    rct.register_vertex(v);
    rct.bump_if_present(v);
    EXPECT_TRUE(rct.park(record(v)));
  }
  const auto rest = rct.drain_parked();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0].id, 2u);
  EXPECT_EQ(rest[1].id, 5u);
  EXPECT_EQ(rest[2].id, 9u);
  EXPECT_EQ(rct.parked_size(), 0u);
}

TEST(Rct, PlacedVertexWithNonzeroCounterKeepsStatsConsistent) {
  Rct rct(8);
  rct.register_vertex(1);
  rct.register_vertex(2);
  rct.bump_if_present(1);
  // Place 1 while its own counter is non-zero: stats must not go stale.
  rct.on_placed(1, std::vector<VertexId>{});
  EXPECT_DOUBLE_EQ(rct.mean_nonzero_count(), 0.0);
  rct.bump_if_present(2);
  EXPECT_DOUBLE_EQ(rct.mean_nonzero_count(), 1.0);
}

TEST(Rct, ConcurrentBumpAndPlace) {
  Rct rct(64);
  for (VertexId v = 0; v < 32; ++v) rct.register_vertex(v);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        rct.bump_if_present(static_cast<VertexId>((t * 7 + i) % 32));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::uint64_t total = 0;
  for (VertexId v = 0; v < 32; ++v) total += rct.count(v);
  EXPECT_EQ(total, 4000u);
}

TEST(Rct, ZeroCapacityClampsToOne) {
  Rct rct(0);
  EXPECT_EQ(rct.capacity(), 1u);
  EXPECT_TRUE(rct.register_vertex(1));
  EXPECT_FALSE(rct.register_vertex(2));
}

TEST(Rct, RecommendedShardsIsNextPow2) {
  EXPECT_EQ(Rct::recommended_shards(0), 1u);
  EXPECT_EQ(Rct::recommended_shards(1), 1u);
  EXPECT_EQ(Rct::recommended_shards(3), 4u);
  EXPECT_EQ(Rct::recommended_shards(8), 8u);
  EXPECT_EQ(Rct::recommended_shards(9), 16u);
}

TEST(Rct, ShardedSemanticsMatchSingleShard) {
  // The Fig. 6 release scenario must behave identically regardless of the
  // stripe count: sharding is a locking strategy, not a semantic change.
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    Rct rct(32, shards);
    EXPECT_EQ(rct.num_shards(), shards);
    for (VertexId v : {1u, 2u, 3u, 4u}) ASSERT_TRUE(rct.register_vertex(v));
    rct.bump_if_present(1);
    rct.bump_if_present(1);
    rct.bump_if_present(1);
    ASSERT_TRUE(rct.should_delay(1)) << "shards=" << shards;
    ASSERT_TRUE(rct.park(record(1, {})));
    EXPECT_TRUE(rct.on_placed(2, std::vector<VertexId>{1}).empty());
    EXPECT_TRUE(rct.on_placed(3, std::vector<VertexId>{1}).empty());
    const auto released = rct.on_placed(4, std::vector<VertexId>{1});
    ASSERT_EQ(released.size(), 1u) << "shards=" << shards;
    EXPECT_EQ(released[0].id, 1u);
    EXPECT_EQ(rct.parked_size(), 0u);
    rct.on_placed(1, std::vector<VertexId>{});
    EXPECT_EQ(rct.size(), 0u);
    EXPECT_DOUBLE_EQ(rct.mean_nonzero_count(), 0.0);
  }
}

TEST(Rct, UntrackedOverflowIsCounted) {
  Rct rct(2);
  EXPECT_TRUE(rct.register_vertex(1));
  EXPECT_TRUE(rct.register_vertex(2));
  EXPECT_EQ(rct.untracked_overflow(), 0u);
  EXPECT_FALSE(rct.register_vertex(3));  // full table: silent degradation
  EXPECT_FALSE(rct.register_vertex(4));
  EXPECT_EQ(rct.untracked_overflow(), 2u);
  // A duplicate rejection is a protocol error, not an overflow.
  rct.on_placed(1, std::vector<VertexId>{});
  EXPECT_FALSE(rct.register_vertex(2));
  EXPECT_EQ(rct.untracked_overflow(), 2u);
}

TEST(Rct, ShardedCapacityIsGlobalNotPerStripe) {
  // Regression (BENCH_parallel.json M=4 overflow spike): capacity used to be
  // split evenly across stripes, so a capacity-8 table with 4 shards refused
  // the third vertex landing on one stripe even though the table held only 3
  // entries total. Admission is a single global ticket now — any id mix up
  // to `capacity` registers, regardless of how it stripes.
  Rct rct(8, 4);
  // All of these hash to stripe 0 (v & 3 == 0): 6 > 8/4 = 2 per-shard quota.
  for (VertexId v : {0u, 4u, 8u, 12u, 16u, 20u}) {
    ASSERT_TRUE(rct.register_vertex(v)) << "v=" << v;
  }
  EXPECT_EQ(rct.size(), 6u);
  EXPECT_EQ(rct.untracked_overflow(), 0u);
  // The global bound still holds exactly.
  ASSERT_TRUE(rct.register_vertex(24));
  ASSERT_TRUE(rct.register_vertex(28));
  EXPECT_FALSE(rct.register_vertex(32));
  EXPECT_EQ(rct.untracked_overflow(), 1u);
  // Placement frees a slot for a new registrant.
  rct.on_placed(0, std::vector<VertexId>{});
  EXPECT_TRUE(rct.register_vertex(32));
}

TEST(Rct, ParkCapacityIsGlobalNotPerStripe) {
  Rct rct(8, 4);
  for (VertexId v : {0u, 4u, 8u, 12u}) {
    ASSERT_TRUE(rct.register_vertex(v));
    ASSERT_TRUE(rct.park(record(v))) << "v=" << v;
  }
  EXPECT_EQ(rct.parked_size(), 4u);
}

TEST(Rct, ShardedSnapshotRestoreRoundTrip) {
  Rct rct(16, 4);
  for (VertexId v : {3u, 7u, 11u, 12u}) ASSERT_TRUE(rct.register_vertex(v));
  rct.bump_if_present(3);
  rct.bump_if_present(3);
  rct.bump_if_present(7);
  ASSERT_TRUE(rct.park(record(3, {7, 11})));
  ASSERT_TRUE(rct.park(record(7, {12})));
  const auto snapshot = rct.snapshot_parked();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].id, 3u);
  EXPECT_EQ(snapshot[0].counter, 2u);
  EXPECT_EQ(snapshot[1].id, 7u);
  EXPECT_EQ(snapshot[1].counter, 1u);

  // Restore into a DIFFERENT stripe/capacity layout (resume with fewer
  // workers): must be lossless, including the dependency counters.
  Rct resumed(2, 1);
  resumed.restore_parked(snapshot);
  EXPECT_EQ(resumed.parked_size(), 2u);
  EXPECT_EQ(resumed.count(3), 2u);
  EXPECT_EQ(resumed.count(7), 1u);
  EXPECT_DOUBLE_EQ(resumed.mean_nonzero_count(), 1.5);
  const auto drained = resumed.drain_parked();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].id, 3u);
  EXPECT_EQ(drained[0].out, (std::vector<VertexId>{7, 11}));
  EXPECT_EQ(drained[1].id, 7u);
}

TEST(Rct, RestoreIntoNonEmptyTableThrows) {
  Rct rct(8, 2);
  rct.register_vertex(1);
  std::vector<Rct::ParkedState> parked;
  parked.push_back({2, 1, {}});
  EXPECT_THROW(rct.restore_parked(std::move(parked)), std::logic_error);
}

TEST(Rct, StripedModeMatchesLockFreeSemantics) {
  // The hot-path locking discipline (lock-free CAS claims vs exclusive
  // stripe locks) must be invisible to the dependency protocol: the Fig. 6
  // park/release scenario behaves identically in both modes.
  for (const RctMode mode : {RctMode::kLockFree, RctMode::kStriped}) {
    Rct rct(32, 4, mode);
    EXPECT_EQ(rct.mode(), mode);
    for (VertexId v : {1u, 2u, 3u, 4u}) ASSERT_TRUE(rct.register_vertex(v));
    EXPECT_FALSE(rct.register_vertex(1));  // duplicate
    rct.bump_if_present(1);
    rct.bump_if_present(1);
    rct.bump_if_present(1);
    EXPECT_EQ(rct.count(1), 3u);
    ASSERT_TRUE(rct.should_delay(1));
    ASSERT_TRUE(rct.park(record(1, {})));
    EXPECT_TRUE(rct.on_placed(2, std::vector<VertexId>{1}).empty());
    EXPECT_TRUE(rct.on_placed(3, std::vector<VertexId>{1}).empty());
    const auto released = rct.on_placed(4, std::vector<VertexId>{1});
    ASSERT_EQ(released.size(), 1u) << "mode=" << static_cast<int>(mode);
    EXPECT_EQ(released[0].id, 1u);
    rct.on_placed(1, std::vector<VertexId>{});
    EXPECT_EQ(rct.size(), 0u);
    EXPECT_DOUBLE_EQ(rct.mean_nonzero_count(), 0.0);
  }
}

TEST(Rct, LockFreeClaimGrowsTableAndStaysFindable) {
  // Regression for the claim-path growth handoff: capacity 64 over 4 shards
  // sizes each table at 32 slots, and every id below hashes to shard 0
  // (v % 4 == 0), so past 16 entries the CAS claim hits the load limit and
  // must fall to the exclusive grow path — RELEASING the shared lock first
  // (upgrading in place would self-deadlock) and re-probing for a duplicate
  // after reacquisition. Every entry must survive the rehash with its
  // counter intact.
  Rct rct(64, 4, RctMode::kLockFree);
  for (VertexId i = 0; i < 64; ++i) {
    ASSERT_TRUE(rct.register_vertex(i * 4)) << "i=" << i;
  }
  EXPECT_EQ(rct.size(), 64u);
  for (VertexId i = 0; i < 64; ++i) {
    rct.bump_if_present(i * 4);
    EXPECT_EQ(rct.count(i * 4), 1u) << "i=" << i;
  }
  // Re-registration of grown-in entries must still be rejected as duplicate.
  EXPECT_EQ(rct.untracked_overflow(), 0u);
  for (VertexId i = 0; i < 64; ++i) {
    rct.on_placed(i * 4, std::vector<VertexId>{});
  }
  EXPECT_EQ(rct.size(), 0u);
  EXPECT_DOUBLE_EQ(rct.mean_nonzero_count(), 0.0);
}

TEST(Rct, ConcurrentLockFreeClaimStormRegistersEveryId) {
  // 8 threads CAS-claim 128 distinct ids each into a 4-shard table; every
  // claim must succeed exactly once (capacity equals the id count) and the
  // entry count must land exactly — a lost claim or a double count shows up
  // directly. Interleaved bumps exercise the freshly claimed slots' empty-
  // slot invariant (counter starts at 0, no stale residue from prior
  // occupancy).
  constexpr int kThreads = 8;
  constexpr VertexId kPerThread = 128;
  Rct rct(kThreads * kPerThread, 4, RctMode::kLockFree);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const VertexId base = static_cast<VertexId>(t) * kPerThread;
      for (VertexId i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(rct.register_vertex(base + i));
        rct.bump_if_present(base + i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(rct.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(rct.untracked_overflow(), 0u);
  std::uint64_t total = 0;
  for (VertexId v = 0; v < kThreads * kPerThread; ++v) total += rct.count(v);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(rct.mean_nonzero_count(), 1.0);
}

TEST(Rct, ContentionCountersDistinguishModes) {
  // Deterministic structural property, independent of core count: striped
  // mode pays one exclusive acquisition per operation, lock-free mode only
  // on the structural slow paths (insert fallback, erase, park).
  auto run_ops = [](RctMode mode) {
    Rct rct(64, 1, mode);
    for (VertexId v = 0; v < 32; ++v) rct.register_vertex(v);
    for (VertexId v = 0; v < 32; ++v) rct.bump_if_present(v);
    for (VertexId v = 0; v < 32; ++v) rct.on_placed(v, std::vector<VertexId>{});
    return rct.exclusive_acquires();
  };
  const std::uint64_t lockfree = run_ops(RctMode::kLockFree);
  const std::uint64_t striped = run_ops(RctMode::kStriped);
  EXPECT_LT(lockfree, striped);
  PerfStats perf;
  Rct rct(8, 1, RctMode::kStriped);
  rct.register_vertex(1);
  rct.merge_contention_into(perf);
  EXPECT_GT(perf.count(PerfCounter::kRctExclusiveAcquires), 0u);
}

TEST(Rct, ShardedConcurrentRegisterBumpPlaceStress) {
  // 4 threads churn register/bump/park/place over a sharded table; the
  // relaxed-atomic statistics must drain back to exactly zero when every
  // vertex has been placed — any lost or double-counted transition shows up
  // as a non-zero residue.
  Rct rct(256, 4);
  constexpr int kThreads = 4;
  constexpr VertexId kPerThread = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const VertexId base = static_cast<VertexId>(t) * kPerThread;
      for (VertexId i = 0; i < kPerThread; ++i) {
        const VertexId v = base + i;
        ASSERT_TRUE(rct.register_vertex(v));
        // Bump a neighbor owned by another thread (cross-shard traffic).
        const VertexId u = (v + kPerThread) % (kThreads * kPerThread);
        rct.bump_if_present(u);
        rct.bump_if_present(u);
      }
      for (VertexId i = 0; i < kPerThread; ++i) {
        const VertexId v = base + i;
        const VertexId u = (v + kPerThread) % (kThreads * kPerThread);
        rct.on_placed(v, std::vector<VertexId>{u});
        rct.on_placed(v, std::vector<VertexId>{});  // second call: no-op
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Everything placed: decrements may miss already-placed neighbors (their
  // entries are gone — same as the single-lock table), but sum/count must
  // still be consistent with the surviving entries, which is none.
  EXPECT_EQ(rct.size(), 0u);
  EXPECT_EQ(rct.parked_size(), 0u);
  EXPECT_EQ(rct.untracked_overflow(), 0u);
  EXPECT_DOUBLE_EQ(rct.mean_nonzero_count(), 0.0);
}

}  // namespace
}  // namespace spnl
