#include "core/gamma_table.hpp"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "core/concurrent_gamma.hpp"
#include "util/rng.hpp"

namespace spnl {
namespace {

TEST(GammaWindow, FullTableWhenXIsOne) {
  GammaWindow gamma(100, 4, 1);
  EXPECT_EQ(gamma.window_size(), 100u);
  gamma.increment(2, 99);
  EXPECT_EQ(gamma.get(2, 99), 1u);
  EXPECT_EQ(gamma.get(1, 99), 0u);
}

TEST(GammaWindow, WindowSizeIsCeilOfNOverX) {
  EXPECT_EQ(GammaWindow(100, 2, 3).window_size(), 34u);
  EXPECT_EQ(GammaWindow(100, 2, 100).window_size(), 1u);
  EXPECT_EQ(GammaWindow(7, 2, 2).window_size(), 4u);
}

TEST(GammaWindow, IncrementsOutsideWindowDropped) {
  GammaWindow gamma(100, 2, 10);  // window [0, 10)
  gamma.increment(0, 50);         // ahead of window: dropped
  gamma.advance_to(45);           // window [45, 55)
  EXPECT_EQ(gamma.get(0, 50), 0u);
  gamma.increment(0, 50);
  EXPECT_EQ(gamma.get(0, 50), 1u);
  gamma.increment(0, 44);  // behind window: dropped
  EXPECT_EQ(gamma.get(0, 44), 0u);
}

TEST(GammaWindow, FineGrainedSlideRetiresOneSlot) {
  GammaWindow gamma(100, 1, 10);  // window [0, 10)
  gamma.increment(0, 3);
  gamma.increment(0, 9);
  gamma.advance_to(1);  // window [1, 11): id 0 retired, id 10 fresh
  EXPECT_EQ(gamma.get(0, 3), 1u);
  EXPECT_EQ(gamma.get(0, 9), 1u);
  EXPECT_EQ(gamma.get(0, 10), 0u);
  gamma.increment(0, 10);
  EXPECT_EQ(gamma.get(0, 10), 1u);
}

TEST(GammaWindow, SlotReuseIsZeroed) {
  GammaWindow gamma(100, 1, 10);  // W = 10; ids 0 and 10 share a slot
  gamma.increment(0, 0);
  EXPECT_EQ(gamma.get(0, 0), 1u);
  gamma.advance_to(5);  // id 0 retired; its slot now belongs to id 10
  EXPECT_EQ(gamma.get(0, 10), 0u);
}

TEST(GammaWindow, BulkAdvanceClearsEverything) {
  GammaWindow gamma(1000, 2, 10);  // W = 100
  for (VertexId u = 0; u < 100; ++u) gamma.increment(1, u);
  gamma.advance_to(500);  // jump farther than W
  for (VertexId u = 500; u < 600; ++u) EXPECT_EQ(gamma.get(1, u), 0u);
}

TEST(GammaWindow, NeverMovesBackwards) {
  GammaWindow gamma(100, 1, 10);
  gamma.advance_to(50);
  gamma.advance_to(20);  // ignored
  EXPECT_EQ(gamma.base(), 50u);
}

TEST(GammaWindow, RowSpansAllPartitions) {
  GammaWindow gamma(100, 5, 10);
  gamma.increment(3, 4);
  gamma.increment(3, 4);
  const auto row = gamma.row(4);
  ASSERT_EQ(row.size(), 5u);
  EXPECT_EQ(row[3], 2u);
  EXPECT_EQ(row[0], 0u);
  EXPECT_TRUE(gamma.row(50).empty());  // outside window
}

TEST(GammaWindow, MatchesReferenceDictionaryWithinWindow) {
  // Property check: sliding-window counters agree with an exact dictionary
  // restricted to the window, under a random increment/advance workload.
  const VertexId n = 500;
  const PartitionId k = 4;
  GammaWindow gamma(n, k, 25);  // W = 20
  std::map<std::pair<PartitionId, VertexId>, std::uint32_t> reference;
  Rng rng(99);
  VertexId head = 0;
  for (int step = 0; step < 5000; ++step) {
    if (rng.next_bool(0.2) && head < n - 1) {
      head += static_cast<VertexId>(1 + rng.next_below(3));
      if (head >= n) head = n - 1;
      gamma.advance_to(head);
    }
    const auto p = static_cast<PartitionId>(rng.next_below(k));
    const auto u = static_cast<VertexId>(rng.next_below(n));
    gamma.increment(p, u);
    if (u >= head && u < head + gamma.window_size()) {
      ++reference[{p, u}];
    }
    // Spot-check a random cell inside the window.
    const auto cu = static_cast<VertexId>(
        head + rng.next_below(std::min<VertexId>(gamma.window_size(), n - head)));
    const auto cp = static_cast<PartitionId>(rng.next_below(k));
    auto it = reference.find({cp, cu});
    const std::uint32_t expected = it == reference.end() ? 0 : it->second;
    ASSERT_EQ(gamma.get(cp, cu), expected) << "head=" << head << " u=" << cu;
  }
}

TEST(GammaWindow, CoarseModeAlignsToShards) {
  GammaWindow gamma(100, 1, 10, SlideMode::kCoarse);  // shards of 10
  gamma.advance_to(3);  // mid-shard: no movement
  EXPECT_EQ(gamma.base(), 0u);
  gamma.increment(0, 9);
  EXPECT_EQ(gamma.get(0, 9), 1u);
  gamma.increment(0, 10);  // next shard: dropped (the boundary loss)
  EXPECT_EQ(gamma.get(0, 10), 0u);
  gamma.advance_to(10);  // shard jump
  EXPECT_EQ(gamma.base(), 10u);
  EXPECT_EQ(gamma.get(0, 9), 0u);   // retired
  EXPECT_EQ(gamma.get(0, 10), 0u);  // fresh
  gamma.advance_to(17);  // mid-shard again: stays
  EXPECT_EQ(gamma.base(), 10u);
}

TEST(GammaWindow, CoarseDropsBoundaryCountsFineKeeps) {
  // An edge from the end of one shard to the start of the next: fine-grained
  // sliding (window [v, v+W)) keeps it, coarse sliding loses it.
  GammaWindow fine(100, 1, 10, SlideMode::kFine);
  GammaWindow coarse(100, 1, 10, SlideMode::kCoarse);
  fine.advance_to(9);
  coarse.advance_to(9);
  fine.increment(0, 11);
  coarse.increment(0, 11);
  EXPECT_EQ(fine.get(0, 11), 1u);
  EXPECT_EQ(coarse.get(0, 11), 0u);
}

TEST(GammaWindow, RecommendedShardsMatchesPaperFormula) {
  // Paper example: web2001 (|V|=118,142,155), K=32 -> X=128.
  EXPECT_EQ(GammaWindow::recommended_shards(118'142'155, 32), 128u);
  // Small graphs clamp to X=1 (full table).
  EXPECT_EQ(GammaWindow::recommended_shards(1000, 32), 1u);
}

TEST(GammaWindow, MemoryShrinksWithShards) {
  GammaWindow full(1 << 20, 32, 1);
  GammaWindow windowed(1 << 20, 32, 128);
  EXPECT_NEAR(static_cast<double>(full.memory_footprint_bytes()) /
                  windowed.memory_footprint_bytes(),
              128.0, 1.0);
}

TEST(GammaWindow, Validates) {
  EXPECT_THROW(GammaWindow(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(GammaWindow(10, 2, 0), std::invalid_argument);
}

TEST(ConcurrentGamma, BasicSemanticsMatchSequential) {
  ConcurrentGammaWindow gamma(100, 4, 10);
  gamma.increment(2, 5);
  gamma.increment(2, 5);
  EXPECT_EQ(gamma.get(2, 5), 2u);
  gamma.advance_to(6);
  EXPECT_EQ(gamma.get(2, 5), 0u);   // retired
  EXPECT_EQ(gamma.get(2, 15), 0u);  // fresh slot zeroed
  gamma.advance_to(3);              // backwards: ignored
  EXPECT_EQ(gamma.base(), 6u);
}

TEST(ConcurrentGamma, ConcurrentIncrementsAllLand) {
  ConcurrentGammaWindow gamma(1000, 2, 1);
  constexpr int kThreads = 4, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) gamma.increment(1, 7);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(gamma.get(1, 7), kThreads * kPerThread);
}

}  // namespace
}  // namespace spnl
