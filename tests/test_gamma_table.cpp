#include "core/gamma_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "core/concurrent_gamma.hpp"
#include "util/rng.hpp"

namespace spnl {
namespace {

TEST(GammaWindow, FullTableWhenXIsOne) {
  GammaWindow gamma(100, 4, 1);
  EXPECT_EQ(gamma.window_size(), 100u);
  gamma.increment(2, 99);
  EXPECT_EQ(gamma.get(2, 99), 1u);
  EXPECT_EQ(gamma.get(1, 99), 0u);
}

TEST(GammaWindow, WindowSizeIsCeilOfNOverX) {
  EXPECT_EQ(GammaWindow(100, 2, 3).window_size(), 34u);
  EXPECT_EQ(GammaWindow(100, 2, 100).window_size(), 1u);
  EXPECT_EQ(GammaWindow(7, 2, 2).window_size(), 4u);
}

TEST(GammaWindow, IncrementsOutsideWindowDropped) {
  GammaWindow gamma(100, 2, 10);  // window [0, 10)
  gamma.increment(0, 50);         // ahead of window: dropped
  gamma.advance_to(45);           // window [45, 55)
  EXPECT_EQ(gamma.get(0, 50), 0u);
  gamma.increment(0, 50);
  EXPECT_EQ(gamma.get(0, 50), 1u);
  gamma.increment(0, 44);  // behind window: dropped
  EXPECT_EQ(gamma.get(0, 44), 0u);
}

TEST(GammaWindow, FineGrainedSlideRetiresOneSlot) {
  GammaWindow gamma(100, 1, 10);  // window [0, 10)
  gamma.increment(0, 3);
  gamma.increment(0, 9);
  gamma.advance_to(1);  // window [1, 11): id 0 retired, id 10 fresh
  EXPECT_EQ(gamma.get(0, 3), 1u);
  EXPECT_EQ(gamma.get(0, 9), 1u);
  EXPECT_EQ(gamma.get(0, 10), 0u);
  gamma.increment(0, 10);
  EXPECT_EQ(gamma.get(0, 10), 1u);
}

TEST(GammaWindow, SlotReuseIsZeroed) {
  GammaWindow gamma(100, 1, 10);  // W = 10; ids 0 and 10 share a slot
  gamma.increment(0, 0);
  EXPECT_EQ(gamma.get(0, 0), 1u);
  gamma.advance_to(5);  // id 0 retired; its slot now belongs to id 10
  EXPECT_EQ(gamma.get(0, 10), 0u);
}

TEST(GammaWindow, BulkAdvanceClearsEverything) {
  GammaWindow gamma(1000, 2, 10);  // W = 100
  for (VertexId u = 0; u < 100; ++u) gamma.increment(1, u);
  gamma.advance_to(500);  // jump farther than W
  for (VertexId u = 500; u < 600; ++u) EXPECT_EQ(gamma.get(1, u), 0u);
}

TEST(GammaWindow, NeverMovesBackwards) {
  GammaWindow gamma(100, 1, 10);
  gamma.advance_to(50);
  gamma.advance_to(20);  // ignored
  EXPECT_EQ(gamma.base(), 50u);
}

TEST(GammaWindow, RowSpansAllPartitions) {
  GammaWindow gamma(100, 5, 10);
  gamma.increment(3, 4);
  gamma.increment(3, 4);
  const auto row = gamma.row(4);
  ASSERT_EQ(row.size(), 5u);
  EXPECT_EQ(row[3], 2u);
  EXPECT_EQ(row[0], 0u);
  EXPECT_TRUE(gamma.row(50).empty());  // outside window
}

TEST(GammaWindow, MatchesReferenceDictionaryWithinWindow) {
  // Property check: sliding-window counters agree with an exact dictionary
  // restricted to the window, under a random increment/advance workload.
  const VertexId n = 500;
  const PartitionId k = 4;
  GammaWindow gamma(n, k, 25);  // W = 20
  std::map<std::pair<PartitionId, VertexId>, std::uint32_t> reference;
  Rng rng(99);
  VertexId head = 0;
  for (int step = 0; step < 5000; ++step) {
    if (rng.next_bool(0.2) && head < n - 1) {
      head += static_cast<VertexId>(1 + rng.next_below(3));
      if (head >= n) head = n - 1;
      gamma.advance_to(head);
    }
    const auto p = static_cast<PartitionId>(rng.next_below(k));
    const auto u = static_cast<VertexId>(rng.next_below(n));
    gamma.increment(p, u);
    if (u >= head && u < head + gamma.window_size()) {
      ++reference[{p, u}];
    }
    // Spot-check a random cell inside the window.
    const auto cu = static_cast<VertexId>(
        head + rng.next_below(std::min<VertexId>(gamma.window_size(), n - head)));
    const auto cp = static_cast<PartitionId>(rng.next_below(k));
    auto it = reference.find({cp, cu});
    const std::uint32_t expected = it == reference.end() ? 0 : it->second;
    ASSERT_EQ(gamma.get(cp, cu), expected) << "head=" << head << " u=" << cu;
  }
}

TEST(GammaWindow, CoarseModeAlignsToShards) {
  GammaWindow gamma(100, 1, 10, SlideMode::kCoarse);  // shards of 10
  gamma.advance_to(3);  // mid-shard: no movement
  EXPECT_EQ(gamma.base(), 0u);
  gamma.increment(0, 9);
  EXPECT_EQ(gamma.get(0, 9), 1u);
  gamma.increment(0, 10);  // next shard: dropped (the boundary loss)
  EXPECT_EQ(gamma.get(0, 10), 0u);
  gamma.advance_to(10);  // shard jump
  EXPECT_EQ(gamma.base(), 10u);
  EXPECT_EQ(gamma.get(0, 9), 0u);   // retired
  EXPECT_EQ(gamma.get(0, 10), 0u);  // fresh
  gamma.advance_to(17);  // mid-shard again: stays
  EXPECT_EQ(gamma.base(), 10u);
}

TEST(GammaWindow, CoarseDropsBoundaryCountsFineKeeps) {
  // An edge from the end of one shard to the start of the next: fine-grained
  // sliding (window [v, v+W)) keeps it, coarse sliding loses it.
  GammaWindow fine(100, 1, 10, SlideMode::kFine);
  GammaWindow coarse(100, 1, 10, SlideMode::kCoarse);
  fine.advance_to(9);
  coarse.advance_to(9);
  fine.increment(0, 11);
  coarse.increment(0, 11);
  EXPECT_EQ(fine.get(0, 11), 1u);
  EXPECT_EQ(coarse.get(0, 11), 0u);
}

TEST(GammaWindow, RecommendedShardsMatchesPaperFormula) {
  // Paper example: web2001 (|V|=118,142,155), K=32 -> X=128.
  EXPECT_EQ(GammaWindow::recommended_shards(118'142'155, 32), 128u);
  // Small graphs clamp to X=1 (full table).
  EXPECT_EQ(GammaWindow::recommended_shards(1000, 32), 1u);
}

TEST(GammaWindow, RecommendedShardsClampsExtremeParameters) {
  // min{αK, n/(βK)} is computed in doubles; parameter combinations that push
  // it past 2^32 used to hit an undefined double -> uint32 cast. Now the
  // result clamps to uint32 max (and constructing such a window still works:
  // X >= n just means W = 1).
  constexpr std::uint32_t kMax = std::numeric_limits<std::uint32_t>::max();
  EXPECT_EQ(GammaWindow::recommended_shards(4'000'000'000u, 1000, 1e16, 1e-12),
            kMax);
  EXPECT_EQ(GammaWindow::recommended_shards(kMax, 2, 1e30, 1e-30), kMax);
  GammaWindow clamped(100, 2, GammaWindow::recommended_shards(100, 2, 1e30, 1e-30));
  EXPECT_EQ(clamped.window_size(), 1u);
  // Degenerate inputs (k huge, n = 0, NaN from 0/0 with beta = 0) fall back
  // to the full table instead of wrapping around.
  EXPECT_EQ(GammaWindow::recommended_shards(0, 32), 1u);
  EXPECT_EQ(GammaWindow::recommended_shards(0, 1, 0.0, 0.0), 1u);
  EXPECT_GE(GammaWindow::recommended_shards(1, 1), 1u);
}

TEST(GammaWindow, PartialAdvanceClearsWrappedSlotRanges) {
  // W = 10, base = 7: advancing to 13 retires ids 7..12 whose ring slots are
  // 7, 8, 9, 0, 1, 2 — the wrap-around split of the range-based retirement.
  GammaWindow gamma(100, 3, 10);
  gamma.advance_to(7);  // window [7, 17)
  for (VertexId u = 7; u < 17; ++u) gamma.increment(u % 3, u);
  gamma.advance_to(13);  // window [13, 23)
  // Survivors keep their counters...
  for (VertexId u = 13; u < 17; ++u) {
    EXPECT_EQ(gamma.get(u % 3, u), 1u) << "u=" << u;
  }
  // ...retired ids are gone, and the freshly exposed ids 17..22 (which reuse
  // the retired slots) read zero in every partition.
  for (VertexId u = 17; u < 23; ++u) {
    for (PartitionId p = 0; p < 3; ++p) {
      EXPECT_EQ(gamma.get(p, u), 0u) << "u=" << u << " p=" << p;
    }
  }
}

TEST(GammaWindow, PartialAdvanceMatchesPerIdReference) {
  // Randomized cross-check of the two-memset retirement against a per-id
  // clearing loop applied to a mirror window.
  const VertexId n = 300;
  const PartitionId k = 3;
  GammaWindow gamma(n, k, 30);  // W = 10
  std::map<std::pair<PartitionId, VertexId>, std::uint32_t> mirror;
  Rng rng(1234);
  VertexId head = 0;
  for (int step = 0; step < 2000; ++step) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto p = static_cast<PartitionId>(rng.next_below(k));
    gamma.increment(p, u);
    if (gamma.contains(u)) ++mirror[{p, u}];
    if (rng.next_bool(0.3) && head + 1 < n) {
      head += static_cast<VertexId>(1 + rng.next_below(12));  // crosses W
      if (head >= n) head = n - 1;
      gamma.advance_to(head);
      for (auto it = mirror.begin(); it != mirror.end();) {
        it = it->second == 0 || !gamma.contains(it->first.second)
                 ? mirror.erase(it)
                 : ++it;
      }
    }
    for (VertexId w = head; w < std::min<VertexId>(head + 10, n); ++w) {
      for (PartitionId q = 0; q < k; ++q) {
        auto it = mirror.find({q, w});
        ASSERT_EQ(gamma.get(q, w), it == mirror.end() ? 0u : it->second)
            << "step=" << step << " w=" << w << " q=" << q;
      }
    }
  }
}

TEST(GammaWindow, CoarseSaveRestoreMidShardIsEquivalent) {
  // Snapshot a coarse-mode window mid-shard, restore into a fresh instance,
  // and drive both with the same tail of operations: every observable
  // (base, membership, counters) must stay in lockstep. This is the
  // window-level half of the coarse-slide kill-and-resume contract.
  GammaWindow live(100, 2, 10, SlideMode::kCoarse);
  live.advance_to(23);  // coarse-aligned to 20
  live.increment(0, 24);
  live.increment(1, 27);
  ASSERT_EQ(live.base(), 20u);

  StateWriter out;
  live.save(out);
  GammaWindow restored(100, 2, 10, SlideMode::kCoarse);
  StateReader in(out.bytes());
  restored.restore(in);

  EXPECT_EQ(restored.base(), live.base());
  for (VertexId u = 20; u < 30; ++u) {
    EXPECT_EQ(restored.get(0, u), live.get(0, u)) << "u=" << u;
    EXPECT_EQ(restored.get(1, u), live.get(1, u)) << "u=" << u;
  }
  // Same tail on both: mid-shard arrivals (no movement), then a shard jump.
  for (GammaWindow* w : {&live, &restored}) {
    w->advance_to(26);
    w->increment(1, 29);
    w->advance_to(31);
    w->increment(0, 35);
  }
  EXPECT_EQ(live.base(), 30u);
  EXPECT_EQ(restored.base(), live.base());
  for (VertexId u = 30; u < 40; ++u) {
    EXPECT_EQ(restored.get(0, u), live.get(0, u)) << "u=" << u;
    EXPECT_EQ(restored.get(1, u), live.get(1, u)) << "u=" << u;
  }
}

TEST(GammaWindow, MemoryShrinksWithShards) {
  GammaWindow full(1 << 20, 32, 1);
  GammaWindow windowed(1 << 20, 32, 128);
  EXPECT_NEAR(static_cast<double>(full.memory_footprint_bytes()) /
                  windowed.memory_footprint_bytes(),
              128.0, 1.0);
}

TEST(GammaWindow, Validates) {
  EXPECT_THROW(GammaWindow(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(GammaWindow(10, 2, 0), std::invalid_argument);
}

TEST(ConcurrentGamma, BasicSemanticsMatchSequential) {
  ConcurrentGammaWindow gamma(100, 4, 10);
  gamma.increment(2, 5);
  gamma.increment(2, 5);
  EXPECT_EQ(gamma.get(2, 5), 2u);
  gamma.advance_to(6);
  EXPECT_EQ(gamma.get(2, 5), 0u);   // retired
  EXPECT_EQ(gamma.get(2, 15), 0u);  // fresh slot zeroed
  gamma.advance_to(3);              // backwards: ignored
  EXPECT_EQ(gamma.base(), 6u);
}

TEST(ConcurrentGamma, ConcurrentIncrementsAllLand) {
  ConcurrentGammaWindow gamma(1000, 2, 1);
  constexpr int kThreads = 4, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) gamma.increment(1, 7);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(gamma.get(1, 7), kThreads * kPerThread);
}

}  // namespace
}  // namespace spnl
