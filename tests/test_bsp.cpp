#include <gtest/gtest.h>

#include <cmath>
#include <queue>

#include "engine/algorithms.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/range_partitioner.hpp"

namespace spnl {
namespace {

std::vector<PartitionId> route_for(const Graph& g, PartitionId k) {
  PartitionConfig config{.num_partitions = k};
  RangePartitioner partitioner(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  return run_streaming(stream, partitioner).route;
}

/// Reference PageRank identical to the engine's semantics.
std::vector<double> reference_pagerank(const Graph& g, int supersteps) {
  const VertexId n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / n), next(n);
  for (int step = 0; step < supersteps; ++step) {
    std::fill(next.begin(), next.end(), 0.15 / n);
    for (VertexId v = 0; v < n; ++v) {
      const EdgeId degree = g.out_degree(v);
      if (degree == 0) continue;
      const double share = 0.85 * rank[v] / degree;
      for (VertexId u : g.out_neighbors(v)) next[u] += share;
    }
    std::swap(rank, next);
  }
  return rank;
}

/// Reference BFS depths (out-edges only).
std::vector<double> reference_bfs(const Graph& g, VertexId source) {
  std::vector<double> depth(g.num_vertices(), std::numeric_limits<double>::infinity());
  std::queue<VertexId> queue;
  depth[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop();
    for (VertexId u : g.out_neighbors(v)) {
      if (depth[u] > depth[v] + 1) {
        depth[u] = depth[v] + 1;
        queue.push(u);
      }
    }
  }
  return depth;
}

TEST(Bsp, PageRankMatchesReference) {
  const Graph g = generate_webcrawl({.num_vertices = 2000, .avg_out_degree = 6.0,
                                     .seed = 3});
  const auto route = route_for(g, 4);
  const auto result = pagerank(g, route, 4, 15);
  const auto expected = reference_pagerank(g, 15);
  ASSERT_EQ(result.values.size(), expected.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NEAR(result.values[v], expected[v], 1e-12);
  }
  EXPECT_EQ(result.stats.supersteps, 15);
}

TEST(Bsp, PageRankValuesSumToOne) {
  const Graph g = generate_ring_lattice(1000, 2);  // no sinks
  const auto route = route_for(g, 8);
  const auto result = pagerank(g, route, 8, 20);
  double sum = 0.0;
  for (double v : result.values) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Bsp, BfsMatchesReference) {
  const Graph g = generate_webcrawl({.num_vertices = 3000, .avg_out_degree = 5.0,
                                     .seed = 5});
  const auto route = route_for(g, 4);
  const auto result = bfs_depths(g, route, 4, /*source=*/0);
  const auto expected = reference_bfs(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(result.values[v], expected[v]) << "vertex " << v;
  }
}

TEST(Bsp, BfsTerminatesBeforeMaxSupersteps) {
  const Graph g = generate_ring_lattice(100, 1);
  const auto route = route_for(g, 2);
  const auto result = bfs_depths(g, route, 2, 0);
  EXPECT_LE(result.stats.supersteps, 100);
  EXPECT_EQ(result.values[99], 99.0);
}

TEST(Bsp, ConnectedComponentsFindsComponents) {
  GraphBuilder builder(7);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(4, 3);  // direction against id order: needs symmetrization
  builder.add_edge(5, 6);
  const Graph g = builder.finish();
  // Route over the symmetrized graph (same |V|).
  const auto route = route_for(g, 2);
  const auto result = connected_components(g, route, 2);
  EXPECT_EQ(result.values[0], 0.0);
  EXPECT_EQ(result.values[1], 0.0);
  EXPECT_EQ(result.values[2], 0.0);
  EXPECT_EQ(result.values[3], 3.0);
  EXPECT_EQ(result.values[4], 3.0);
  EXPECT_EQ(result.values[5], 5.0);
  EXPECT_EQ(result.values[6], 5.0);
}

TEST(Bsp, WeightedSsspMatchesDijkstra) {
  const Graph g = generate_webcrawl({.num_vertices = 1500, .avg_out_degree = 5.0,
                                     .seed = 9});
  const auto route = route_for(g, 4);
  const auto result = sssp(g, route, 4, 0);

  // Dijkstra reference with the same synthetic weights.
  std::vector<double> dist(g.num_vertices(), std::numeric_limits<double>::infinity());
  dist[0] = 0.0;
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  queue.push({0.0, 0});
  while (!queue.empty()) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > dist[v]) continue;
    for (VertexId u : g.out_neighbors(v)) {
      const double candidate = d + synthetic_edge_weight(v, u);
      if (candidate < dist[u]) {
        dist[u] = candidate;
        queue.push({candidate, u});
      }
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (std::isinf(dist[v])) {
      ASSERT_TRUE(std::isinf(result.values[v])) << "vertex " << v;
    } else {
      ASSERT_NEAR(result.values[v], dist[v], 1e-9) << "vertex " << v;
    }
  }
}

TEST(Bsp, SyntheticWeightsAreStableAndBounded) {
  EXPECT_EQ(synthetic_edge_weight(3, 7), synthetic_edge_weight(3, 7));
  EXPECT_NE(synthetic_edge_weight(3, 7), synthetic_edge_weight(7, 3));
  for (VertexId i = 0; i < 1000; ++i) {
    const double w = synthetic_edge_weight(i, i + 1);
    EXPECT_GE(w, 1.0);
    EXPECT_LT(w, 10.0);
  }
}

TEST(Bsp, MessageCountsSplitByPartition) {
  // Two-vertex graph split across partitions: every message is remote.
  GraphBuilder builder(2);
  builder.add_edge(0, 1);
  builder.add_edge(1, 0);
  const Graph g = builder.finish();
  const auto result = pagerank(g, {0, 1}, 2, 3);
  EXPECT_EQ(result.stats.local_messages, 0u);
  EXPECT_EQ(result.stats.remote_messages, 6u);  // 2 edges x 3 supersteps
  EXPECT_DOUBLE_EQ(result.stats.remote_fraction(), 1.0);

  const auto local = pagerank(g, {0, 0}, 2, 3);
  EXPECT_EQ(local.stats.remote_messages, 0u);
  EXPECT_EQ(local.stats.local_messages, 6u);
}

TEST(Bsp, BetterPartitioningLowersCriticalPath) {
  const Graph g = generate_webcrawl({.num_vertices = 10000, .avg_out_degree = 8.0,
                                     .locality = 0.95, .locality_scale = 25.0,
                                     .seed = 7});
  PartitionConfig config{.num_partitions = 8};
  HashPartitioner hash(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  const auto hash_route = run_streaming(stream, hash).route;
  const auto range_route = route_for(g, 8);

  const auto by_hash = pagerank(g, hash_route, 8, 5);
  const auto by_range = pagerank(g, range_route, 8, 5);
  EXPECT_LT(by_range.stats.remote_messages, by_hash.stats.remote_messages);
  EXPECT_LT(by_range.stats.critical_path_cost, by_hash.stats.critical_path_cost);
}

TEST(Bsp, ValidatesInput) {
  const Graph g = generate_ring_lattice(10, 1);
  EXPECT_THROW(pagerank(g, {0, 1}, 2, 3), std::invalid_argument);  // size
  std::vector<PartitionId> bad(10, 5);
  EXPECT_THROW(pagerank(g, bad, 2, 3), std::invalid_argument);  // id range
}

TEST(Bsp, EmptyGraph) {
  Graph g;
  const auto result = pagerank(g, {}, 2, 3);
  EXPECT_TRUE(result.values.empty());
  EXPECT_EQ(result.stats.local_messages, 0u);
}

}  // namespace
}  // namespace spnl
