#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"

namespace spnl {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "spnl_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  const Graph g = generate_webcrawl({.num_vertices = 300, .avg_out_degree = 4.0, .seed = 2});
  write_edge_list(g, path("g.el"));
  const Graph loaded = read_edge_list(path("g.el"));
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_EQ(loaded.targets(), g.targets());
}

TEST_F(IoTest, EdgeListCompactIdsRenumbersDensely) {
  std::ofstream out(path("sparse.el"));
  out << "# comment\n100 200\n200 300\n100 300\n";
  out.close();
  const Graph g = read_edge_list(path("sparse.el"), /*compact_ids=*/true);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST_F(IoTest, EdgeListMalformedThrows) {
  std::ofstream out(path("bad.el"));
  out << "1 two\n";
  out.close();
  EXPECT_THROW(read_edge_list(path("bad.el")), std::runtime_error);
}

TEST_F(IoTest, EdgeListTrailingGarbageThrows) {
  std::ofstream out(path("bad2.el"));
  out << "1 2 3\n";
  out.close();
  EXPECT_THROW(read_edge_list(path("bad2.el")), std::runtime_error);
}

TEST_F(IoTest, AdjacencyListMatchesFileStream) {
  const Graph g = generate_webcrawl({.num_vertices = 200, .avg_out_degree = 5.0, .seed = 3});
  write_adjacency_list(g, path("g.adj"));
  FileAdjacencyStream stream(path("g.adj"));
  EXPECT_EQ(stream.num_vertices(), g.num_vertices());
  EXPECT_EQ(stream.num_edges(), g.num_edges());
  const Graph loaded = materialize(stream);
  EXPECT_EQ(loaded.targets(), g.targets());
}

TEST_F(IoTest, BinaryRoundTrip) {
  const Graph g = generate_webcrawl({.num_vertices = 500, .avg_out_degree = 6.0, .seed = 4});
  write_binary(g, path("g.bin"));
  const Graph loaded = read_binary(path("g.bin"));
  EXPECT_EQ(loaded.offsets(), g.offsets());
  EXPECT_EQ(loaded.targets(), g.targets());
}

TEST_F(IoTest, BinaryBadMagicThrows) {
  std::ofstream out(path("junk.bin"), std::ios::binary);
  out << "this is not a graph file at all................";
  out.close();
  EXPECT_THROW(read_binary(path("junk.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryTruncatedThrows) {
  const Graph g = generate_webcrawl({.num_vertices = 100, .avg_out_degree = 4.0, .seed = 5});
  write_binary(g, path("g.bin"));
  // Truncate the file.
  std::filesystem::resize_file(path("g.bin"), 40);
  EXPECT_THROW(read_binary(path("g.bin")), std::runtime_error);
}

TEST_F(IoTest, RouteTableRoundTrip) {
  const std::vector<PartitionId> route = {0, 3, 1, 2, 2, 0};
  write_route_table(route, path("route.txt"));
  EXPECT_EQ(read_route_table(path("route.txt")), route);
}

TEST_F(IoTest, MissingFilesThrow) {
  EXPECT_THROW(read_edge_list(path("nope.el")), std::runtime_error);
  EXPECT_THROW(read_binary(path("nope.bin")), std::runtime_error);
  EXPECT_THROW(read_route_table(path("nope.txt")), std::runtime_error);
}

}  // namespace
}  // namespace spnl
