// 2PS clustering-prepass edge cases: empty inputs, single-community graphs,
// pathological all-singleton streams, and cluster-budget overflow — the
// degraded path must always fall back to exactly plain SPNL, never crash or
// emit a half-built hint table.
#include "prepass/two_phase.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "partition/metrics.hpp"
#include "partition/restream.hpp"

namespace spnl {
namespace {

PartitionConfig make_config(PartitionId k) {
  PartitionConfig config;
  config.num_partitions = k;
  return config;
}

std::vector<PartitionId> plain_spnl_route(const Graph& graph, PartitionId k) {
  SpnlPartitioner partitioner(graph.num_vertices(), graph.num_edges(),
                              make_config(k));
  InMemoryStream stream(graph);
  return run_streaming(stream, partitioner).route;
}

TEST(Prepass, EmptyGraph) {
  const Graph empty = GraphBuilder(0).finish();
  InMemoryStream stream(empty);
  const PrepassResult result = cluster_prepass(stream, make_config(4));
  EXPECT_TRUE(result.hints.empty());
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.num_clusters, 0u);

  stream.reset();
  const TwoPhaseRunResult run =
      two_phase_spnl_partition(stream, make_config(4));
  EXPECT_TRUE(run.run.route.empty());
  EXPECT_EQ(run.run.partitioner_name, "SPNL");  // no hints -> plain fallback
}

TEST(Prepass, ValidatesOptions) {
  const Graph g = generate_ring_lattice(16, 2);
  InMemoryStream stream(g);
  EXPECT_THROW(cluster_prepass(stream, make_config(0)), std::invalid_argument);
  EXPECT_THROW(
      cluster_prepass(stream, make_config(2), {.cluster_cap_factor = 0.0}),
      std::invalid_argument);
  EXPECT_THROW(cluster_prepass(stream, make_config(2), {.refine_passes = -1}),
               std::invalid_argument);
}

TEST(Prepass, SingleCommunityGraph) {
  // One planted community: every edge is internal; the cap forces the single
  // community to split across clusters but every hint must stay valid and
  // the pipeline must run as SPNL+2PS.
  PlantedPartitionParams params;
  params.num_vertices = 400;
  params.num_communities = 1;
  params.mixing = 0.0;
  params.seed = 7;
  const PlantedGraph planted = generate_planted_partition(params);
  const PartitionId k = 4;
  InMemoryStream stream(planted.graph);
  const PrepassResult result = cluster_prepass(stream, make_config(k));
  ASSERT_FALSE(result.degraded);
  ASSERT_EQ(result.hints.size(), 400u);
  for (const PartitionId hint : result.hints) EXPECT_LT(hint, k);
  // The cap (1.1 * n/k) makes at least k clusters inevitable.
  EXPECT_GE(result.num_clusters, k);

  stream.reset();
  const TwoPhaseRunResult run = two_phase_spnl_partition(stream, make_config(k));
  EXPECT_EQ(run.run.partitioner_name, "SPNL+2PS");
  EXPECT_TRUE(is_complete_assignment(run.run.route, k));
}

TEST(Prepass, AllSingletonClustersDegradesToPlainSpnl) {
  // Edgeless graph: no votes ever, every vertex founds its own cluster, and
  // the default budget (max(64, n/4 + k)) overflows well before n singletons
  // are created. The pipeline must notice, drop the hints, and produce the
  // exact plain-SPNL route.
  const Graph edgeless = GraphBuilder(500).finish();
  const PartitionId k = 4;
  InMemoryStream stream(edgeless);
  const PrepassResult result = cluster_prepass(stream, make_config(k));
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.hints.empty());

  stream.reset();
  const TwoPhaseRunResult run = two_phase_spnl_partition(stream, make_config(k));
  EXPECT_EQ(run.run.partitioner_name, "SPNL");
  EXPECT_TRUE(run.prepass.degraded);
  EXPECT_EQ(run.run.route, plain_spnl_route(edgeless, k));
}

TEST(Prepass, BudgetOverflowDegradesGracefully) {
  // A connected graph with an artificially tiny cluster budget: the overflow
  // is asserted (flagged, empty hints), not crashed, and the fallback route
  // is byte-identical to plain SPNL.
  WebCrawlParams params;
  params.num_vertices = 2'000;
  params.seed = 11;
  const Graph g = generate_webcrawl(params);
  const PartitionId k = 8;
  TwoPhaseOptions options;
  options.max_clusters = 2;  // cap (1.1 * n/k) * 2 clusters < n -> overflow
  InMemoryStream stream(g);
  const PrepassResult result = cluster_prepass(stream, make_config(k), options);
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.hints.empty());
  EXPECT_LE(result.num_clusters, 2u);

  stream.reset();
  const TwoPhaseRunResult run =
      two_phase_spnl_partition(stream, make_config(k), options);
  EXPECT_EQ(run.run.partitioner_name, "SPNL");
  EXPECT_EQ(run.run.route, plain_spnl_route(g, k));
}

TEST(Prepass, DeterministicAcrossRuns) {
  WebCrawlParams params;
  params.num_vertices = 3'000;
  params.seed = 3;
  const Graph g = generate_webcrawl(params);
  InMemoryStream stream(g);
  const PrepassResult a = cluster_prepass(stream, make_config(8));
  stream.reset();
  const PrepassResult b = cluster_prepass(stream, make_config(8));
  EXPECT_EQ(a.hints, b.hints);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.reassigned, b.reassigned);
}

TEST(Prepass, SpnlRejectsMalformedHintTables) {
  const Graph g = generate_ring_lattice(32, 2);
  const PartitionConfig config = make_config(4);
  const std::vector<PartitionId> wrong_size(31, 0);
  const std::vector<PartitionId> out_of_range(32, 4);
  SpnlOptions options;
  options.logical_hints = &wrong_size;
  EXPECT_THROW(SpnlPartitioner(32, g.num_edges(), config, options),
               std::invalid_argument);
  options.logical_hints = &out_of_range;
  EXPECT_THROW(SpnlPartitioner(32, g.num_edges(), config, options),
               std::invalid_argument);
}

TEST(Prepass, RestreamHintsRequireSpnlSeed) {
  const Graph g = generate_ring_lattice(64, 2);
  InMemoryStream stream(g);
  const std::vector<PartitionId> hints(64, 0);
  RestreamOptions options;
  options.seed_with_spnl = false;
  options.spnl_hints = &hints;
  EXPECT_THROW(restream_partition(stream, make_config(2), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace spnl
