#include "partition/buffered.hpp"

#include <gtest/gtest.h>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/driver.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 10000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.88, .locality_scale = 30.0,
                            .seed = seed});
}

TEST(Buffered, CompleteAndBalanced) {
  const Graph g = crawl();
  const PartitionConfig config{.num_partitions = 8};
  InMemoryStream stream(g);
  const auto result = buffered_partition(stream, config, {.buffer_size = 1024});
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
  EXPECT_LE(evaluate_partition(g, result.route, 8).delta_v, config.slack + 0.01);
  EXPECT_EQ(result.batches, 10);
}

TEST(Buffered, ImprovesOnPureStreamingSeed) {
  // Joint in-buffer refinement should beat the pure one-at-a-time LDG rule.
  const Graph g = crawl(20000, 3);
  const PartitionConfig config{.num_partitions = 16};

  LdgPartitioner ldg(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  const double pure = evaluate_partition(g, run_streaming(stream, ldg).route, 16).ecr;

  stream.reset();
  const auto buffered = buffered_partition(
      stream, config, {.buffer_size = 4096, .seed_rule = BufferSeedRule::kLdg});
  const double hybrid = evaluate_partition(g, buffered.route, 16).ecr;
  EXPECT_LT(hybrid, pure);
}

TEST(Buffered, SpnlSeedAtLeastAsGoodAsLdgSeed) {
  const Graph g = crawl(20000, 5);
  const PartitionConfig config{.num_partitions = 16};
  InMemoryStream stream(g);
  const auto with_ldg = buffered_partition(
      stream, config, {.buffer_size = 2048, .seed_rule = BufferSeedRule::kLdg});
  stream.reset();
  const auto with_spnl = buffered_partition(
      stream, config, {.buffer_size = 2048, .seed_rule = BufferSeedRule::kSpnl});
  EXPECT_LE(evaluate_partition(g, with_spnl.route, 16).ecr,
            evaluate_partition(g, with_ldg.route, 16).ecr + 0.02);
}

TEST(Buffered, BufferLargerThanGraphIsOneBatch) {
  const Graph g = crawl(500, 7);
  const PartitionConfig config{.num_partitions = 4};
  InMemoryStream stream(g);
  const auto result = buffered_partition(stream, config, {.buffer_size = 10000});
  EXPECT_EQ(result.batches, 1);
  EXPECT_TRUE(is_complete_assignment(result.route, 4));
}

TEST(Buffered, BufferSizeOneDegeneratesToStreaming) {
  const Graph g = crawl(2000, 9);
  const PartitionConfig config{.num_partitions = 4};
  InMemoryStream stream(g);
  const auto result = buffered_partition(
      stream, config,
      {.buffer_size = 1, .sweeps = 0, .seed_rule = BufferSeedRule::kSpnl});
  stream.reset();
  SpnlPartitioner spnl(g.num_vertices(), g.num_edges(), config);
  const auto pure = run_streaming(stream, spnl).route;
  EXPECT_EQ(result.route, pure);
}

TEST(Buffered, ZeroBufferRejected) {
  const Graph g = crawl(100, 11);
  InMemoryStream stream(g);
  EXPECT_THROW(buffered_partition(stream, {.num_partitions = 2}, {.buffer_size = 0}),
               std::invalid_argument);
}

TEST(Buffered, EmptyStream) {
  Graph g;
  InMemoryStream stream(g);
  const auto result = buffered_partition(stream, {.num_partitions = 4});
  EXPECT_TRUE(result.route.empty());
  EXPECT_EQ(result.batches, 0);
}

TEST(Buffered, ReportsMemory) {
  const Graph g = crawl(5000, 13);
  InMemoryStream stream(g);
  const auto result = buffered_partition(stream, {.num_partitions = 8},
                                         {.buffer_size = 512});
  EXPECT_GT(result.peak_bytes, 0u);
}

}  // namespace
}  // namespace spnl
