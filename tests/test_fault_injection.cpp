// Fault injection: seeded crash/sync-fault schedules in the distributed
// simulation replay deterministically, crash recovery keeps quality within a
// tight band of the fault-free run, and the cluster timing simulator folds
// worker failures into the timeline.
#include <gtest/gtest.h>

#include <cstdint>

#include "cluster/simulator.hpp"
#include "core/distributed_sim.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph clustered(VertexId n = 12000, std::uint64_t seed = 7) {
  return generate_hostgraph({.num_vertices = n, .mean_host_size = 120.0,
                             .avg_out_degree = 8.0, .intra_host = 0.85,
                             .seed = seed});
}

DistributedSimResult run(const Graph& g, const DistributedSimOptions& options,
                         PartitionId k = 8) {
  InMemoryStream stream(g);
  return distributed_stream_partition(stream, {.num_partitions = k}, options);
}

TEST(FaultInjection, CleanRunReportsNoFaults) {
  const Graph g = clustered(4000);
  DistributedSimOptions options;
  options.sync_interval = 256;
  const auto result = run(g, options);
  EXPECT_EQ(result.worker_crashes, 0u);
  EXPECT_EQ(result.lost_placements, 0u);
  EXPECT_EQ(result.recovered_placements, 0u);
  EXPECT_EQ(result.dropped_syncs, 0u);
  EXPECT_EQ(result.delayed_syncs, 0u);
  EXPECT_EQ(result.duplicated_syncs, 0u);
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
}

TEST(FaultInjection, FaultScheduleIsSeedDeterministic) {
  const Graph g = clustered(6000);
  DistributedSimOptions options;
  options.sync_interval = 128;
  options.faults.crashes = {{1, 1500}, {2, 3000}};
  options.faults.drop_sync_prob = 0.2;
  options.faults.delay_sync_prob = 0.1;
  options.faults.duplicate_sync_prob = 0.1;
  options.faults.seed = 99;

  const auto a = run(g, options);
  const auto b = run(g, options);
  EXPECT_EQ(a.route, b.route);
  EXPECT_EQ(a.stale_decisions, b.stale_decisions);
  EXPECT_EQ(a.worker_crashes, b.worker_crashes);
  EXPECT_EQ(a.recovered_placements, b.recovered_placements);
  EXPECT_EQ(a.dropped_syncs, b.dropped_syncs);
  EXPECT_EQ(a.delayed_syncs, b.delayed_syncs);
  EXPECT_EQ(a.duplicated_syncs, b.duplicated_syncs);

  // A different seed reshuffles the sync faults.
  options.faults.seed = 100;
  const auto c = run(g, options);
  EXPECT_NE(a.dropped_syncs + a.delayed_syncs + a.duplicated_syncs,
            c.dropped_syncs + c.delayed_syncs + c.duplicated_syncs);
}

TEST(FaultInjection, CrashWithReassignRecoversAllPlacements) {
  const Graph g = clustered();
  DistributedSimOptions options;
  options.sync_interval = 256;
  options.recovery = RecoveryPolicy::kReassign;
  options.faults.crashes = {{1, 4000}};

  const auto faulty = run(g, options);
  EXPECT_EQ(faulty.worker_crashes, 1u);
  EXPECT_GT(faulty.recovered_placements, 0u);
  EXPECT_EQ(faulty.lost_placements, 0u);
  EXPECT_TRUE(is_complete_assignment(faulty.route, 8));

  // Quality contract: a single crash with checkpoint-style recovery costs at
  // most 10% in cut quality and balance vs the fault-free run.
  DistributedSimOptions clean_options = options;
  clean_options.faults = FaultPlan{};
  const auto clean = run(g, clean_options);
  const auto faulty_q = evaluate_partition(g, faulty.route, 8);
  const auto clean_q = evaluate_partition(g, clean.route, 8);
  EXPECT_LE(faulty_q.ecr, clean_q.ecr * 1.10 + 0.01);
  EXPECT_LE(faulty_q.delta_v, clean_q.delta_v * 1.10);
}

TEST(FaultInjection, CrashWithoutRecoveryLosesPlacements) {
  const Graph g = clustered(6000);
  DistributedSimOptions options;
  options.recovery = RecoveryPolicy::kNone;
  options.faults.crashes = {{0, 2000}};
  const auto result = run(g, options);
  EXPECT_EQ(result.worker_crashes, 1u);
  EXPECT_GT(result.lost_placements, 0u);
  EXPECT_EQ(result.recovered_placements, 0u);
  EXPECT_FALSE(is_complete_assignment(result.route, 8));
}

TEST(FaultInjection, AllWorkersCrashedStopsCleanly) {
  const Graph g = clustered(2000);
  DistributedSimOptions options;
  options.num_workers = 2;
  options.recovery = RecoveryPolicy::kReassign;
  // Both workers die: the second crash has no survivor to adopt the slice.
  options.faults.crashes = {{0, 500}, {1, 800}};
  const auto result = run(g, options);
  EXPECT_EQ(result.worker_crashes, 2u);
  EXPECT_GT(result.lost_placements, 0u);
  EXPECT_FALSE(is_complete_assignment(result.route, 2));
}

TEST(FaultInjection, SyncMessageFaultsAreCountedAndSurvivable) {
  const Graph g = clustered(6000);
  DistributedSimOptions options;
  options.sync_interval = 64;
  options.faults.drop_sync_prob = 0.3;
  options.faults.delay_sync_prob = 0.2;
  options.faults.duplicate_sync_prob = 0.2;
  const auto result = run(g, options);
  EXPECT_GT(result.dropped_syncs, 0u);
  EXPECT_GT(result.delayed_syncs, 0u);
  EXPECT_GT(result.duplicated_syncs, 0u);
  // Lossy sync degrades freshness, never completeness.
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
}

TEST(FaultInjection, DroppedSyncsIncreaseStaleness) {
  const Graph g = clustered(8000);
  DistributedSimOptions clean;
  clean.sync_interval = 64;
  DistributedSimOptions lossy = clean;
  lossy.faults.drop_sync_prob = 0.8;
  const auto fresh = run(g, clean);
  const auto stale = run(g, lossy);
  EXPECT_GT(stale.stale_decisions, fresh.stale_decisions);
}

TEST(FaultInjection, StalledWorkerLosesNothingAndRunCompletes) {
  const Graph g = clustered(6000);
  DistributedSimOptions options;
  options.sync_interval = 256;
  options.faults.stalls = {{.worker = 1, .at_placement = 1000,
                            .for_placements = 500}};
  const auto result = run(g, options);
  EXPECT_EQ(result.worker_stalls, 1u);
  EXPECT_EQ(result.stalled_turns, 500u);
  EXPECT_EQ(result.lost_placements, 0u);
  // Unlike a crash, a stall delays the slice but never abandons it.
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
  // Deterministic replay, like every other fault.
  const auto replay = run(g, options);
  EXPECT_EQ(replay.route, result.route);
  EXPECT_EQ(replay.stalled_turns, result.stalled_turns);
}

TEST(FaultInjection, AllWorkersStalledLivelockGuardKeepsProgress) {
  const Graph g = clustered(3000);
  DistributedSimOptions options;
  options.num_workers = 3;
  options.sync_interval = 256;
  // Every worker stalls at the same point, "forever" on this graph's scale.
  options.faults.stalls = {
      {.worker = 0, .at_placement = 500, .for_placements = 1000000},
      {.worker = 1, .at_placement = 500, .for_placements = 1000000},
      {.worker = 2, .at_placement = 500, .for_placements = 1000000}};
  const auto result = run(g, options);
  // The least-index stalled worker is forced to proceed each round, so the
  // run completes instead of livelocking.
  EXPECT_EQ(result.worker_stalls, 3u);
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
}

TEST(FaultInjection, StallNamesUnknownWorkerRejected) {
  const Graph g = clustered(500);
  InMemoryStream stream(g);
  DistributedSimOptions options;
  options.faults.stalls = {{.worker = 99, .at_placement = 10,
                            .for_placements = 1}};
  EXPECT_THROW(
      distributed_stream_partition(stream, {.num_partitions = 4}, options),
      std::invalid_argument);
}

TEST(FaultInjection, CrashProbabilitiesValidated) {
  const Graph g = clustered(500);
  InMemoryStream stream(g);
  DistributedSimOptions options;
  options.faults.drop_sync_prob = 1.5;
  EXPECT_THROW(
      distributed_stream_partition(stream, {.num_partitions = 4}, options),
      std::invalid_argument);
  options.faults.drop_sync_prob = 0.0;
  options.faults.crashes = {{99, 10}};  // only 4 workers exist
  stream.reset();
  EXPECT_THROW(
      distributed_stream_partition(stream, {.num_partitions = 4}, options),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Cluster timing simulator.

BspResult tiny_job(std::size_t supersteps) {
  BspResult job;
  for (std::size_t s = 0; s < supersteps; ++s) {
    job.traffic.push_back({1000, 200, 100, 0});  // 2x2 row-major
    job.compute.push_back({1200, 100});
  }
  return job;
}

TEST(ClusterFaults, FailuresExtendTheTimeline) {
  const BspResult job = tiny_job(20);
  ClusterModel model;
  ClusterFaultModel faults;
  faults.failure_prob = 0.5;
  faults.recovery_seconds = 1.0;
  const auto clean = simulate_cluster(job, 2, model);
  const auto faulty = simulate_cluster(job, 2, model, faults);
  EXPECT_GT(faulty.worker_failures, 0u);
  EXPECT_GT(faulty.recovery_seconds, 0.0);
  EXPECT_GT(faulty.total_seconds, clean.total_seconds);
  // Same seed -> same timeline.
  const auto replay = simulate_cluster(job, 2, model, faults);
  EXPECT_EQ(replay.worker_failures, faulty.worker_failures);
  EXPECT_DOUBLE_EQ(replay.total_seconds, faulty.total_seconds);
}

TEST(ClusterFaults, ZeroProbabilityMatchesCleanTimeline) {
  const BspResult job = tiny_job(5);
  const auto clean = simulate_cluster(job, 2, ClusterModel{});
  const auto zero = simulate_cluster(job, 2, ClusterModel{}, ClusterFaultModel{});
  EXPECT_DOUBLE_EQ(zero.total_seconds, clean.total_seconds);
  EXPECT_EQ(zero.worker_failures, 0u);
}

TEST(ClusterFaults, FaultModelValidated) {
  const BspResult job = tiny_job(1);
  ClusterFaultModel bad;
  bad.failure_prob = 2.0;
  EXPECT_THROW(simulate_cluster(job, 2, ClusterModel{}, bad), std::invalid_argument);
  bad.failure_prob = 0.1;
  bad.recovery_seconds = -1.0;
  EXPECT_THROW(simulate_cluster(job, 2, ClusterModel{}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace spnl
