#include <gtest/gtest.h>

#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "offline/label_prop.hpp"
#include "offline/multilevel.hpp"
#include "partition/driver.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/metrics.hpp"

namespace spnl {
namespace {

Graph crawl(VertexId n = 8000, std::uint64_t seed = 1) {
  return generate_webcrawl({.num_vertices = n, .avg_out_degree = 8.0,
                            .locality = 0.9, .locality_scale = 30.0,
                            .seed = seed});
}

double hash_ecr(const Graph& g, PartitionId k) {
  PartitionConfig config{.num_partitions = k};
  HashPartitioner partitioner(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  return evaluate_partition(g, run_streaming(stream, partitioner).route, k).ecr;
}

TEST(Multilevel, CompleteAndBalanced) {
  const Graph g = crawl();
  const PartitionConfig config{.num_partitions = 8};
  const auto result = multilevel_partition(g, config);
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
  const auto metrics = evaluate_partition(g, result.route, 8);
  EXPECT_LE(metrics.delta_v, config.slack + 0.05);
  EXPECT_GT(result.levels, 1);
  EXPECT_GT(result.peak_bytes, g.memory_footprint_bytes());
}

TEST(Multilevel, MuchBetterThanHash) {
  const Graph g = crawl(10000, 3);
  const PartitionConfig config{.num_partitions = 8};
  const auto result = multilevel_partition(g, config);
  const double ml = evaluate_partition(g, result.route, 8).ecr;
  EXPECT_LT(ml, hash_ecr(g, 8) / 2);
}

TEST(Multilevel, RefinementImprovesOverNoRefinement) {
  const Graph g = crawl(10000, 5);
  const PartitionConfig config{.num_partitions = 8};
  MultilevelOptions none;
  none.refinement_passes = 0;
  MultilevelOptions some;
  some.refinement_passes = 6;
  const double without =
      evaluate_partition(g, multilevel_partition(g, config, none).route, 8).ecr;
  const double with =
      evaluate_partition(g, multilevel_partition(g, config, some).route, 8).ecr;
  EXPECT_LE(with, without + 1e-9);
}

TEST(Multilevel, FmRefinerBeatsGreedyRefiner) {
  const Graph g = crawl(12000, 21);
  const PartitionConfig config{.num_partitions = 16};
  MultilevelOptions greedy;
  greedy.refiner = Refiner::kGreedy;
  MultilevelOptions fm;
  fm.refiner = Refiner::kFm;
  const double greedy_ecr =
      evaluate_partition(g, multilevel_partition(g, config, greedy).route, 16).ecr;
  const auto fm_result = multilevel_partition(g, config, fm);
  const auto fm_metrics = evaluate_partition(g, fm_result.route, 16);
  EXPECT_LE(fm_metrics.ecr, greedy_ecr + 1e-9);
  EXPECT_LE(fm_metrics.delta_v, config.slack + 0.05);
}

TEST(Multilevel, FmRefinerDeterministic) {
  const Graph g = crawl(4000, 23);
  const PartitionConfig config{.num_partitions = 8};
  MultilevelOptions options;
  options.refiner = Refiner::kFm;
  EXPECT_EQ(multilevel_partition(g, config, options).route,
            multilevel_partition(g, config, options).route);
}

TEST(Multilevel, HandlesSmallAndDegenerateGraphs) {
  Graph empty;
  EXPECT_TRUE(multilevel_partition(empty, {.num_partitions = 4}).route.empty());

  const Graph tiny = generate_ring_lattice(10, 1);
  const auto result = multilevel_partition(tiny, {.num_partitions = 4});
  EXPECT_TRUE(is_complete_assignment(result.route, 4));
}

TEST(Multilevel, KOneIsTrivial) {
  const Graph g = crawl(1000, 7);
  const auto result = multilevel_partition(g, {.num_partitions = 1});
  const auto metrics = evaluate_partition(g, result.route, 1);
  EXPECT_EQ(metrics.cut_edges, 0u);
}

TEST(Multilevel, DeterministicGivenSeed) {
  const Graph g = crawl(3000, 9);
  const PartitionConfig config{.num_partitions = 4};
  MultilevelOptions options;
  options.seed = 77;
  const auto a = multilevel_partition(g, config, options);
  const auto b = multilevel_partition(g, config, options);
  EXPECT_EQ(a.route, b.route);
}

TEST(Multilevel, RingPartitionNearOptimal) {
  const Graph g = generate_ring_lattice(4000, 2);
  const auto result = multilevel_partition(g, {.num_partitions = 4});
  // Optimal cut for a ring with K=4 and k=2 lattice: ~12 directed edges of
  // 8000 (plus symmetrization effects). Allow a loose factor.
  EXPECT_LT(evaluate_partition(g, result.route, 4).ecr, 0.05);
}

TEST(LabelProp, CompleteAndBalanced) {
  const Graph g = crawl();
  const PartitionConfig config{.num_partitions = 8};
  const auto result = label_prop_partition(g, config);
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
  EXPECT_LE(evaluate_partition(g, result.route, 8).delta_v, config.slack + 0.05);
}

TEST(LabelProp, ImprovesOverRandomInit) {
  const Graph g = crawl(10000, 11);
  const PartitionConfig config{.num_partitions = 8};
  LabelPropOptions zero_iters;
  zero_iters.iterations = 0;
  const double init =
      evaluate_partition(g, label_prop_partition(g, config, zero_iters).route, 8).ecr;
  const double refined =
      evaluate_partition(g, label_prop_partition(g, config).route, 8).ecr;
  EXPECT_LT(refined, init * 0.9);
}

TEST(LabelProp, ParallelStillValidButNoisier) {
  const Graph g = crawl(10000, 13);
  const PartitionConfig config{.num_partitions = 8};
  LabelPropOptions par;
  par.num_threads = 4;
  const auto result = label_prop_partition(g, config, par);
  EXPECT_EQ(result.partitioner_name, "LabelProp(par)");
  EXPECT_TRUE(is_complete_assignment(result.route, 8));
  // Async sweeps can only bound balance loosely: allow extra slack.
  EXPECT_LE(evaluate_partition(g, result.route, 8).delta_v, config.slack + 0.25);
}

TEST(LabelProp, DeterministicWhenCentralized) {
  const Graph g = crawl(3000, 15);
  const PartitionConfig config{.num_partitions = 4};
  const auto a = label_prop_partition(g, config);
  const auto b = label_prop_partition(g, config);
  EXPECT_EQ(a.route, b.route);
}

TEST(LabelProp, ValidatesOptions) {
  const Graph g = crawl(100, 17);
  EXPECT_THROW(label_prop_partition(g, {.num_partitions = 0}), std::invalid_argument);
  LabelPropOptions bad;
  bad.num_threads = 0;
  EXPECT_THROW(label_prop_partition(g, {.num_partitions = 2}, bad),
               std::invalid_argument);
}

TEST(LabelProp, EmptyGraph) {
  Graph g;
  EXPECT_TRUE(label_prop_partition(g, {.num_partitions = 4}).route.empty());
}

TEST(Offline, MemoryFootprintsAreOmegaEdges) {
  // Table IV's point: offline partitioners hold the whole graph.
  const Graph g = crawl(20000, 19);
  const auto ml = multilevel_partition(g, {.num_partitions = 8});
  const auto lp = label_prop_partition(g, {.num_partitions = 8});
  EXPECT_GE(ml.peak_bytes, g.memory_footprint_bytes());
  EXPECT_GE(lp.peak_bytes, g.memory_footprint_bytes());
}

}  // namespace
}  // namespace spnl
