#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/stats.hpp"

namespace spnl {
namespace {

TEST(WebCrawl, Deterministic) {
  WebCrawlParams params{.num_vertices = 2000, .avg_out_degree = 6.0, .seed = 9};
  const Graph a = generate_webcrawl(params);
  const Graph b = generate_webcrawl(params);
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.targets(), b.targets());
}

TEST(WebCrawl, SeedChangesGraph) {
  WebCrawlParams params{.num_vertices = 2000, .avg_out_degree = 6.0, .seed = 9};
  const Graph a = generate_webcrawl(params);
  params.seed = 10;
  const Graph b = generate_webcrawl(params);
  EXPECT_NE(a.targets(), b.targets());
}

TEST(WebCrawl, RoughlyHitsAverageDegree) {
  WebCrawlParams params{.num_vertices = 20000, .avg_out_degree = 10.0, .seed = 1};
  const Graph g = generate_webcrawl(params);
  const double avg = static_cast<double>(g.num_edges()) / g.num_vertices();
  // Dedup and truncation shave a bit off the Pareto mean.
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 15.0);
}

TEST(WebCrawl, NoSelfLoopsNoDuplicates) {
  WebCrawlParams params{.num_vertices = 3000, .avg_out_degree = 8.0, .seed = 4};
  const Graph g = generate_webcrawl(params);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto out = g.out_neighbors(v);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_NE(out[i], v);
      if (i > 0) {
        EXPECT_LT(out[i - 1], out[i]);  // sorted strictly => unique
      }
    }
  }
}

TEST(WebCrawl, LocalityParameterControlsGap) {
  WebCrawlParams local{.num_vertices = 20000, .avg_out_degree = 8.0,
                       .locality = 0.95, .locality_scale = 50.0, .seed = 2};
  WebCrawlParams global = local;
  global.locality = 0.05;
  const auto stats_local = locality_stats(generate_webcrawl(local));
  const auto stats_global = locality_stats(generate_webcrawl(global));
  EXPECT_LT(stats_local.mean_normalized_gap, stats_global.mean_normalized_gap / 3);
  EXPECT_GT(stats_local.fraction_within_window, stats_global.fraction_within_window);
}

TEST(WebCrawl, DegreeAlphaControlsSkew) {
  WebCrawlParams heavy{.num_vertices = 20000, .avg_out_degree = 10.0,
                       .degree_alpha = 1.3, .seed = 5};
  WebCrawlParams light = heavy;
  light.degree_alpha = 3.5;
  const auto heavy_stats = out_degree_stats(generate_webcrawl(heavy));
  const auto light_stats = out_degree_stats(generate_webcrawl(light));
  EXPECT_GT(heavy_stats.gini, light_stats.gini);
  EXPECT_GT(heavy_stats.max, light_stats.max);
}

TEST(WebCrawl, DenseCoreInflatesPrefixDegrees) {
  WebCrawlParams params{.num_vertices = 10000, .avg_out_degree = 8.0, .seed = 6};
  params.dense_core_fraction = 0.05;
  params.dense_core_multiplier = 10.0;
  const Graph g = generate_webcrawl(params);
  EdgeId core_edges = 0;
  const VertexId core_end = 500;
  for (VertexId v = 0; v < core_end; ++v) core_edges += g.out_degree(v);
  const double core_avg = static_cast<double>(core_edges) / core_end;
  const double rest_avg = static_cast<double>(g.num_edges() - core_edges) /
                          (g.num_vertices() - core_end);
  EXPECT_GT(core_avg, 3 * rest_avg);
}

TEST(WebCrawl, EmptyAndInvalidInputs) {
  EXPECT_EQ(generate_webcrawl({}).num_vertices(), 0u);
  WebCrawlParams bad{.num_vertices = 10};
  bad.degree_alpha = 1.0;
  EXPECT_THROW(generate_webcrawl(bad), std::invalid_argument);
  WebCrawlParams bad2{.num_vertices = 10};
  bad2.locality = 1.5;
  EXPECT_THROW(generate_webcrawl(bad2), std::invalid_argument);
}

TEST(WebCrawl, SingleVertexGraph) {
  WebCrawlParams params{.num_vertices = 1, .avg_out_degree = 5.0, .seed = 1};
  const Graph g = generate_webcrawl(params);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Rmat, SizesAndDeterminism) {
  RmatParams params{.scale = 10, .num_edges = 8192, .seed = 3};
  const Graph a = generate_rmat(params);
  const Graph b = generate_rmat(params);
  EXPECT_EQ(a.num_vertices(), 1024u);
  EXPECT_LE(a.num_edges(), 8192u);
  EXPECT_GT(a.num_edges(), 4000u);  // some dedup loss is expected
  EXPECT_EQ(a.targets(), b.targets());
}

TEST(Rmat, SkewedWhenAsymmetric) {
  const Graph skewed = generate_rmat({.scale = 12, .num_edges = 1 << 16, .seed = 7});
  const Graph uniform = generate_rmat(
      {.scale = 12, .num_edges = 1 << 16, .a = 0.25, .b = 0.25, .c = 0.25, .seed = 7});
  EXPECT_GT(out_degree_stats(skewed).gini, out_degree_stats(uniform).gini);
}

TEST(Rmat, RejectsBadProbabilities) {
  EXPECT_THROW(generate_rmat({.scale = 4, .num_edges = 16, .a = 0.9, .b = 0.2}),
               std::invalid_argument);
}

TEST(ErdosRenyi, ExactEdgeCountNoSelfLoops) {
  const Graph g = generate_erdos_renyi(100, 5000, 1);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 5000u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.out_neighbors(v)) EXPECT_NE(u, v);
  }
}

TEST(RingLattice, DegreeAndWrap) {
  const Graph g = generate_ring_lattice(10, 3);
  EXPECT_EQ(g.num_edges(), 30u);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(g.out_degree(v), 3u);
  const auto out = g.out_neighbors(9);
  EXPECT_EQ(out[0], 0u);  // wraps around
}

TEST(RingLattice, KLargerThanGraphClamps) {
  const Graph g = generate_ring_lattice(4, 100);
  EXPECT_EQ(g.out_degree(0), 3u);
}

TEST(Grid, StructureIsSymmetric) {
  const Graph g = generate_grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // Interior vertex 5 (row 1, col 1) has 4 neighbors.
  EXPECT_EQ(g.out_degree(5), 4u);
  // Corner 0 has 2.
  EXPECT_EQ(g.out_degree(0), 2u);
  // Every edge is reciprocated.
  const Graph r = g.reversed();
  EXPECT_EQ(r.targets().size(), g.targets().size());
}

}  // namespace
}  // namespace spnl
