// Example: the full on-disk production pipeline.
//
//  1. A crawl is stored as an adjacency-list text file (here: generated and
//     written out, standing in for a downloaded SNAP/LAW dataset).
//  2. The file is streamed ONCE from disk through the parallel SPNL
//     partitioner — this is the deployment mode the paper targets: the graph
//     never needs to fit in memory as a whole.
//  3. The route table is written next to the graph, ready for a distributed
//     loader, then reloaded and validated.
//
//   ./examples/disk_pipeline [--vertices=50000] [--k=16] [--threads=4]
//                            [--dir=/tmp]
#include <cstdio>
#include <filesystem>

#include "core/parallel_driver.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "partition/metrics.hpp"
#include "util/cli.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace spnl;
  const CliArgs args(argc, argv);
  const auto n = static_cast<VertexId>(args.get_int("vertices", 50'000));
  const auto k = static_cast<PartitionId>(args.get_int("k", 16));
  const auto threads = static_cast<unsigned>(args.get_int("threads", 4));
  const std::filesystem::path dir =
      args.get("dir", std::filesystem::temp_directory_path().string());
  const std::string graph_path = (dir / "crawl.adj").string();
  const std::string route_path = (dir / "crawl.route").string();

  // 1. Materialize the "crawl" on disk.
  {
    WebCrawlParams params;
    params.num_vertices = n;
    params.avg_out_degree = 10.0;
    params.locality = 0.92;
    params.seed = 5;
    const Graph graph = generate_webcrawl(params);
    write_adjacency_list(graph, graph_path);
    std::printf("wrote %s (%s)\n", graph_path.c_str(),
                format_bytes(std::filesystem::file_size(graph_path)).c_str());
  }

  // 2. One streaming pass from disk through parallel SPNL.
  Timer timer;
  FileAdjacencyStream stream(graph_path);
  ParallelOptions options;
  options.num_threads = threads;
  const auto result = run_parallel(stream, {.num_partitions = k}, options);
  std::printf("partitioned |V|=%u |E|=%llu into K=%u with M=%u workers "
              "in %.3fs (MC %s, %llu delayed)\n",
              stream.num_vertices(),
              static_cast<unsigned long long>(stream.num_edges()), k, threads,
              timer.seconds(), format_bytes(result.peak_partitioner_bytes).c_str(),
              static_cast<unsigned long long>(result.delayed_vertices));

  // 3. Persist, reload, validate.
  write_route_table(result.route, route_path);
  const auto reloaded = read_route_table(route_path);
  if (reloaded != result.route) {
    std::fprintf(stderr, "route table round-trip mismatch!\n");
    return 1;
  }
  FileAdjacencyStream verify_stream(graph_path);
  const Graph graph = materialize(verify_stream);
  const auto metrics = evaluate_partition(graph, reloaded, k);
  std::printf("route table %s verified: %s\n", route_path.c_str(),
              summarize(metrics).c_str());

  std::filesystem::remove(graph_path);
  std::filesystem::remove(route_path);
  return 0;
}
