// Quickstart: generate a small crawl-like web graph, stream it through SPNL,
// and print the quality metrics. This is the 20-line tour of the public API.
//
//   ./examples/quickstart [--k=8] [--vertices=50000] [--lambda=0.5]
#include <cstdio>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "partition/driver.hpp"
#include "partition/metrics.hpp"
#include "util/cli.hpp"
#include "util/memory.hpp"

int main(int argc, char** argv) {
  using namespace spnl;
  const CliArgs args(argc, argv);
  const auto k = static_cast<PartitionId>(args.get_int("k", 8));
  const auto n = static_cast<VertexId>(args.get_int("vertices", 50'000));
  const double lambda = args.get_double("lambda", 0.5);

  // 1. A synthetic BFS-crawl-like web graph (stands in for a SNAP download).
  WebCrawlParams params;
  params.num_vertices = n;
  params.avg_out_degree = 12.0;
  params.locality = 0.9;
  params.seed = 42;
  const Graph graph = generate_webcrawl(params);
  std::printf("%s\n", describe(graph, "input").c_str());

  // 2. Stream it through SPNL: one pass, one irrevocable decision per vertex.
  InMemoryStream stream(graph);
  PartitionConfig config{.num_partitions = k};
  SpnlPartitioner partitioner(graph.num_vertices(), graph.num_edges(), config,
                              SpnlOptions{.lambda = lambda});
  const RunResult run = run_streaming(stream, partitioner);

  // 3. Evaluate the partitioning.
  const QualityMetrics metrics = evaluate_partition(graph, run.route, k);
  std::printf("SPNL: %s\n", summarize(metrics).c_str());
  std::printf("PT=%.3fs MC=%s window=%u/%u shards\n", run.partition_seconds,
              format_bytes(run.peak_partitioner_bytes).c_str(),
              partitioner.gamma().window_size(), partitioner.gamma().num_shards());
  return 0;
}
