// Example: why cutting edges matter — a simulated distributed PageRank.
//
// The paper motivates vertex partitioning by the communication cost of
// vertex-centric systems (Pregel): every cut edge carries one message per
// superstep. This example partitions the same web graph with Hash, LDG and
// SPNL, runs a push-style PageRank on a simulated K-worker cluster, and
// reports per-superstep network messages and the resulting estimated wall
// time under a simple cost model (local edge = 1 unit, remote edge = 20).
//
//   ./examples/pagerank_comm [--k=16] [--vertices=60000] [--supersteps=10]
#include <cstdio>
#include <memory>
#include <vector>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "partition/driver.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace spnl;

/// One PageRank superstep over the partitioned graph; returns the number of
/// cross-worker messages and accumulates new ranks.
EdgeId pagerank_superstep(const Graph& graph, const std::vector<PartitionId>& route,
                          const std::vector<double>& rank, std::vector<double>& next) {
  const double damping = 0.85;
  const VertexId n = graph.num_vertices();
  std::fill(next.begin(), next.end(), (1.0 - damping) / n);
  EdgeId remote_messages = 0;
  for (VertexId v = 0; v < n; ++v) {
    const EdgeId degree = graph.out_degree(v);
    if (degree == 0) continue;
    const double share = damping * rank[v] / degree;
    for (VertexId u : graph.out_neighbors(v)) {
      next[u] += share;
      if (route[u] != route[v]) ++remote_messages;
    }
  }
  return remote_messages;
}

struct ClusterCost {
  EdgeId messages_per_step = 0;
  double estimated_step_cost = 0.0;  // max over workers of local+remote work
};

ClusterCost cluster_cost(const Graph& graph, const std::vector<PartitionId>& route,
                         PartitionId k) {
  // Cost model: a worker pays 1 per local edge it owns and 20 per remote
  // edge (serialization + network); the superstep ends when the slowest
  // worker finishes (BSP barrier).
  constexpr double kRemoteFactor = 20.0;
  std::vector<double> work(k, 0.0);
  ClusterCost cost;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId u : graph.out_neighbors(v)) {
      if (route[u] == route[v]) {
        work[route[v]] += 1.0;
      } else {
        work[route[v]] += kRemoteFactor;
        ++cost.messages_per_step;
      }
    }
  }
  for (double w : work) cost.estimated_step_cost = std::max(cost.estimated_step_cost, w);
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spnl;
  const CliArgs args(argc, argv);
  const auto k = static_cast<PartitionId>(args.get_int("k", 16));
  const auto n = static_cast<VertexId>(args.get_int("vertices", 60'000));
  const int supersteps = static_cast<int>(args.get_int("supersteps", 10));

  WebCrawlParams params;
  params.num_vertices = n;
  params.avg_out_degree = 12.0;
  params.locality = 0.92;
  params.seed = 7;
  const Graph graph = generate_webcrawl(params);
  std::printf("%s\nsimulated cluster: %u workers, %d supersteps\n\n",
              describe(graph, "input").c_str(), k, supersteps);

  const PartitionConfig config{.num_partitions = k};
  TablePrinter table({"partitioner", "ECR", "msgs/superstep", "est. step cost",
                      "PT [s]"});

  std::vector<std::unique_ptr<StreamingPartitioner>> partitioners;
  partitioners.push_back(
      std::make_unique<HashPartitioner>(graph.num_vertices(), graph.num_edges(), config));
  partitioners.push_back(
      std::make_unique<LdgPartitioner>(graph.num_vertices(), graph.num_edges(), config));
  partitioners.push_back(
      std::make_unique<SpnlPartitioner>(graph.num_vertices(), graph.num_edges(), config));

  std::vector<double> rank(graph.num_vertices(), 1.0 / graph.num_vertices());
  std::vector<double> next(graph.num_vertices());

  for (auto& partitioner : partitioners) {
    InMemoryStream stream(graph);
    const RunResult run = run_streaming(stream, *partitioner);
    const auto metrics = evaluate_partition(graph, run.route, k);
    const ClusterCost cost = cluster_cost(graph, run.route, k);
    table.add_row({partitioner->name(), TablePrinter::fmt(metrics.ecr, 4),
                   TablePrinter::fmt(static_cast<std::size_t>(cost.messages_per_step)),
                   TablePrinter::fmt(cost.estimated_step_cost, 0),
                   TablePrinter::fmt(run.partition_seconds, 3)});
  }
  table.print();

  // Run the actual PageRank once (partition-independent values) to show the
  // computation the messages carry, and the total message volume under SPNL.
  SpnlPartitioner spnl(graph.num_vertices(), graph.num_edges(), config);
  InMemoryStream stream(graph);
  const auto route = run_streaming(stream, spnl).route;
  EdgeId total_messages = 0;
  for (int step = 0; step < supersteps; ++step) {
    total_messages += pagerank_superstep(graph, route, rank, next);
    std::swap(rank, next);
  }
  double top = 0.0;
  VertexId top_vertex = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (rank[v] > top) {
      top = rank[v];
      top_vertex = v;
    }
  }
  std::printf("\nPageRank finished: top vertex %u (rank %.6f); "
              "%llu cross-worker messages over %d supersteps under SPNL.\n",
              top_vertex, top, static_cast<unsigned long long>(total_messages),
              supersteps);
  return 0;
}
