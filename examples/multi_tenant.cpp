// Example: the multi-tenant re-partitioning scenario from the paper's
// introduction. Distributed graph systems plug the partitioner into every
// job, so one shared graph gets partitioned again and again — with different
// K per tenant (cluster sizes differ per analysis). Partitioning time is
// therefore paid per job, which is exactly why a heavyweight offline
// partitioner is the wrong tool even when its quality is competitive.
//
// This example partitions one web graph for a queue of tenant jobs
// (PageRank@K=8, SSSP@K=16, WCC@K=32, ...) with SPNL and with the
// METIS-like multilevel baseline, and compares cumulative partitioning time
// and the quality each job receives.
//
//   ./examples/multi_tenant [--vertices=80000] [--jobs=6]
#include <cstdio>
#include <vector>

#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "offline/multilevel.hpp"
#include "partition/driver.hpp"
#include "partition/metrics.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace spnl;
  const CliArgs args(argc, argv);
  const auto n = static_cast<VertexId>(args.get_int("vertices", 80'000));
  const int jobs = static_cast<int>(args.get_int("jobs", 6));

  WebCrawlParams params;
  params.num_vertices = n;
  params.avg_out_degree = 10.0;
  params.locality = 0.93;
  params.seed = 11;
  const Graph graph = generate_webcrawl(params);
  std::printf("%s\n\n", describe(graph, "shared tenant graph").c_str());

  const char* workloads[] = {"PageRank", "SSSP", "WCC", "BFS", "LabelProp", "Triangle"};
  const PartitionId ks[] = {8, 16, 32, 8, 64, 16};

  TablePrinter table({"job", "K", "SPNL ECR", "SPNL PT", "Multilevel ECR", "ML PT"});
  double spnl_total = 0.0, ml_total = 0.0;
  for (int j = 0; j < jobs; ++j) {
    const PartitionId k = ks[j % 6];
    const PartitionConfig config{.num_partitions = k};

    SpnlPartitioner spnl(graph.num_vertices(), graph.num_edges(), config);
    InMemoryStream stream(graph);
    const RunResult run = run_streaming(stream, spnl);
    const auto spnl_metrics = evaluate_partition(graph, run.route, k);
    spnl_total += run.partition_seconds;

    const auto ml = multilevel_partition(graph, config);
    const auto ml_metrics = evaluate_partition(graph, ml.route, k);
    ml_total += ml.partition_seconds;

    table.add_row({workloads[j % 6], TablePrinter::fmt(static_cast<int>(k)),
                   TablePrinter::fmt(spnl_metrics.ecr, 4),
                   TablePrinter::fmt(run.partition_seconds, 3),
                   TablePrinter::fmt(ml_metrics.ecr, 4),
                   TablePrinter::fmt(ml.partition_seconds, 3)});
  }
  table.print();
  std::printf("\ncumulative partitioning time over %d jobs: SPNL %.3fs vs "
              "multilevel %.3fs (%.1fx)\n", jobs, spnl_total, ml_total,
              ml_total / (spnl_total > 0 ? spnl_total : 1e-9));
  return 0;
}
