// Example: keeping a partitioning healthy on an evolving graph.
//
// A long-lived graph service can't re-partition from scratch on every
// update. This example bootstraps a SPNL partitioning, then simulates a day
// of churn — new pages appearing, links added and retired — while the
// IncrementalPartitioner maintains the assignment, interleaving bounded
// refinement. ECR and balance are reported after every epoch.
//
//   ./examples/evolving_graph [--vertices=40000] [--k=16] [--epochs=6]
#include <cstdio>

#include "core/spnl.hpp"
#include "dynamic/incremental.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "partition/driver.hpp"
#include "partition/metrics.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace spnl;
  const CliArgs args(argc, argv);
  const auto n = static_cast<VertexId>(args.get_int("vertices", 40'000));
  const auto k = static_cast<PartitionId>(args.get_int("k", 16));
  const int epochs = static_cast<int>(args.get_int("epochs", 6));

  // Bootstrap: the "historical" crawl, partitioned by streaming SPNL.
  WebCrawlParams params;
  params.num_vertices = n;
  params.avg_out_degree = 10.0;
  params.locality = 0.9;
  params.seed = 21;
  const Graph graph = generate_webcrawl(params);
  std::printf("%s\n", describe(graph, "bootstrap crawl").c_str());

  const PartitionConfig config{.num_partitions = k, .slack = 1.2};
  SpnlPartitioner seed(graph.num_vertices(), graph.num_edges(), config);
  InMemoryStream stream(graph);
  const RunResult bootstrap = run_streaming(stream, seed);
  std::printf("bootstrap: %s (PT=%.3fs)\n\n",
              summarize(evaluate_partition(graph, bootstrap.route, k)).c_str(),
              bootstrap.partition_seconds);

  IncrementalPartitioner live(graph, bootstrap.route, config,
                              {.expected_vertices = n + n / 4});

  Rng rng(99);
  TablePrinter table({"epoch", "adds", "new vertices", "removals", "ECR", "dv",
                      "refine moves", "epoch time"});
  VertexId next_id = n;
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    Timer timer;
    const int churn = static_cast<int>(n / 50);
    int adds = 0, removals = 0, arrivals = 0;

    for (int i = 0; i < churn; ++i) {
      const double dice = rng.next_double();
      if (dice < 0.25) {
        // A new page appears, linking near an existing hot region.
        const auto anchor = static_cast<VertexId>(rng.next_below(next_id));
        std::vector<VertexId> out;
        for (int e = 0; e < 6; ++e) {
          const auto offset = static_cast<VertexId>(rng.next_below(200));
          out.push_back(anchor >= offset ? anchor - offset : anchor + offset);
        }
        live.add_vertex(next_id++, out);
        ++arrivals;
      } else if (dice < 0.85) {
        // A new link between existing pages.
        const auto from = static_cast<VertexId>(rng.next_below(next_id));
        const auto to = static_cast<VertexId>(rng.next_below(next_id));
        if (from != to) {
          live.add_edge(from, to);
          ++adds;
        }
      } else {
        // A link rot: drop a random existing edge (best effort).
        const auto from = static_cast<VertexId>(rng.next_below(n));
        for (VertexId u : graph.out_neighbors(from)) {
          if (live.remove_edge(from, u)) {
            ++removals;
            break;
          }
        }
      }
    }
    const auto stats = live.refine(churn);
    table.add_row({TablePrinter::fmt(epoch), TablePrinter::fmt(adds),
                   TablePrinter::fmt(arrivals), TablePrinter::fmt(removals),
                   TablePrinter::fmt(live.ecr(), 4),
                   TablePrinter::fmt(live.delta_v(), 2),
                   TablePrinter::fmt(static_cast<std::size_t>(stats.moves)),
                   TablePrinter::fmt(timer.seconds(), 3) + "s"});
  }
  table.print();
  std::printf("\nfinal: |V|=%u |E|=%llu cut=%llu (ECR %.4f), never "
              "re-partitioned from scratch.\n",
              live.num_vertices(),
              static_cast<unsigned long long>(live.num_edges()),
              static_cast<unsigned long long>(live.cut_edges()), live.ecr());
  return 0;
}
