# Empty dependencies file for bench_fig12_parallel.
# This may be replaced when dependencies are built.
