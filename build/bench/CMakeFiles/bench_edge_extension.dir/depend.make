# Empty dependencies file for bench_edge_extension.
# This may be replaced when dependencies are built.
