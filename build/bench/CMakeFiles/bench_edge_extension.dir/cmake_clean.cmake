file(REMOVE_RECURSE
  "CMakeFiles/bench_edge_extension.dir/bench_edge_extension.cpp.o"
  "CMakeFiles/bench_edge_extension.dir/bench_edge_extension.cpp.o.d"
  "bench_edge_extension"
  "bench_edge_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
