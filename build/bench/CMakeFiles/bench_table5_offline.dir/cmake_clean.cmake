file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_offline.dir/bench_table5_offline.cpp.o"
  "CMakeFiles/bench_table5_offline.dir/bench_table5_offline.cpp.o.d"
  "bench_table5_offline"
  "bench_table5_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
