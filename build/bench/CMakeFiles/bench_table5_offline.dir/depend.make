# Empty dependencies file for bench_table5_offline.
# This may be replaced when dependencies are built.
