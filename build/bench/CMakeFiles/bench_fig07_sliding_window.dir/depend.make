# Empty dependencies file for bench_fig07_sliding_window.
# This may be replaced when dependencies are built.
