file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_streaming.dir/bench_table3_streaming.cpp.o"
  "CMakeFiles/bench_table3_streaming.dir/bench_table3_streaming.cpp.o.d"
  "bench_table3_streaming"
  "bench_table3_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
