file(REMOVE_RECURSE
  "CMakeFiles/bench_zoo.dir/bench_zoo.cpp.o"
  "CMakeFiles/bench_zoo.dir/bench_zoo.cpp.o.d"
  "bench_zoo"
  "bench_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
