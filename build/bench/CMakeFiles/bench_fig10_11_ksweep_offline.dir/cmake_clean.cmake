file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_ksweep_offline.dir/bench_fig10_11_ksweep_offline.cpp.o"
  "CMakeFiles/bench_fig10_11_ksweep_offline.dir/bench_fig10_11_ksweep_offline.cpp.o.d"
  "bench_fig10_11_ksweep_offline"
  "bench_fig10_11_ksweep_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_ksweep_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
