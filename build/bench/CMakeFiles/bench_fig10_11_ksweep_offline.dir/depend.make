# Empty dependencies file for bench_fig10_11_ksweep_offline.
# This may be replaced when dependencies are built.
