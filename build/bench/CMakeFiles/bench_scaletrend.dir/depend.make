# Empty dependencies file for bench_scaletrend.
# This may be replaced when dependencies are built.
