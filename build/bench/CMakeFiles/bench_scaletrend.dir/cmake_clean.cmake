file(REMOVE_RECURSE
  "CMakeFiles/bench_scaletrend.dir/bench_scaletrend.cpp.o"
  "CMakeFiles/bench_scaletrend.dir/bench_scaletrend.cpp.o.d"
  "bench_scaletrend"
  "bench_scaletrend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaletrend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
