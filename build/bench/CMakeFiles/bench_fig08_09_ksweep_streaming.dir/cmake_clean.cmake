file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_09_ksweep_streaming.dir/bench_fig08_09_ksweep_streaming.cpp.o"
  "CMakeFiles/bench_fig08_09_ksweep_streaming.dir/bench_fig08_09_ksweep_streaming.cpp.o.d"
  "bench_fig08_09_ksweep_streaming"
  "bench_fig08_09_ksweep_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_09_ksweep_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
