# Empty compiler generated dependencies file for bench_fig08_09_ksweep_streaming.
# This may be replaced when dependencies are built.
