file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_analytics.dir/bench_e2e_analytics.cpp.o"
  "CMakeFiles/bench_e2e_analytics.dir/bench_e2e_analytics.cpp.o.d"
  "bench_e2e_analytics"
  "bench_e2e_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
