# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/spnl_tests[1]_include.cmake")
add_test(tools.gen_and_partition "/usr/bin/cmake" "-DSPNL_GEN=/root/repo/build/tools/spnl_gen" "-DSPNL_PARTITION=/root/repo/build/tools/spnl_partition" "-DSPNL_ANALYZE=/root/repo/build/tools/spnl_analyze" "-DWORK_DIR=/root/repo/build/tool_smoke" "-P" "/root/repo/tests/tool_smoke.cmake")
set_tests_properties(tools.gen_and_partition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
