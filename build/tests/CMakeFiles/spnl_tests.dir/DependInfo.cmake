
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline_partitioners.cpp" "tests/CMakeFiles/spnl_tests.dir/test_baseline_partitioners.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_baseline_partitioners.cpp.o.d"
  "/root/repo/tests/test_bsp.cpp" "tests/CMakeFiles/spnl_tests.dir/test_bsp.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_bsp.cpp.o.d"
  "/root/repo/tests/test_buffered.cpp" "tests/CMakeFiles/spnl_tests.dir/test_buffered.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_buffered.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/spnl_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_distributed_sim.cpp" "tests/CMakeFiles/spnl_tests.dir/test_distributed_sim.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_distributed_sim.cpp.o.d"
  "/root/repo/tests/test_edge_partitioning.cpp" "tests/CMakeFiles/spnl_tests.dir/test_edge_partitioning.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_edge_partitioning.cpp.o.d"
  "/root/repo/tests/test_fuzz_models.cpp" "tests/CMakeFiles/spnl_tests.dir/test_fuzz_models.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_fuzz_models.cpp.o.d"
  "/root/repo/tests/test_gamma_table.cpp" "tests/CMakeFiles/spnl_tests.dir/test_gamma_table.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_gamma_table.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/spnl_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_golden.cpp" "tests/CMakeFiles/spnl_tests.dir/test_golden.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_golden.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/spnl_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_hostgraph.cpp" "tests/CMakeFiles/spnl_tests.dir/test_hostgraph.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_hostgraph.cpp.o.d"
  "/root/repo/tests/test_incremental.cpp" "tests/CMakeFiles/spnl_tests.dir/test_incremental.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_incremental.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/spnl_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/spnl_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/spnl_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_offline.cpp" "tests/CMakeFiles/spnl_tests.dir/test_offline.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_offline.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/spnl_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_parallel_bsp.cpp" "tests/CMakeFiles/spnl_tests.dir/test_parallel_bsp.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_parallel_bsp.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/spnl_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rct.cpp" "tests/CMakeFiles/spnl_tests.dir/test_rct.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_rct.cpp.o.d"
  "/root/repo/tests/test_reorder.cpp" "tests/CMakeFiles/spnl_tests.dir/test_reorder.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_reorder.cpp.o.d"
  "/root/repo/tests/test_restream.cpp" "tests/CMakeFiles/spnl_tests.dir/test_restream.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_restream.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/spnl_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_spn.cpp" "tests/CMakeFiles/spnl_tests.dir/test_spn.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_spn.cpp.o.d"
  "/root/repo/tests/test_spn_semantics.cpp" "tests/CMakeFiles/spnl_tests.dir/test_spn_semantics.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_spn_semantics.cpp.o.d"
  "/root/repo/tests/test_spnl.cpp" "tests/CMakeFiles/spnl_tests.dir/test_spnl.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_spnl.cpp.o.d"
  "/root/repo/tests/test_stanton_kliot.cpp" "tests/CMakeFiles/spnl_tests.dir/test_stanton_kliot.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_stanton_kliot.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/spnl_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_streams.cpp" "tests/CMakeFiles/spnl_tests.dir/test_streams.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_streams.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/spnl_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_window_stream.cpp" "tests/CMakeFiles/spnl_tests.dir/test_window_stream.cpp.o" "gcc" "tests/CMakeFiles/spnl_tests.dir/test_window_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spnl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
