# Empty dependencies file for spnl_tests.
# This may be replaced when dependencies are built.
