# Empty dependencies file for disk_pipeline.
# This may be replaced when dependencies are built.
