file(REMOVE_RECURSE
  "CMakeFiles/disk_pipeline.dir/disk_pipeline.cpp.o"
  "CMakeFiles/disk_pipeline.dir/disk_pipeline.cpp.o.d"
  "disk_pipeline"
  "disk_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
