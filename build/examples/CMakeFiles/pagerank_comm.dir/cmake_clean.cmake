file(REMOVE_RECURSE
  "CMakeFiles/pagerank_comm.dir/pagerank_comm.cpp.o"
  "CMakeFiles/pagerank_comm.dir/pagerank_comm.cpp.o.d"
  "pagerank_comm"
  "pagerank_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
