# Empty dependencies file for pagerank_comm.
# This may be replaced when dependencies are built.
