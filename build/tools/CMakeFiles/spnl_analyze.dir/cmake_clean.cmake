file(REMOVE_RECURSE
  "CMakeFiles/spnl_analyze.dir/spnl_analyze.cpp.o"
  "CMakeFiles/spnl_analyze.dir/spnl_analyze.cpp.o.d"
  "spnl_analyze"
  "spnl_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnl_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
