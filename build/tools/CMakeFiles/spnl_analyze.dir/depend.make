# Empty dependencies file for spnl_analyze.
# This may be replaced when dependencies are built.
