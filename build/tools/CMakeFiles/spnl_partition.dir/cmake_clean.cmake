file(REMOVE_RECURSE
  "CMakeFiles/spnl_partition.dir/spnl_partition.cpp.o"
  "CMakeFiles/spnl_partition.dir/spnl_partition.cpp.o.d"
  "spnl_partition"
  "spnl_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnl_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
