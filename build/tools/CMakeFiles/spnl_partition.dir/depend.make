# Empty dependencies file for spnl_partition.
# This may be replaced when dependencies are built.
