file(REMOVE_RECURSE
  "CMakeFiles/spnl_gen.dir/spnl_gen.cpp.o"
  "CMakeFiles/spnl_gen.dir/spnl_gen.cpp.o.d"
  "spnl_gen"
  "spnl_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnl_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
