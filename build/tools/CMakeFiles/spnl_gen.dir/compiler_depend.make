# Empty compiler generated dependencies file for spnl_gen.
# This may be replaced when dependencies are built.
