file(REMOVE_RECURSE
  "libspnl.a"
)
