
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/simulator.cpp" "src/CMakeFiles/spnl.dir/cluster/simulator.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/cluster/simulator.cpp.o.d"
  "/root/repo/src/core/concurrent_gamma.cpp" "src/CMakeFiles/spnl.dir/core/concurrent_gamma.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/core/concurrent_gamma.cpp.o.d"
  "/root/repo/src/core/distributed_sim.cpp" "src/CMakeFiles/spnl.dir/core/distributed_sim.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/core/distributed_sim.cpp.o.d"
  "/root/repo/src/core/gamma_table.cpp" "src/CMakeFiles/spnl.dir/core/gamma_table.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/core/gamma_table.cpp.o.d"
  "/root/repo/src/core/parallel_driver.cpp" "src/CMakeFiles/spnl.dir/core/parallel_driver.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/core/parallel_driver.cpp.o.d"
  "/root/repo/src/core/rct.cpp" "src/CMakeFiles/spnl.dir/core/rct.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/core/rct.cpp.o.d"
  "/root/repo/src/core/spn.cpp" "src/CMakeFiles/spnl.dir/core/spn.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/core/spn.cpp.o.d"
  "/root/repo/src/core/spnl.cpp" "src/CMakeFiles/spnl.dir/core/spnl.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/core/spnl.cpp.o.d"
  "/root/repo/src/dynamic/incremental.cpp" "src/CMakeFiles/spnl.dir/dynamic/incremental.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/dynamic/incremental.cpp.o.d"
  "/root/repo/src/edge/edge_partitioners.cpp" "src/CMakeFiles/spnl.dir/edge/edge_partitioners.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/edge/edge_partitioners.cpp.o.d"
  "/root/repo/src/edge/edge_partitioning.cpp" "src/CMakeFiles/spnl.dir/edge/edge_partitioning.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/edge/edge_partitioning.cpp.o.d"
  "/root/repo/src/engine/algorithms.cpp" "src/CMakeFiles/spnl.dir/engine/algorithms.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/engine/algorithms.cpp.o.d"
  "/root/repo/src/engine/bsp.cpp" "src/CMakeFiles/spnl.dir/engine/bsp.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/engine/bsp.cpp.o.d"
  "/root/repo/src/engine/parallel_bsp.cpp" "src/CMakeFiles/spnl.dir/engine/parallel_bsp.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/engine/parallel_bsp.cpp.o.d"
  "/root/repo/src/engine/partitioned_graph.cpp" "src/CMakeFiles/spnl.dir/engine/partitioned_graph.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/engine/partitioned_graph.cpp.o.d"
  "/root/repo/src/graph/adjacency_stream.cpp" "src/CMakeFiles/spnl.dir/graph/adjacency_stream.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/graph/adjacency_stream.cpp.o.d"
  "/root/repo/src/graph/datasets.cpp" "src/CMakeFiles/spnl.dir/graph/datasets.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/graph/datasets.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/spnl.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/spnl.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/spnl.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/reorder.cpp" "src/CMakeFiles/spnl.dir/graph/reorder.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/graph/reorder.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/CMakeFiles/spnl.dir/graph/stats.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/graph/stats.cpp.o.d"
  "/root/repo/src/offline/label_prop.cpp" "src/CMakeFiles/spnl.dir/offline/label_prop.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/offline/label_prop.cpp.o.d"
  "/root/repo/src/offline/multilevel.cpp" "src/CMakeFiles/spnl.dir/offline/multilevel.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/offline/multilevel.cpp.o.d"
  "/root/repo/src/partition/buffered.cpp" "src/CMakeFiles/spnl.dir/partition/buffered.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/partition/buffered.cpp.o.d"
  "/root/repo/src/partition/driver.cpp" "src/CMakeFiles/spnl.dir/partition/driver.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/partition/driver.cpp.o.d"
  "/root/repo/src/partition/fennel.cpp" "src/CMakeFiles/spnl.dir/partition/fennel.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/partition/fennel.cpp.o.d"
  "/root/repo/src/partition/hash_partitioner.cpp" "src/CMakeFiles/spnl.dir/partition/hash_partitioner.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/partition/hash_partitioner.cpp.o.d"
  "/root/repo/src/partition/ldg.cpp" "src/CMakeFiles/spnl.dir/partition/ldg.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/partition/ldg.cpp.o.d"
  "/root/repo/src/partition/metrics.cpp" "src/CMakeFiles/spnl.dir/partition/metrics.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/partition/metrics.cpp.o.d"
  "/root/repo/src/partition/partitioning.cpp" "src/CMakeFiles/spnl.dir/partition/partitioning.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/partition/partitioning.cpp.o.d"
  "/root/repo/src/partition/range_partitioner.cpp" "src/CMakeFiles/spnl.dir/partition/range_partitioner.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/partition/range_partitioner.cpp.o.d"
  "/root/repo/src/partition/restream.cpp" "src/CMakeFiles/spnl.dir/partition/restream.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/partition/restream.cpp.o.d"
  "/root/repo/src/partition/stanton_kliot.cpp" "src/CMakeFiles/spnl.dir/partition/stanton_kliot.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/partition/stanton_kliot.cpp.o.d"
  "/root/repo/src/partition/window_stream.cpp" "src/CMakeFiles/spnl.dir/partition/window_stream.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/partition/window_stream.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/spnl.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/memory.cpp" "src/CMakeFiles/spnl.dir/util/memory.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/util/memory.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/spnl.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table_printer.cpp" "src/CMakeFiles/spnl.dir/util/table_printer.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/util/table_printer.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/spnl.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/spnl.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
