# Empty compiler generated dependencies file for spnl.
# This may be replaced when dependencies are built.
