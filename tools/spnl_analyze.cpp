// spnl_analyze — inspect a partitioning: per-partition statistics, the
// inter-partition communication matrix, boundary structure, and the
// simulated BSP cost of a PageRank job on it.
//
// Usage:
//   spnl_analyze <graph-file> <route-file> [--format=adj|edgelist|binary]
//                [--matrix] [--pagerank-steps=0]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/algorithms.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "partition/metrics.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace spnl;

Graph load_graph(const std::string& path, const std::string& format) {
  if (format == "edgelist") return read_edge_list(path, true);
  if (format == "binary") return read_binary(path);
  FileAdjacencyStream stream(path);
  return materialize(stream);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: spnl_analyze <graph-file> <route-file> "
                 "[--format=adj|edgelist|binary] [--matrix] "
                 "[--pagerank-steps=N]\n");
    return 2;
  }
  try {
    const Graph graph = load_graph(args.positional()[0], args.get("format", "adj"));
    const auto route = read_route_table(args.positional()[1]);
    if (route.size() != graph.num_vertices()) {
      std::fprintf(stderr, "error: route covers %zu vertices, graph has %u\n",
                   route.size(), graph.num_vertices());
      return 1;
    }
    PartitionId k = 0;
    for (PartitionId p : route) {
      if (p == kUnassigned) {
        std::fprintf(stderr, "error: unassigned vertex in route table\n");
        return 1;
      }
      k = std::max(k, static_cast<PartitionId>(p + 1));
    }

    std::printf("%s\n", describe(graph, args.positional()[0]).c_str());
    const auto metrics = evaluate_partition(graph, route, k);
    std::printf("K=%u %s\n\n", k, summarize(metrics).c_str());

    // Per-partition breakdown: sizes, internal/external edges, boundary
    // vertices (those with at least one cross-partition edge, in either
    // direction — the replication frontier a distributed runtime maintains).
    std::vector<EdgeId> internal(k, 0), external(k, 0);
    std::vector<VertexId> boundary(k, 0);
    std::vector<bool> is_boundary(graph.num_vertices(), false);
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      for (VertexId u : graph.out_neighbors(v)) {
        if (route[u] == route[v]) {
          ++internal[route[v]];
        } else {
          ++external[route[v]];
          is_boundary[v] = true;
          is_boundary[u] = true;
        }
      }
    }
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (is_boundary[v]) ++boundary[route[v]];
    }

    TablePrinter table({"part", "|V_i|", "|E_i|", "internal", "external",
                        "ext%", "boundary|V|"});
    for (PartitionId p = 0; p < k; ++p) {
      const EdgeId total = internal[p] + external[p];
      table.add_row({TablePrinter::fmt(static_cast<int>(p)),
                     TablePrinter::fmt(std::size_t{metrics.vertices_per_partition[p]}),
                     TablePrinter::fmt(std::size_t{metrics.edges_per_partition[p]}),
                     TablePrinter::fmt(std::size_t{internal[p]}),
                     TablePrinter::fmt(std::size_t{external[p]}),
                     TablePrinter::fmt(total == 0 ? 0.0
                                                  : 100.0 * external[p] / total, 1),
                     TablePrinter::fmt(std::size_t{boundary[p]})});
    }
    table.print();

    if (args.get_bool("matrix", false)) {
      std::printf("\ncommunication matrix (edges from row-partition to "
                  "column-partition):\n");
      std::vector<std::vector<EdgeId>> matrix(k, std::vector<EdgeId>(k, 0));
      for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        for (VertexId u : graph.out_neighbors(v)) ++matrix[route[v]][route[u]];
      }
      std::vector<std::string> headers = {"from\\to"};
      for (PartitionId p = 0; p < k; ++p) headers.push_back(std::to_string(p));
      TablePrinter mt(headers);
      for (PartitionId p = 0; p < k; ++p) {
        std::vector<std::string> row = {std::to_string(p)};
        for (PartitionId q = 0; q < k; ++q) {
          row.push_back(std::to_string(matrix[p][q]));
        }
        mt.add_row(std::move(row));
      }
      mt.print();
    }

    const int steps = static_cast<int>(args.get_int("pagerank-steps", 0));
    if (steps > 0) {
      const auto result = pagerank(graph, route, k, steps);
      std::printf("\nPageRank x%d under this partitioning: %llu local + %llu "
                  "remote messages (remote %.1f%%), critical path %.0f cost "
                  "units\n",
                  steps,
                  static_cast<unsigned long long>(result.stats.local_messages),
                  static_cast<unsigned long long>(result.stats.remote_messages),
                  100.0 * result.stats.remote_fraction(),
                  result.stats.critical_path_cost);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
