// Client for spnl_server: streams a graph file to the daemon and writes the
// returned route table, surviving Busy replies, server restarts, and torn
// connections via retry/backoff + token resume (docs/server.md).
//
//   spnl_client <graph-file> --connect=unix:/tmp/spnl.sock --k=4
//               [--algo=spnl] [--format=adj|edges|sadj]
//               [--reader=buffered|mmap] [--lambda=0.5]
//               [--shards=N] [--balance=vertex|edge] [--slack=1.1]
//               [--out=route.txt] [--deadline=SEC] [--max-attempts=N]
//               [--batch=RECORDS] [--inject-disconnect-after=N] [--quiet]
#include <cstdio>
#include <memory>
#include <string>

#include "graph/adjacency_stream.hpp"
#include "graph/io.hpp"
#include "graph/mmap_stream.hpp"
#include "graph/stream_binary.hpp"
#include "server/client.hpp"
#include "util/cli.hpp"
#include "util/fault_fs.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: spnl_client <graph-file> --connect=<unix:PATH|tcp:HOST:PORT> "
      "--k=<parts> [options]\n"
      "  --algo=NAME             spnl|spn|ldg|fennel|hash|range (spnl)\n"
      "  --format=adj|edges|sadj input format (adj = adjacency lines,\n"
      "                          edges = source-grouped edge list,\n"
      "                          sadj = binary from spnl_convert; adj)\n"
      "  --reader=buffered|mmap  text reader implementation (buffered);\n"
      "                          sadj is always mmap-backed\n"
      "  --lambda=F --shards=N   SPNL scoring knobs\n"
      "  --balance=vertex|edge --slack=F   capacity model\n"
      "  --out=PATH              write the route, one partition per line\n"
      "  --deadline=SEC          wall-clock budget (0 = unbounded)\n"
      "  --max-attempts=N        transport failures tolerated (8)\n"
      "  --batch=N               records per frame (256)\n"
      "  --inject-disconnect-after=N  fault injection: drop the connection\n"
      "                          once after N acked records (tests)\n"
      "  --inject-io-faults=PLAN storage-fault plan for the reader/route\n"
      "                          writer (docs/fault_tolerance.md)\n");
}

}  // namespace

int main(int argc, char** argv) {
  spnl::CliArgs args(argc, argv);
  if (args.has("help") || args.positional().empty() || !args.has("connect") ||
      !args.has("k")) {
    usage();
    return args.has("help") ? 0 : 2;
  }
  const bool quiet = args.get_bool("quiet", false);

  if (args.has("inject-io-faults")) {
    try {
      spnl::faultfs::configure(args.get("inject-io-faults", ""));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  spnl::ClientOptions options;
  std::unique_ptr<spnl::AdjacencyStream> stream;
  try {
    options.endpoint = spnl::Endpoint::parse(args.get("connect", ""));
    options.deadline_seconds = args.get_double("deadline", 0.0);
    options.max_attempts =
        static_cast<std::uint32_t>(args.get_int("max-attempts", 8));
    options.batch_records =
        static_cast<std::uint32_t>(args.get_int("batch", 256));
    options.inject_disconnect_after_records =
        static_cast<std::uint64_t>(args.get_int("inject-disconnect-after", 0));

    const std::string path = args.positional()[0];
    const std::string format = args.get("format", "adj");
    const std::string reader = args.get("reader", "buffered");
    const bool use_mmap = reader == "mmap";
    if (!use_mmap && reader != "buffered") {
      std::fprintf(stderr, "error: unknown --reader=%s\n", reader.c_str());
      return 2;
    }
    if (format == "adj") {
      if (use_mmap) {
        stream = std::make_unique<spnl::MmapAdjacencyStream>(path);
      } else {
        stream = std::make_unique<spnl::FileAdjacencyStream>(path);
      }
    } else if (format == "edges") {
      if (use_mmap) {
        stream = std::make_unique<spnl::MmapEdgeListStream>(path);
      } else {
        stream = std::make_unique<spnl::EdgeListAdjacencyStream>(path);
      }
    } else if (format == "sadj") {
      stream = std::make_unique<spnl::BinaryAdjacencyStream>(path);
    } else {
      std::fprintf(stderr, "error: unknown --format=%s\n", format.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  spnl::WireSessionConfig config;
  try {
    config.algo = args.get("algo", "spnl");
    config.num_vertices = stream->num_vertices();
    config.num_edges = stream->num_edges();
    config.num_partitions = static_cast<std::uint32_t>(args.get_int("k", 2));
    config.lambda = args.get_double("lambda", 0.5);
    config.num_shards = static_cast<std::uint32_t>(args.get_int("shards", 0));
    const std::string balance = args.get("balance", "vertex");
    if (balance != "vertex" && balance != "edge") {
      std::fprintf(stderr, "error: unknown --balance=%s\n", balance.c_str());
      return 2;
    }
    config.balance = balance == "edge" ? 1 : 0;
    config.slack = args.get_double("slack", 1.1);
  } catch (const spnl::CliError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  spnl::SpnlClient client(options);
  spnl::ClientRunResult result;
  try {
    result = client.partition(*stream, config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    try {
      // Same "# vertex partition" table spnl_partition writes, so the two
      // front-ends are drop-in interchangeable downstream.
      spnl::write_route_table(result.route, out_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (!quiet) {
    std::printf(
        "partitioned %zu vertices (session %s, attempts=%u busy_retries=%llu "
        "reconnects=%llu)\n",
        result.route.size(), result.token.c_str(), result.attempts,
        static_cast<unsigned long long>(result.busy_retries),
        static_cast<unsigned long long>(result.reconnects));
  }
  return 0;
}
