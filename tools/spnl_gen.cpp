// spnl_gen — generate synthetic graphs in any supported on-disk format.
//
// Usage:
//   spnl_gen --out=graph.adj [--model=webcrawl] [--vertices=100000]
//            [--avg-degree=10] [--locality=0.9] [--locality-scale=64]
//            [--alpha=2.0] [--copy-prob=0.6] [--seed=1]
//            [--mu=0.1] [--communities=8] [--labels=FILE]    (planted only)
//            [--dataset=uk2002 --scale=1.0]         (paper analogues)
//            [--format=adj|edgelist|binary] [--shuffle]
//            [--order=id|random|degree|degree-asc|temporal|adversarial]
//
// Models: webcrawl (default), rmat, er, ring, grid, planted (symmetric
// planted-partition with ground-truth labels; --mu is the inter-community
// mixing, --labels writes the truth one label per line) — or --dataset to
// emit one of the eight paper analogues.
//
// --order relabels the graph by a stream-order attack (graph/reorder.hpp)
// so that streaming the file in ascending id reproduces that order; planted
// labels are permuted alongside. `adversarial` interleaves communities
// round-robin (planted uses its true labels, other models contiguous-block
// pseudo-communities), the worst case for id-locality heuristics.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace spnl;
  const CliArgs args(argc, argv);
  if (!args.has("out")) {
    std::fprintf(stderr,
                 "usage: spnl_gen --out=FILE [--model=webcrawl|rmat|er|"
                 "ring|grid|planted] [--dataset=NAME --scale=S]\n"
                 "  [--mu=0.1 --communities=8 --labels=FILE] "
                 "[--order=id|random|degree|degree-asc|temporal|adversarial] "
                 "[options]\n");
    return 2;
  }

  try {
    Graph graph;
    std::vector<PartitionId> labels;  // planted ground truth (else empty)
    PartitionId num_communities = 0;
    if (args.has("dataset")) {
      graph = load_dataset(dataset_by_name(args.get("dataset", "")),
                           args.get_double("scale", 1.0));
    } else {
      const std::string model = args.get("model", "webcrawl");
      const auto n = static_cast<VertexId>(args.get_int("vertices", 100'000));
      if (model == "webcrawl") {
        WebCrawlParams params;
        params.num_vertices = n;
        params.avg_out_degree = args.get_double("avg-degree", 10.0);
        params.locality = args.get_double("locality", 0.9);
        params.locality_scale = args.get_double("locality-scale", 64.0);
        params.degree_alpha = args.get_double("alpha", 2.0);
        params.copy_prob = args.get_double("copy-prob", 0.6);
        params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
        graph = generate_webcrawl(params);
      } else if (model == "rmat") {
        RmatParams params;
        params.scale = static_cast<unsigned>(args.get_int("rmat-scale", 16));
        params.num_edges = static_cast<EdgeId>(
            args.get_int("edges", static_cast<std::int64_t>(n) * 8));
        params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
        graph = generate_rmat(params);
      } else if (model == "er") {
        graph = generate_erdos_renyi(
            n, static_cast<EdgeId>(args.get_int("edges", static_cast<std::int64_t>(n) * 8)),
            static_cast<std::uint64_t>(args.get_int("seed", 1)));
      } else if (model == "planted") {
        PlantedPartitionParams params;
        params.num_vertices = n;
        params.num_communities =
            static_cast<PartitionId>(args.get_int("communities", 8));
        params.avg_out_degree = args.get_double("avg-degree", 16.0);
        params.mixing = args.get_double("mu", 0.1);
        params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
        PlantedGraph planted = generate_planted_partition(params);
        graph = std::move(planted.graph);
        labels = std::move(planted.labels);
        num_communities = planted.num_communities;
      } else if (model == "ring") {
        graph = generate_ring_lattice(n, static_cast<unsigned>(args.get_int("ring-k", 4)));
      } else if (model == "grid") {
        const auto side = static_cast<VertexId>(args.get_int("side", 316));
        graph = generate_grid(side, side);
      } else {
        std::fprintf(stderr, "unknown model %s\n", model.c_str());
        return 2;
      }
    }

    if (args.has("labels") && labels.empty()) {
      throw std::runtime_error("--labels needs --model=planted");
    }

    if (args.get_bool("shuffle", false)) {
      graph = random_renumber(graph, static_cast<std::uint64_t>(args.get_int("seed", 1)) + 1);
    }

    if (args.has("order")) {
      const StreamOrder order = stream_order_by_name(args.get("order", "id"));
      const std::vector<VertexId> new_id = make_stream_order(
          graph, order, labels.empty() ? nullptr : &labels,
          labels.empty() ? static_cast<PartitionId>(args.get_int("communities", 8))
                         : num_communities,
          static_cast<std::uint64_t>(args.get_int("seed", 1)) + 2);
      graph = apply_permutation(graph, new_id);
      if (!labels.empty()) {
        std::vector<PartitionId> permuted(labels.size());
        for (VertexId v = 0; v < new_id.size(); ++v) {
          permuted[new_id[v]] = labels[v];
        }
        labels = std::move(permuted);
      }
    }

    const std::string out = args.get("out", "");
    const std::string format = args.get("format", "adj");
    if (format == "adj") {
      write_adjacency_list(graph, out);
    } else if (format == "edgelist") {
      write_edge_list(graph, out);
    } else if (format == "binary") {
      write_binary(graph, out);
    } else {
      std::fprintf(stderr, "unknown format %s\n", format.c_str());
      return 2;
    }
    std::printf("%s\nwrote %s (%s)\n", describe(graph, "generated").c_str(),
                out.c_str(), format.c_str());
    if (args.has("labels")) {
      const std::string labels_path = args.get("labels", "");
      write_route_table(labels, labels_path);
      std::printf("wrote %zu ground-truth labels (%u communities) to %s\n",
                  labels.size(), num_communities, labels_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
