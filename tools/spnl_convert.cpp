// spnl_convert — converts text graph formats to the delta-compressed binary
// sadj streaming format (docs/ingestion.md) and back.
//
//   spnl_convert <input> --out=graph.sadj [--format=adj|edges|sadj]
//                [--reader=buffered|mmap] [--to=sadj|adj]
//                [--max-bad-records=N] [--quarantine-log=bad.txt] [--quiet]
//
// --format names the INPUT format (adj = adjacency lines, edges =
// source-grouped edge list, sadj = binary); --to names the output (default
// sadj). sadj -> adj round-trips a binary file back to text for inspection.
// Conversion preserves the exact record and neighbor order of the input
// stream — a partitioner fed the converted file produces a byte-identical
// route. Quarantine flags apply to text inputs only: malformed lines are
// skipped (and logged) up to the bound, and never reach the output file.
#include <cstdio>
#include <memory>
#include <string>

#include "graph/adjacency_stream.hpp"
#include "graph/io.hpp"
#include "graph/mmap_stream.hpp"
#include "graph/stream_binary.hpp"
#include "util/checked_io.hpp"
#include "util/cli.hpp"
#include "util/fault_fs.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: spnl_convert <input> --out=PATH [options]\n"
      "  --format=adj|edges|sadj  input format (adj)\n"
      "  --to=sadj|adj            output format (sadj)\n"
      "  --reader=buffered|mmap   text reader implementation (mmap)\n"
      "  --max-bad-records=N      quarantine up to N malformed text lines\n"
      "  --quarantine-log=PATH    append quarantined lines to PATH\n"
      "  --inject-io-faults=PLAN  storage-fault plan (docs/fault_tolerance.md)\n"
      "  --quiet                  suppress the summary line\n");
}

// Text output: same "# V <n> E <m>"-headed adjacency-list format
// write_adjacency_list emits, but streamed record-by-record so a
// larger-than-RAM sadj file converts back without materializing. Published
// crash-atomically, like the sadj path: an interrupted conversion leaves the
// previous output intact, never a truncated half-file at the final name.
void write_adj_text(spnl::AdjacencyStream& stream, const std::string& path) {
  spnl::AtomicFileWriter atomic(path);
  spnl::FdWriter& out = atomic.out();
  out.append("# V ");
  out.append_u64(stream.num_vertices());
  out.append(" E ");
  out.append_u64(stream.num_edges());
  out.append_char('\n');
  while (auto record = stream.next()) {
    out.append_u64(record->id);
    for (spnl::VertexId nbr : record->out) {
      out.append_char(' ');
      out.append_u64(nbr);
    }
    out.append_char('\n');
  }
  atomic.commit();
}

}  // namespace

int main(int argc, char** argv) {
  const spnl::CliArgs args(argc, argv);
  if (args.has("help") || args.positional().size() != 1 || !args.has("out")) {
    usage();
    return args.has("help") ? 0 : 2;
  }

  // Armed before the first file is opened so the plan's operation indices
  // count from the very first syscall of the run.
  if (args.has("inject-io-faults")) {
    try {
      spnl::faultfs::configure(args.get("inject-io-faults", ""));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  try {
    const std::string input = args.positional()[0];
    const std::string out_path = args.get("out", "");
    const std::string format = args.get("format", "adj");
    const std::string to = args.get("to", "sadj");
    const std::string reader = args.get("reader", "mmap");
    const bool quiet = args.get_bool("quiet", false);

    spnl::StreamHardeningOptions hardening;
    hardening.max_bad_records =
        static_cast<std::uint64_t>(args.get_int("max-bad-records", 0));
    hardening.quarantine_log = args.get("quarantine-log", "");

    std::unique_ptr<spnl::AdjacencyStream> stream;
    if (format == "adj") {
      if (reader == "mmap") {
        stream = std::make_unique<spnl::MmapAdjacencyStream>(input, hardening);
      } else if (reader == "buffered") {
        stream = std::make_unique<spnl::FileAdjacencyStream>(input, hardening);
      } else {
        throw std::runtime_error("--reader: want buffered|mmap");
      }
    } else if (format == "edges") {
      if (reader == "mmap") {
        stream = std::make_unique<spnl::MmapEdgeListStream>(input, hardening);
      } else if (reader == "buffered") {
        stream =
            std::make_unique<spnl::EdgeListAdjacencyStream>(input, hardening);
      } else {
        throw std::runtime_error("--reader: want buffered|mmap");
      }
    } else if (format == "sadj") {
      stream = std::make_unique<spnl::BinaryAdjacencyStream>(input);
    } else {
      throw std::runtime_error("--format: want adj|edges|sadj");
    }

    std::uint64_t records = 0;
    if (to == "sadj") {
      records = spnl::write_sadj(*stream, out_path);
    } else if (to == "adj") {
      write_adj_text(*stream, out_path);
    } else {
      throw std::runtime_error("--to: want sadj|adj");
    }

    if (!quiet) {
      std::printf("wrote %s: V=%u E=%llu records=%llu",
                  out_path.c_str(), stream->num_vertices(),
                  static_cast<unsigned long long>(stream->num_edges()),
                  static_cast<unsigned long long>(records));
      if (stream->bad_records() > 0) {
        std::printf(" quarantined=%llu",
                    static_cast<unsigned long long>(stream->bad_records()));
      }
      if (stream->quarantine_log_drops() > 0) {
        std::printf(" quarantine-log-drops=%llu",
                    static_cast<unsigned long long>(
                        stream->quarantine_log_drops()));
      }
      std::printf("\n");
    }
  } catch (const spnl::CliError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
