// spnl_partition — command-line front end for the whole partitioner suite.
//
// Usage:
//   spnl_partition <graph-file> --k=32 [--algo=spnl] [--out=route.txt]
//                  [--lambda=0.5] [--shards=0] [--balance=vertex|edge]
//                  [--slack=1.1] [--threads=1] [--batch-size=64] [--passes=1]
//                  [--buffer=0] [--prepass=none|2ps]
//                  [--format=adj|edgelist|binary|sadj] [--reader=buffered|mmap]
//                  [--stream] [--window=0] [--quiet]
//                  [--checkpoint=ckpt.bin] [--checkpoint-every=N]
//                  [--resume-from=ckpt.bin]
//                  [--workers=W] [--sync-interval=N] [--recover=reassign|none]
//                  [--inject-faults=crash:W@T,stall:W@T@F,drop:P,delay:P,
//                                   dup:P,seed:S,stuck:W@N,wedge:W@N,
//                                   slow:W@D,pressure:BYTES]
//                  [--memory-budget=BYTES[K|M|G]] [--deadline=SECS]
//                  [--degrade-policy=ladder|abort|off] [--governor-interval=N]
//                  [--watchdog-timeout=SECS]
//                  [--max-bad-records=N] [--quarantine-log=bad.txt]
//                  [--perf-report] [--perf-json=stats.json]
//
// Algorithms: hash, range, ldg, fennel, spn, spnl (default), balanced, dg,
// edg, triangles, multilevel, labelprop. --threads > 1 selects parallel
// SPNL / parallel label-prop; --batch-size tunes the parallel pipeline's
// micro-batched queue handoff (clamped to the queue capacity; < 1 is a typed
// error); --passes > 1 wraps streaming algos in re-streaming; --buffer > 0
// uses the hybrid buffered mode; --window > 0 uses WSGP-style
// most-confident-first selection. --prepass=2ps (SPNL only, sequential and
// --passes paths) runs the two-phase streaming clustering prepass and feeds
// its cluster-derived placement hints into SPNL's logical table — one extra
// scan that buys order-robustness (see prepass/two_phase.hpp); a degraded
// prepass (cluster budget overflow) falls back to plain SPNL.
//
// Ingestion: --format=sadj reads the delta-compressed binary adjacency
// format written by spnl_convert (always mmap-backed); --reader=mmap swaps
// the buffered getline reader for the zero-copy mmap pointer-walk reader on
// --format=adj (identical records, identical routes). --stream skips graph
// materialization entirely and feeds the file stream straight to the
// partitioner — the memory profile the paper's streaming model assumes —
// for the streaming algorithm paths (greedy sequential, --threads, --passes,
// --window, --buffer, --workers); quality metrics then cost one extra
// read-only pass after routing. Offline algos (multilevel, labelprop,
// triangles) still need the materialized graph and reject --stream.
//
// Robustness flags: --checkpoint + --checkpoint-every snapshot the
// partitioner state every N placements (sequential greedy algos and the
// parallel driver); --resume-from continues an interrupted run from a
// snapshot and produces the same route the uninterrupted run would have.
// --workers switches to the distributed simulation; --inject-faults feeds it
// a seeded fault plan (scripted worker crashes and lossy sync messages).
//
// Resource governance: --memory-budget (partitioner-footprint bytes, K/M/G
// suffixes) and --deadline (wall-clock seconds) attach a ResourceGovernor to
// the sequential greedy and parallel SPNL/SPN paths; on breach the run steps
// a degradation ladder (shrink Γ window → coarse slide → capacity-weighted
// hash fallback) instead of OOMing — --degrade-policy=abort makes a breach a
// hard error, =off records samples without intervening. --watchdog-timeout
// arms the parallel pipeline watchdog: a worker stalled past the timeout has
// its in-flight record stolen and rescued; a fully wedged pipeline aborts
// cleanly. --max-bad-records / --quarantine-log harden the adj-format file
// stream: malformed mid-stream lines are skipped, counted and logged rather
// than fatal, up to the bound. --inject-faults keys stuck/wedge/slow/pressure
// drive the parallel pipeline; crash/stall/drop/delay/dup drive the
// distributed simulation.
//
// Instrumentation: --perf-report attaches per-stage counters/timers (score,
// Γ increment, window advance, commit, queue wait) to the sequential greedy
// and parallel SPNL/SPN paths and prints a table plus one machine-readable
// JSON line (prefix "perf-json: "); --perf-json writes that JSON object to a
// file. When neither flag is given the instrumentation is compiled in but
// never attached — the hot path only sees untaken null-pointer branches.
//
// Prints ECR / δv / δe / PT / MC and writes the route table when --out is
// given. Exit code 0 on success.
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/distributed_sim.hpp"
#include "core/parallel_driver.hpp"
#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/io.hpp"
#include "graph/mmap_stream.hpp"
#include "graph/stats.hpp"
#include "graph/stream_binary.hpp"
#include "offline/label_prop.hpp"
#include "offline/multilevel.hpp"
#include "partition/buffered.hpp"
#include "partition/driver.hpp"
#include "partition/fennel.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"
#include "partition/range_partitioner.hpp"
#include "partition/restream.hpp"
#include "partition/stanton_kliot.hpp"
#include "prepass/two_phase.hpp"
#include "partition/window_stream.hpp"
#include "util/cli.hpp"
#include "util/fault_fs.hpp"
#include "util/memory.hpp"
#include "util/perf_stats.hpp"
#include "util/resource_governor.hpp"
#include "util/shutdown.hpp"

namespace {

using namespace spnl;

int usage() {
  std::fprintf(stderr,
               "usage: spnl_partition <graph-file> --k=K [--algo=spnl] "
               "[--out=route.txt]\n"
               "  [--lambda=0.5] [--shards=0] [--balance=vertex|edge] "
               "[--slack=1.1]\n"
               "  [--threads=1] [--batch-size=64] [--hot-path=lockfree|striped]"
               " [--passes=1] [--buffer=0] [--prepass=none|2ps] "
               "[--window=0] [--format=adj|edgelist|binary|sadj]\n"
               "  [--reader=buffered|mmap] [--stream] [--quiet]\n"
               "  [--checkpoint=ckpt.bin] [--checkpoint-every=N] "
               "[--resume-from=ckpt.bin]\n"
               "  [--workers=W] [--sync-interval=N] [--recover=reassign|none]\n"
               "  [--inject-faults=crash:W@T,stall:W@T@F,drop:P,delay:P,dup:P,"
               "seed:S,stuck:W@N,wedge:W@N,slow:W@D,pressure:BYTES]\n"
               "  [--memory-budget=BYTES[K|M|G]] [--deadline=SECS]\n"
               "  [--degrade-policy=ladder|abort|off] [--governor-interval=N]\n"
               "  [--watchdog-timeout=SECS]\n"
               "  [--max-bad-records=N] [--quarantine-log=bad.txt]\n"
               "  [--inject-io-faults=seed:S,fail:OP@N[@ERR],eintr:OP@N[@R],"
               "short:OP@N[@D],enospc:BYTES,torn:N[@BYTES],kill:OP@N]\n"
               "  [--perf-report] [--perf-json=stats.json]\n"
               "algos: hash range ldg fennel spn spnl balanced dg edg "
               "triangles multilevel labelprop\n");
  return 2;
}

// Both fault schedules parsed from one --inject-faults spec: the distributed
// simulation's plan and the parallel pipeline's plan (which path consumes
// which is decided by --workers / --threads).
struct ParsedFaults {
  FaultPlan distributed;
  ParallelFaultPlan parallel;
};

// Parses the comma-separated fault spec. Distributed keys: "crash:W@T",
// "stall:W@T@F" (repeatable), "drop:P" / "delay:P" / "dup:P"
// (probabilities), "seed:S". Parallel-pipeline keys: "stuck:W@N" (freeze
// between publish and claim at worker W's Nth pop), "wedge:W@N" (freeze
// inside the placement — unstealable), "slow:W@D" (sleep D seconds per pop),
// "pressure:BYTES" (heap ballast, K/M/G suffixes).
ParsedFaults parse_fault_plan(const std::string& spec) {
  ParsedFaults plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("--inject-faults: expected key:value in '" + item + "'");
    }
    const std::string key = item.substr(0, colon);
    const std::string value = item.substr(colon + 1);
    // "A@B" / "A@B@C" splitter shared by the scheduled-event keys.
    auto split_at = [&](std::vector<std::string>& out) {
      out.clear();
      std::size_t p = 0;
      while (p <= value.size()) {
        std::size_t at = value.find('@', p);
        if (at == std::string::npos) at = value.size();
        out.push_back(value.substr(p, at - p));
        p = at + 1;
      }
    };
    std::vector<std::string> parts;
    try {
      if (key == "crash") {
        split_at(parts);
        if (parts.size() != 2) throw std::runtime_error("crash wants W@T");
        WorkerCrash crash;
        crash.worker = static_cast<unsigned>(std::stoul(parts[0]));
        crash.at_placement = std::stoull(parts[1]);
        plan.distributed.crashes.push_back(crash);
      } else if (key == "stall") {
        split_at(parts);
        if (parts.size() != 3) throw std::runtime_error("stall wants W@T@F");
        WorkerStall stall;
        stall.worker = static_cast<unsigned>(std::stoul(parts[0]));
        stall.at_placement = std::stoull(parts[1]);
        stall.for_placements = std::stoull(parts[2]);
        plan.distributed.stalls.push_back(stall);
      } else if (key == "stuck" || key == "wedge") {
        split_at(parts);
        if (parts.size() != 2) throw std::runtime_error(key + " wants W@N");
        StuckWorkerFault stuck;
        stuck.worker = static_cast<unsigned>(std::stoul(parts[0]));
        stuck.at_pop = std::stoull(parts[1]);
        stuck.in_processing = key == "wedge";
        plan.parallel.stuck.push_back(stuck);
      } else if (key == "slow") {
        split_at(parts);
        if (parts.size() != 2) throw std::runtime_error("slow wants W@D");
        SlowWorkerFault slow;
        slow.worker = static_cast<unsigned>(std::stoul(parts[0]));
        slow.delay_seconds = std::stod(parts[1]);
        plan.parallel.slow.push_back(slow);
      } else if (key == "pressure") {
        plan.parallel.ballast_bytes = parse_byte_size(value);
      } else if (key == "drop") {
        plan.distributed.drop_sync_prob = std::stod(value);
      } else if (key == "delay") {
        plan.distributed.delay_sync_prob = std::stod(value);
      } else if (key == "dup") {
        plan.distributed.duplicate_sync_prob = std::stod(value);
      } else if (key == "seed") {
        plan.distributed.seed = std::stoull(value);
      } else {
        throw std::runtime_error("unknown fault key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("--inject-faults: bad value in '" + item + "'");
    } catch (const std::out_of_range&) {
      throw std::runtime_error("--inject-faults: value out of range in '" + item + "'");
    }
  }
  return plan;
}

// File-backed stream for the formats that have a streaming reader: adj text
// (buffered getline or zero-copy mmap) and the sadj binary format (always
// mmap). Returns nullptr for materialize-only formats (edgelist, binary CSR).
std::unique_ptr<AdjacencyStream> open_stream(
    const std::string& path, const std::string& format,
    const std::string& reader, const StreamHardeningOptions& hardening) {
  if (format == "sadj") return std::make_unique<BinaryAdjacencyStream>(path);
  if (format == "adj") {
    if (reader == "mmap") {
      return std::make_unique<MmapAdjacencyStream>(path, hardening);
    }
    return std::make_unique<FileAdjacencyStream>(path, hardening);
  }
  return nullptr;
}

Graph load_graph(const std::string& path, const std::string& format) {
  if (format == "edgelist") return read_edge_list(path, /*compact_ids=*/true);
  if (format == "binary") return read_binary(path);
  throw std::runtime_error("unknown --format " + format);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().size() != 1) return usage();

  // Storage-fault plan (distinct from --inject-faults, which schedules
  // worker/compute faults): armed before the first file is opened so the
  // plan's operation indices count from the very first syscall of the run.
  if (args.has("inject-io-faults")) {
    try {
      faultfs::configure(args.get("inject-io-faults", ""));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  // Everything below — including the flag reads — sits in one try so a
  // malformed numeric flag (--batch-size=abc) surfaces as a typed CliError
  // with usage status, never a silent 0.
  try {
    const auto k = static_cast<PartitionId>(args.get_int("k", 0));
    if (k == 0) return usage();
    const std::string algo = args.get("algo", "spnl");
    const std::string format = args.get("format", "adj");
    const std::string reader = args.get("reader", "buffered");
    const bool stream_direct = args.get_bool("stream", false);
    const bool quiet = args.get_bool("quiet", false);

    PartitionConfig config;
    config.num_partitions = k;
    config.slack = args.get_double("slack", 1.1);
    config.balance = args.get("balance", "vertex") == "edge"
                         ? BalanceMode::kEdge
                         : BalanceMode::kVertex;
    const double lambda = args.get_double("lambda", 0.5);
    const auto shards = static_cast<std::uint32_t>(args.get_int("shards", 0));
    const auto threads = static_cast<unsigned>(args.get_int("threads", 1));
    // Parsed eagerly (not just on the --threads>1 path) so a malformed
    // --batch-size fails fast in every mode.
    const auto batch_size = args.get_int("batch-size", 64);
    const std::string hot_path = args.get("hot-path", "lockfree");
    if (hot_path != "lockfree" && hot_path != "striped") {
      throw std::runtime_error("--hot-path: want lockfree|striped");
    }
    const int passes = static_cast<int>(args.get_int("passes", 1));
    const auto buffer = static_cast<VertexId>(args.get_int("buffer", 0));
    const auto window = static_cast<VertexId>(args.get_int("window", 0));
    const std::string prepass = args.get("prepass", "none");
    if (prepass != "none" && prepass != "2ps") {
      throw std::runtime_error("--prepass: want none|2ps");
    }
    const bool use_prepass = prepass == "2ps";

    const std::string checkpoint_path = args.get("checkpoint", "");
    const auto checkpoint_every =
        static_cast<std::uint64_t>(args.get_int("checkpoint-every", 0));
    const std::string resume_from = args.get("resume-from", "");
    const auto workers = static_cast<unsigned>(args.get_int("workers", 0));
    if (use_prepass) {
      if (algo != "spnl") {
        throw std::runtime_error("--prepass=2ps requires --algo=spnl");
      }
      if (workers > 0 || threads > 1 || window > 0 || buffer > 0) {
        throw std::runtime_error(
            "--prepass=2ps supports the sequential and --passes paths only");
      }
    }

    const bool perf_report = args.get_bool("perf-report", false);
    const std::string perf_json_path = args.get("perf-json", "");
    PerfStats perf;
    // Instrumented paths: sequential greedy algos and the parallel driver.
    PerfStats* perf_ptr =
        (perf_report || !perf_json_path.empty()) ? &perf : nullptr;

    // Resource governor (memory budget / deadline) for the greedy sequential
    // and parallel SPNL/SPN paths.
    ResourceGovernor::Options governor_options;
    if (args.has("memory-budget")) {
      governor_options.memory_budget_bytes =
          parse_byte_size(args.get("memory-budget", ""));
    }
    governor_options.deadline_seconds = args.get_double("deadline", 0.0);
    const std::string policy = args.get("degrade-policy", "ladder");
    if (policy == "abort") {
      governor_options.policy = DegradePolicy::kAbort;
    } else if (policy == "off") {
      governor_options.policy = DegradePolicy::kOff;
    } else if (policy != "ladder") {
      throw std::runtime_error("--degrade-policy: want ladder|abort|off");
    }
    if (args.has("governor-interval")) {
      governor_options.sample_interval =
          static_cast<std::uint64_t>(args.get_int("governor-interval", 256));
      if (governor_options.sample_interval == 0) {
        throw std::runtime_error("--governor-interval: want >= 1");
      }
    }
    ResourceGovernor governor(governor_options);
    ResourceGovernor* governor_ptr = governor.enabled() ? &governor : nullptr;
    const double watchdog_timeout = args.get_double("watchdog-timeout", 0.0);

    StreamHardeningOptions hardening;
    hardening.max_bad_records =
        static_cast<std::uint64_t>(args.get_int("max-bad-records", 0));
    hardening.quarantine_log = args.get("quarantine-log", "");

    const std::string input_path = args.positional()[0];
    if (format != "adj" && format != "edgelist" && format != "binary" &&
        format != "sadj") {
      throw std::runtime_error("unknown --format " + format);
    }
    if (reader != "buffered" && reader != "mmap") {
      throw std::runtime_error("--reader: want buffered|mmap");
    }
    if (reader == "mmap" && format != "adj" && format != "sadj") {
      throw std::runtime_error(
          "--reader=mmap needs --format=adj (sadj is always mmap-backed)");
    }

    std::uint64_t bad_records = 0;
    std::unique_ptr<AdjacencyStream> file_stream =
        open_stream(input_path, format, reader, hardening);
    if (stream_direct && file_stream == nullptr) {
      throw std::runtime_error(
          "--stream requires --format=adj or --format=sadj");
    }

    // Materialize unless --stream: offline algos and the triangle heuristic
    // need the CSR, and the materialized path keeps the seed behavior
    // (metrics over the in-memory graph, no second file pass).
    std::optional<Graph> graph;
    if (!stream_direct) {
      if (file_stream != nullptr) {
        graph = materialize(*file_stream);
        bad_records = file_stream->bad_records();
      } else {
        graph = load_graph(input_path, format);
      }
    }
    std::optional<InMemoryStream> mem_stream;
    if (graph) mem_stream.emplace(*graph);
    AdjacencyStream& stream =
        graph ? static_cast<AdjacencyStream&>(*mem_stream) : *file_stream;

    if (!quiet) {
      if (graph) {
        std::printf("%s\n", describe(*graph, input_path).c_str());
      } else {
        std::printf("%s: V=%u E=%llu (direct streaming via %s)\n",
                    input_path.c_str(), stream.num_vertices(),
                    static_cast<unsigned long long>(stream.num_edges()),
                    format == "sadj" ? "sadj" : reader.c_str());
      }
    }
    if (!quiet && bad_records > 0) {
      std::printf("quarantined %llu malformed record(s)%s%s\n",
                  static_cast<unsigned long long>(bad_records),
                  hardening.quarantine_log.empty() ? "" : " -> ",
                  hardening.quarantine_log.c_str());
    }
    if (file_stream != nullptr && file_stream->quarantine_log_drops() > 0) {
      std::printf("WARNING: %llu quarantined record(s) lost to quarantine-log "
                  "write failures\n",
                  static_cast<unsigned long long>(
                      file_stream->quarantine_log_drops()));
    }

    std::vector<PartitionId> route;
    double seconds = 0.0;
    std::size_t bytes = 0;
    std::vector<DegradationEvent> degradations;
    // Parallel-pipeline counters, spliced into the perf JSON when that path
    // ran (untracked_overflow > 0 means the RCT shed dependency tracking).
    bool ran_parallel = false;
    std::uint64_t delayed_vertices = 0;
    std::uint64_t forced_vertices = 0;
    std::uint64_t untracked_overflow = 0;
    ContentionReport contention;

    ParsedFaults faults;
    if (args.has("inject-faults")) {
      faults = parse_fault_plan(args.get("inject-faults", ""));
    }

    // 2PS clustering prepass: one extra scan before the scoring pass. A
    // resumed run re-derives the identical hint table here (the prepass is
    // deterministic), so snapshots stay byte-compatible.
    PrepassResult prepass_result;
    const std::vector<PartitionId>* spnl_hints = nullptr;
    if (use_prepass) {
      prepass_result = cluster_prepass(stream, config);
      stream.reset();
      if (!prepass_result.degraded && !prepass_result.hints.empty()) {
        spnl_hints = &prepass_result.hints;
      }
      if (!quiet) {
        std::printf("prepass: clusters=%u reassigned=%llu degraded=%s "
                    "seconds=%.3f\n",
                    prepass_result.num_clusters,
                    static_cast<unsigned long long>(prepass_result.reassigned),
                    prepass_result.degraded ? "yes (plain SPNL fallback)" : "no",
                    prepass_result.seconds);
      }
    }

    if (workers > 0) {
      // Distributed simulation with optional seeded fault injection.
      DistributedSimOptions options;
      options.num_workers = workers;
      options.sync_interval =
          static_cast<VertexId>(args.get_int("sync-interval", 1024));
      options.use_spnl_scoring = algo == "spnl";
      options.recovery = args.get("recover", "reassign") == "none"
                             ? RecoveryPolicy::kNone
                             : RecoveryPolicy::kReassign;
      options.faults = faults.distributed;
      const auto result = distributed_stream_partition(stream, config, options);
      route = result.route;
      if (!quiet) {
        std::printf(
            "distributed: workers=%u stale_decisions=%llu crashes=%llu "
            "lost=%llu recovered=%llu stalls=%llu stalled_turns=%llu "
            "dropped_syncs=%llu delayed_syncs=%llu duplicated_syncs=%llu\n",
            workers, static_cast<unsigned long long>(result.stale_decisions),
            static_cast<unsigned long long>(result.worker_crashes),
            static_cast<unsigned long long>(result.lost_placements),
            static_cast<unsigned long long>(result.recovered_placements),
            static_cast<unsigned long long>(result.worker_stalls),
            static_cast<unsigned long long>(result.stalled_turns),
            static_cast<unsigned long long>(result.dropped_syncs),
            static_cast<unsigned long long>(result.delayed_syncs),
            static_cast<unsigned long long>(result.duplicated_syncs));
      }
    } else if (algo == "multilevel") {
      if (!graph) {
        throw std::runtime_error(
            "--algo=multilevel needs the materialized graph; drop --stream");
      }
      const auto result = multilevel_partition(*graph, config);
      route = result.route;
      seconds = result.partition_seconds;
      bytes = result.peak_bytes;
    } else if (algo == "labelprop") {
      if (!graph) {
        throw std::runtime_error(
            "--algo=labelprop needs the materialized graph; drop --stream");
      }
      LabelPropOptions options;
      options.num_threads = threads;
      const auto result = label_prop_partition(*graph, config, options);
      route = result.route;
      seconds = result.partition_seconds;
      bytes = result.peak_bytes;
    } else if (window > 0) {
      const auto result = window_stream_partition(
          stream, config,
          {.window_size = window,
           .logical_weight = algo == "spnl" ? 0.5 : 0.0});
      route = result.route;
      seconds = result.partition_seconds;
      bytes = result.peak_bytes;
    } else if (buffer > 0) {
      BufferedOptions options;
      options.buffer_size = buffer;
      options.seed_rule =
          algo == "ldg" ? BufferSeedRule::kLdg : BufferSeedRule::kSpnl;
      const auto result = buffered_partition(stream, config, options);
      route = result.route;
      seconds = result.partition_seconds;
      bytes = result.peak_bytes;
    } else if (passes > 1) {
      RestreamOptions options;
      options.passes = passes;
      options.seed_with_spnl = algo == "spnl";
      options.spnl_hints = spnl_hints;
      route = restream_partition(stream, config, options);
    } else if (threads > 1 && (algo == "spnl" || algo == "spn")) {
      ParallelOptions options;
      options.num_threads = threads;
      options.use_locality = algo == "spnl";
      // Validate eagerly so --batch-size=0 is a typed CLI error here rather
      // than a failure deep inside run_parallel.
      options.batch_size =
          validated_batch_size(batch_size, options.queue_capacity);
      options.hot_path = hot_path == "striped" ? HotPathMode::kStriped
                                               : HotPathMode::kLockFree;
      options.spnl.lambda = lambda;
      options.spnl.num_shards = shards;
      options.checkpoint_path = checkpoint_path;
      options.checkpoint_every = checkpoint_every;
      options.resume_from = resume_from;
      options.perf = perf_ptr;
      options.watchdog_timeout_seconds = watchdog_timeout;
      options.governor = governor_ptr;
      options.faults = faults.parallel;
      ParallelRunResult result;
      try {
        result = run_parallel(stream, config, options);
      } catch (const StreamAborted& e) {
        std::fprintf(stderr,
                     "error: %s (stalled_workers=%llu rescued_records=%llu)\n",
                     e.what(),
                     static_cast<unsigned long long>(e.result.stalled_workers),
                     static_cast<unsigned long long>(e.result.rescued_records));
        return 1;
      }
      route = result.route;
      seconds = result.partition_seconds;
      bytes = result.peak_partitioner_bytes;
      degradations = result.degradations;
      ran_parallel = true;
      delayed_vertices = result.delayed_vertices;
      forced_vertices = result.forced_vertices;
      untracked_overflow = result.untracked_overflow;
      contention = result.contention;
      if (!quiet && untracked_overflow > 0) {
        std::printf("rct: untracked_overflow=%llu (table full; consider a "
                    "larger epsilon)\n",
                    static_cast<unsigned long long>(untracked_overflow));
      }
      if (!quiet && (result.checkpoints_written > 0 || result.resumed_at > 0)) {
        std::printf("checkpoints_written=%llu resumed_at=%llu\n",
                    static_cast<unsigned long long>(result.checkpoints_written),
                    static_cast<unsigned long long>(result.resumed_at));
      }
      if (!quiet && result.stalled_workers > 0) {
        std::printf("watchdog: stalled_workers=%llu rescued_records=%llu\n",
                    static_cast<unsigned long long>(result.stalled_workers),
                    static_cast<unsigned long long>(result.rescued_records));
      }
    } else {
      std::unique_ptr<StreamingPartitioner> partitioner;
      const VertexId n = stream.num_vertices();
      const EdgeId m = stream.num_edges();
      if (algo == "hash") {
        partitioner = std::make_unique<HashPartitioner>(n, m, config);
      } else if (algo == "range") {
        partitioner = std::make_unique<RangePartitioner>(n, m, config);
      } else if (algo == "ldg") {
        partitioner = std::make_unique<LdgPartitioner>(n, m, config);
      } else if (algo == "fennel") {
        partitioner = std::make_unique<FennelPartitioner>(n, m, config);
      } else if (algo == "spn") {
        partitioner = std::make_unique<SpnPartitioner>(
            n, m, config, SpnOptions{.lambda = lambda, .num_shards = shards});
      } else if (algo == "spnl") {
        partitioner = std::make_unique<SpnlPartitioner>(
            n, m, config,
            SpnlOptions{.lambda = lambda,
                        .num_shards = shards,
                        .logical_hints = spnl_hints});
      } else if (algo == "balanced") {
        partitioner = std::make_unique<SkPartitioner>(n, m, config,
                                                      SkHeuristic::kBalanced);
      } else if (algo == "dg") {
        partitioner = std::make_unique<SkPartitioner>(
            n, m, config, SkHeuristic::kDeterministicGreedy);
      } else if (algo == "edg") {
        partitioner = std::make_unique<SkPartitioner>(
            n, m, config, SkHeuristic::kExponentialGreedy);
      } else if (algo == "triangles") {
        if (!graph) {
          throw std::runtime_error(
              "--algo=triangles needs the materialized graph; drop --stream");
        }
        partitioner = std::make_unique<SkPartitioner>(
            n, m, config, SkHeuristic::kTriangles, &*graph);
      } else {
        return usage();
      }
      StreamingCheckpointOptions checkpoint;
      checkpoint.path = checkpoint_path;
      checkpoint.every = checkpoint_every;
      // Graceful SIGINT/SIGTERM: the driver polls the process-global flag,
      // finishes the record in flight, writes a final snapshot (when
      // --checkpoint is set) and returns with interrupted set — instead of
      // the process dying mid-route.
      arm_shutdown_flag();
      const RunResult run =
          resume_from.empty()
              ? run_streaming(stream, *partitioner, checkpoint, perf_ptr,
                              governor_ptr, &shutdown_flag())
              : resume_streaming(stream, *partitioner, resume_from, checkpoint,
                                 perf_ptr, governor_ptr, &shutdown_flag());
      if (run.interrupted) {
        std::fprintf(stderr,
                     "interrupted: %llu of %u records placed; %s\n",
                     static_cast<unsigned long long>(run.vertices_placed),
                     stream.num_vertices(),
                     checkpoint_path.empty()
                         ? "no --checkpoint configured, progress not persisted"
                         : ("final checkpoint written to " + checkpoint_path)
                               .c_str());
        return kExitInterrupted;
      }
      route = run.route;
      seconds = run.partition_seconds;
      bytes = run.peak_partitioner_bytes;
      degradations = run.degradations;
      if (!quiet && (run.checkpoints_written > 0 || run.resumed_at > 0)) {
        std::printf("checkpoints_written=%llu resumed_at=%llu\n",
                    static_cast<unsigned long long>(run.checkpoints_written),
                    static_cast<unsigned long long>(run.resumed_at));
      }
    }

    // Direct streaming counts quarantined records during the routing pass
    // itself, so report them now (the materialized path reported at load).
    if (stream_direct) {
      bad_records = stream.bad_records();
      if (!quiet && bad_records > 0) {
        std::printf("quarantined %llu malformed record(s)%s%s\n",
                    static_cast<unsigned long long>(bad_records),
                    hardening.quarantine_log.empty() ? "" : " -> ",
                    hardening.quarantine_log.c_str());
      }
      if (stream.quarantine_log_drops() > 0) {
        std::printf("WARNING: %llu quarantined record(s) lost to "
                    "quarantine-log write failures\n",
                    static_cast<unsigned long long>(
                        stream.quarantine_log_drops()));
      }
    }

    // A lost-slice run (--workers with --recover=none) legitimately leaves
    // holes, as does a direct-stream run whose quarantined records were
    // never placed; every other path must produce a complete assignment.
    const bool may_have_holes =
        (workers > 0 && args.get("recover", "reassign") == "none") ||
        (stream_direct && bad_records > 0);
    if (!may_have_holes) validate_route(route, k, stream.num_vertices());
    if (may_have_holes && !is_complete_assignment(route, k)) {
      std::printf("%s K=%u route incomplete (%s); quality metrics skipped\n",
                  algo.c_str(), k,
                  workers > 0 ? "placements lost to crashes"
                              : "records quarantined mid-stream");
    } else if (graph) {
      const auto metrics = evaluate_partition(*graph, route, k);
      std::printf("%s K=%u %s PT=%.3fs MC=%s\n", algo.c_str(), k,
                  summarize(metrics).c_str(), seconds, format_bytes(bytes).c_str());
    } else {
      // Metrics cost one extra read-only pass; PT above excludes it, matching
      // the paper's definition (partitioning ends when the route is final).
      stream.reset();
      const auto metrics = evaluate_partition(stream, route, k);
      std::printf("%s K=%u %s PT=%.3fs MC=%s\n", algo.c_str(), k,
                  summarize(metrics).c_str(), seconds, format_bytes(bytes).c_str());
    }
    if (!quiet) {
      for (const DegradationEvent& event : degradations) {
        std::printf(
            "degraded: stage=%s at=%llu reason=%s bytes=%zu->%zu budget=%zu "
            "elapsed=%.3fs\n",
            degradation_stage_name(event.stage),
            static_cast<unsigned long long>(event.at_placement),
            event.reason.c_str(), event.partitioner_bytes, event.post_bytes,
            event.budget_bytes, event.elapsed_seconds);
      }
    }
    if (perf_ptr != nullptr) {
      // Splice the governor's ladder transitions and the parallel pipeline's
      // RCT counters into the perf JSON object so one artifact carries
      // timing, degradation history and dependency-tracking health.
      std::string json = perf.to_json();
      if (!degradations.empty() && !json.empty() && json.back() == '}') {
        json.pop_back();
        json += ",\"degradations\":" + degradation_events_json(degradations) + "}";
      }
      if (ran_parallel && !json.empty() && json.back() == '}') {
        json.pop_back();
        const ContentionReport& c = contention;
        json += ",\"parallel\":{\"delayed\":" + std::to_string(delayed_vertices) +
                ",\"forced\":" + std::to_string(forced_vertices) +
                ",\"untracked_overflow\":" + std::to_string(untracked_overflow) +
                ",\"hot_path\":\"" + hot_path + "\"" +
                ",\"contention\":{" +
                "\"rct_shared_contended\":" +
                std::to_string(c.rct_shared_contended) +
                ",\"rct_exclusive_contended\":" +
                std::to_string(c.rct_exclusive_contended) +
                ",\"rct_exclusive_acquires\":" +
                std::to_string(c.rct_exclusive_acquires) +
                ",\"rct_claim_cas_retries\":" +
                std::to_string(c.rct_claim_cas_retries) +
                ",\"rct_decrement_cas_retries\":" +
                std::to_string(c.rct_decrement_cas_retries) +
                ",\"queue_lock_contended\":" +
                std::to_string(c.queue_lock_contended) +
                ",\"queue_lock_acquires\":" +
                std::to_string(c.queue_lock_acquires) +
                ",\"queue_lock_wait_nanos\":" +
                std::to_string(c.queue_lock_wait_nanos) +
                ",\"queue_lock_hold_nanos\":" +
                std::to_string(c.queue_lock_hold_nanos) +
                ",\"gamma_delta_publishes\":" +
                std::to_string(c.gamma_delta_publishes) +
                ",\"gamma_delta_cells\":" +
                std::to_string(c.gamma_delta_cells) +
                ",\"gamma_delta_dropped\":" +
                std::to_string(c.gamma_delta_dropped) +
                ",\"gamma_head_cas_retries\":" +
                std::to_string(c.gamma_head_cas_retries) +
                ",\"gamma_advance_contended\":" +
                std::to_string(c.gamma_advance_contended) +
                ",\"watermark_cas_retries\":" +
                std::to_string(c.watermark_cas_retries) + "}}}";
      }
      if (perf_report) {
        std::printf("%s", perf.report().c_str());
        std::printf("perf-json: %s\n", json.c_str());
      }
      if (!perf_json_path.empty()) {
        std::ofstream out(perf_json_path);
        if (!out) {
          throw std::runtime_error("--perf-json: cannot write " + perf_json_path);
        }
        out << json << "\n";
        if (!quiet) std::printf("wrote %s\n", perf_json_path.c_str());
      }
    }
    if (args.has("out")) {
      write_route_table(route, args.get("out", ""));
      if (!quiet) std::printf("wrote %s\n", args.get("out", "").c_str());
    }
  } catch (const CliError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
