// spnl_partition — command-line front end for the whole partitioner suite.
//
// Usage:
//   spnl_partition <graph-file> --k=32 [--algo=spnl] [--out=route.txt]
//                  [--lambda=0.5] [--shards=0] [--balance=vertex|edge]
//                  [--slack=1.1] [--threads=1] [--passes=1] [--buffer=0]
//                  [--format=adj|edgelist|binary] [--window=0] [--quiet]
//
// Algorithms: hash, range, ldg, fennel, spn, spnl (default), balanced, dg,
// edg, triangles, multilevel, labelprop. --threads > 1 selects parallel
// SPNL / parallel label-prop; --passes > 1 wraps streaming algos in
// re-streaming; --buffer > 0 uses the hybrid buffered mode; --window > 0
// uses WSGP-style most-confident-first selection.
//
// Prints ECR / δv / δe / PT / MC and writes the route table when --out is
// given. Exit code 0 on success.
#include <cstdio>
#include <memory>
#include <string>

#include "core/parallel_driver.hpp"
#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "offline/label_prop.hpp"
#include "offline/multilevel.hpp"
#include "partition/buffered.hpp"
#include "partition/driver.hpp"
#include "partition/fennel.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"
#include "partition/range_partitioner.hpp"
#include "partition/restream.hpp"
#include "partition/stanton_kliot.hpp"
#include "partition/window_stream.hpp"
#include "util/cli.hpp"
#include "util/memory.hpp"

namespace {

using namespace spnl;

int usage() {
  std::fprintf(stderr,
               "usage: spnl_partition <graph-file> --k=K [--algo=spnl] "
               "[--out=route.txt]\n"
               "  [--lambda=0.5] [--shards=0] [--balance=vertex|edge] "
               "[--slack=1.1]\n"
               "  [--threads=1] [--passes=1] [--buffer=0] [--window=0] "
               "[--format=adj|edgelist|binary] [--quiet]\n"
               "algos: hash range ldg fennel spn spnl balanced dg edg "
               "triangles multilevel labelprop\n");
  return 2;
}

Graph load_graph(const std::string& path, const std::string& format) {
  if (format == "edgelist") return read_edge_list(path, /*compact_ids=*/true);
  if (format == "binary") return read_binary(path);
  if (format == "adj") {
    FileAdjacencyStream stream(path);
    return materialize(stream);
  }
  throw std::runtime_error("unknown --format " + format);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().size() != 1) return usage();

  const auto k = static_cast<PartitionId>(args.get_int("k", 0));
  if (k == 0) return usage();
  const std::string algo = args.get("algo", "spnl");
  const std::string format = args.get("format", "adj");
  const bool quiet = args.get_bool("quiet", false);

  PartitionConfig config;
  config.num_partitions = k;
  config.slack = args.get_double("slack", 1.1);
  config.balance = args.get("balance", "vertex") == "edge" ? BalanceMode::kEdge
                                                           : BalanceMode::kVertex;
  const double lambda = args.get_double("lambda", 0.5);
  const auto shards = static_cast<std::uint32_t>(args.get_int("shards", 0));
  const auto threads = static_cast<unsigned>(args.get_int("threads", 1));
  const int passes = static_cast<int>(args.get_int("passes", 1));
  const auto buffer = static_cast<VertexId>(args.get_int("buffer", 0));
  const auto window = static_cast<VertexId>(args.get_int("window", 0));

  try {
    const Graph graph = load_graph(args.positional()[0], format);
    if (!quiet) std::printf("%s\n", describe(graph, args.positional()[0]).c_str());

    std::vector<PartitionId> route;
    double seconds = 0.0;
    std::size_t bytes = 0;

    InMemoryStream stream(graph);
    if (algo == "multilevel") {
      const auto result = multilevel_partition(graph, config);
      route = result.route;
      seconds = result.partition_seconds;
      bytes = result.peak_bytes;
    } else if (algo == "labelprop") {
      LabelPropOptions options;
      options.num_threads = threads;
      const auto result = label_prop_partition(graph, config, options);
      route = result.route;
      seconds = result.partition_seconds;
      bytes = result.peak_bytes;
    } else if (window > 0) {
      const auto result = window_stream_partition(
          stream, config,
          {.window_size = window,
           .logical_weight = algo == "spnl" ? 0.5 : 0.0});
      route = result.route;
      seconds = result.partition_seconds;
      bytes = result.peak_bytes;
    } else if (buffer > 0) {
      BufferedOptions options;
      options.buffer_size = buffer;
      options.seed_rule =
          algo == "ldg" ? BufferSeedRule::kLdg : BufferSeedRule::kSpnl;
      const auto result = buffered_partition(stream, config, options);
      route = result.route;
      seconds = result.partition_seconds;
      bytes = result.peak_bytes;
    } else if (passes > 1) {
      RestreamOptions options;
      options.passes = passes;
      options.seed_with_spnl = algo == "spnl";
      route = restream_partition(stream, config, options);
    } else if (threads > 1 && (algo == "spnl" || algo == "spn")) {
      ParallelOptions options;
      options.num_threads = threads;
      options.use_locality = algo == "spnl";
      options.spnl.lambda = lambda;
      options.spnl.num_shards = shards;
      const auto result = run_parallel(stream, config, options);
      route = result.route;
      seconds = result.partition_seconds;
      bytes = result.peak_partitioner_bytes;
    } else {
      std::unique_ptr<StreamingPartitioner> partitioner;
      const VertexId n = graph.num_vertices();
      const EdgeId m = graph.num_edges();
      if (algo == "hash") {
        partitioner = std::make_unique<HashPartitioner>(n, m, config);
      } else if (algo == "range") {
        partitioner = std::make_unique<RangePartitioner>(n, m, config);
      } else if (algo == "ldg") {
        partitioner = std::make_unique<LdgPartitioner>(n, m, config);
      } else if (algo == "fennel") {
        partitioner = std::make_unique<FennelPartitioner>(n, m, config);
      } else if (algo == "spn") {
        partitioner = std::make_unique<SpnPartitioner>(
            n, m, config, SpnOptions{.lambda = lambda, .num_shards = shards});
      } else if (algo == "spnl") {
        partitioner = std::make_unique<SpnlPartitioner>(
            n, m, config, SpnlOptions{.lambda = lambda, .num_shards = shards});
      } else if (algo == "balanced") {
        partitioner = std::make_unique<SkPartitioner>(n, m, config,
                                                      SkHeuristic::kBalanced);
      } else if (algo == "dg") {
        partitioner = std::make_unique<SkPartitioner>(
            n, m, config, SkHeuristic::kDeterministicGreedy);
      } else if (algo == "edg") {
        partitioner = std::make_unique<SkPartitioner>(
            n, m, config, SkHeuristic::kExponentialGreedy);
      } else if (algo == "triangles") {
        partitioner = std::make_unique<SkPartitioner>(
            n, m, config, SkHeuristic::kTriangles, &graph);
      } else {
        return usage();
      }
      const RunResult run = run_streaming(stream, *partitioner);
      route = run.route;
      seconds = run.partition_seconds;
      bytes = run.peak_partitioner_bytes;
    }

    const auto metrics = evaluate_partition(graph, route, k);
    std::printf("%s K=%u %s PT=%.3fs MC=%s\n", algo.c_str(), k,
                summarize(metrics).c_str(), seconds, format_bytes(bytes).c_str());
    if (args.has("out")) {
      write_route_table(route, args.get("out", ""));
      if (!quiet) std::printf("wrote %s\n", args.get("out", "").c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
