#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer (default)
# or ThreadSanitizer (--tsan) and runs the robustness test suite (or the full
# suite with --full) against it.
#
# Usage:
#   tools/sanitize_smoke.sh [--full] [--tsan] [--server] [--build-dir DIR] [--jobs N]
#
# The robustness tests deliberately walk every error path (corrupt
# checkpoints, truncated graph files, crashed workers, stolen in-flight
# records); running them under ASan/UBSan proves those paths are clean, and
# under TSan proves the watchdog's steal/rescue protocol and the governor's
# quiesce-then-degrade dance are free of data races, not just non-crashing.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir=""
jobs="$(nproc 2>/dev/null || echo 4)"
ctest_args=(-L robustness)
sanitize="address;undefined"
mode="asan"
server_mode=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --full) ctest_args=(); shift ;;
    --tsan) sanitize="thread"; mode="tsan"; shift ;;
    --server)
      # Server focus: the protocol/session/registry/server unit tests plus
      # the 55-session soak (handlers, reaper, drain, and clients all on
      # real threads — a prime TSan surface), then a CLI drain/restart
      # smoke below.
      server_mode=1
      ctest_args=(-R '^(Endpoint|CodecTest|SessionFactory|Session|SessionRegistry|ServerTest)\.|^server\.soak$')
      shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done
if [[ -z "${build_dir}" ]]; then
  build_dir="${repo_root}/build-sanitize-${mode}"
fi

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPNL_SANITIZE="${sanitize}"
cmake --build "${build_dir}" -j "${jobs}"

if [[ "${mode}" == "tsan" ]]; then
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
else
  # halt_on_error keeps a UBSan finding from scrolling past as a warning.
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  export ASAN_OPTIONS="detect_leaks=1"
fi

ctest --test-dir "${build_dir}" --output-on-failure "${ctest_args[@]+"${ctest_args[@]}"}"

if [[ "${server_mode}" == "1" ]]; then
  # CLI drain/restart smoke: a real spnl_server process under the sanitizer,
  # a client that tears its own connection mid-stream (resume-by-token), and
  # a SIGTERM drain + restart with a second client riding across it. Routes
  # must be byte-identical to the direct sequential run.
  server_dir="${build_dir}/sanitize_smoke/server"
  rm -rf "${server_dir}"
  mkdir -p "${server_dir}/drain"
  sock="${server_dir}/s.sock"
  "${build_dir}/tools/spnl_gen" --out="${server_dir}/graph.adj" \
    --model=webcrawl --vertices=30000 --avg-degree=8 --seed=11
  "${build_dir}/tools/spnl_partition" "${server_dir}/graph.adj" --k=8 \
    --algo=spnl --out="${server_dir}/route_direct.txt" --quiet

  "${build_dir}/tools/spnl_server" --listen="unix:${sock}" \
    --drain-dir="${server_dir}/drain" --idle-timeout=30 --quiet &
  server_pid=$!
  for _ in $(seq 1 100); do [[ -S "${sock}" ]] && break; sleep 0.1; done
  [[ -S "${sock}" ]]

  "${build_dir}/tools/spnl_client" "${server_dir}/graph.adj" \
    --connect="unix:${sock}" --k=8 --algo=spnl --deadline=120 \
    --inject-disconnect-after=5000 \
    --out="${server_dir}/route_resume.txt" --quiet
  cmp "${server_dir}/route_direct.txt" "${server_dir}/route_resume.txt"

  # batch=1 keeps the second client mid-stream long enough for the SIGTERM
  # to catch it; the drained server must exit 0 (session counts reconcile)
  # and leave a checkpoint the restarted server restores.
  "${build_dir}/tools/spnl_client" "${server_dir}/graph.adj" \
    --connect="unix:${sock}" --k=8 --algo=spnl --deadline=180 \
    --max-attempts=30 --batch=1 \
    --out="${server_dir}/route_restart.txt" --quiet &
  client_pid=$!
  sleep 0.5
  kill -TERM "${server_pid}"
  wait "${server_pid}"
  ls "${server_dir}/drain"/*.ckpt >/dev/null

  "${build_dir}/tools/spnl_server" --listen="unix:${sock}" \
    --drain-dir="${server_dir}/drain" --idle-timeout=30 --quiet &
  server_pid=$!
  wait "${client_pid}"
  cmp "${server_dir}/route_direct.txt" "${server_dir}/route_restart.txt"
  kill -TERM "${server_pid}"
  wait "${server_pid}"

  echo "sanitize smoke (${mode}, server): OK"
  exit 0
fi

# Instrumented parallel driver under the sanitizers: the per-worker PerfStats
# instances, the post-join merge, and the fused scoring kernel all run on
# real threads here, so an out-of-range Γ-row offset, a scratch-buffer
# overflow, or UB in the timing paths surfaces as a sanitizer abort rather
# than a corrupted counter. With the watchdog armed the monitor thread's
# steal/rescue path and the governor's mid-stream window shrink run
# concurrently with the workers — exactly the interleavings TSan exists for.
smoke_dir="${build_dir}/sanitize_smoke"
mkdir -p "${smoke_dir}"
"${build_dir}/tools/spnl_gen" --out="${smoke_dir}/graph.adj" \
  --model=webcrawl --vertices=20000 --avg-degree=8 --seed=7
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --perf-report \
  --perf-json="${smoke_dir}/perf_parallel.json"
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spn --perf-report
# Watchdog-enabled parallel run with an injected straggler (stolen + rescued
# record) and a governed run forced down the degradation ladder. The default
# runs above already exercise the micro-batched handoff (batch 64) and the
# sharded RCT; the explicit --batch-size=16 run below adds a small-batch
# straggler interleaving (partial tail flush + steal mid-batch) so TSan sees
# the batched queue crossing under watchdog pressure too.
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --watchdog-timeout=0.2 \
  --inject-faults=stuck:1@50 --quiet
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --batch-size=16 --watchdog-timeout=0.2 \
  --inject-faults=stuck:2@75,slow:0@0.0001 --quiet
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --watchdog-timeout=0.2 --memory-budget=64K \
  --perf-json="${smoke_dir}/perf_degraded.json" --quiet
# Lock-free hot path under maximum merge pressure: a tiny queue and batch=1
# force constant producer/worker lock handoff, epoch cadence 1 publishes a Γ
# delta on every commit, and an 8-row buffer adds the buffer-full publish
# path on top — so TSan sees the CAS claim/decrement loops, the wait-free
# watermark advance, and delta merges interleaved as densely as possible.
# The striped baseline run keeps PR 4's exclusive-stripe interleavings
# covered now that lockfree is the default.
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --batch-size=1 --hot-path=lockfree \
  --perf-json="${smoke_dir}/perf_lockfree.json" --quiet
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --batch-size=16 --hot-path=striped --quiet
# Mid-epoch checkpoint quiesce + resume under the sanitizer: the producer
# drains every worker's delta buffer in worker-index order while workers are
# parked at the pipeline lock.
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --checkpoint="${smoke_dir}/lf.ckpt" \
  --checkpoint-every=5000 --quiet
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --resume-from="${smoke_dir}/lf.ckpt" --quiet
grep -q '"hot_path":"lockfree"' "${smoke_dir}/perf_lockfree.json"
grep -q '"gamma_delta_publishes"' "${smoke_dir}/perf_lockfree.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
  "${smoke_dir}/perf_parallel.json" 2>/dev/null \
  || grep -q '"total_nanos"' "${smoke_dir}/perf_parallel.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
  "${smoke_dir}/perf_degraded.json" 2>/dev/null \
  || grep -q '"total_nanos"' "${smoke_dir}/perf_degraded.json"
grep -q '"degradations"' "${smoke_dir}/perf_degraded.json"
grep -q '"untracked_overflow"' "${smoke_dir}/perf_parallel.json"

# Zero-copy ingestion under the sanitizers: the mmap text reader's pointer
# walk (off-by-one past the mapping is exactly what ASan's shadow won't see
# inside the map, but the strict end-pointer checks are UB-prone arithmetic),
# the sadj writer/reader round trip, and the streaming (--stream) front-end.
# Every route must be byte-identical to the buffered text baseline.
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --out="${smoke_dir}/route_text.txt" --quiet
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --reader=mmap --out="${smoke_dir}/route_mmap.txt" --quiet
cmp "${smoke_dir}/route_text.txt" "${smoke_dir}/route_mmap.txt"
"${build_dir}/tools/spnl_convert" "${smoke_dir}/graph.adj" \
  --out="${smoke_dir}/graph.sadj" --quiet
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.sadj" --k=8 \
  --algo=spnl --format=sadj --out="${smoke_dir}/route_sadj.txt" --quiet
cmp "${smoke_dir}/route_text.txt" "${smoke_dir}/route_sadj.txt"
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.sadj" --k=8 \
  --algo=spnl --format=sadj --stream \
  --out="${smoke_dir}/route_stream.txt" --quiet
cmp "${smoke_dir}/route_text.txt" "${smoke_dir}/route_stream.txt"
# sadj -> adj round trip reproduces the original text stream.
"${build_dir}/tools/spnl_convert" "${smoke_dir}/graph.sadj" \
  --format=sadj --to=adj --out="${smoke_dir}/graph_rt.adj" --quiet
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph_rt.adj" --k=8 \
  --algo=spnl --reader=mmap --out="${smoke_dir}/route_rt.txt" --quiet
cmp "${smoke_dir}/route_text.txt" "${smoke_dir}/route_rt.txt"
# Typed CLI error: malformed numerics must exit 2, not parse as 0.
if "${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --batch-size=abc --quiet 2>/dev/null; then
  echo "expected --batch-size=abc to fail" >&2; exit 1
fi

# Storage-fault injection under the sanitizers: a failed route write must be
# a typed exit-1 error (never a silent 0 or a sanitizer abort), a malformed
# fault plan must exit 2, and a survivable EINTR/short-write storm must
# still publish a byte-identical route.
if "${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --out="${smoke_dir}/route_fail.txt" \
  --inject-io-faults=fail:write@1@enospc --quiet 2>/dev/null; then
  echo "expected injected ENOSPC route write to fail" >&2; exit 1
fi
if "${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --inject-io-faults=fail:bogus@1 --quiet 2>/dev/null; then
  echo "expected malformed --inject-io-faults plan to exit 2" >&2; exit 1
fi
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --out="${smoke_dir}/route_storm.txt" \
  --inject-io-faults=seed:3,eintr:write@1@4,short:write@r2@2 --quiet
cmp "${smoke_dir}/route_text.txt" "${smoke_dir}/route_storm.txt"

# One adversarial scenario-matrix cell under the sanitizers: a planted-
# partition graph relabeled by the community-interleaving attack order, then
# partitioned with the 2PS clustering prepass. This walks the prepass's
# vote/refine/pack loops and the hint-table injection into SPNL — the code
# paths the quality plane gates — with ASan/UBSan (or TSan) watching.
"${build_dir}/tools/spnl_gen" --out="${smoke_dir}/planted_adv.adj" \
  --model=planted --vertices=6000 --communities=8 --mu=0.3 \
  --order=adversarial --labels="${smoke_dir}/planted_adv_labels.txt" --seed=5
"${build_dir}/tools/spnl_partition" "${smoke_dir}/planted_adv.adj" --k=8 \
  --prepass=2ps --out="${smoke_dir}/route_prepass.txt"
# The prepass must not have degraded on a healthy planted graph, and the
# route must be a complete assignment (one line per vertex plus header).
[[ "$(tail -n +2 "${smoke_dir}/route_prepass.txt" | wc -l)" == "6000" ]]

# Kill-9 crash torture over the instrumented tools: SIGKILL mid-publish in
# convert/checkpoint/drain must never leave a torn artifact that a fresh
# (sanitized) process accepts.
bash "${repo_root}/tools/crash_torture.sh" --tools "${build_dir}/tools" \
  --work-dir "${build_dir}/sanitize_crash_torture"

echo "sanitize smoke (${mode}): OK"
