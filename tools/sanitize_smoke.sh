#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer and runs
# the robustness test suite (or the full suite with --full) against it.
#
# Usage:
#   tools/sanitize_smoke.sh [--full] [--build-dir DIR] [--jobs N]
#
# The robustness tests deliberately walk every error path (corrupt
# checkpoints, truncated graph files, crashed workers); running them under
# ASan/UBSan proves those paths are clean, not just non-crashing.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-sanitize"
jobs="$(nproc 2>/dev/null || echo 4)"
ctest_args=(-L robustness)

while [[ $# -gt 0 ]]; do
  case "$1" in
    --full) ctest_args=(); shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPNL_SANITIZE="address;undefined"
cmake --build "${build_dir}" -j "${jobs}"

# halt_on_error keeps a UBSan finding from scrolling past as a warning.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "${build_dir}" --output-on-failure "${ctest_args[@]+"${ctest_args[@]}"}"
echo "sanitize smoke: OK"
