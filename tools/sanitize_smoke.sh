#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer (default)
# or ThreadSanitizer (--tsan) and runs the robustness test suite (or the full
# suite with --full) against it.
#
# Usage:
#   tools/sanitize_smoke.sh [--full] [--tsan] [--build-dir DIR] [--jobs N]
#
# The robustness tests deliberately walk every error path (corrupt
# checkpoints, truncated graph files, crashed workers, stolen in-flight
# records); running them under ASan/UBSan proves those paths are clean, and
# under TSan proves the watchdog's steal/rescue protocol and the governor's
# quiesce-then-degrade dance are free of data races, not just non-crashing.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir=""
jobs="$(nproc 2>/dev/null || echo 4)"
ctest_args=(-L robustness)
sanitize="address;undefined"
mode="asan"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --full) ctest_args=(); shift ;;
    --tsan) sanitize="thread"; mode="tsan"; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done
if [[ -z "${build_dir}" ]]; then
  build_dir="${repo_root}/build-sanitize-${mode}"
fi

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPNL_SANITIZE="${sanitize}"
cmake --build "${build_dir}" -j "${jobs}"

if [[ "${mode}" == "tsan" ]]; then
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
else
  # halt_on_error keeps a UBSan finding from scrolling past as a warning.
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  export ASAN_OPTIONS="detect_leaks=1"
fi

ctest --test-dir "${build_dir}" --output-on-failure "${ctest_args[@]+"${ctest_args[@]}"}"

# Instrumented parallel driver under the sanitizers: the per-worker PerfStats
# instances, the post-join merge, and the fused scoring kernel all run on
# real threads here, so an out-of-range Γ-row offset, a scratch-buffer
# overflow, or UB in the timing paths surfaces as a sanitizer abort rather
# than a corrupted counter. With the watchdog armed the monitor thread's
# steal/rescue path and the governor's mid-stream window shrink run
# concurrently with the workers — exactly the interleavings TSan exists for.
smoke_dir="${build_dir}/sanitize_smoke"
mkdir -p "${smoke_dir}"
"${build_dir}/tools/spnl_gen" --out="${smoke_dir}/graph.adj" \
  --model=webcrawl --vertices=20000 --avg-degree=8 --seed=7
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --perf-report \
  --perf-json="${smoke_dir}/perf_parallel.json"
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spn --perf-report
# Watchdog-enabled parallel run with an injected straggler (stolen + rescued
# record) and a governed run forced down the degradation ladder. The default
# runs above already exercise the micro-batched handoff (batch 64) and the
# sharded RCT; the explicit --batch-size=16 run below adds a small-batch
# straggler interleaving (partial tail flush + steal mid-batch) so TSan sees
# the batched queue crossing under watchdog pressure too.
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --watchdog-timeout=0.2 \
  --inject-faults=stuck:1@50 --quiet
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --batch-size=16 --watchdog-timeout=0.2 \
  --inject-faults=stuck:2@75,slow:0@0.0001 --quiet
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --watchdog-timeout=0.2 --memory-budget=64K \
  --perf-json="${smoke_dir}/perf_degraded.json" --quiet
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
  "${smoke_dir}/perf_parallel.json" 2>/dev/null \
  || grep -q '"total_nanos"' "${smoke_dir}/perf_parallel.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
  "${smoke_dir}/perf_degraded.json" 2>/dev/null \
  || grep -q '"total_nanos"' "${smoke_dir}/perf_degraded.json"
grep -q '"degradations"' "${smoke_dir}/perf_degraded.json"
grep -q '"untracked_overflow"' "${smoke_dir}/perf_parallel.json"

echo "sanitize smoke (${mode}): OK"
