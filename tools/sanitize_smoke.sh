#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer and runs
# the robustness test suite (or the full suite with --full) against it.
#
# Usage:
#   tools/sanitize_smoke.sh [--full] [--build-dir DIR] [--jobs N]
#
# The robustness tests deliberately walk every error path (corrupt
# checkpoints, truncated graph files, crashed workers); running them under
# ASan/UBSan proves those paths are clean, not just non-crashing.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-sanitize"
jobs="$(nproc 2>/dev/null || echo 4)"
ctest_args=(-L robustness)

while [[ $# -gt 0 ]]; do
  case "$1" in
    --full) ctest_args=(); shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPNL_SANITIZE="address;undefined"
cmake --build "${build_dir}" -j "${jobs}"

# halt_on_error keeps a UBSan finding from scrolling past as a warning.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "${build_dir}" --output-on-failure "${ctest_args[@]+"${ctest_args[@]}"}"

# Instrumented parallel driver under the sanitizers: the per-worker PerfStats
# instances, the post-join merge, and the fused scoring kernel all run on
# real threads here, so an out-of-range Γ-row offset, a scratch-buffer
# overflow, or UB in the timing paths surfaces as a sanitizer abort rather
# than a corrupted counter.
smoke_dir="${build_dir}/sanitize_smoke"
mkdir -p "${smoke_dir}"
"${build_dir}/tools/spnl_gen" --out="${smoke_dir}/graph.adj" \
  --model=webcrawl --vertices=20000 --avg-degree=8 --seed=7
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spnl --threads=4 --perf-report \
  --perf-json="${smoke_dir}/perf_parallel.json"
"${build_dir}/tools/spnl_partition" "${smoke_dir}/graph.adj" --k=8 \
  --algo=spn --perf-report
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
  "${smoke_dir}/perf_parallel.json" 2>/dev/null \
  || grep -q '"total_nanos"' "${smoke_dir}/perf_parallel.json"

echo "sanitize smoke: OK"
