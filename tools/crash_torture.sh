#!/usr/bin/env bash
# Kill-9 crash-torture matrix over the REAL tools.
#
# Drives spnl_convert, spnl_partition, and spnl_server under seeded
# --inject-io-faults plans that SIGKILL the process (or tear a write and
# _exit) at chosen syscall indices mid-publish, then verifies from a fresh
# process that every surviving artifact is complete-old, complete-new, or
# absent — never a torn file accepted as valid:
#
#   1. sadj conversion killed at the write / fsync / rename / torn-write —
#      the published .sadj must still fully decode and byte-match exactly
#      one of the two inputs; a final clean conversion must be
#      byte-identical to an undisturbed reference.
#   2. streaming checkpoint runs killed at seeded write indices — whatever
#      checkpoint survives must resume to a route byte-identical to an
#      uninterrupted run.
#   3. server SIGTERM drain killed at the first drain-checkpoint write —
#      the drain dir must hold no torn .ckpt, and a faultless restart on
#      the same dir must come up and shut down cleanly.
#
# Usage: crash_torture.sh [--tools DIR] [--work-dir DIR]
set -euo pipefail

script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
tools_dir="${script_dir}/../build/tools"
work_dir=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --tools) tools_dir="$2"; shift 2 ;;
    --work-dir) work_dir="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

for tool in spnl_gen spnl_convert spnl_partition spnl_server spnl_client; do
  if [[ ! -x "${tools_dir}/${tool}" ]]; then
    echo "crash_torture: ${tools_dir}/${tool} not found (build first, or pass --tools)" >&2
    exit 2
  fi
done

if [[ -z "${work_dir}" ]]; then
  work_dir="$(mktemp -d /tmp/spnl_crash_torture.XXXXXX)"
fi
rm -rf "${work_dir}"
mkdir -p "${work_dir}"

die() { echo "crash_torture: FAIL: $*" >&2; exit 1; }

# Runs a tool expected to die by the plan: SIGKILL (rc 137) or the torn-write
# exit (rc 86). Anything else — including surviving — fails the harness.
expect_killed() {
  local what="$1"; shift
  local rc=0
  "$@" >/dev/null 2>&1 || rc=$?
  if [[ ${rc} -ne 137 && ${rc} -ne 86 ]]; then
    die "${what}: expected SIGKILL(137) or torn-exit(86), got rc=${rc}"
  fi
}

# ---------------------------------------------------------------------------
echo "crash_torture: [1/3] sadj conversion kill matrix"

old_adj="${work_dir}/old.adj"; new_adj="${work_dir}/new.adj"
ref_old="${work_dir}/ref_old.sadj"; ref_new="${work_dir}/ref_new.sadj"
target="${work_dir}/target.sadj"

"${tools_dir}/spnl_gen" --out="${old_adj}" --model=webcrawl --vertices=2000 --avg-degree=5 --seed=21
"${tools_dir}/spnl_gen" --out="${new_adj}" --model=webcrawl --vertices=3000 --avg-degree=5 --seed=22
"${tools_dir}/spnl_convert" "${old_adj}" --out="${ref_old}" --quiet
"${tools_dir}/spnl_convert" "${new_adj}" --out="${ref_new}" --quiet

cp "${ref_old}" "${target}"
convert_plans=(
  "seed:1,kill:write@r2"
  "seed:2,kill:write@r2"
  "seed:3,kill:write@r2"
  "kill:fsync@1"
  "kill:rename@1"
  "seed:6,torn:r2"
  "seed:7,torn:r2@5"
)
for plan in "${convert_plans[@]}"; do
  expect_killed "convert plan ${plan}" \
    "${tools_dir}/spnl_convert" "${new_adj}" --out="${target}" --quiet \
    "--inject-io-faults=${plan}"
  # The survivor must fully decode (eager sadj validation + complete body
  # scan) and byte-match exactly one of the two conversions.
  "${tools_dir}/spnl_convert" "${target}" --format=sadj --to=adj \
    --out="${work_dir}/decode.adj" --quiet \
    || die "convert plan ${plan}: surviving ${target} no longer decodes"
  if ! cmp -s "${target}" "${ref_old}" && ! cmp -s "${target}" "${ref_new}"; then
    die "convert plan ${plan}: survivor is neither the old nor the new sadj"
  fi
done

# Survivable faults (EINTR storm + short writes) must complete and publish
# the new file bit-for-bit.
"${tools_dir}/spnl_convert" "${new_adj}" --out="${target}" --quiet \
  "--inject-io-faults=seed:9,eintr:write@1@4,short:write@r2@3" \
  || die "survivable-fault conversion should have completed"
cmp -s "${target}" "${ref_new}" \
  || die "conversion under survivable faults is not byte-identical to the reference"
[[ -e "${target}.tmp" ]] && die "committed conversion left a stale ${target}.tmp"
echo "crash_torture: [1/3] OK (${#convert_plans[@]} kill sites, survivor decoded every time)"

# ---------------------------------------------------------------------------
echo "crash_torture: [2/3] checkpoint kills + resume byte-identity"

ckpt_graph="${work_dir}/ckpt_graph.adj"
route_ref="${work_dir}/route_ref.txt"
"${tools_dir}/spnl_gen" --out="${ckpt_graph}" --model=webcrawl --vertices=20000 --avg-degree=6 --seed=7
"${tools_dir}/spnl_partition" "${ckpt_graph}" --k=4 --stream \
  --out="${route_ref}" --quiet

resumed=0; restarted=0
for seed in 1 2 3 4 5; do
  ckpt="${work_dir}/ckpt_${seed}.bin"
  route_out="${work_dir}/route_seed${seed}.txt"
  rm -f "${ckpt}" "${ckpt}.tmp" "${route_out}"
  expect_killed "checkpoint seed ${seed}" \
    "${tools_dir}/spnl_partition" "${ckpt_graph}" --k=4 --stream \
    --checkpoint="${ckpt}" --checkpoint-every=1500 --out="${route_out}" --quiet \
    "--inject-io-faults=seed:${seed},kill:write@r8"
  if [[ -e "${ckpt}" ]]; then
    # A checkpoint survived the kill: it must be loadable and resume to the
    # exact same route as the uninterrupted run.
    "${tools_dir}/spnl_partition" "${ckpt_graph}" --k=4 --stream \
      --resume-from="${ckpt}" --out="${route_out}" --quiet \
      || die "checkpoint seed ${seed}: surviving checkpoint failed to resume"
    resumed=$((resumed + 1))
  else
    # Killed before the first checkpoint published: restart from scratch.
    "${tools_dir}/spnl_partition" "${ckpt_graph}" --k=4 --stream \
      --out="${route_out}" --quiet \
      || die "checkpoint seed ${seed}: fresh restart failed"
    restarted=$((restarted + 1))
  fi
  cmp -s "${route_ref}" "${route_out}" \
    || die "checkpoint seed ${seed}: recovered route differs from the reference"
done
echo "crash_torture: [2/3] OK (resumed=${resumed} fresh-restarted=${restarted}, all routes byte-identical)"

# ---------------------------------------------------------------------------
echo "crash_torture: [3/3] server drain killed mid-checkpoint, then restart"

srv_graph="${work_dir}/srv_graph.adj"
drain_dir="${work_dir}/drain"
sock="${work_dir}/spnl.sock"
mkdir -p "${drain_dir}"
"${tools_dir}/spnl_gen" --out="${srv_graph}" --model=webcrawl --vertices=8000 --avg-degree=5 --seed=9

"${tools_dir}/spnl_server" --listen="unix:${sock}" --drain-dir="${drain_dir}" \
  --idle-timeout=300 --quiet --inject-io-faults=kill:write@1 &
srv_pid=$!
for _ in $(seq 1 100); do [[ -S "${sock}" ]] && break; sleep 0.1; done
[[ -S "${sock}" ]] || die "server socket never appeared"

# Leave a detached, resumable session in the registry: the client drops its
# connection after 200 acked records and gives up (one attempt only).
"${tools_dir}/spnl_client" "${srv_graph}" --connect="unix:${sock}" --k=4 \
  --inject-disconnect-after=200 --max-attempts=1 --quiet >/dev/null 2>&1 || true

# SIGTERM triggers the drain; the very first drain-checkpoint write trips
# kill:write@1 and the server dies by SIGKILL mid-checkpoint.
kill -TERM "${srv_pid}"
rc=0; wait "${srv_pid}" || rc=$?
[[ ${rc} -eq 137 ]] || die "server: expected SIGKILL(137) during drain, got rc=${rc}"

# No torn checkpoint may have been published — at most a stale .tmp, which
# the restore scan ignores by extension.
published=$(find "${drain_dir}" -name '*.ckpt' | wc -l)
[[ "${published}" -eq 0 ]] || die "drain dir holds ${published} .ckpt file(s) after a pre-publish kill"

# A faultless restart on the same drain dir must come up (skipping any
# leftovers) and shut down cleanly.
"${tools_dir}/spnl_server" --listen="unix:${sock}" --drain-dir="${drain_dir}" \
  --quiet &
srv_pid=$!
for _ in $(seq 1 100); do [[ -S "${sock}" ]] && break; sleep 0.1; done
[[ -S "${sock}" ]] || die "restarted server socket never appeared"
kill -TERM "${srv_pid}"
rc=0; wait "${srv_pid}" || rc=$?
[[ ${rc} -eq 0 ]] || die "restarted server did not shut down cleanly (rc=${rc})"
echo "crash_torture: [3/3] OK (kill mid-drain left no torn .ckpt; restart clean)"

echo "crash_torture: PASS"
