// Partitioning-as-a-service daemon: listens on a unix or TCP endpoint and
// multiplexes concurrent streaming-partitioning sessions over the framed
// protocol (docs/server.md).
//
//   spnl_server --listen=unix:/tmp/spnl.sock [--max-sessions=N]
//               [--memory-budget=BYTES] [--idle-timeout=SECONDS]
//               [--read-timeout=SECONDS] [--drain-dir=DIR]
//               [--retry-after-ms=MS] [--quiet]
//
// SIGINT/SIGTERM triggers a graceful drain: the server stops accepting,
// winds down in-flight connections, checkpoints every live session into
// --drain-dir (PR-1 atomic checkpoint format), and exits. Restarting with
// the same --drain-dir restores the sessions; clients resume by token.
// A second signal during a stuck drain kills the process (SA_RESETHAND).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "server/server.hpp"
#include "util/cli.hpp"
#include "util/fault_fs.hpp"
#include "util/shutdown.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: spnl_server --listen=<unix:PATH|tcp:HOST:PORT> [options]\n"
      "  --max-sessions=N      admission cap on live sessions (default 64)\n"
      "  --memory-budget=BYTES summed partitioner footprint cap (0 = off)\n"
      "  --idle-timeout=SEC    reap detached sessions idle this long (30)\n"
      "  --read-timeout=SEC    close connections with no frame for this "
      "long (10)\n"
      "  --drain-dir=DIR       checkpoint sessions here on SIGTERM and\n"
      "                        restore them on startup (empty = disabled)\n"
      "  --retry-after-ms=MS   hint carried by Busy replies (200)\n"
      "  --inject-io-faults=PLAN  storage-fault plan for drain/restore I/O\n"
      "                        (docs/fault_tolerance.md)\n"
      "  --quiet               suppress the startup/stats lines\n");
}

}  // namespace

int main(int argc, char** argv) {
  spnl::CliArgs args(argc, argv);
  if (args.has("help") || !args.has("listen")) {
    usage();
    return args.has("help") ? 0 : 2;
  }
  const bool quiet = args.get_bool("quiet", false);

  // Armed before the drain-dir restore scan so the plan's operation indices
  // cover restore reads as well as drain writes.
  if (args.has("inject-io-faults")) {
    try {
      spnl::faultfs::configure(args.get("inject-io-faults", ""));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  spnl::ServerOptions options;
  try {
    options.endpoint = spnl::Endpoint::parse(args.get("listen", ""));
    options.admission.max_sessions =
        static_cast<std::uint32_t>(args.get_int("max-sessions", 64));
    options.admission.memory_budget_bytes =
        static_cast<std::size_t>(args.get_int("memory-budget", 0));
    options.idle_timeout_seconds = args.get_double("idle-timeout", 30.0);
    options.read_timeout_seconds = args.get_double("read-timeout", 10.0);
    options.drain_dir = args.get("drain-dir", "");
    options.retry_after_ms =
        static_cast<std::uint32_t>(args.get_int("retry-after-ms", 200));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  options.watch_shutdown_flag = true;

  // SIGINT/SIGTERM -> pollable flag -> graceful drain in the accept loop.
  spnl::arm_shutdown_flag();

  spnl::SpnlServer server(std::move(options));
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (!quiet) {
    std::printf("listening on %s\n", server.endpoint().describe().c_str());
    std::fflush(stdout);
  }

  server.wait();

  const spnl::ServerStats stats = server.stats();
  if (!quiet) {
    std::printf(
        "drained: connections=%llu opened=%llu restored=%llu completed=%llu "
        "reaped=%llu drained=%llu busy=%llu quarantined=%llu "
        "protocol_errors=%llu midstream_disconnects=%llu reconciles=%s\n",
        static_cast<unsigned long long>(stats.connections_accepted),
        static_cast<unsigned long long>(stats.opened),
        static_cast<unsigned long long>(stats.restored),
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.reaped),
        static_cast<unsigned long long>(stats.drained),
        static_cast<unsigned long long>(stats.rejected_busy),
        static_cast<unsigned long long>(stats.quarantined),
        static_cast<unsigned long long>(stats.protocol_errors),
        static_cast<unsigned long long>(stats.midstream_disconnects),
        stats.reconciles() ? "yes" : "NO");
  }
  return stats.reconciles() ? 0 : 1;
}
