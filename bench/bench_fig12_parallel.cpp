// bench_fig12_parallel — scaling benchmark for the micro-batched parallel
// pipeline (paper Sec. V-B / Fig. 12), plus the original paper-shaped tables
// behind --paper.
//
// Default (scaling) mode streams a 1M-vertex power-law webcrawl graph at
// K=32 through the sequential SPNL baseline and the parallel driver at
// M ∈ {1, 2, 4, 8}, reporting records/sec, edge-cut delta vs the sequential
// run, and the RCT delay/overflow counters. The whole result is emitted as
// one JSON object (stdout line "bench-json: ..." and optionally --json=FILE)
// — the payload behind BENCH_parallel.json.
//
//   bench_fig12_parallel [--n=1000000] [--k=32] [--batch=64] [--reps=3]
//                        [--threshold=2.0] [--quality-threshold=0.05]
//                        [--json=FILE] [--smoke] [--force-gate]
//                        [--paper] [--scale=1.0]
//
// Gates (exit 1 on failure):
//   speedup_m8_vs_m1 >= --threshold   — enforced only when the host actually
//     has >= 8 hardware threads (or --force-gate): a parallel pipeline cannot
//     honestly beat itself 2x on a single core, so on smaller boxes the gate
//     is skipped and the JSON records gate_skip_reason instead of a
//     fabricated pass.
//   quality_delta <= --quality-threshold — best-of-reps ECR delta vs the
//     sequential baseline, worst M; always enforced (quality does not need
//     cores). --smoke shrinks the graph and relaxes the quality bound to
//     0.08 (the small-graph noise floor the unit suite also uses).
//
// --paper reproduces the old Fig. 12 tables (PT vs M on uk2002/sk2005).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/parallel_driver.hpp"
#include "graph/generators.hpp"

using namespace spnl;
using namespace spnl::bench;

namespace {

struct ScalingPoint {
  unsigned threads = 0;
  double best_seconds = 0.0;
  double records_per_sec = 0.0;
  double best_ecr = 0.0;  // best (lowest) over reps — the gated number
  double delta_v = 0.0;
  std::uint64_t delayed = 0;
  std::uint64_t forced = 0;
  std::uint64_t untracked_overflow = 0;
};

int run_paper_mode(const CliArgs& args) {
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const PartitionConfig config{.num_partitions = k};

  for (const char* dataset : {"uk2002", "sk2005"}) {
    const Graph graph = load_dataset(dataset_by_name(dataset), scale);
    print_header((std::string("Fig. 12: PT vs threads (SPNL, ") + dataset + ")").c_str());
    std::printf("%s\n\n", describe(graph, dataset).c_str());

    const Outcome sequential = run_one(graph, "SPNL", config);
    TablePrinter table({"M", "PT", "ECR", "dv", "delayed", "forced"});
    table.add_row({"seq", fmt_pt(sequential.seconds),
                   TablePrinter::fmt(sequential.quality.ecr, 4),
                   TablePrinter::fmt(sequential.quality.delta_v, 2), "-", "-"});
    for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
      InMemoryStream stream(graph);
      ParallelOptions options;
      options.num_threads = threads;
      const auto result = run_parallel(stream, config, options);
      const auto metrics = evaluate_partition(graph, result.route, k);
      table.add_row({TablePrinter::fmt(static_cast<int>(threads)),
                     fmt_pt(result.partition_seconds),
                     TablePrinter::fmt(metrics.ecr, 4),
                     TablePrinter::fmt(metrics.delta_v, 2),
                     TablePrinter::fmt(static_cast<std::size_t>(result.delayed_vertices)),
                     TablePrinter::fmt(static_cast<std::size_t>(result.forced_vertices))});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("Paper (32-core Xeon): sweet spot M=4 (uk2002) to M=8 (sk2005), "
              "up to 63%% PT reduction. Few-core box: expect overhead-only.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.get_bool("paper", false)) return run_paper_mode(args);

  const bool smoke = args.get_bool("smoke", false);
  const auto n = static_cast<VertexId>(args.get_int("n", smoke ? 20'000 : 1'000'000));
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const auto batch = args.get_int("batch", 64);
  const int reps = static_cast<int>(args.get_int("reps", smoke ? 2 : 3));
  const double threshold = args.get_double("threshold", 2.0);
  const double quality_threshold =
      args.get_double("quality-threshold", smoke ? 0.08 : 0.05);
  const bool force_gate = args.get_bool("force-gate", false);
  const unsigned hardware = std::thread::hardware_concurrency();

  std::printf("generating webcrawl graph: n=%u (power-law out-degrees)...\n", n);
  WebCrawlParams params;
  params.num_vertices = n;
  params.avg_out_degree = 8.0;
  params.degree_alpha = 2.0;
  params.seed = 42;
  const Graph graph = generate_webcrawl(params);
  std::printf("graph ready: n=%u m=%llu, hardware threads: %u\n",
              graph.num_vertices(), static_cast<unsigned long long>(graph.num_edges()),
              hardware);

  PartitionConfig config;
  config.num_partitions = k;

  // Sequential SPNL baseline: the quality reference and the throughput
  // denominator for the per-M rows.
  double seq_seconds = 0.0;
  double seq_ecr = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const Outcome outcome = run_one(graph, "SPNL", config);
    if (rep == 0 || outcome.seconds < seq_seconds) seq_seconds = outcome.seconds;
    if (rep == 0 || outcome.quality.ecr < seq_ecr) seq_ecr = outcome.quality.ecr;
  }
  const double seq_rps = seq_seconds > 0.0 ? graph.num_vertices() / seq_seconds : 0.0;
  std::printf("sequential SPNL: %.3fs (%.0f rec/s), ECR %.4f\n", seq_seconds,
              seq_rps, seq_ecr);

  print_header("Parallel scaling (micro-batched pipeline, sharded RCT)");
  TablePrinter table({"M", "PT", "rec/s", "ECR", "dECR", "dv", "delayed",
                      "forced", "overflow"});
  table.add_row({"seq", fmt_pt(seq_seconds), TablePrinter::fmt(seq_rps, 0),
                 TablePrinter::fmt(seq_ecr, 4), "-", "-", "-", "-", "-"});

  std::vector<ScalingPoint> points;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ScalingPoint point;
    point.threads = threads;
    for (int rep = 0; rep < reps; ++rep) {
      InMemoryStream stream(graph);
      ParallelOptions options;
      options.num_threads = threads;
      options.batch_size = validated_batch_size(batch, options.queue_capacity);
      const auto result = run_parallel(stream, config, options);
      const auto metrics = evaluate_partition(graph, result.route, k);
      if (rep == 0 || result.partition_seconds < point.best_seconds) {
        point.best_seconds = result.partition_seconds;
      }
      if (rep == 0 || metrics.ecr < point.best_ecr) point.best_ecr = metrics.ecr;
      point.delta_v = metrics.delta_v;
      point.delayed = result.delayed_vertices;
      point.forced = result.forced_vertices;
      point.untracked_overflow = result.untracked_overflow;
    }
    point.records_per_sec =
        point.best_seconds > 0.0 ? graph.num_vertices() / point.best_seconds : 0.0;
    table.add_row({TablePrinter::fmt(static_cast<int>(threads)),
                   fmt_pt(point.best_seconds),
                   TablePrinter::fmt(point.records_per_sec, 0),
                   TablePrinter::fmt(point.best_ecr, 4),
                   TablePrinter::fmt(point.best_ecr - seq_ecr, 4),
                   TablePrinter::fmt(point.delta_v, 2),
                   TablePrinter::fmt(static_cast<std::size_t>(point.delayed)),
                   TablePrinter::fmt(static_cast<std::size_t>(point.forced)),
                   TablePrinter::fmt(static_cast<std::size_t>(point.untracked_overflow))});
    points.push_back(point);
  }
  table.print();

  const ScalingPoint& m1 = points.front();
  const ScalingPoint& m8 = points.back();
  const double speedup =
      m8.best_seconds > 0.0 ? m1.best_seconds / m8.best_seconds : 0.0;
  double quality_delta = 0.0;
  for (const ScalingPoint& point : points) {
    quality_delta = std::max(quality_delta, point.best_ecr - seq_ecr);
  }
  std::printf("\nspeedup M=8 vs M=1: %.2fx, worst quality delta vs sequential: "
              "%+.4f ECR\n", speedup, quality_delta);

  // The speedup gate needs the cores it claims to scale across; enforcing a
  // 2x bar on a 1-core box would only certify a lie.
  const bool gate_speedup = force_gate || (!smoke && hardware >= 8);
  std::string gate_skip_reason;
  if (!gate_speedup) {
    gate_skip_reason = smoke && !force_gate
                           ? "smoke mode"
                           : "hardware_concurrency " + std::to_string(hardware) +
                                 " < 8 (pass --force-gate to override)";
  }
  const bool speedup_ok = !gate_speedup || speedup >= threshold;
  const bool quality_ok = quality_delta <= quality_threshold;
  const bool pass = speedup_ok && quality_ok;

  std::string json;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\":\"parallel_scaling\",\"n\":%u,\"m\":%llu,\"k\":%u,"
                "\"batch_size\":%lld,\"reps\":%d,\"hardware_concurrency\":%u,"
                "\"sequential\":{\"seconds\":%.6f,\"records_per_sec\":%.1f,"
                "\"ecr\":%.6f},\"runs\":[",
                graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_edges()), k,
                static_cast<long long>(batch), reps, hardware, seq_seconds,
                seq_rps, seq_ecr);
  json += buf;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalingPoint& point = points[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"threads\":%u,\"seconds\":%.6f,\"records_per_sec\":%.1f,"
                  "\"ecr\":%.6f,\"ecr_delta\":%.6f,\"delta_v\":%.4f,"
                  "\"delayed\":%llu,\"forced\":%llu,\"untracked_overflow\":%llu}",
                  i == 0 ? "" : ",", point.threads, point.best_seconds,
                  point.records_per_sec, point.best_ecr,
                  point.best_ecr - seq_ecr, point.delta_v,
                  static_cast<unsigned long long>(point.delayed),
                  static_cast<unsigned long long>(point.forced),
                  static_cast<unsigned long long>(point.untracked_overflow));
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"speedup_m8_vs_m1\":%.3f,\"quality_delta\":%.6f,"
                "\"threshold\":%.2f,\"quality_threshold\":%.3f,"
                "\"speedup_gated\":%s,\"gate_skip_reason\":\"%s\","
                "\"pass\":%s}",
                speedup, quality_delta, threshold, quality_threshold,
                gate_speedup ? "true" : "false", gate_skip_reason.c_str(),
                pass ? "true" : "false");
  json += buf;
  std::printf("bench-json: %s\n", json.c_str());
  if (args.has("json")) {
    std::ofstream out(args.get("json", ""));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", args.get("json", "").c_str());
      return 1;
    }
    out << json << "\n";
  }

  if (gate_speedup && !speedup_ok) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below threshold %.2fx\n", speedup,
                 threshold);
    return 1;
  }
  if (!quality_ok) {
    std::fprintf(stderr, "FAIL: quality delta %.4f above threshold %.3f\n",
                 quality_delta, quality_threshold);
    return 1;
  }
  if (!gate_speedup) {
    std::printf("speedup gate skipped: %s\n", gate_skip_reason.c_str());
  }
  std::printf("PASS\n");
  return 0;
}
