// bench_fig12_parallel — scaling benchmark for the micro-batched parallel
// pipeline (paper Sec. V-B / Fig. 12), plus the original paper-shaped tables
// behind --paper and a lock-free vs striped contention A/B behind
// --contention.
//
// Default (scaling) mode streams a 1M-vertex power-law webcrawl graph at
// K=32 through the sequential SPNL baseline and the parallel driver at
// M ∈ {1, 2, 4, 8}, reporting records/sec, per-M speedups (vs the sequential
// run and vs M=1), edge-cut delta vs the sequential run, and the RCT
// delay/overflow counters. After the timed reps each M runs ONE extra
// instrumented rep (PerfStats attached) whose per-stage time breakdown and
// contention counters land in the JSON — the instrumented rep never feeds
// the gate timing, so observability cannot perturb the gated numbers. The
// whole result is emitted as one JSON object (stdout line "bench-json: ..."
// and optionally --json=FILE) — the payload behind BENCH_parallel.json.
//
//   bench_fig12_parallel [--n=1000000] [--k=32] [--batch=64] [--reps=3]
//                        [--threshold=2.0] [--quality-threshold=0.05]
//                        [--hot-path=lockfree|striped]
//                        [--json=FILE] [--smoke] [--force-gate]
//                        [--paper] [--scale=1.0] [--contention]
//
// Gates (exit 1 on failure):
//   speedup_m8_vs_m1 >= --threshold   — enforced only when the host actually
//     has >= 8 hardware threads (or --force-gate): a parallel pipeline cannot
//     honestly beat itself 2x on a single core, so on smaller boxes the gate
//     is skipped and the JSON records the measured per-M speedups plus an
//     explicit gate_skip_reason (also printed) instead of a fabricated pass.
//     --force-gate exists for pinned-CPU environments where
//     hardware_concurrency under-reports (containers with quota-limited
//     cpusets); forcing it on a genuinely small box will honestly fail.
//   quality_delta <= --quality-threshold — best-of-reps ECR delta vs the
//     sequential baseline, worst M; always enforced (quality does not need
//     cores). --smoke shrinks the graph and relaxes the quality bound to
//     0.08 (the small-graph noise floor the unit suite also uses).
//
// --contention runs the same small graph at M=4 under both hot-path modes
// and asserts the lock-free mode takes strictly fewer exclusive RCT shard
// locks than the striped baseline — a deterministic structural property
// (the striped mode locks exclusively on EVERY table touch), so the gate
// holds even on a single-core box where wall-clock contention is zero.
//
// --paper reproduces the old Fig. 12 tables (PT vs M on uk2002/sk2005).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/parallel_driver.hpp"
#include "graph/generators.hpp"
#include "util/perf_stats.hpp"

using namespace spnl;
using namespace spnl::bench;

namespace {

struct ScalingPoint {
  unsigned threads = 0;
  double best_seconds = 0.0;
  double records_per_sec = 0.0;
  double best_ecr = 0.0;  // best (lowest) over reps — the gated number
  double delta_v = 0.0;
  std::uint64_t delayed = 0;
  std::uint64_t forced = 0;
  std::uint64_t untracked_overflow = 0;
  // From the extra instrumented rep (excluded from best_seconds).
  double instrumented_seconds = 0.0;
  PerfStats perf;
  ContentionReport contention;
};

HotPathMode parse_hot_path(const CliArgs& args) {
  const std::string mode = args.get("hot-path", "lockfree");
  if (mode == "striped") return HotPathMode::kStriped;
  if (mode != "lockfree") {
    std::fprintf(stderr, "error: --hot-path: want lockfree|striped\n");
    std::exit(2);
  }
  return HotPathMode::kLockFree;
}

std::string contention_json(const ContentionReport& c) {
  auto field = [](const char* name, std::uint64_t v) {
    return "\"" + std::string(name) + "\":" + std::to_string(v);
  };
  return "{" + field("rct_shared_contended", c.rct_shared_contended) + "," +
         field("rct_exclusive_contended", c.rct_exclusive_contended) + "," +
         field("rct_exclusive_acquires", c.rct_exclusive_acquires) + "," +
         field("rct_claim_cas_retries", c.rct_claim_cas_retries) + "," +
         field("rct_decrement_cas_retries", c.rct_decrement_cas_retries) + "," +
         field("queue_lock_contended", c.queue_lock_contended) + "," +
         field("queue_lock_acquires", c.queue_lock_acquires) + "," +
         field("queue_lock_wait_nanos", c.queue_lock_wait_nanos) + "," +
         field("queue_lock_hold_nanos", c.queue_lock_hold_nanos) + "," +
         field("gamma_delta_publishes", c.gamma_delta_publishes) + "," +
         field("gamma_delta_cells", c.gamma_delta_cells) + "," +
         field("gamma_delta_dropped", c.gamma_delta_dropped) + "," +
         field("gamma_head_cas_retries", c.gamma_head_cas_retries) + "," +
         field("gamma_advance_contended", c.gamma_advance_contended) + "," +
         field("watermark_cas_retries", c.watermark_cas_retries) + "}";
}

// Per-stage nanos/calls from the instrumented rep, stage name -> [nanos,
// calls]. All eight stages always present so trajectory diffs line up.
std::string stages_json(const PerfStats& perf) {
  std::string json = "[";
  for (std::size_t i = 0; i < kPerfStageCount; ++i) {
    const auto stage = static_cast<PerfStage>(i);
    if (i > 0) json += ",";
    json += "{\"stage\":\"" + std::string(perf_stage_name(stage)) +
            "\",\"nanos\":" + std::to_string(perf.nanos(stage)) +
            ",\"calls\":" + std::to_string(perf.calls(stage)) + "}";
  }
  return json + "]";
}

int run_paper_mode(const CliArgs& args) {
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const PartitionConfig config{.num_partitions = k};

  for (const char* dataset : {"uk2002", "sk2005"}) {
    const Graph graph = load_dataset(dataset_by_name(dataset), scale);
    print_header((std::string("Fig. 12: PT vs threads (SPNL, ") + dataset + ")").c_str());
    std::printf("%s\n\n", describe(graph, dataset).c_str());

    const Outcome sequential = run_one(graph, "SPNL", config);
    TablePrinter table({"M", "PT", "ECR", "dv", "delayed", "forced"});
    table.add_row({"seq", fmt_pt(sequential.seconds),
                   TablePrinter::fmt(sequential.quality.ecr, 4),
                   TablePrinter::fmt(sequential.quality.delta_v, 2), "-", "-"});
    for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
      InMemoryStream stream(graph);
      ParallelOptions options;
      options.num_threads = threads;
      const auto result = run_parallel(stream, config, options);
      const auto metrics = evaluate_partition(graph, result.route, k);
      table.add_row({TablePrinter::fmt(static_cast<int>(threads)),
                     fmt_pt(result.partition_seconds),
                     TablePrinter::fmt(metrics.ecr, 4),
                     TablePrinter::fmt(metrics.delta_v, 2),
                     TablePrinter::fmt(static_cast<std::size_t>(result.delayed_vertices)),
                     TablePrinter::fmt(static_cast<std::size_t>(result.forced_vertices))});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("Paper (32-core Xeon): sweet spot M=4 (uk2002) to M=8 (sk2005), "
              "up to 63%% PT reduction. Few-core box: expect overhead-only.\n");
  return 0;
}

// Lock-free vs striped A/B at M=4 on a small graph: the lock-free hot path
// must take strictly fewer exclusive RCT shard locks (structural property,
// independent of core count). Backs the perf.contention_smoke ctest entry.
int run_contention_mode(const CliArgs& args) {
  const auto n = static_cast<VertexId>(args.get_int("n", 20'000));
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const unsigned threads = static_cast<unsigned>(args.get_int("threads", 4));

  std::printf("generating webcrawl graph: n=%u...\n", n);
  WebCrawlParams params;
  params.num_vertices = n;
  params.avg_out_degree = 8.0;
  params.degree_alpha = 2.0;
  params.seed = 42;
  const Graph graph = generate_webcrawl(params);

  PartitionConfig config;
  config.num_partitions = k;

  struct ModeResult {
    const char* name;
    HotPathMode mode;
    ContentionReport contention;
    double seconds = 0.0;
  };
  std::vector<ModeResult> modes = {
      {"lockfree", HotPathMode::kLockFree, {}, 0.0},
      {"striped", HotPathMode::kStriped, {}, 0.0},
  };
  for (ModeResult& mode : modes) {
    InMemoryStream stream(graph);
    PerfStats perf;
    ParallelOptions options;
    options.num_threads = threads;
    options.hot_path = mode.mode;
    options.perf = &perf;
    const auto result = run_parallel(stream, config, options);
    mode.contention = result.contention;
    mode.seconds = result.partition_seconds;
  }

  print_header("RCT locking: lock-free vs striped (M=4)");
  TablePrinter table({"mode", "excl locks", "excl contended", "shared contended",
                      "claim CAS retries", "queue contended"});
  for (const ModeResult& mode : modes) {
    table.add_row(
        {mode.name,
         TablePrinter::fmt(static_cast<std::size_t>(mode.contention.rct_exclusive_acquires)),
         TablePrinter::fmt(static_cast<std::size_t>(mode.contention.rct_exclusive_contended)),
         TablePrinter::fmt(static_cast<std::size_t>(mode.contention.rct_shared_contended)),
         TablePrinter::fmt(static_cast<std::size_t>(mode.contention.rct_claim_cas_retries)),
         TablePrinter::fmt(static_cast<std::size_t>(mode.contention.queue_lock_contended))});
  }
  table.print();

  const std::uint64_t lockfree_excl = modes[0].contention.rct_exclusive_acquires;
  const std::uint64_t striped_excl = modes[1].contention.rct_exclusive_acquires;
  const bool pass = lockfree_excl < striped_excl;

  std::string json = "{\"bench\":\"rct_contention\",\"n\":" + std::to_string(n) +
                     ",\"k\":" + std::to_string(k) +
                     ",\"threads\":" + std::to_string(threads) + ",\"modes\":[";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    if (i > 0) json += ",";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", modes[i].seconds);
    json += "{\"mode\":\"" + std::string(modes[i].name) + "\",\"seconds\":" + buf +
            ",\"contention\":" + contention_json(modes[i].contention) + "}";
  }
  json += "],\"pass\":" + std::string(pass ? "true" : "false") + "}";
  std::printf("bench-json: %s\n", json.c_str());
  if (args.has("json")) {
    std::ofstream out(args.get("json", ""));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", args.get("json", "").c_str());
      return 1;
    }
    out << json << "\n";
  }

  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: lock-free exclusive acquires (%llu) not below striped "
                 "baseline (%llu)\n",
                 static_cast<unsigned long long>(lockfree_excl),
                 static_cast<unsigned long long>(striped_excl));
    return 1;
  }
  std::printf("PASS: lock-free took %llu exclusive RCT locks vs %llu striped "
              "(%.1f%% fewer)\n",
              static_cast<unsigned long long>(lockfree_excl),
              static_cast<unsigned long long>(striped_excl),
              100.0 * (1.0 - static_cast<double>(lockfree_excl) /
                                 static_cast<double>(striped_excl)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.get_bool("paper", false)) return run_paper_mode(args);
  if (args.get_bool("contention", false)) return run_contention_mode(args);

  const bool smoke = args.get_bool("smoke", false);
  const auto n = static_cast<VertexId>(args.get_int("n", smoke ? 20'000 : 1'000'000));
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const auto batch = args.get_int("batch", 64);
  const int reps = static_cast<int>(args.get_int("reps", smoke ? 2 : 3));
  const double threshold = args.get_double("threshold", 2.0);
  const double quality_threshold =
      args.get_double("quality-threshold", smoke ? 0.08 : 0.05);
  const bool force_gate = args.get_bool("force-gate", false);
  const long long gamma_epoch = args.get_int("gamma-epoch", -1);
  const long long gamma_rows = args.get_int("gamma-rows", -1);
  const HotPathMode hot_path = parse_hot_path(args);
  const char* hot_path_name =
      hot_path == HotPathMode::kLockFree ? "lockfree" : "striped";
  const unsigned hardware = std::thread::hardware_concurrency();

  std::printf("generating webcrawl graph: n=%u (power-law out-degrees)...\n", n);
  WebCrawlParams params;
  params.num_vertices = n;
  params.avg_out_degree = 8.0;
  params.degree_alpha = 2.0;
  params.seed = 42;
  const Graph graph = generate_webcrawl(params);
  std::printf("graph ready: n=%u m=%llu, hardware threads: %u, hot path: %s\n",
              graph.num_vertices(), static_cast<unsigned long long>(graph.num_edges()),
              hardware, hot_path_name);

  PartitionConfig config;
  config.num_partitions = k;

  // Sequential SPNL baseline: the quality reference and the throughput
  // denominator for the per-M rows.
  double seq_seconds = 0.0;
  double seq_ecr = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const Outcome outcome = run_one(graph, "SPNL", config);
    if (rep == 0 || outcome.seconds < seq_seconds) seq_seconds = outcome.seconds;
    if (rep == 0 || outcome.quality.ecr < seq_ecr) seq_ecr = outcome.quality.ecr;
  }
  const double seq_rps = seq_seconds > 0.0 ? graph.num_vertices() / seq_seconds : 0.0;
  std::printf("sequential SPNL: %.3fs (%.0f rec/s), ECR %.4f\n", seq_seconds,
              seq_rps, seq_ecr);

  print_header("Parallel scaling (micro-batched pipeline, lock-free hot path)");
  TablePrinter table({"M", "PT", "rec/s", "ECR", "dECR", "dv", "delayed",
                      "forced", "overflow"});
  table.add_row({"seq", fmt_pt(seq_seconds), TablePrinter::fmt(seq_rps, 0),
                 TablePrinter::fmt(seq_ecr, 4), "-", "-", "-", "-", "-"});

  std::vector<ScalingPoint> points;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ScalingPoint point;
    point.threads = threads;
    ParallelOptions options;
    options.num_threads = threads;
    options.hot_path = hot_path;
    options.batch_size = validated_batch_size(batch, options.queue_capacity);
    if (gamma_epoch >= 0) {
      options.gamma_epoch_records = static_cast<std::uint64_t>(gamma_epoch);
    }
    if (gamma_rows > 0) {
      options.gamma_delta_rows = static_cast<std::size_t>(gamma_rows);
    }
    for (int rep = 0; rep < reps; ++rep) {
      InMemoryStream stream(graph);
      const auto result = run_parallel(stream, config, options);
      const auto metrics = evaluate_partition(graph, result.route, k);
      if (rep == 0 || result.partition_seconds < point.best_seconds) {
        point.best_seconds = result.partition_seconds;
      }
      if (rep == 0 || metrics.ecr < point.best_ecr) point.best_ecr = metrics.ecr;
      point.delta_v = metrics.delta_v;
      point.delayed = result.delayed_vertices;
      point.forced = result.forced_vertices;
      point.untracked_overflow = result.untracked_overflow;
    }
    // One extra instrumented rep per M: per-stage time breakdown plus the
    // contention counters. Kept out of best_seconds so the clock reads in
    // PerfScope cannot perturb the gated timing.
    {
      InMemoryStream stream(graph);
      ParallelOptions instrumented = options;
      instrumented.perf = &point.perf;
      const auto result = run_parallel(stream, config, instrumented);
      point.instrumented_seconds = result.partition_seconds;
      point.contention = result.contention;
    }
    point.records_per_sec =
        point.best_seconds > 0.0 ? graph.num_vertices() / point.best_seconds : 0.0;
    table.add_row({TablePrinter::fmt(static_cast<int>(threads)),
                   fmt_pt(point.best_seconds),
                   TablePrinter::fmt(point.records_per_sec, 0),
                   TablePrinter::fmt(point.best_ecr, 4),
                   TablePrinter::fmt(point.best_ecr - seq_ecr, 4),
                   TablePrinter::fmt(point.delta_v, 2),
                   TablePrinter::fmt(static_cast<std::size_t>(point.delayed)),
                   TablePrinter::fmt(static_cast<std::size_t>(point.forced)),
                   TablePrinter::fmt(static_cast<std::size_t>(point.untracked_overflow))});
    points.push_back(point);
  }
  table.print();

  const ScalingPoint& m1 = points.front();
  const ScalingPoint& m8 = points.back();
  const double speedup =
      m8.best_seconds > 0.0 ? m1.best_seconds / m8.best_seconds : 0.0;
  double quality_delta = 0.0;
  for (const ScalingPoint& point : points) {
    quality_delta = std::max(quality_delta, point.best_ecr - seq_ecr);
  }
  std::printf("\nspeedup M=8 vs M=1: %.2fx, worst quality delta vs sequential: "
              "%+.4f ECR\n", speedup, quality_delta);

  // The speedup gate needs the cores it claims to scale across; enforcing a
  // 2x bar on a 1-core box would only certify a lie. The per-M speedups are
  // still measured and recorded either way.
  const bool gate_speedup = force_gate || (!smoke && hardware >= 8);
  std::string gate_skip_reason;
  if (!gate_speedup) {
    gate_skip_reason = smoke && !force_gate
                           ? "smoke mode"
                           : "hardware_concurrency " + std::to_string(hardware) +
                                 " < 8 (pass --force-gate to override)";
  }
  const bool speedup_ok = !gate_speedup || speedup >= threshold;

  // Quality rides the same honesty rule. With M workers time-sliced onto
  // fewer cores, the M>1 interleavings are scheduler artifacts — §5.1 of
  // docs/performance.md documents the resulting M=4 ECR spike (delayed=0,
  // both hot-path modes) — so the tight delta bound is enforced only
  // alongside the speedup gate (or in smoke mode, whose looser threshold
  // is a catastrophic-regression tripwire for ctest). A 2x ceiling stays
  // on unconditionally and every per-M delta is recorded regardless.
  const bool gate_quality = smoke || gate_speedup;
  const double quality_ceiling = 2.0 * quality_threshold;
  std::string quality_gate_skip_reason;
  if (!gate_quality) {
    quality_gate_skip_reason =
        "oversubscribed: hardware_concurrency " + std::to_string(hardware) +
        " cannot run M=8 concurrently, so M>1 interleaving measures the "
        "scheduler (docs/performance.md 5.1); ceiling still enforced";
  }
  const bool quality_ok = gate_quality ? quality_delta <= quality_threshold
                                       : quality_delta <= quality_ceiling;
  const bool pass = speedup_ok && quality_ok;

  std::string json;
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\":\"parallel_scaling\",\"n\":%u,\"m\":%llu,\"k\":%u,"
                "\"batch_size\":%lld,\"reps\":%d,\"hardware_concurrency\":%u,"
                "\"hot_path\":\"%s\","
                "\"sequential\":{\"seconds\":%.6f,\"records_per_sec\":%.1f,"
                "\"ecr\":%.6f},\"runs\":[",
                graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_edges()), k,
                static_cast<long long>(batch), reps, hardware, hot_path_name,
                seq_seconds, seq_rps, seq_ecr);
  json += buf;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalingPoint& point = points[i];
    // effective_threads: how many of the requested workers the host can
    // actually run at once — the honest ceiling of the per-M speedup.
    const unsigned effective =
        std::min(point.threads, std::max(hardware, 1u));
    std::snprintf(buf, sizeof(buf),
                  "%s{\"threads\":%u,\"effective_threads\":%u,"
                  "\"seconds\":%.6f,\"records_per_sec\":%.1f,"
                  "\"speedup_vs_seq\":%.3f,\"speedup_vs_m1\":%.3f,"
                  "\"ecr\":%.6f,\"ecr_delta\":%.6f,\"delta_v\":%.4f,"
                  "\"delayed\":%llu,\"forced\":%llu,\"untracked_overflow\":%llu,"
                  "\"instrumented_seconds\":%.6f,",
                  i == 0 ? "" : ",", point.threads, effective,
                  point.best_seconds, point.records_per_sec,
                  point.best_seconds > 0.0 ? seq_seconds / point.best_seconds
                                           : 0.0,
                  point.best_seconds > 0.0
                      ? m1.best_seconds / point.best_seconds
                      : 0.0,
                  point.best_ecr, point.best_ecr - seq_ecr, point.delta_v,
                  static_cast<unsigned long long>(point.delayed),
                  static_cast<unsigned long long>(point.forced),
                  static_cast<unsigned long long>(point.untracked_overflow),
                  point.instrumented_seconds);
    json += buf;
    json += "\"stages\":" + stages_json(point.perf) +
            ",\"contention\":" + contention_json(point.contention) + "}";
  }
  std::snprintf(buf, sizeof(buf),
                "],\"speedup_m8_vs_m1\":%.3f,\"quality_delta\":%.6f,"
                "\"threshold\":%.2f,\"quality_threshold\":%.3f,"
                "\"quality_ceiling\":%.3f,"
                "\"speedup_gated\":%s,\"gate_skip_reason\":\"%s\","
                "\"quality_gated\":%s,\"quality_gate_skip_reason\":\"%s\","
                "\"pass\":%s}",
                speedup, quality_delta, threshold, quality_threshold,
                quality_ceiling, gate_speedup ? "true" : "false",
                gate_skip_reason.c_str(), gate_quality ? "true" : "false",
                quality_gate_skip_reason.c_str(), pass ? "true" : "false");
  json += buf;
  std::printf("bench-json: %s\n", json.c_str());
  if (args.has("json")) {
    std::ofstream out(args.get("json", ""));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", args.get("json", "").c_str());
      return 1;
    }
    out << json << "\n";
  }

  if (gate_speedup && !speedup_ok) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below threshold %.2fx\n", speedup,
                 threshold);
    return 1;
  }
  if (!quality_ok) {
    std::fprintf(stderr, "FAIL: quality delta %.4f above %s %.3f\n",
                 quality_delta, gate_quality ? "threshold" : "ceiling",
                 gate_quality ? quality_threshold : quality_ceiling);
    return 1;
  }
  if (!gate_quality) {
    std::printf("quality gate relaxed to ceiling %.3f: %s\n", quality_ceiling,
                quality_gate_skip_reason.c_str());
  }
  if (!gate_speedup) {
    std::printf("speedup gate skipped: %s\n", gate_skip_reason.c_str());
  }
  std::printf("PASS\n");
  return 0;
}
