// Reproduces Fig. 12: PT of parallel SPNL as a function of the worker count
// M, on uk2002 (small) and sk2005 (large).
//
// Paper shape: PT first drops with M then rises again (scheduling +
// synchronization overheads); the sweet spot grows with graph size (4 for
// uk2002, 8 for sk2005 on the paper's 32-core box).
//
// Hardware substitution: this environment exposes a single CPU core, so no
// real speedup is possible — the measured curve shows the overhead side of
// the paper's U-curve. Quality columns demonstrate that the RCT keeps ECR
// stable across M regardless.
#include "common.hpp"
#include "core/parallel_driver.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const PartitionConfig config{.num_partitions = k};

  for (const char* dataset : {"uk2002", "sk2005"}) {
    const Graph graph = load_dataset(dataset_by_name(dataset), scale);
    print_header((std::string("Fig. 12: PT vs threads (SPNL, ") + dataset + ")").c_str());
    std::printf("%s\n\n", describe(graph, dataset).c_str());

    const Outcome sequential = run_one(graph, "SPNL", config);
    TablePrinter table({"M", "PT", "ECR", "dv", "delayed", "forced"});
    table.add_row({"seq", fmt_pt(sequential.seconds),
                   TablePrinter::fmt(sequential.quality.ecr, 4),
                   TablePrinter::fmt(sequential.quality.delta_v, 2), "-", "-"});
    for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
      InMemoryStream stream(graph);
      ParallelOptions options;
      options.num_threads = threads;
      const auto result = run_parallel(stream, config, options);
      const auto metrics = evaluate_partition(graph, result.route, k);
      table.add_row({TablePrinter::fmt(static_cast<int>(threads)),
                     fmt_pt(result.partition_seconds),
                     TablePrinter::fmt(metrics.ecr, 4),
                     TablePrinter::fmt(metrics.delta_v, 2),
                     TablePrinter::fmt(static_cast<std::size_t>(result.delayed_vertices)),
                     TablePrinter::fmt(static_cast<std::size_t>(result.forced_vertices))});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("Paper (32-core Xeon): sweet spot M=4 (uk2002) to M=8 (sk2005), "
              "up to 63%% PT reduction. 1-core box here: expect overhead-only.\n");
  return 0;
}
