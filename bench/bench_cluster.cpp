// Extension bench: simulated end-to-end job time on a modeled cluster.
//
// Turns the paper's motivation quantitative: the same 10-superstep PageRank
// job is simulated on a K-worker cluster under two network regimes
// (datacenter-fast and commodity-slow), for partitionings produced by Hash,
// LDG, SPNL and the multilevel baseline. Reported: partitioning time (paid
// per job, Sec. II) plus simulated job time, and their sum — the number a
// platform operator actually minimizes.
#include "common.hpp"
#include "cluster/simulator.hpp"
#include "engine/algorithms.hpp"
#include "offline/multilevel.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 16));
  const int supersteps = static_cast<int>(args.get_int("supersteps", 10));
  const Graph graph = load_dataset(dataset_by_name("uk2002"), scale);
  const PartitionConfig config{.num_partitions = k};

  ClusterModel fast;  // datacenter: 25 GbE-ish relative to compute
  fast.compute_rate = 50e6;
  fast.bandwidth = 10e6;
  fast.barrier_latency = 1e-3;
  ClusterModel slow = fast;  // commodity/cloud: 10x less bandwidth
  slow.bandwidth = 1e6;
  slow.barrier_latency = 5e-3;

  print_header("Extension: simulated cluster job time (uk2002, PageRank)");
  std::printf("%s, K=%u workers, %d supersteps\n\n",
              describe(graph, "uk2002").c_str(), k, supersteps);

  TablePrinter table({"partitioner", "ECR", "PT [s]", "fast-net job [s]",
                      "net%", "slow-net job [s]", "net%", "PT+slow job [s]"});

  auto add_row = [&](const std::string& name, const std::vector<PartitionId>& route,
                     double pt, double ecr) {
    const auto job = pagerank_with_traffic(graph, route, k, supersteps);
    const auto on_fast = simulate_cluster(job, k, fast);
    const auto on_slow = simulate_cluster(job, k, slow);
    table.add_row({name, TablePrinter::fmt(ecr, 4), fmt_pt(pt),
                   TablePrinter::fmt(on_fast.total_seconds, 3),
                   TablePrinter::fmt(100.0 * on_fast.network_fraction(), 0),
                   TablePrinter::fmt(on_slow.total_seconds, 3),
                   TablePrinter::fmt(100.0 * on_slow.network_fraction(), 0),
                   TablePrinter::fmt(pt + on_slow.total_seconds, 3)});
  };

  for (const char* name : {"Hash", "LDG", "SPNL"}) {
    const Outcome outcome = run_one(graph, name, config);
    add_row(name, outcome.route, outcome.seconds, outcome.quality.ecr);
  }
  {
    const auto result = multilevel_partition(graph, config);
    const auto metrics = evaluate_partition(graph, result.route, k);
    add_row("Multilevel", result.route, result.partition_seconds, metrics.ecr);
  }
  table.print();

  std::printf("\nReading: on the slow network the job is communication-bound "
              "and SPNL's lower ECR translates ~1:1 into job time; adding "
              "the per-job partitioning cost (the paper's multi-tenant "
              "argument) puts SPNL ahead of the multilevel baseline even "
              "when their job times tie.\n");
  return 0;
}
