// Extension bench: SPNL as the streaming component of a hybrid buffered
// framework (paper Sec. I: "our proposal actually can also work as the
// replacement for the streaming component in their hybrid frameworks").
//
// Sweeps the buffer size B from 1 (pure streaming) upwards and compares the
// LDG-seeded and SPNL-seeded hybrids on ECR and PT.
#include "common.hpp"
#include "graph/reorder.hpp"
#include "partition/buffered.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const Graph crawl = load_dataset(dataset_by_name("uk2002"), scale);
  const Graph shuffled = random_renumber(crawl, 999);
  const PartitionConfig config{.num_partitions = k};

  print_header("Extension: hybrid buffered streaming (uk2002, K=32)");
  std::printf("%s\n\n", describe(crawl, "uk2002").c_str());

  TablePrinter table({"order", "buffer B", "LDG-seed ECR", "PT",
                      "SPNL-seed ECR", "PT"});
  const struct {
    const char* name;
    const Graph* graph;
  } orders[] = {{"crawl", &crawl}, {"random", &shuffled}};
  for (const auto& order : orders) {
    for (VertexId buffer : {1u, 1024u, 8192u, 32768u}) {
      std::vector<std::string> row = {order.name, TablePrinter::fmt(std::size_t{buffer})};
      for (BufferSeedRule rule : {BufferSeedRule::kLdg, BufferSeedRule::kSpnl}) {
        InMemoryStream stream(*order.graph);
        const auto result = buffered_partition(
            stream, config, {.buffer_size = buffer, .seed_rule = rule});
        const auto metrics = evaluate_partition(*order.graph, result.route, k);
        row.push_back(TablePrinter::fmt(metrics.ecr, 4));
        row.push_back(fmt_pt(result.partition_seconds));
      }
      table.add_row(std::move(row));
    }
  }
  table.print();

  std::printf("\nReading: on crawl order the one-pass seed already sits near "
              "the locality floor, so buffering is neutral; on a weak-signal "
              "(random) order the joint in-buffer refinement pays off — and "
              "the SPNL seed keeps its lead at every buffer size, supporting "
              "the paper's claim that it slots into hybrid frameworks as the "
              "streaming core.\n");
  return 0;
}
