// bench_ingest — end-to-end ingestion throughput: the buffered text reader
// vs the mmap text reader vs the sadj binary reader, on the same graph.
//
// Two phases per reader, best-of-reps:
//   ingest  — drain-only pass (parse every record, place nothing): isolates
//             the parse path the PR optimizes.
//   e2e     — full ingest -> SPNL route pass through run_streaming.
//
// The gate is on the ingest phase: the binary mmap reader must parse at
// least --threshold x (default 3x) the records/sec of the buffered text
// reader. The e2e ratio is reported but not gated — on a 1M-vertex graph
// SPNL placement dominates end-to-end time, so gating it would measure the
// partitioner, not the readers. Route identity IS gated in every mode: all
// three readers must produce byte-identical SPNL routes, or the speed is
// meaningless.
//
//   bench_ingest [--n=1000000] [--k=32] [--reps=3] [--threshold=3.0]
//                [--dir=PATH] [--json=FILE] [--smoke] [--force-gate]
//
// --smoke shrinks the graph (n=20000) and skips the throughput gate (mmap
// beats getline by a margin that only stabilizes on multi-second parses);
// the route-identity gate stays on. The full-size run's JSON is committed
// as BENCH_ingest.json.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/mmap_stream.hpp"
#include "graph/stream_binary.hpp"

using namespace spnl;
using namespace spnl::bench;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ReaderPoint {
  std::string name;
  double ingest_seconds = 0.0;  // best-of-reps drain-only pass
  double ingest_rps = 0.0;
  double e2e_seconds = 0.0;  // best-of-reps ingest + SPNL route
  double e2e_rps = 0.0;
  std::vector<PartitionId> route;
};

using StreamFactory = std::function<std::unique_ptr<AdjacencyStream>()>;

// Measures every reader best-of-reps, with the reps *interleaved*: round r
// runs all readers back-to-back before round r+1. The gate is a ratio, so
// what matters is that a slow patch on a shared box hits every reader of
// that round roughly equally instead of silently inflating whichever reader
// happened to own that wall-clock window.
std::vector<ReaderPoint> measure_all(
    const std::vector<std::pair<std::string, StreamFactory>>& readers,
    PartitionId k, int reps) {
  std::vector<ReaderPoint> points(readers.size());
  for (std::size_t i = 0; i < readers.size(); ++i) {
    points[i].name = readers[i].first;
  }

  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < readers.size(); ++i) {
      const auto stream = readers[i].second();
      const double start = now_seconds();
      std::uint64_t records = 0;
      while (stream->next()) ++records;
      const double seconds = now_seconds() - start;
      if (rep == 0 || seconds < points[i].ingest_seconds) {
        points[i].ingest_seconds = seconds;
      }
    }
  }
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < readers.size(); ++i) {
      const auto stream = readers[i].second();
      PartitionConfig config;
      config.num_partitions = k;
      SpnlPartitioner partitioner(stream->num_vertices(), stream->num_edges(),
                                  config);
      const double start = now_seconds();
      RunResult run = run_streaming(*stream, partitioner);
      const double seconds = now_seconds() - start;
      if (rep == 0 || seconds < points[i].e2e_seconds) {
        points[i].e2e_seconds = seconds;
        points[i].route = std::move(run.route);
      }
    }
  }
  for (ReaderPoint& point : points) {
    const double n = static_cast<double>(point.route.size());
    point.ingest_rps =
        point.ingest_seconds > 0.0 ? n / point.ingest_seconds : 0.0;
    point.e2e_rps = point.e2e_seconds > 0.0 ? n / point.e2e_seconds : 0.0;
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const auto n =
      static_cast<VertexId>(args.get_int("n", smoke ? 20'000 : 1'000'000));
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const int reps = static_cast<int>(args.get_int("reps", smoke ? 2 : 3));
  const double threshold = args.get_double("threshold", 3.0);
  const bool force_gate = args.get_bool("force-gate", false);
  const std::string dir =
      args.get("dir", (std::filesystem::temp_directory_path() /
                       "spnl_bench_ingest")
                          .string());

  std::filesystem::create_directories(dir);
  const std::string text_path = dir + "/ingest.adj";
  const std::string sadj_path = dir + "/ingest.sadj";

  std::printf("generating webcrawl graph: n=%u (power-law out-degrees)...\n", n);
  WebCrawlParams params;
  params.num_vertices = n;
  params.avg_out_degree = 8.0;
  params.degree_alpha = 2.0;
  params.seed = 42;
  {
    const Graph graph = generate_webcrawl(params);
    write_adjacency_list(graph, text_path);
    FileAdjacencyStream source(text_path);
    write_sadj(source, sadj_path);
  }  // drop the in-memory graph before measuring: readers run standalone
  const auto text_bytes = std::filesystem::file_size(text_path);
  const auto sadj_bytes = std::filesystem::file_size(sadj_path);
  std::printf("text %.1f MB -> sadj %.1f MB (%.1f%%)\n",
              text_bytes / 1048576.0, sadj_bytes / 1048576.0,
              100.0 * static_cast<double>(sadj_bytes) /
                  static_cast<double>(text_bytes));

  print_header("Ingestion throughput (drain-only + end-to-end SPNL route)");
  const std::vector<std::pair<std::string, StreamFactory>> readers = {
      {"text-buffered",
       [&] { return std::make_unique<FileAdjacencyStream>(text_path); }},
      {"text-mmap",
       [&] { return std::make_unique<MmapAdjacencyStream>(text_path); }},
      {"binary-mmap",
       [&] { return std::make_unique<BinaryAdjacencyStream>(sadj_path); }},
  };
  std::vector<ReaderPoint> points = measure_all(readers, k, reps);

  TablePrinter table({"reader", "ingest", "rec/s", "e2e", "rec/s(e2e)"});
  for (const ReaderPoint& point : points) {
    table.add_row({point.name, fmt_pt(point.ingest_seconds),
                   TablePrinter::fmt(point.ingest_rps, 0),
                   fmt_pt(point.e2e_seconds),
                   TablePrinter::fmt(point.e2e_rps, 0)});
  }
  table.print();

  const ReaderPoint& text = points[0];
  const ReaderPoint& mmap_text = points[1];
  const ReaderPoint& binary = points[2];
  const double ratio_binary =
      text.ingest_rps > 0.0 ? binary.ingest_rps / text.ingest_rps : 0.0;
  const double ratio_mmap =
      text.ingest_rps > 0.0 ? mmap_text.ingest_rps / text.ingest_rps : 0.0;
  const double ratio_e2e =
      text.e2e_rps > 0.0 ? binary.e2e_rps / text.e2e_rps : 0.0;
  const bool routes_identical =
      mmap_text.route == text.route && binary.route == text.route;
  std::printf("\ningest speedup vs text-buffered: mmap %.2fx, binary %.2fx "
              "(e2e binary %.2fx); routes identical: %s\n",
              ratio_mmap, ratio_binary, ratio_e2e,
              routes_identical ? "yes" : "NO");

  const bool gate_speed = force_gate || !smoke;
  const std::string gate_skip_reason = gate_speed ? "" : "smoke mode";
  const bool speed_ok = !gate_speed || ratio_binary >= threshold;
  const bool pass = speed_ok && routes_identical;

  std::string json;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\":\"ingest\",\"n\":%u,\"k\":%u,\"reps\":%d,"
                "\"text_bytes\":%llu,\"sadj_bytes\":%llu,\"readers\":[",
                n, k, reps, static_cast<unsigned long long>(text_bytes),
                static_cast<unsigned long long>(sadj_bytes));
  json += buf;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ReaderPoint& point = points[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"reader\":\"%s\",\"ingest_seconds\":%.6f,"
                  "\"ingest_records_per_sec\":%.1f,\"e2e_seconds\":%.6f,"
                  "\"e2e_records_per_sec\":%.1f}",
                  i == 0 ? "" : ",", point.name.c_str(), point.ingest_seconds,
                  point.ingest_rps, point.e2e_seconds, point.e2e_rps);
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"ingest_speedup_binary_vs_text\":%.3f,"
                "\"ingest_speedup_mmap_vs_text\":%.3f,"
                "\"e2e_speedup_binary_vs_text\":%.3f,\"threshold\":%.2f,"
                "\"routes_identical\":%s,\"speed_gated\":%s,"
                "\"gate_skip_reason\":\"%s\",\"pass\":%s}",
                ratio_binary, ratio_mmap, ratio_e2e, threshold,
                routes_identical ? "true" : "false",
                gate_speed ? "true" : "false", gate_skip_reason.c_str(),
                pass ? "true" : "false");
  json += buf;
  std::printf("bench-json: %s\n", json.c_str());
  if (args.has("json")) {
    std::ofstream out(args.get("json", ""));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.get("json", "").c_str());
      return 1;
    }
    out << json << "\n";
  }

  std::filesystem::remove(text_path);
  std::filesystem::remove(sadj_path);

  if (!routes_identical) {
    std::fprintf(stderr, "FAIL: readers disagreed on the route\n");
    return 1;
  }
  if (gate_speed && !speed_ok) {
    std::fprintf(stderr,
                 "FAIL: binary ingest speedup %.2fx below threshold %.2fx\n",
                 ratio_binary, threshold);
    return 1;
  }
  if (!gate_speed) {
    std::printf("speed gate skipped: %s\n", gate_skip_reason.c_str());
  }
  std::printf("PASS\n");
  return 0;
}
