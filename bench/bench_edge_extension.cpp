// Extension bench (paper Sec. VII future work): streaming EDGE partitioning
// with the paper's topology-locality idea transplanted into HDRF.
//
// Compares replication factor (RF, lower = better), edge balance and PT of
// HashE / DBH / GreedyE / HDRF / HDRF-L on the dataset analogues, plus a
// locality-destruction ablation for HDRF-L (its range prior should only help
// when the numbering carries locality).
#include "common.hpp"
#include "edge/edge_partitioners.hpp"
#include "graph/reorder.hpp"

using namespace spnl;
using namespace spnl::bench;

namespace {

struct EdgeOutcome {
  EdgePartitionMetrics metrics;
  double seconds = 0.0;
};

template <typename P>
EdgeOutcome run_edge(const Graph& g, PartitionId k) {
  PartitionConfig config{.num_partitions = k};
  P partitioner(g.num_vertices(), g.num_edges(), config);
  InMemoryStream stream(g);
  EdgeOutcome outcome;
  outcome.seconds = run_edge_streaming(stream, partitioner);
  outcome.metrics = evaluate_edge_partition(partitioner, g.num_vertices());
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));

  print_header("Extension: streaming edge partitioning, RF / de / PT (K=32)");
  TablePrinter table({"Graph", "HashE RF", "de", "DBH RF", "de", "GreedyE RF",
                      "de", "HDRF RF", "de", "HDRF-L RF", "de"});
  for (const auto& spec : paper_datasets()) {
    const Graph graph = load_dataset(spec, scale);
    std::vector<std::string> row = {spec.name};
    auto add = [&](const EdgeOutcome& outcome) {
      row.push_back(TablePrinter::fmt(outcome.metrics.replication_factor, 2));
      row.push_back(TablePrinter::fmt(outcome.metrics.edge_balance, 2));
    };
    add(run_edge<HashEdgePartitioner>(graph, k));
    add(run_edge<DbhPartitioner>(graph, k));
    add(run_edge<GreedyEdgePartitioner>(graph, k));
    add(run_edge<HdrfPartitioner>(graph, k));
    add(run_edge<HdrfLPartitioner>(graph, k));
    table.add_row(std::move(row));
  }
  table.print();

  print_header("Extension: HDRF-L locality ablation (uk2002)");
  {
    const Graph graph = load_dataset(dataset_by_name("uk2002"), scale);
    const Graph shuffled = random_renumber(graph, 999);
    TablePrinter table2({"numbering", "HDRF RF", "HDRF-L RF"});
    table2.add_row({"crawl",
                    TablePrinter::fmt(run_edge<HdrfPartitioner>(graph, k).metrics
                                          .replication_factor, 3),
                    TablePrinter::fmt(run_edge<HdrfLPartitioner>(graph, k).metrics
                                          .replication_factor, 3)});
    table2.add_row({"random",
                    TablePrinter::fmt(run_edge<HdrfPartitioner>(shuffled, k).metrics
                                          .replication_factor, 3),
                    TablePrinter::fmt(run_edge<HdrfLPartitioner>(shuffled, k).metrics
                                          .replication_factor, 3)});
    table2.print();
    std::printf("\nExpected: HDRF-L < HDRF on crawl numbering; the advantage "
                "vanishes (or inverts) on random numbering — the same "
                "locality dependence the vertex-side SPNL shows.\n");
  }
  return 0;
}
