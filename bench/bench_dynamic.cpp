// Extension bench: partition maintenance under graph evolution.
//
// The paper's intro motivates cheap partitioning with frequent graph
// updates. This bench bootstraps a partitioning from a streaming SPNL run
// over the first 80% of a crawl, then applies the remaining 20% as dynamic
// vertex arrivals, and compares three maintenance policies:
//   (a) no-op: place arrivals greedily, never refine;
//   (b) incremental: greedy placement + bounded refine() after each batch;
//   (c) re-partition: full SPNL re-run from scratch after each batch
//       (the quality ceiling, at full PT cost each time).
#include "common.hpp"
#include "dynamic/incremental.hpp"
#include "util/timer.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const int batches = static_cast<int>(args.get_int("batches", 5));
  const PartitionConfig config{.num_partitions = k, .slack = 1.15};

  const Graph full = load_dataset(dataset_by_name("uk2002"), scale);
  const auto prefix_n = static_cast<VertexId>(full.num_vertices() * 0.8);

  // Prefix graph (edges among the first 80% of vertices only).
  GraphBuilder builder(prefix_n);
  for (VertexId v = 0; v < prefix_n; ++v) {
    for (VertexId u : full.out_neighbors(v)) {
      if (u < prefix_n) builder.add_edge(v, u);
    }
  }
  const Graph prefix = builder.finish();

  print_header("Extension: dynamic maintenance under vertex arrivals (uk2002)");
  std::printf("%s; bootstrap = first %u vertices, then %d arrival batches\n\n",
              describe(full, "uk2002").c_str(), prefix_n, batches);

  const Outcome bootstrap = run_one(prefix, "SPNL", config);
  std::printf("bootstrap SPNL on prefix: ECR=%.4f PT=%.3fs\n\n",
              bootstrap.quality.ecr, bootstrap.seconds);

  TablePrinter table({"batch", "policy", "ECR(full-seen)", "dv", "update PT",
                      "moves"});
  IncrementalPartitioner plain(prefix, bootstrap.route, config,
                               {.expected_vertices = full.num_vertices()});
  IncrementalPartitioner refined(prefix, bootstrap.route, config,
                                 {.expected_vertices = full.num_vertices()});

  const VertexId per_batch = (full.num_vertices() - prefix_n) / batches;
  VertexId next = prefix_n;
  for (int batch = 1; batch <= batches; ++batch) {
    const VertexId end = batch == batches ? full.num_vertices()
                                          : next + per_batch;
    // (a) + (b): incremental arrival (out-edges to future vertices included;
    // auto-registration places them provisionally, as a real system must).
    Timer plain_timer;
    for (VertexId v = next; v < end; ++v) plain.add_vertex(v, full.out_neighbors(v));
    const double plain_pt = plain_timer.seconds();

    Timer refined_timer;
    for (VertexId v = next; v < end; ++v) refined.add_vertex(v, full.out_neighbors(v));
    const auto stats = refined.refine(static_cast<std::uint64_t>(per_batch) * 2);
    const double refined_pt = refined_timer.seconds();
    next = end;

    // (c): full re-partitioning of everything seen so far.
    GraphBuilder seen_builder(end);
    for (VertexId v = 0; v < end; ++v) {
      for (VertexId u : full.out_neighbors(v)) {
        if (u < end) seen_builder.add_edge(v, u);
      }
    }
    const Graph seen = seen_builder.finish();
    const Outcome redo = run_one(seen, "SPNL", config);

    // Evaluate (a)/(b) against the seen graph (only edges among seen ids).
    auto eval = [&](const IncrementalPartitioner& inc) {
      std::vector<PartitionId> route(inc.route().begin(),
                                     inc.route().begin() + end);
      return evaluate_partition(seen, route, k);
    };
    const auto plain_metrics = eval(plain);
    const auto refined_metrics = eval(refined);

    table.add_row({TablePrinter::fmt(batch), "no-refine",
                   TablePrinter::fmt(plain_metrics.ecr, 4),
                   TablePrinter::fmt(plain_metrics.delta_v, 2), fmt_pt(plain_pt),
                   "-"});
    table.add_row({TablePrinter::fmt(batch), "incremental",
                   TablePrinter::fmt(refined_metrics.ecr, 4),
                   TablePrinter::fmt(refined_metrics.delta_v, 2),
                   fmt_pt(refined_pt),
                   TablePrinter::fmt(static_cast<std::size_t>(stats.moves))});
    table.add_row({TablePrinter::fmt(batch), "full re-run",
                   TablePrinter::fmt(redo.quality.ecr, 4),
                   TablePrinter::fmt(redo.quality.delta_v, 2),
                   fmt_pt(redo.seconds), "-"});
  }
  table.print();

  std::printf("\nReading: the no-refine policy drifts steadily; bounded "
              "refinement holds ECR near the full re-partitioning ceiling. "
              "Cost asymmetry: the re-run scans the WHOLE seen graph every "
              "batch (O(|V|+|E|) and growing), while incremental work is "
              "bounded by the batch size + refinement budget — at this "
              "scaled-down |V| the crossover is not yet visible in wall "
              "time, at the paper's graph sizes it dominates.\n");
  return 0;
}
