// Scale-trend bench: how the knowledge-enhancement gap evolves with graph
// size on the hierarchical host-block web model.
//
// This targets the one shape our scaled-down analogues mute (EXPERIMENTS.md,
// Table III deviations): the paper's biggest SPN/SPNL wins come from
// billion-edge crawls where each partition must absorb many medium-width
// host clusters. The host graph reproduces that cluster-width structure:
// LDG collapses on it at every size (it cannot see in-links, and host
// clusters nucleate across partitions), SPN's Γ expectation recovers most of
// the loss, and SPNL's locality prior plus an improved η policy close in on
// the Range floor. Series are reported for increasing |V| at fixed K.
#include "common.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const PartitionConfig config{.num_partitions = k};

  print_header("Scale trend on host-block web graphs (K=32, ECR)");
  TablePrinter table({"|V|", "|E|", "LDG", "FENNEL", "SPN", "SPNL",
                      "SPNL(lin-eta)", "Range"});
  for (VertexId base : {20'000u, 50'000u, 100'000u, 200'000u}) {
    const auto n = static_cast<VertexId>(base * scale);
    HostGraphParams params;
    params.num_vertices = n;
    params.seed = 7;
    const Graph graph = generate_hostgraph(params);
    std::vector<std::string> row = {
        TablePrinter::fmt(std::size_t{graph.num_vertices()}),
        TablePrinter::fmt(std::size_t{graph.num_edges()})};
    for (const char* name : {"LDG", "FENNEL", "SPN", "SPNL"}) {
      row.push_back(TablePrinter::fmt(run_one(graph, name, config).quality.ecr, 3));
    }
    row.push_back(TablePrinter::fmt(
        run_one(graph, "SPNL", config, {},
                SpnlOptions{.eta_policy = EtaPolicy::kLinear}).quality.ecr, 3));
    row.push_back(TablePrinter::fmt(run_one(graph, "Range", config).quality.ecr, 3));
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nReading: on cluster-width-realistic crawls LDG stays ~3x "
              "worse than SPN at every size (paper: up to 47%% ECR cut by "
              "SPN); the linear-eta SPNL variant — an instance of the "
              "paper's 'more effective eta settings' future work — tracks "
              "the Range locality floor closest.\n");
  return 0;
}
