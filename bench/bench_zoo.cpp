// Baseline zoo bench: every streaming heuristic in the library on two
// datasets — the full Stanton-Kliot family plus FENNEL, SPN, SPNL, the
// window-selection (WSGP-style) variant and the buffered hybrid. One table
// to rank them all on ECR / δv / PT.
#include "common.hpp"
#include "partition/buffered.hpp"
#include "partition/stanton_kliot.hpp"
#include "partition/window_stream.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const PartitionConfig config{.num_partitions = k};

  for (const char* dataset : {"uk2002", "stanford"}) {
    const Graph graph = load_dataset(dataset_by_name(dataset), scale);
    print_header((std::string("Streaming heuristic zoo (") + dataset + ", K=32)").c_str());
    std::printf("%s\n\n", describe(graph, dataset).c_str());

    TablePrinter table({"heuristic", "ECR", "dv", "de", "PT"});
    auto add = [&](const std::string& name, const QualityMetrics& metrics,
                   double seconds) {
      table.add_row({name, TablePrinter::fmt(metrics.ecr, 4),
                     TablePrinter::fmt(metrics.delta_v, 2),
                     TablePrinter::fmt(metrics.delta_e, 2), fmt_pt(seconds)});
    };

    for (const char* name : {"Hash", "Range", "LDG", "FENNEL", "SPN", "SPNL"}) {
      const Outcome outcome = run_one(graph, name, config);
      add(name, outcome.quality, outcome.seconds);
    }
    for (SkHeuristic h : {SkHeuristic::kBalanced, SkHeuristic::kDeterministicGreedy,
                          SkHeuristic::kExponentialGreedy, SkHeuristic::kTriangles}) {
      SkPartitioner partitioner(graph.num_vertices(), graph.num_edges(), config, h,
                                &graph);
      InMemoryStream stream(graph);
      const RunResult run = run_streaming(stream, partitioner);
      add(partitioner.name(),
          evaluate_partition(graph, run.route, k), run.partition_seconds);
    }
    {
      InMemoryStream stream(graph);
      const auto result =
          window_stream_partition(stream, config, {.window_size = 2048});
      add("WSGP-style", evaluate_partition(graph, result.route, k),
          result.partition_seconds);
    }
    {
      InMemoryStream stream(graph);
      const auto result = buffered_partition(stream, config, {.buffer_size = 8192});
      add("Buffered+SPNL", evaluate_partition(graph, result.route, k),
          result.partition_seconds);
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
