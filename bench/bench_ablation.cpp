// Ablation benches beyond the paper's figures, isolating each design choice
// DESIGN.md calls out:
//  A1 locality destruction: SPNL on the same graph with crawl vs random ids.
//  A2 in-neighbor estimator: Γ(v) (paper figures) vs Σ Γ(u) (Eq. 5 literal).
//  A3 η decay policy: paper vs linear vs constant vs none.
//  A4 parallel RCT on/off at several thread counts.
//  A5 re-streaming passes (related-work extension).
#include "common.hpp"
#include "core/distributed_sim.hpp"
#include "core/parallel_driver.hpp"
#include "graph/reorder.hpp"
#include "partition/restream.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const PartitionConfig config{.num_partitions = k};
  const Graph graph = load_dataset(dataset_by_name("uk2002"), scale);

  print_header("A1: vertex numbering (topology locality) ablation");
  {
    const Graph shuffled = random_renumber(graph, 999);
    const Graph restored = bfs_renumber(shuffled);
    TablePrinter table({"numbering", "LDG ECR", "SPN ECR", "SPNL ECR", "Range ECR"});
    const struct {
      const char* name;
      const Graph* g;
    } variants[] = {{"crawl (original)", &graph},
                    {"random (destroyed)", &shuffled},
                    {"BFS (restored)", &restored}};
    for (const auto& variant : variants) {
      std::vector<std::string> row = {variant.name};
      for (const char* p : {"LDG", "SPN", "SPNL", "Range"}) {
        row.push_back(TablePrinter::fmt(run_one(*variant.g, p, config).quality.ecr, 4));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("Expected: random ids gut Range and SPNL's logical term; BFS "
                "renumbering recovers much of it.\n");
  }

  print_header("A2: in-neighbor estimator (paper figures vs Eq. 5 as printed)");
  {
    TablePrinter table({"estimator", "SPN ECR", "SPNL ECR", "SPN PT", "SPNL PT"});
    for (auto estimator : {InNeighborEstimator::kSelf, InNeighborEstimator::kNeighborSum}) {
      const char* name =
          estimator == InNeighborEstimator::kSelf ? "Gamma(v) [figs 2/4]" : "Sum Gamma(u) [eq 5]";
      const Outcome spn = run_one(graph, "SPN", config, {.estimator = estimator});
      const Outcome spnl = run_one(graph, "SPNL", config, {}, {.estimator = estimator});
      table.add_row({name, TablePrinter::fmt(spn.quality.ecr, 4),
                     TablePrinter::fmt(spnl.quality.ecr, 4), fmt_pt(spn.seconds),
                     fmt_pt(spnl.seconds)});
    }
    table.print();
  }

  print_header("A3: eta decay policy");
  {
    TablePrinter table({"policy", "SPNL ECR", "dv"});
    const struct {
      const char* name;
      EtaPolicy policy;
    } policies[] = {{"paper (lt-pt)/lt", EtaPolicy::kPaper},
                    {"linear global", EtaPolicy::kLinear},
                    {"constant 0.5", EtaPolicy::kConstant},
                    {"zero (=SPN)", EtaPolicy::kZero}};
    for (const auto& p : policies) {
      const Outcome outcome = run_one(graph, "SPNL", config, {}, {.eta_policy = p.policy});
      table.add_row({p.name, TablePrinter::fmt(outcome.quality.ecr, 4),
                     TablePrinter::fmt(outcome.quality.delta_v, 2)});
    }
    table.print();
  }

  print_header("A4: parallel dependency detection (RCT) on/off");
  {
    TablePrinter table({"M", "RCT", "ECR", "delayed", "PT"});
    for (unsigned threads : {2u, 4u, 8u}) {
      for (bool use_rct : {true, false}) {
        InMemoryStream stream(graph);
        ParallelOptions options;
        options.num_threads = threads;
        options.use_rct = use_rct;
        const auto result = run_parallel(stream, config, options);
        const auto metrics = evaluate_partition(graph, result.route, k);
        table.add_row({TablePrinter::fmt(static_cast<int>(threads)),
                       use_rct ? "on" : "off", TablePrinter::fmt(metrics.ecr, 4),
                       TablePrinter::fmt(static_cast<std::size_t>(result.delayed_vertices)),
                       fmt_pt(result.partition_seconds)});
      }
    }
    table.print();
  }

  print_header("A6: window slide granularity (paper Sec. V-A design claim)");
  {
    // The paper rejects coarse shard-by-shard sliding for its boundary
    // losses; fine-grained per-vertex sliding should win at every X.
    TablePrinter table({"X", "fine ECR", "coarse ECR"});
    for (std::uint32_t shards : {16u, 64u, 256u, 1024u}) {
      const Outcome fine = run_one(
          graph, "SPNL", config, {},
          SpnlOptions{.num_shards = shards, .slide = SlideMode::kFine});
      const Outcome coarse = run_one(
          graph, "SPNL", config, {},
          SpnlOptions{.num_shards = shards, .slide = SlideMode::kCoarse});
      table.add_row({TablePrinter::fmt(static_cast<std::size_t>(shards)),
                     TablePrinter::fmt(fine.quality.ecr, 4),
                     TablePrinter::fmt(coarse.quality.ecr, 4)});
    }
    table.print();
  }

  print_header("A7: shared-memory vs distributed parallel streaming (Sec. III-C)");
  {
    // The paper argues for shared-memory parallelism because distributed
    // designs ([33][34]) pay quality for independence. Simulated here:
    // periodic-sync staleness vs fully independent chunks, against the
    // centralized SPNL reference.
    const Outcome centralized = run_one(graph, "SPNL", config);
    TablePrinter table({"design", "workers", "ECR", "dv", "stale decisions"});
    table.add_row({"centralized (ours)", "1",
                   TablePrinter::fmt(centralized.quality.ecr, 4),
                   TablePrinter::fmt(centralized.quality.delta_v, 2), "-"});
    for (unsigned workers : {4u, 16u}) {
      for (auto mode : {DistributedMode::kPeriodicSync, DistributedMode::kIndependent}) {
        InMemoryStream stream(graph);
        DistributedSimOptions options;
        options.num_workers = workers;
        options.mode = mode;
        options.sync_interval = 1024;
        const auto result =
            distributed_stream_partition(stream, config, options);
        const auto metrics = evaluate_partition(graph, result.route, k);
        table.add_row({mode == DistributedMode::kPeriodicSync ? "periodic sync"
                                                              : "independent chunks",
                       TablePrinter::fmt(static_cast<int>(workers)),
                       TablePrinter::fmt(metrics.ecr, 4),
                       TablePrinter::fmt(metrics.delta_v, 2),
                       TablePrinter::fmt(static_cast<std::size_t>(result.stale_decisions))});
      }
    }
    table.print();
  }

  print_header("A5: re-streaming passes (related-work extension)");
  {
    // Re-streaming earns its keep on adversarial stream orders, where the
    // single-pass heuristics have little prefix signal; on crawl order the
    // first pass already sits near the locality floor.
    const Graph shuffled = random_renumber(graph, 999);
    TablePrinter table({"order", "passes", "seed", "ECR", "dv"});
    const struct {
      const char* name;
      const Graph* g;
    } orders[] = {{"crawl", &graph}, {"random", &shuffled}};
    for (const auto& order : orders) {
      for (int passes : {1, 3}) {
        for (bool spnl_seed : {false, true}) {
          InMemoryStream stream(*order.g);
          const auto route = restream_partition(
              stream, config, {.passes = passes, .seed_with_spnl = spnl_seed});
          const auto metrics = evaluate_partition(*order.g, route, k);
          table.add_row({order.name, TablePrinter::fmt(passes),
                         spnl_seed ? "SPNL" : "LDG",
                         TablePrinter::fmt(metrics.ecr, 4),
                         TablePrinter::fmt(metrics.delta_v, 2)});
        }
      }
    }
    table.print();
  }
  return 0;
}
