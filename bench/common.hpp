// Shared helpers for the bench harness binaries. Each bench binary
// regenerates one table or figure of the paper (see DESIGN.md experiment
// index) and prints paper-style rows; `--scale` shrinks or grows the
// synthetic datasets (1.0 = the defaults in graph/datasets.cpp).
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "graph/adjacency_stream.hpp"
#include "graph/datasets.hpp"
#include "graph/graph.hpp"
#include "graph/stats.hpp"
#include "partition/driver.hpp"
#include "partition/fennel.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/ldg.hpp"
#include "partition/metrics.hpp"
#include "partition/partitioning.hpp"
#include "partition/range_partitioner.hpp"
#include "util/cli.hpp"
#include "util/memory.hpp"
#include "util/table_printer.hpp"

namespace spnl::bench {

/// Quality + cost of one partitioning run.
struct Outcome {
  std::string partitioner;
  QualityMetrics quality;
  std::vector<PartitionId> route;
  double seconds = 0.0;
  std::size_t bytes = 0;
};

using PartitionerFactory =
    std::function<std::unique_ptr<StreamingPartitioner>(VertexId, EdgeId,
                                                        const PartitionConfig&)>;

inline PartitionerFactory make_factory(const std::string& name,
                                       SpnOptions spn_options = {},
                                       SpnlOptions spnl_options = {}) {
  if (name == "LDG") {
    return [](VertexId n, EdgeId m, const PartitionConfig& c) {
      return std::make_unique<LdgPartitioner>(n, m, c);
    };
  }
  if (name == "FENNEL") {
    return [](VertexId n, EdgeId m, const PartitionConfig& c) {
      return std::make_unique<FennelPartitioner>(n, m, c);
    };
  }
  if (name == "Hash") {
    return [](VertexId n, EdgeId m, const PartitionConfig& c) {
      return std::make_unique<HashPartitioner>(n, m, c);
    };
  }
  if (name == "Range") {
    return [](VertexId n, EdgeId m, const PartitionConfig& c) {
      return std::make_unique<RangePartitioner>(n, m, c);
    };
  }
  if (name == "SPN") {
    return [spn_options](VertexId n, EdgeId m, const PartitionConfig& c) {
      return std::make_unique<SpnPartitioner>(n, m, c, spn_options);
    };
  }
  if (name == "SPNL") {
    return [spnl_options](VertexId n, EdgeId m, const PartitionConfig& c) {
      return std::make_unique<SpnlPartitioner>(n, m, c, spnl_options);
    };
  }
  std::fprintf(stderr, "unknown partitioner %s\n", name.c_str());
  std::exit(1);
}

/// One sequential streaming run over the in-memory graph + evaluation.
inline Outcome run_one(const Graph& graph, const std::string& name,
                       const PartitionConfig& config, SpnOptions spn_options = {},
                       SpnlOptions spnl_options = {}) {
  auto factory = make_factory(name, spn_options, spnl_options);
  auto partitioner = factory(graph.num_vertices(), graph.num_edges(), config);
  InMemoryStream stream(graph);
  RunResult run = run_streaming(stream, *partitioner);
  Outcome outcome;
  outcome.partitioner = name;
  outcome.quality = evaluate_partition(graph, run.route, config.num_partitions);
  outcome.route = std::move(run.route);
  outcome.seconds = run.partition_seconds;
  outcome.bytes = run.peak_partitioner_bytes;
  return outcome;
}

inline std::string fmt_pt(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

inline void print_header(const char* what) {
  std::printf("\n=== %s ===\n", what);
}

}  // namespace spnl::bench
