// Reproduces Table III: LDG / FENNEL / SPN / SPNL on the eight dataset
// analogues, K = 32 — ECR, δv, δe, PT per partitioner.
//
// Paper shape to verify: SPN cuts ECR 19-47% below LDG/FENNEL; SPNL cuts it
// 35-92%; δv stays ≈1 for everyone; PT of SPN/SPNL is slightly above LDG.
//
// Flags: --scale=1.0 --k=32 --datasets=stanford,uk2005,...
#include <sstream>

#include "common.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));

  std::vector<std::string> names;
  if (args.has("datasets")) {
    std::stringstream ss(args.get("datasets", ""));
    for (std::string item; std::getline(ss, item, ',');) names.push_back(item);
  } else {
    for (const auto& spec : paper_datasets()) names.push_back(spec.name);
  }

  print_header("Table III: streaming partitioners, K=32 (ECR / dv / de / PT[s])");
  TablePrinter table({"Graph", "|V|", "|E|",
                      "LDG ECR", "dv", "de", "PT",
                      "FEN ECR", "dv", "de", "PT",
                      "SPN ECR", "dv", "de", "PT",
                      "SPNL ECR", "dv", "de", "PT"});

  const PartitionConfig config{.num_partitions = k};
  for (const auto& name : names) {
    const Graph graph = load_dataset(dataset_by_name(name), scale);
    std::vector<std::string> row = {name, TablePrinter::fmt(std::size_t{graph.num_vertices()}),
                                    TablePrinter::fmt(std::size_t{graph.num_edges()})};
    for (const char* partitioner : {"LDG", "FENNEL", "SPN", "SPNL"}) {
      const Outcome outcome = run_one(graph, partitioner, config);
      row.push_back(TablePrinter::fmt(outcome.quality.ecr, 3));
      row.push_back(TablePrinter::fmt(outcome.quality.delta_v, 2));
      row.push_back(TablePrinter::fmt(outcome.quality.delta_e, 2));
      row.push_back(fmt_pt(outcome.seconds));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nPaper (K=32, real graphs): SPN ECR 19-47%% below LDG; "
              "SPNL 35-92%% below; dv near 1.0 for all.\n");
  return 0;
}
