// Reproduces Fig. 3: ECR of SPN as a function of λ on eu2015 and indo2004,
// K = 32. Paper shape: a U-curve — both extremes (λ=0 in-neighbors only,
// λ=1 ≡ LDG out-neighbors only) are suboptimal; λ=0.5 is near the bottom.
#include "common.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));

  print_header("Fig. 3: ECR vs lambda (SPN, K=32)");
  TablePrinter table({"lambda", "eu2015 ECR", "indo2004 ECR"});
  const Graph eu = load_dataset(dataset_by_name("eu2015"), scale);
  const Graph indo = load_dataset(dataset_by_name("indo2004"), scale);
  const PartitionConfig config{.num_partitions = k};

  double best_lambda = 0.0, best_sum = 2.0;
  for (int step = 0; step <= 10; ++step) {
    const double lambda = step / 10.0;
    const SpnOptions options{.lambda = lambda};
    const double ecr_eu = run_one(eu, "SPN", config, options).quality.ecr;
    const double ecr_indo = run_one(indo, "SPN", config, options).quality.ecr;
    table.add_row({TablePrinter::fmt(lambda, 1), TablePrinter::fmt(ecr_eu, 4),
                   TablePrinter::fmt(ecr_indo, 4)});
    if (ecr_eu + ecr_indo < best_sum) {
      best_sum = ecr_eu + ecr_indo;
      best_lambda = lambda;
    }
  }
  table.print();
  std::printf("\nBest joint lambda: %.1f (paper: interior optimum, 0.5 chosen "
              "as default; extremes suboptimal)\n", best_lambda);
  return 0;
}
