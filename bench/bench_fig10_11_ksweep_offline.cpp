// Reproduces Figs. 10 and 11: all metrics as a function of K against the
// offline partitioners, on indo2004 (Fig. 10) and eu2015 (Fig. 11).
//
// Paper shape: ECR/PT grow with K for everyone; δe climbs with K on these
// heavily skewed graphs (dense cores concentrate edge mass); SPNL tracks or
// beats multilevel's ECR at a fraction of the PT.
#include "common.hpp"
#include "offline/label_prop.hpp"
#include "offline/multilevel.hpp"

using namespace spnl;
using namespace spnl::bench;

namespace {

void sweep(const char* figure, const char* dataset, double scale) {
  const Graph graph = load_dataset(dataset_by_name(dataset), scale);
  print_header(figure);
  std::printf("%s\n\n", describe(graph, dataset).c_str());

  TablePrinter table({"K", "ML ECR", "ML de", "ML PT", "LP ECR", "LP de",
                      "LP PT", "SPNL ECR", "SPNL de", "SPNL PT"});
  for (PartitionId k : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const PartitionConfig config{.num_partitions = k};
    std::vector<std::string> row = {TablePrinter::fmt(static_cast<int>(k))};
    {
      const auto result = multilevel_partition(graph, config);
      const auto metrics = evaluate_partition(graph, result.route, k);
      row.push_back(TablePrinter::fmt(metrics.ecr, 4));
      row.push_back(TablePrinter::fmt(metrics.delta_e, 2));
      row.push_back(fmt_pt(result.partition_seconds));
    }
    {
      const auto result = label_prop_partition(graph, config);
      const auto metrics = evaluate_partition(graph, result.route, k);
      row.push_back(TablePrinter::fmt(metrics.ecr, 4));
      row.push_back(TablePrinter::fmt(metrics.delta_e, 2));
      row.push_back(fmt_pt(result.partition_seconds));
    }
    {
      const Outcome outcome = run_one(graph, "SPNL", config);
      row.push_back(TablePrinter::fmt(outcome.quality.ecr, 4));
      row.push_back(TablePrinter::fmt(outcome.quality.delta_e, 2));
      row.push_back(fmt_pt(outcome.seconds));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  sweep("Fig. 10: K sweep vs offline partitioners (indo2004)", "indo2004", scale);
  sweep("Fig. 11: K sweep vs offline partitioners (eu2015)", "eu2015", scale);
  return 0;
}
