// Microbenchmarks (google-benchmark) for the hot inner structures:
// Γ window operations, RCT operations, queue throughput, and single-vertex
// placement cost of each streaming heuristic.
#include <benchmark/benchmark.h>

#include "core/gamma_table.hpp"
#include "core/rct.hpp"
#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "graph/datasets.hpp"
#include "partition/ldg.hpp"
#include "util/bounded_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace spnl;

void BM_GammaIncrement(benchmark::State& state) {
  const VertexId n = 1 << 20;
  GammaWindow gamma(n, 32, static_cast<std::uint32_t>(state.range(0)));
  Rng rng(1);
  VertexId head = 0;
  for (auto _ : state) {
    const auto u = static_cast<VertexId>(head + rng.next_below(1024));
    gamma.increment(static_cast<PartitionId>(u % 32), u < n ? u : n - 1);
    if (++head >= n - 2048) {
      head = 0;
      state.PauseTiming();
      gamma.advance_to(0);  // no-op; window never moves backwards
      state.ResumeTiming();
    }
    gamma.advance_to(head);
  }
}
BENCHMARK(BM_GammaIncrement)->Arg(1)->Arg(128)->Arg(4096);

void BM_GammaRowRead(benchmark::State& state) {
  const VertexId n = 1 << 20;
  GammaWindow gamma(n, static_cast<PartitionId>(state.range(0)), 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gamma.row(5));
  }
}
BENCHMARK(BM_GammaRowRead)->Arg(8)->Arg(32)->Arg(128);

void BM_RctBumpAndPlace(benchmark::State& state) {
  Rct rct(64);
  std::vector<VertexId> out = {1, 2, 3, 4, 5, 6, 7, 8};
  VertexId v = 100;
  for (auto _ : state) {
    rct.register_vertex(v);
    for (VertexId u : out) rct.bump_if_present(u);
    benchmark::DoNotOptimize(rct.should_delay(v));
    rct.on_placed(v, out);
    ++v;
  }
}
BENCHMARK(BM_RctBumpAndPlace);

void BM_QueuePushPop(benchmark::State& state) {
  BoundedQueue<OwnedVertexRecord> queue(1024);
  for (auto _ : state) {
    queue.push(OwnedVertexRecord{1, {2, 3, 4}});
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(BM_QueuePushPop);

template <typename Partitioner>
void run_placement_bench(benchmark::State& state) {
  const auto& spec = dataset_by_name("uk2002");
  const Graph graph = load_dataset(spec, 0.2);
  PartitionConfig config{.num_partitions = 32};
  for (auto _ : state) {
    Partitioner partitioner(graph.num_vertices(), graph.num_edges(), config);
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      partitioner.place(v, graph.out_neighbors(v));
    }
    benchmark::DoNotOptimize(partitioner.route().data());
  }
  state.SetItemsProcessed(state.iterations() * graph.num_vertices());
}

void BM_PlaceLdg(benchmark::State& state) { run_placement_bench<LdgPartitioner>(state); }
void BM_PlaceSpn(benchmark::State& state) { run_placement_bench<SpnPartitioner>(state); }
void BM_PlaceSpnl(benchmark::State& state) { run_placement_bench<SpnlPartitioner>(state); }
BENCHMARK(BM_PlaceLdg)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlaceSpn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlaceSpnl)->Unit(benchmark::kMillisecond);

}  // namespace
