// Reproduces Table IV: memory consumption (MC), ECR and space complexity of
// LDG, FENNEL, the offline baselines, SPNL(X=1) and SPNL(X=128) on web2001,
// K = 32.
//
// Paper shape: offline methods >= O(|E|) (they load the whole graph);
// SPNL with X=1 pays O(K|V|) for the Γ tables; X=128 collapses that to
// ~LDG-level MC with negligible ECR change.
#include "common.hpp"
#include "offline/label_prop.hpp"
#include "offline/multilevel.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const Graph graph = load_dataset(dataset_by_name("web2001"), scale);
  const PartitionConfig config{.num_partitions = k};

  print_header("Table IV: space complexity evaluation (web2001, K=32)");
  std::printf("%s\n\n", describe(graph, "web2001-analogue").c_str());

  TablePrinter table({"Method", "MC", "ECR", "Space complexity"});

  for (const char* name : {"LDG", "FENNEL"}) {
    const Outcome outcome = run_one(graph, name, config);
    table.add_row({name, format_bytes(outcome.bytes),
                   TablePrinter::fmt(outcome.quality.ecr, 4),
                   "O(|V| + K + maxd)"});
  }

  {
    const auto result = multilevel_partition(graph, config);
    const auto metrics = evaluate_partition(graph, result.route, k);
    table.add_row({"Multilevel (METIS-like)", format_bytes(result.peak_bytes),
                   TablePrinter::fmt(metrics.ecr, 4), ">= O(|E|)"});
  }
  {
    const auto result = label_prop_partition(graph, config);
    const auto metrics = evaluate_partition(graph, result.route, k);
    table.add_row({"LabelProp (XtraPuLP-like)", format_bytes(result.peak_bytes),
                   TablePrinter::fmt(metrics.ecr, 4), ">= O(|E|)"});
  }

  for (std::uint32_t shards : {1u, 128u}) {
    const SpnlOptions options{.num_shards = shards};
    const Outcome outcome = run_one(graph, "SPNL", config, {}, options);
    table.add_row({std::string("SPNL(X=") + std::to_string(shards) + ")",
                   format_bytes(outcome.bytes),
                   TablePrinter::fmt(outcome.quality.ecr, 4),
                   "O(|V| + 3K + K|V|/X + maxd)"});
  }
  table.print();

  std::printf("\nPaper (real web2001, 9.6GB input): LDG/FENNEL 0.44GB, "
              "offline >= 3.8GB, SPNL(X=1) 14.53GB -> SPNL(X=128) 0.55GB with "
              "ECR 0.0620 -> 0.0623 (negligible loss).\n");
  return 0;
}
