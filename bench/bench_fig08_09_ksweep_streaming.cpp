// Reproduces Figs. 8 and 9: all metrics as a function of K against the
// streaming partitioners, on uk2002 (Fig. 8) and indo2004 (Fig. 9).
//
// Paper shape: δv and δe stay healthy for every K; ECR and PT grow with K
// (more candidate partitions, harder placements); SPN/SPNL dominate
// LDG/FENNEL at every K.
#include "common.hpp"

using namespace spnl;
using namespace spnl::bench;

namespace {

void sweep(const char* figure, const char* dataset, double scale) {
  const Graph graph = load_dataset(dataset_by_name(dataset), scale);
  print_header(figure);
  std::printf("%s\n\n", describe(graph, dataset).c_str());
  for (const char* metric : {"ECR", "dv", "de", "PT"}) {
    TablePrinter table({std::string("K \\ ") + metric, "LDG", "FENNEL", "SPN", "SPNL"});
    for (PartitionId k : {4u, 8u, 16u, 32u, 64u, 128u}) {
      std::vector<std::string> row = {TablePrinter::fmt(static_cast<int>(k))};
      for (const char* partitioner : {"LDG", "FENNEL", "SPN", "SPNL"}) {
        const Outcome outcome =
            run_one(graph, partitioner, {.num_partitions = k});
        const std::string id = metric;
        if (id == "ECR") row.push_back(TablePrinter::fmt(outcome.quality.ecr, 4));
        if (id == "dv") row.push_back(TablePrinter::fmt(outcome.quality.delta_v, 2));
        if (id == "de") row.push_back(TablePrinter::fmt(outcome.quality.delta_e, 2));
        if (id == "PT") row.push_back(fmt_pt(outcome.seconds));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  sweep("Fig. 8: K sweep vs streaming partitioners (uk2002)", "uk2002", scale);
  sweep("Fig. 9: K sweep vs streaming partitioners (indo2004)", "indo2004", scale);
  return 0;
}
