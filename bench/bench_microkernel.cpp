// bench_microkernel — races the fused SPN/SPNL scoring kernel against the
// retained pre-fusion reference (tests/reference_partitioners.hpp).
//
// Full mode streams a 1M-vertex power-law webcrawl graph at K=32 through
// both formulations, asserts the routes are byte-identical, and requires the
// fused kernel to beat the reference by at least --threshold (default 1.3x,
// the acceptance bar). An extra instrumented pass breaks the fused run into
// per-stage times (PerfStats) and the whole result is emitted as one JSON
// object (stdout line "bench-json: ..." and optionally --json=FILE) — the
// payload behind BENCH_kernel.json.
//
//   bench_microkernel [--n=1000000] [--k=32] [--reps=5] [--threshold=1.3]
//                     [--json=FILE] [--smoke]
//
// --smoke shrinks the graph and skips the speedup gate (identity + JSON
// shape only) so the ctest `perf` label stays fast on loaded CI machines.
// Exit code: 0 on pass, 1 on route divergence or a missed threshold.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/spn.hpp"
#include "core/spnl.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "reference_partitioners.hpp"
#include "util/cli.hpp"
#include "util/perf_stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace spnl;

/// Pure place() loop — no stream or driver overhead on either side.
template <typename Partitioner>
double time_run(Partitioner& partitioner, const Graph& graph) {
  Timer timer;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    partitioner.place(v, graph.out_neighbors(v));
  }
  return timer.seconds();
}

struct Race {
  double reference_seconds = 0.0;
  double fused_seconds = 0.0;
  bool identical = false;
  double speedup() const {
    return fused_seconds > 0.0 ? reference_seconds / fused_seconds : 0.0;
  }
};

/// Best-of-reps race; route identity checked on every rep.
template <typename Fused, typename Reference, typename Options>
Race race(const Graph& graph, const PartitionConfig& config,
          const Options& options, int reps) {
  Race result;
  result.identical = true;
  for (int rep = 0; rep < reps; ++rep) {
    Reference reference(graph.num_vertices(), graph.num_edges(), config, options);
    const double ref_s = time_run(reference, graph);
    Fused fused(graph.num_vertices(), graph.num_edges(), config, options);
    const double fused_s = time_run(fused, graph);
    result.identical = result.identical && fused.route() == reference.route();
    if (rep == 0 || ref_s < result.reference_seconds) {
      result.reference_seconds = ref_s;
    }
    if (rep == 0 || fused_s < result.fused_seconds) result.fused_seconds = fused_s;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const auto n = static_cast<VertexId>(args.get_int("n", smoke ? 20'000 : 1'000'000));
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const int reps = static_cast<int>(args.get_int("reps", smoke ? 1 : 5));
  const double threshold = args.get_double("threshold", 1.3);

  std::printf("generating webcrawl graph: n=%u (power-law out-degrees)...\n", n);
  WebCrawlParams params;
  params.num_vertices = n;
  params.avg_out_degree = 8.0;
  params.degree_alpha = 2.0;
  params.seed = 42;
  const Graph graph = generate_webcrawl(params);
  std::printf("graph ready: n=%u m=%llu\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  PartitionConfig config;
  config.num_partitions = k;

  const SpnOptions spn_options{};  // paper defaults: lambda=0.5, X recommended
  const Race spn =
      race<SpnPartitioner, ReferenceSpnPartitioner>(graph, config, spn_options, reps);
  std::printf("SPN  place(): reference %.3fs, fused %.3fs -> %.2fx%s\n",
              spn.reference_seconds, spn.fused_seconds, spn.speedup(),
              spn.identical ? "" : "  ROUTES DIVERGED");

  const SpnlOptions spnl_options{};
  const Race spnl = race<SpnlPartitioner, ReferenceSpnlPartitioner>(
      graph, config, spnl_options, reps);
  std::printf("SPNL place(): reference %.3fs, fused %.3fs -> %.2fx%s\n",
              spnl.reference_seconds, spnl.fused_seconds, spnl.speedup(),
              spnl.identical ? "" : "  ROUTES DIVERGED");

  // Instrumented pass: how the fused run's time splits across stages.
  PerfStats perf;
  {
    SpnPartitioner instrumented(graph.num_vertices(), graph.num_edges(), config,
                                spn_options);
    instrumented.set_perf_stats(&perf);
    time_run(instrumented, graph);
  }
  std::printf("%s", perf.report().c_str());

  const bool gate_speedup = !smoke;
  const bool pass =
      spn.identical && spnl.identical && (!gate_speedup || spn.speedup() >= threshold);

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"microkernel\",\"n\":%u,\"m\":%llu,\"k\":%u,\"reps\":%d,"
      "\"spn\":{\"reference_seconds\":%.6f,\"fused_seconds\":%.6f,"
      "\"speedup\":%.3f,\"routes_identical\":%s},"
      "\"spnl\":{\"reference_seconds\":%.6f,\"fused_seconds\":%.6f,"
      "\"speedup\":%.3f,\"routes_identical\":%s},"
      "\"threshold\":%.2f,\"speedup_gated\":%s,\"pass\":%s,\"perf\":",
      graph.num_vertices(), static_cast<unsigned long long>(graph.num_edges()), k,
      reps, spn.reference_seconds, spn.fused_seconds, spn.speedup(),
      spn.identical ? "true" : "false", spnl.reference_seconds, spnl.fused_seconds,
      spnl.speedup(), spnl.identical ? "true" : "false", threshold,
      gate_speedup ? "true" : "false", pass ? "true" : "false");
  const std::string payload = std::string(json) + perf.to_json() + "}";
  std::printf("bench-json: %s\n", payload.c_str());
  if (args.has("json")) {
    std::ofstream out(args.get("json", ""));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", args.get("json", "").c_str());
      return 1;
    }
    out << payload << "\n";
  }

  if (!spn.identical || !spnl.identical) {
    std::fprintf(stderr, "FAIL: fused kernel diverged from the reference\n");
    return 1;
  }
  if (gate_speedup && spn.speedup() < threshold) {
    std::fprintf(stderr, "FAIL: SPN speedup %.2fx below threshold %.2fx\n",
                 spn.speedup(), threshold);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
