// End-to-end bench: what partition quality buys the downstream job.
//
// The paper's premise (Sec. I-II) is that cut edges become network messages
// in vertex-centric processing and the partitioner runs inside every job.
// This bench closes the loop: for each partitioner it measures
//   total job time proxy = PT + analytics critical-path cost
// for PageRank and BFS on the uk2002 analogue, under the BSP engine's cost
// model (local edge 1, remote edge 20, per-superstep barrier).
#include "common.hpp"
#include "engine/algorithms.hpp"
#include "offline/multilevel.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 16));
  const int supersteps = static_cast<int>(args.get_int("supersteps", 10));
  const Graph graph = load_dataset(dataset_by_name("uk2002"), scale);
  const PartitionConfig config{.num_partitions = k};

  print_header("End-to-end: partitioning + vertex-centric job cost (uk2002)");
  std::printf("%s, K=%u, %d PageRank supersteps + BFS to fixpoint\n\n",
              describe(graph, "uk2002").c_str(), k, supersteps);

  TablePrinter table({"partitioner", "ECR", "PT [s]", "PR remote msgs",
                      "PR critical path", "BFS remote msgs", "BFS critical path"});

  auto add_row = [&](const std::string& name, const std::vector<PartitionId>& route,
                     double pt, double ecr) {
    const auto pr = pagerank(graph, route, k, supersteps);
    const auto bfs = bfs_depths(graph, route, k, 0);
    table.add_row({name, TablePrinter::fmt(ecr, 4), fmt_pt(pt),
                   TablePrinter::fmt(static_cast<std::size_t>(pr.stats.remote_messages)),
                   TablePrinter::fmt(pr.stats.critical_path_cost, 0),
                   TablePrinter::fmt(static_cast<std::size_t>(bfs.stats.remote_messages)),
                   TablePrinter::fmt(bfs.stats.critical_path_cost, 0)});
  };

  for (const char* name : {"Hash", "LDG", "FENNEL", "SPN", "SPNL"}) {
    auto factory = make_factory(name);
    auto partitioner = factory(graph.num_vertices(), graph.num_edges(), config);
    InMemoryStream stream(graph);
    const RunResult run = run_streaming(stream, *partitioner);
    const auto metrics = evaluate_partition(graph, run.route, k);
    add_row(name, run.route, run.partition_seconds, metrics.ecr);
  }
  {
    const auto result = multilevel_partition(graph, config);
    const auto metrics = evaluate_partition(graph, result.route, k);
    add_row("Multilevel", result.route, result.partition_seconds, metrics.ecr);
  }
  table.print();

  std::printf("\nReading: SPNL pays slightly more PT than LDG but its lower "
              "ECR cuts the per-superstep network cost of EVERY job run on "
              "the partitioning; multilevel buys similar analytics cost at "
              "orders of magnitude more PT.\n");
  return 0;
}
