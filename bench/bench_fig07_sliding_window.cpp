// Reproduces Fig. 7: impact of the shard count X on MC, ECR, δv and PT
// (SPNL on web2001, K ∈ {16, 32, 64}).
//
// Paper shape: MC falls steeply with X then flattens (7a); ECR is flat for a
// wide range of X and only degrades at extreme X (7b); δv and PT are
// insensitive to X (7c, 7d).
#include "common.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const Graph graph = load_dataset(dataset_by_name("web2001"), scale);

  print_header("Fig. 7: sliding window shard count X (SPNL, web2001)");
  std::printf("%s\n\n", describe(graph, "web2001-analogue").c_str());

  TablePrinter table({"K", "X", "window", "MC", "ECR", "dv", "de", "PT"});
  for (PartitionId k : {16u, 32u, 64u}) {
    const PartitionConfig config{.num_partitions = k};
    for (std::uint32_t shards : {1u, 4u, 16u, 64u, 128u, 512u, 2048u, 8192u}) {
      if (shards > graph.num_vertices()) continue;
      const SpnlOptions options{.num_shards = shards};
      const Outcome outcome = run_one(graph, "SPNL", config, {}, options);
      const VertexId window = (graph.num_vertices() + shards - 1) / shards;
      table.add_row({TablePrinter::fmt(static_cast<int>(k)),
                     TablePrinter::fmt(static_cast<std::size_t>(shards)),
                     TablePrinter::fmt(static_cast<std::size_t>(window)),
                     format_bytes(outcome.bytes),
                     TablePrinter::fmt(outcome.quality.ecr, 4),
                     TablePrinter::fmt(outcome.quality.delta_v, 2),
                     TablePrinter::fmt(outcome.quality.delta_e, 2),
                     fmt_pt(outcome.seconds)});
    }
  }
  table.print();

  const auto recommended =
      GammaWindow::recommended_shards(graph.num_vertices(), 32);
  std::printf("\nRecommended X = min{4K, |V|/(1e4 K)} for K=32 on this scale: %u\n"
              "(paper web2001, |V|=118M: X=128). Shape: MC drops ~linearly in "
              "1/X; ECR flat until the window starves; dv/PT steady.\n",
              recommended);
  return 0;
}
