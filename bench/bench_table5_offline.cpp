// Reproduces Table V: SPNL vs offline partitioners (METIS-like multilevel,
// XtraPuLP-like label propagation) on all eight graphs, K = 32, in
// centralized and parallel variants.
//
// Paper shape: multilevel has top quality on some graphs but the largest
// PT/MC and dies (OOM) on the biggest inputs; label-prop is faster but far
// worse in ECR (and parallel label-prop degrades up to 47%); SPNL matches or
// beats multilevel's ECR on crawl graphs at a fraction of the time, and its
// parallel variant loses only a few percent thanks to the RCT.
//
// Hardware substitution note: this box has 1 CPU core, so parallel PT shows
// scheduling overhead rather than speedup; quality effects still hold.
#include <sstream>

#include "common.hpp"
#include "core/parallel_driver.hpp"
#include "offline/label_prop.hpp"
#include "offline/multilevel.hpp"

using namespace spnl;
using namespace spnl::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto k = static_cast<PartitionId>(args.get_int("k", 32));
  const auto threads = static_cast<unsigned>(args.get_int("threads", 4));

  std::vector<std::string> names;
  if (args.has("datasets")) {
    std::stringstream ss(args.get("datasets", ""));
    for (std::string item; std::getline(ss, item, ',');) names.push_back(item);
  } else {
    for (const auto& spec : paper_datasets()) names.push_back(spec.name);
  }

  print_header("Table V: SPNL vs offline partitioners, K=32 (cent/par)");
  TablePrinter table({"Graph", "ML ECR", "dv", "de", "PT",
                      "LP ECR c/p", "dv", "PT c/p",
                      "SPNL ECR c/p", "dv", "PT c/p"});

  const PartitionConfig config{.num_partitions = k};
  for (const auto& name : names) {
    const Graph graph = load_dataset(dataset_by_name(name), scale);
    std::vector<std::string> row = {name};

    {
      const auto result = multilevel_partition(graph, config);
      const auto metrics = evaluate_partition(graph, result.route, k);
      row.push_back(TablePrinter::fmt(metrics.ecr, 3));
      row.push_back(TablePrinter::fmt(metrics.delta_v, 2));
      row.push_back(TablePrinter::fmt(metrics.delta_e, 2));
      row.push_back(fmt_pt(result.partition_seconds));
    }
    {
      const auto cent = label_prop_partition(graph, config);
      LabelPropOptions par_options;
      par_options.num_threads = threads;
      const auto par = label_prop_partition(graph, config, par_options);
      const auto mc = evaluate_partition(graph, cent.route, k);
      const auto mp = evaluate_partition(graph, par.route, k);
      row.push_back(TablePrinter::fmt(mc.ecr, 3) + "/" + TablePrinter::fmt(mp.ecr, 3));
      row.push_back(TablePrinter::fmt(mc.delta_v, 2) + "/" +
                    TablePrinter::fmt(mp.delta_v, 2));
      row.push_back(fmt_pt(cent.partition_seconds) + "/" +
                    fmt_pt(par.partition_seconds));
    }
    {
      const Outcome cent = run_one(graph, "SPNL", config);
      InMemoryStream stream(graph);
      ParallelOptions options;
      options.num_threads = threads;
      const auto par = run_parallel(stream, config, options);
      const auto mp = evaluate_partition(graph, par.route, k);
      row.push_back(TablePrinter::fmt(cent.quality.ecr, 3) + "/" +
                    TablePrinter::fmt(mp.ecr, 3));
      row.push_back(TablePrinter::fmt(cent.quality.delta_v, 2) + "/" +
                    TablePrinter::fmt(mp.delta_v, 2));
      row.push_back(fmt_pt(cent.seconds) + "/" + fmt_pt(par.partition_seconds));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nPaper: SPNL up to 40%% lower ECR than METIS and 20x faster; "
              "up to 91%% lower than XtraPuLP; parallel SPNL ECR degradation "
              "<= 6%% (avg 2%%) vs up to 47%% for XtraPuLP.\n"
              "NOTE: 1-core machine; parallel PT reflects scheduling overhead, "
              "not speedup.\n");
  return 0;
}
