// bench_scenario_matrix — the adversarial scenario grid: every streaming
// partitioner x every stream order x every graph family, with planted
// ground truth where the family has one.
//
// Axes:
//   algo   — spnl, spnl+2ps (the 2PS clustering prepass feeding SPNL's
//            logical table), fennel, ldg, hash
//   order  — id (the numbering the generator produced), random, degree
//            (descending), temporal (seeded BFS re-crawl), adversarial
//            (community-interleaved round-robin: consecutive ids almost
//            never share a community)
//   graph  — crawl (BFS-locality web model), planted-mu{0.1,0.3,0.5}
//            (symmetric planted partition with ground-truth labels),
//            powerlaw (R-MAT: communities but no id locality)
//
// Stream orders are realized by RELABELING (graph/reorder.hpp) and streaming
// in ascending new-id order, so every partitioner sees the identical stream
// contract; planted labels are permuted alongside. Each cell reports ECR,
// the balance factors, and — on planted graphs — the ground-truth recovery
// rate (partition/metrics.hpp: recovery_rate).
//
//   bench_scenario_matrix [--k=8] [--reps unused] [--json=FILE] [--smoke]
//
// The gate runs in BOTH modes (this is a quality property, not a throughput
// one): on each planted graph with mu <= 0.3, mean recovery across the five
// orders must satisfy spnl+2ps >= spnl - eps and spnl >= hash + margin —
// i.e. the prepass never costs SPNL recovery on recoverable graphs, and
// SPNL's knowledge terms beat blind hashing even averaged over hostile
// orders. Per-cell losses (e.g. plain SPNL at hash level under the
// adversarial order) are expected and documented in docs/scenarios.md; the
// gate is on the means. --smoke shrinks the graphs; the full-size run's
// JSON is committed as BENCH_scenario.json.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "prepass/two_phase.hpp"

using namespace spnl;
using namespace spnl::bench;

namespace {

constexpr std::uint64_t kOrderSeed = 42;

struct Scenario {
  std::string name;
  Graph graph;
  std::vector<PartitionId> labels;  // empty = no ground truth
  PartitionId num_communities = 0;
};

struct Cell {
  std::string graph, order, algo;
  QualityMetrics quality;
  double recovery = -1.0;  // < 0 = no ground truth for this graph
  double seconds = 0.0;
  std::uint32_t prepass_clusters = 0;
  bool prepass_degraded = false;
};

Cell run_cell(const Scenario& scenario, const Graph& graph,
              const std::vector<PartitionId>& labels, StreamOrder order,
              const std::string& algo, const PartitionConfig& config) {
  Cell cell;
  cell.graph = scenario.name;
  cell.order = stream_order_name(order);
  cell.algo = algo;
  std::vector<PartitionId> route;
  if (algo == "spnl+2ps") {
    InMemoryStream stream(graph);
    const TwoPhaseRunResult result = two_phase_spnl_partition(stream, config);
    route = result.run.route;
    cell.seconds = result.run.partition_seconds + result.prepass.seconds;
    cell.prepass_clusters = result.prepass.num_clusters;
    cell.prepass_degraded = result.prepass.degraded;
  } else {
    const std::map<std::string, std::string> factory_name = {
        {"spnl", "SPNL"}, {"fennel", "FENNEL"}, {"ldg", "LDG"}, {"hash", "Hash"}};
    const Outcome outcome = run_one(graph, factory_name.at(algo), config);
    route = outcome.route;
    cell.seconds = outcome.seconds;
  }
  cell.quality = evaluate_partition(graph, route, config.num_partitions);
  if (!labels.empty()) {
    cell.recovery = recovery_rate(labels, scenario.num_communities, route,
                                  config.num_partitions);
  }
  return cell;
}

std::string json_number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const auto k = static_cast<PartitionId>(args.get_int("k", 8));
  PartitionConfig config;
  config.num_partitions = k;

  // Graph families. Planted communities == K so the id numbering is the
  // friendliest possible input for SPNL's range table under the id order —
  // which is exactly what the hostile orders then take away.
  const VertexId planted_n = smoke ? 6'000 : 30'000;
  const VertexId crawl_n = smoke ? 10'000 : 50'000;
  const unsigned rmat_scale = smoke ? 12 : 14;

  std::vector<Scenario> scenarios;
  {
    WebCrawlParams params;
    params.num_vertices = crawl_n;
    scenarios.push_back({"crawl", generate_webcrawl(params), {}, 0});
  }
  for (const double mu : {0.1, 0.3, 0.5}) {
    PlantedPartitionParams params;
    params.num_vertices = planted_n;
    params.num_communities = k;
    params.mixing = mu;
    PlantedGraph planted = generate_planted_partition(params);
    char name[32];
    std::snprintf(name, sizeof(name), "planted-mu%.1f", mu);
    scenarios.push_back({name, std::move(planted.graph),
                         std::move(planted.labels), planted.num_communities});
  }
  {
    RmatParams params;
    params.scale = rmat_scale;
    scenarios.push_back({"powerlaw", generate_rmat(params), {}, 0});
  }

  const std::vector<StreamOrder> orders = {
      StreamOrder::kId, StreamOrder::kRandom, StreamOrder::kDegree,
      StreamOrder::kTemporal, StreamOrder::kAdversarial};
  const std::vector<std::string> algos = {"spnl", "spnl+2ps", "fennel", "ldg",
                                          "hash"};

  std::vector<Cell> cells;
  // mean recovery per (planted graph, algo) across orders — the gate input.
  std::map<std::string, std::map<std::string, double>> mean_recovery;

  for (const Scenario& scenario : scenarios) {
    print_header(scenario.name.c_str());
    for (const StreamOrder order : orders) {
      const std::vector<VertexId> new_id = make_stream_order(
          scenario.graph, order,
          scenario.labels.empty() ? nullptr : &scenario.labels,
          scenario.labels.empty() ? k : scenario.num_communities, kOrderSeed);
      const Graph permuted = apply_permutation(scenario.graph, new_id);
      std::vector<PartitionId> permuted_labels;
      if (!scenario.labels.empty()) {
        permuted_labels.resize(scenario.labels.size());
        for (VertexId v = 0; v < scenario.graph.num_vertices(); ++v) {
          permuted_labels[new_id[v]] = scenario.labels[v];
        }
      }
      for (const std::string& algo : algos) {
        Cell cell =
            run_cell(scenario, permuted, permuted_labels, order, algo, config);
        if (cell.recovery >= 0.0) {
          mean_recovery[scenario.name][algo] +=
              cell.recovery / static_cast<double>(orders.size());
        }
        std::printf("%-14s %-11s %-9s ECR=%.4f dv=%.3f de=%.3f%s%s\n",
                    scenario.name.c_str(), cell.order.c_str(), algo.c_str(),
                    cell.quality.ecr, cell.quality.delta_v,
                    cell.quality.delta_e,
                    cell.recovery >= 0.0
                        ? (" recovery=" + json_number(cell.recovery)).c_str()
                        : "",
                    cell.prepass_degraded ? " (prepass degraded)" : "");
        cells.push_back(std::move(cell));
      }
    }
  }

  // Gate: on recoverable planted graphs (mu <= 0.3), averaged over all five
  // stream orders, the prepass must not cost SPNL recovery and SPNL must
  // beat blind hashing. Runs in smoke mode too — quality, not throughput.
  constexpr double kEps = 0.02;
  bool pass = true;
  std::string gate_report;
  for (const char* graph : {"planted-mu0.1", "planted-mu0.3"}) {
    const auto& means = mean_recovery.at(graph);
    const double spnl2ps = means.at("spnl+2ps");
    const double spnl = means.at("spnl");
    const double hash = means.at("hash");
    const bool prepass_ok = spnl2ps >= spnl - kEps;
    const bool spnl_ok = spnl >= hash + kEps;
    if (!prepass_ok || !spnl_ok) pass = false;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s: mean recovery spnl+2ps=%.4f spnl=%.4f hash=%.4f "
                  "[2ps>=spnl-eps: %s] [spnl>hash: %s]\n",
                  graph, spnl2ps, spnl, hash, prepass_ok ? "ok" : "FAIL",
                  spnl_ok ? "ok" : "FAIL");
    gate_report += buf;
  }
  std::printf("\n%s", gate_report.c_str());

  std::string json = "{\"bench\":\"scenario_matrix\",\"k\":" + std::to_string(k) +
                     ",\"smoke\":" + (smoke ? "true" : "false") + ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    if (i > 0) json += ",";
    json += "{\"graph\":\"" + cell.graph + "\",\"order\":\"" + cell.order +
            "\",\"algo\":\"" + cell.algo +
            "\",\"ecr\":" + json_number(cell.quality.ecr) +
            ",\"dv\":" + json_number(cell.quality.delta_v) +
            ",\"de\":" + json_number(cell.quality.delta_e) + ",\"recovery\":" +
            (cell.recovery >= 0.0 ? json_number(cell.recovery) : "null") +
            ",\"seconds\":" + json_number(cell.seconds);
    if (cell.algo == "spnl+2ps") {
      json += ",\"prepass_clusters\":" + std::to_string(cell.prepass_clusters) +
              ",\"prepass_degraded\":" +
              (cell.prepass_degraded ? "true" : "false");
    }
    json += "}";
  }
  json += "],\"mean_recovery\":{";
  bool first_graph = true;
  for (const auto& [graph, means] : mean_recovery) {
    if (!first_graph) json += ",";
    first_graph = false;
    json += "\"" + graph + "\":{";
    bool first_algo = true;
    for (const auto& [algo, mean] : means) {
      if (!first_algo) json += ",";
      first_algo = false;
      json += "\"" + algo + "\":" + json_number(mean);
    }
    json += "}";
  }
  json += "},\"gate_skip_reason\":\"\",\"pass\":";
  json += pass ? "true" : "false";
  json += "}";
  std::printf("bench-json: %s\n", json.c_str());
  if (args.has("json")) {
    std::ofstream out(args.get("json", ""));
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.get("json", "").c_str());
      return 1;
    }
    out << json << "\n";
  }

  if (!pass) {
    std::printf("FAIL: recovery ordering gate\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
