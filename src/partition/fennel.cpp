#include "partition/fennel.hpp"

#include <cmath>
#include <stdexcept>

namespace spnl {

FennelPartitioner::FennelPartitioner(VertexId num_vertices, EdgeId num_edges,
                                     const PartitionConfig& config,
                                     FennelOptions options)
    : GreedyStreamingBase(num_vertices, num_edges, config),
      gamma_(options.gamma),
      alpha_(options.alpha) {
  if (gamma_ <= 1.0) throw std::invalid_argument("FENNEL: gamma must be > 1");
  if (alpha_ == 0.0) {
    alpha_ = num_vertices == 0
                 ? 1.0
                 : std::sqrt(static_cast<double>(config.num_partitions)) *
                       static_cast<double>(num_edges) /
                       std::pow(static_cast<double>(num_vertices), 1.5);
  }
  if (alpha_ <= 0.0) alpha_ = 1.0;  // degenerate edgeless graphs
}

PartitionId FennelPartitioner::place(VertexId v, std::span<const VertexId> out) {
  const PartitionId k = num_partitions();
  scores_.assign(k, 0.0);
  for (VertexId u : out) {
    if (u < route_.size() && route_[u] != kUnassigned) scores_[route_[u]] += 1.0;
  }
  for (PartitionId i = 0; i < k; ++i) {
    scores_[i] -= alpha_ * gamma_ *
                  std::pow(static_cast<double>(vertex_count(i)), gamma_ - 1.0);
  }
  const PartitionId pid = pick_best(scores_);
  commit(v, out, pid);
  return pid;
}

}  // namespace spnl
