#include "partition/buffered.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/spnl.hpp"
#include "partition/ldg.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

namespace spnl {

namespace {

/// Per-batch working state shared between seeding and refinement.
struct Batch {
  std::vector<OwnedVertexRecord> records;
  std::vector<PartitionId> labels;
  /// Γ-row snapshot per record: placed-in-neighbor counts contributed by the
  /// committed prefix (flattened records.size() x k). Zero for the LDG seed.
  std::vector<std::uint32_t> gamma_prior;
  /// In-batch reverse adjacency: for each record, the batch positions of its
  /// in-batch in-neighbors (so agreement is symmetric inside the buffer).
  std::vector<std::vector<std::uint32_t>> in_batch_in_neighbors;
  /// Maps (id - index_base) -> batch position, UINT32_MAX when absent.
  std::vector<std::uint32_t> index;
  VertexId index_base = 0;

  std::uint32_t position_of(VertexId id) const {
    if (id < index_base) return UINT32_MAX;
    const VertexId offset = id - index_base;
    return offset < index.size() ? index[offset] : UINT32_MAX;
  }
};

/// One refinement sweep: move each buffered vertex to the partition with the
/// best capacity-penalized agreement over committed out-neighbors, in-batch
/// neighbors (both directions), the Γ prior, and — mirroring SPNL's logical
/// term — the range prior of still-unseen out-neighbors. Returns moves made.
std::uint64_t refine_buffer(Batch& batch, const std::vector<PartitionId>& route,
                            std::vector<VertexId>& loads, PartitionId k,
                            double capacity, const RangeTable* logical) {
  constexpr double kLogicalWeight = 0.5;
  std::vector<double> agreement(k);
  std::uint64_t moves = 0;
  for (std::size_t i = 0; i < batch.records.size(); ++i) {
    const auto& record = batch.records[i];
    std::fill(agreement.begin(), agreement.end(), 0.0);
    for (VertexId u : record.out) {
      const std::uint32_t j = batch.position_of(u);
      if (j != UINT32_MAX) {
        agreement[batch.labels[j]] += 1.0;
      } else if (u < route.size() && route[u] != kUnassigned) {
        agreement[route[u]] += 1.0;
      } else if (logical != nullptr && u < route.size()) {
        agreement[logical->partition_of(u)] += kLogicalWeight;
      }
    }
    for (std::uint32_t j : batch.in_batch_in_neighbors[i]) {
      agreement[batch.labels[j]] += 1.0;
    }
    for (PartitionId p = 0; p < k; ++p) {
      agreement[p] += batch.gamma_prior[i * k + p];
    }

    const PartitionId current = batch.labels[i];
    PartitionId best = current;
    // Capacity-penalized score as in the streaming rules, with an inertia
    // bonus so near-ties do not oscillate across sweeps.
    double best_score =
        (agreement[current] + 0.5) * (1.0 - loads[current] / capacity);
    for (PartitionId p = 0; p < k; ++p) {
      if (p == current) continue;
      if (static_cast<double>(loads[p]) + 1.0 > capacity) continue;
      const double score = agreement[p] * (1.0 - loads[p] / capacity);
      if (score > best_score) {
        best = p;
        best_score = score;
      }
    }
    if (best != current) {
      --loads[current];
      ++loads[best];
      batch.labels[i] = best;
      ++moves;
    }
  }
  return moves;
}

}  // namespace

BufferedResult buffered_partition(AdjacencyStream& stream,
                                  const PartitionConfig& config,
                                  const BufferedOptions& options) {
  if (options.buffer_size == 0) {
    throw std::invalid_argument("buffered_partition: buffer_size must be >= 1");
  }
  const VertexId n = stream.num_vertices();
  const EdgeId m = stream.num_edges();
  const PartitionId k = config.num_partitions;
  const double capacity = partition_capacity(n, m, config);

  Timer timer;
  // The seeding partitioner scores each batch with the full streaming state
  // (for SPNL: Γ window + logical table). Its internal route reflects the
  // PRE-refinement labels; the authoritative committed state lives in
  // `route`/`committed_loads` below, and refinement deltas are small and
  // local, so the seeder's statistics remain a good scoring prior.
  std::unique_ptr<GreedyStreamingBase> seeder;
  SpnlPartitioner* spnl_seeder = nullptr;
  if (options.seed_rule == BufferSeedRule::kSpnl) {
    auto owned = std::make_unique<SpnlPartitioner>(n, m, config);
    spnl_seeder = owned.get();
    seeder = std::move(owned);
  } else {
    seeder = std::make_unique<LdgPartitioner>(n, m, config);
  }

  BufferedResult result;
  result.route.assign(n, kUnassigned);
  Batch batch;
  batch.records.reserve(options.buffer_size);
  std::vector<VertexId> committed_loads(k, 0);
  std::vector<VertexId> loads(k, 0);

  bool done = false;
  while (!done) {
    batch.records.clear();
    while (batch.records.size() < options.buffer_size) {
      auto record = stream.next();
      if (!record) {
        done = true;
        break;
      }
      batch.records.push_back(OwnedVertexRecord::from(*record));
    }
    if (batch.records.empty()) break;
    ++result.batches;

    VertexId min_id = batch.records.front().id, max_id = batch.records.front().id;
    for (const auto& record : batch.records) {
      min_id = std::min(min_id, record.id);
      max_id = std::max(max_id, record.id);
    }
    batch.index_base = min_id;
    batch.index.assign(static_cast<std::size_t>(max_id - min_id) + 1, UINT32_MAX);
    for (std::size_t i = 0; i < batch.records.size(); ++i) {
      batch.index[batch.records[i].id - min_id] = static_cast<std::uint32_t>(i);
    }

    // Γ prior snapshot BEFORE any batch placement: in-neighbor counts from
    // the committed prefix only (in-batch contributions are covered by the
    // reverse adjacency below — no double counting).
    batch.gamma_prior.assign(batch.records.size() * k, 0);
    if (spnl_seeder != nullptr) {
      for (std::size_t i = 0; i < batch.records.size(); ++i) {
        const auto row = spnl_seeder->gamma().row(batch.records[i].id);
        for (std::size_t p = 0; p < row.size(); ++p) {
          batch.gamma_prior[i * k + p] = row[p];
        }
      }
    }

    // In-batch reverse adjacency.
    batch.in_batch_in_neighbors.assign(batch.records.size(), {});
    for (std::size_t i = 0; i < batch.records.size(); ++i) {
      for (VertexId u : batch.records[i].out) {
        const std::uint32_t j = batch.position_of(u);
        if (j != UINT32_MAX && j != i) {
          batch.in_batch_in_neighbors[j].push_back(static_cast<std::uint32_t>(i));
        }
      }
    }

    // 1. Seed the batch with the streaming rule (tentative labels).
    batch.labels.resize(batch.records.size());
    loads = committed_loads;
    for (std::size_t i = 0; i < batch.records.size(); ++i) {
      batch.labels[i] = seeder->place(batch.records[i].id, batch.records[i].out);
      ++loads[batch.labels[i]];
    }

    // 2. Joint refinement inside the buffer — what pure streaming cannot do:
    //    later records inform earlier ones within the batch.
    for (int sweep = 0; sweep < options.sweeps; ++sweep) {
      if (refine_buffer(batch, result.route, loads, k, capacity,
                        spnl_seeder != nullptr ? &spnl_seeder->logical_table()
                                               : nullptr) == 0) {
        break;
      }
    }

    // 3. Commit the refined labels as the authoritative assignment.
    for (std::size_t i = 0; i < batch.records.size(); ++i) {
      result.route[batch.records[i].id] = batch.labels[i];
      ++committed_loads[batch.labels[i]];
    }
    std::size_t batch_bytes = vector_bytes(batch.index) +
                              vector_bytes(batch.labels) +
                              vector_bytes(batch.gamma_prior) +
                              batch.records.capacity() * sizeof(batch.records[0]);
    for (const auto& list : batch.in_batch_in_neighbors) {
      batch_bytes += vector_bytes(list);
    }
    result.peak_bytes = std::max(result.peak_bytes,
                                 seeder->memory_footprint_bytes() + batch_bytes);
  }

  result.partition_seconds = timer.seconds();
  return result;
}

}  // namespace spnl
