#include "partition/driver.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace spnl {

RunResult run_streaming(AdjacencyStream& stream, StreamingPartitioner& partitioner) {
  RunResult result;
  result.partitioner_name = partitioner.name();

  Timer timer;
  while (auto record = stream.next()) {
    partitioner.place(record->id, record->out);
    ++result.vertices_placed;
  }
  result.partition_seconds = timer.seconds();
  // Streaming structures only grow or stay flat, so the end-of-run footprint
  // is the peak.
  result.peak_partitioner_bytes = partitioner.memory_footprint_bytes();
  result.route = partitioner.route();
  return result;
}

}  // namespace spnl
