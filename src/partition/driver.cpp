#include "partition/driver.hpp"

#include <algorithm>
#include <optional>

#include "util/timer.hpp"

namespace spnl {

namespace {

constexpr const char* kSeqTag = "seq-driver";

/// Serializes driver progress + partitioner state into one payload.
StateWriter snapshot_sequential(const StreamingPartitioner& partitioner,
                                std::uint64_t placed) {
  StateWriter out;
  out.put_string(kSeqTag);
  out.put_string(partitioner.name());
  out.put_u64(placed);
  partitioner.save_state(out);
  return out;
}

/// Pumps records from the stream, checkpointing on cadence. `placed` carries
/// the restored prefix count on resume so cadence stays aligned with the
/// uninterrupted run. Stream fetch time is billed to kQueueWait (the
/// sequential analogue of the parallel driver's queue pop).
void drain(AdjacencyStream& stream, StreamingPartitioner& partitioner,
           Checkpointer& checkpointer, std::uint64_t placed, RunResult& result,
           PerfStats* perf) {
  for (;;) {
    std::optional<VertexRecord> record;
    {
      PerfScope t(perf, PerfStage::kQueueWait);
      record = stream.next();
    }
    if (!record) break;
    partitioner.place(record->id, record->out);
    ++placed;
    ++result.vertices_placed;
    if (checkpointer.due(placed)) {
      checkpointer.write(snapshot_sequential(partitioner, placed));
    }
  }
  result.checkpoints_written = checkpointer.snapshots_taken();
}

/// Attaches the sink for the duration of a driver call, detaching on every
/// exit path so the partitioner never outlives its borrowed PerfStats.
class ScopedPerfAttach {
 public:
  ScopedPerfAttach(StreamingPartitioner& partitioner, PerfStats* perf)
      : partitioner_(partitioner), attached_(perf != nullptr) {
    if (attached_) partitioner_.set_perf_stats(perf);
  }
  ~ScopedPerfAttach() {
    if (attached_) partitioner_.set_perf_stats(nullptr);
  }

 private:
  StreamingPartitioner& partitioner_;
  bool attached_;
};

}  // namespace

RunResult run_streaming(AdjacencyStream& stream, StreamingPartitioner& partitioner,
                        const StreamingCheckpointOptions& checkpoint,
                        PerfStats* perf) {
  RunResult result;
  result.partitioner_name = partitioner.name();
  Checkpointer checkpointer(checkpoint.path, checkpoint.every);
  if (checkpointer.enabled() && !partitioner.supports_checkpoint()) {
    throw CheckpointError("run_streaming: " + partitioner.name() +
                          " does not support checkpoints");
  }

  ScopedPerfAttach attach(partitioner, perf);
  Timer timer;
  drain(stream, partitioner, checkpointer, 0, result, perf);
  result.partition_seconds = timer.seconds();
  // Streaming structures only grow or stay flat, so the end-of-run footprint
  // is the peak.
  result.peak_partitioner_bytes = partitioner.memory_footprint_bytes();
  result.route = partitioner.route();
  return result;
}

RunResult resume_streaming(AdjacencyStream& stream, StreamingPartitioner& partitioner,
                           const std::string& checkpoint_path,
                           const StreamingCheckpointOptions& checkpoint,
                           PerfStats* perf) {
  RunResult result;
  result.partitioner_name = partitioner.name();

  StateReader in = read_checkpoint_file(checkpoint_path);
  in.expect_string(kSeqTag, "driver kind");
  in.expect_string(partitioner.name(), "partitioner");
  const std::uint64_t placed = in.get_u64();
  partitioner.restore_state(in);
  result.resumed_at = placed;

  Checkpointer checkpointer(checkpoint.path, checkpoint.every);

  ScopedPerfAttach attach(partitioner, perf);
  Timer timer;
  // Fast-forward past the committed prefix: those records' placements are
  // already in the restored route table.
  for (std::uint64_t i = 0; i < placed; ++i) {
    if (!stream.next()) {
      throw CheckpointError(
          "resume_streaming: stream ended before the snapshot cursor (" +
          std::to_string(placed) + " records)");
    }
  }
  result.vertices_placed = static_cast<VertexId>(placed);
  drain(stream, partitioner, checkpointer, placed, result, perf);
  result.partition_seconds = timer.seconds();
  result.peak_partitioner_bytes = partitioner.memory_footprint_bytes();
  result.route = partitioner.route();
  return result;
}

}  // namespace spnl
