#include "partition/driver.hpp"

#include <algorithm>
#include <optional>

#include "util/timer.hpp"

namespace spnl {

namespace {

constexpr const char* kSeqTag = "seq-driver";

/// Serializes driver progress + partitioner state into one payload.
StateWriter snapshot_sequential(const StreamingPartitioner& partitioner,
                                std::uint64_t placed) {
  StateWriter out;
  out.put_string(kSeqTag);
  out.put_string(partitioner.name());
  out.put_u64(placed);
  partitioner.save_state(out);
  return out;
}

/// Applies exactly one successful ladder step (retrying the current rung
/// first when `repeat_current` — the kShrinkWindow rung halves repeatedly)
/// and records it on the governor. Returns false with the governor marked
/// exhausted when no rung has anything left to give.
bool step_ladder(ResourceGovernor& governor, StreamingPartitioner& partitioner,
                 const ResourceGovernor::Breach& breach, std::uint64_t placed,
                 const char* reason, bool repeat_current) {
  DegradationStage stage = governor.stage();
  if (stage == DegradationStage::kNone || !repeat_current) {
    stage = ResourceGovernor::next_stage(stage);
    if (stage == DegradationStage::kNone) {
      governor.mark_exhausted();
      return false;
    }
  }
  bool applied = partitioner.apply_degradation(stage);
  while (!applied) {
    stage = ResourceGovernor::next_stage(stage);
    if (stage == DegradationStage::kNone) {
      governor.mark_exhausted();
      return false;
    }
    applied = partitioner.apply_degradation(stage);
  }
  DegradationEvent event;
  event.stage = stage;
  event.at_placement = placed;
  event.partitioner_bytes = breach.partitioner_bytes;
  event.post_bytes = partitioner.memory_footprint_bytes();
  event.rss_bytes = breach.rss_bytes;
  event.budget_bytes = governor.options().memory_budget_bytes;
  event.elapsed_seconds = breach.elapsed_seconds;
  event.reason = reason;
  governor.record_event(std::move(event));
  return true;
}

/// Breach response under DegradePolicy::kLadder. A memory breach keeps
/// stepping within this one sample until the footprint is back under budget
/// (or the ladder runs dry), so the budget is honoured at every sample
/// point; a deadline breach steps one rung per sample — speed, not space, is
/// the problem, so the escalation is paced instead of immediate.
void enforce_budget(ResourceGovernor& governor, StreamingPartitioner& partitioner,
                    const AdjacencyStream& stream, std::uint64_t placed) {
  // The stream's own heap (line/decode buffers) counts against the budget
  // alongside the partitioner's structures; it cannot degrade, so the ladder
  // only ever shrinks the partitioner side of the sum.
  const std::size_t stream_bytes = stream.memory_footprint_bytes();
  const auto breach =
      governor.sample(partitioner.memory_footprint_bytes() + stream_bytes);
  if (!breach || governor.options().policy != DegradePolicy::kLadder ||
      governor.exhausted()) {
    return;
  }
  if (breach->over_memory) {
    ResourceGovernor::Breach current = *breach;
    while (governor.over_memory_budget(current.partitioner_bytes)) {
      if (!step_ladder(governor, partitioner, current, placed, "memory",
                       /*repeat_current=*/true)) {
        break;
      }
      current.partitioner_bytes =
          partitioner.memory_footprint_bytes() + stream_bytes;
    }
  } else if (breach->over_deadline) {
    step_ladder(governor, partitioner, *breach, placed, "deadline",
                /*repeat_current=*/false);
  }
}

/// Pumps records from the stream, checkpointing on cadence. `placed` carries
/// the restored prefix count on resume so cadence stays aligned with the
/// uninterrupted run. Stream fetch time is billed to kQueueWait (the
/// sequential analogue of the parallel driver's queue pop).
void drain(AdjacencyStream& stream, StreamingPartitioner& partitioner,
           Checkpointer& checkpointer, std::uint64_t placed, RunResult& result,
           PerfStats* perf, ResourceGovernor* governor,
           const std::atomic<bool>* stop) {
  const bool governed = governor != nullptr && governor->enabled();
  for (;;) {
    std::optional<VertexRecord> record;
    {
      PerfScope t(perf, PerfStage::kQueueWait);
      record = stream.next();
    }
    if (!record) break;
    partitioner.place(record->id, record->out);
    ++placed;
    ++result.vertices_placed;
    if (governed && governor->due(placed)) {
      enforce_budget(*governor, partitioner, stream, placed);
    }
    if (checkpointer.due(placed)) {
      checkpointer.write(snapshot_sequential(partitioner, placed));
    }
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      // Graceful interruption: the record in flight was finished above, so
      // the partitioner state is at a record boundary. A final snapshot
      // (when configured) makes the interruption resumable; the caller sees
      // interrupted=true and a consistent partial route.
      if (checkpointer.enabled() && !checkpointer.due(placed)) {
        checkpointer.write(snapshot_sequential(partitioner, placed));
      }
      result.interrupted = true;
      break;
    }
  }
  result.checkpoints_written = checkpointer.snapshots_taken();
  if (governor != nullptr) result.degradations = governor->events();
}

/// Attaches the sink for the duration of a driver call, detaching on every
/// exit path so the partitioner never outlives its borrowed PerfStats.
class ScopedPerfAttach {
 public:
  ScopedPerfAttach(StreamingPartitioner& partitioner, PerfStats* perf)
      : partitioner_(partitioner), attached_(perf != nullptr) {
    if (attached_) partitioner_.set_perf_stats(perf);
  }
  ~ScopedPerfAttach() {
    if (attached_) partitioner_.set_perf_stats(nullptr);
  }

 private:
  StreamingPartitioner& partitioner_;
  bool attached_;
};

}  // namespace

RunResult run_streaming(AdjacencyStream& stream, StreamingPartitioner& partitioner,
                        const StreamingCheckpointOptions& checkpoint,
                        PerfStats* perf, ResourceGovernor* governor,
                        const std::atomic<bool>* stop) {
  RunResult result;
  result.partitioner_name = partitioner.name();
  Checkpointer checkpointer(checkpoint.path, checkpoint.every);
  if (checkpointer.enabled() && !partitioner.supports_checkpoint()) {
    throw CheckpointError("run_streaming: " + partitioner.name() +
                          " does not support checkpoints");
  }

  ScopedPerfAttach attach(partitioner, perf);
  Timer timer;
  drain(stream, partitioner, checkpointer, 0, result, perf, governor, stop);
  result.partition_seconds = timer.seconds();
  // Streaming structures only grow or stay flat — except when the governor
  // shrinks them, in which case its samples saw the true peak.
  result.peak_partitioner_bytes =
      std::max(partitioner.memory_footprint_bytes(),
               governor != nullptr ? governor->peak_partitioner_bytes() : 0);
  result.route = partitioner.route();
  return result;
}

RunResult resume_streaming(AdjacencyStream& stream, StreamingPartitioner& partitioner,
                           const std::string& checkpoint_path,
                           const StreamingCheckpointOptions& checkpoint,
                           PerfStats* perf, ResourceGovernor* governor,
                           const std::atomic<bool>* stop) {
  RunResult result;
  result.partitioner_name = partitioner.name();

  StateReader in = read_checkpoint_file(checkpoint_path);
  in.expect_string(kSeqTag, "driver kind");
  in.expect_string(partitioner.name(), "partitioner");
  const std::uint64_t placed = in.get_u64();
  partitioner.restore_state(in);
  result.resumed_at = placed;

  Checkpointer checkpointer(checkpoint.path, checkpoint.every);

  ScopedPerfAttach attach(partitioner, perf);
  Timer timer;
  // Fast-forward past the committed prefix: those records' placements are
  // already in the restored route table.
  for (std::uint64_t i = 0; i < placed; ++i) {
    if (!stream.next()) {
      throw CheckpointError(
          "resume_streaming: stream ended before the snapshot cursor (" +
          std::to_string(placed) + " records)");
    }
  }
  result.vertices_placed = static_cast<VertexId>(placed);
  // A degraded snapshot restored a degraded partitioner: sync the governor's
  // ladder cursor so enforcement continues from the restored rung instead of
  // replaying milder rungs that no longer apply.
  if (governor != nullptr) governor->set_stage(partitioner.degradation_stage());
  drain(stream, partitioner, checkpointer, placed, result, perf, governor, stop);
  result.partition_seconds = timer.seconds();
  result.peak_partitioner_bytes =
      std::max(partitioner.memory_footprint_bytes(),
               governor != nullptr ? governor->peak_partitioner_bytes() : 0);
  result.route = partitioner.route();
  return result;
}

}  // namespace spnl
