// LDG — Linear Deterministic Greedy streaming partitioner
// (Stanton & Kliot, KDD'12), the classic baseline the paper builds on.
//
// Score (paper Eq. 3): pid = argmax_i |V_i^pt ∩ N_out(v)| · w_t(i,v), where
// w_t(i,v) = 1 - |P_i|/C is the remaining-capacity penalty.
#pragma once

#include "partition/partitioning.hpp"

namespace spnl {

class LdgPartitioner final : public GreedyStreamingBase {
 public:
  LdgPartitioner(VertexId num_vertices, EdgeId num_edges,
                 const PartitionConfig& config);

  PartitionId place(VertexId v, std::span<const VertexId> out) override;
  std::string name() const override { return "LDG"; }
};

}  // namespace spnl
