// Common partitioning vocabulary: configuration, the streaming partitioner
// interface, and the shared greedy base class (capacity bookkeeping,
// hard-cap + tie-break selection) that LDG, FENNEL, SPN and SPNL build on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "graph/types.hpp"
#include "util/perf_stats.hpp"
#include "util/resource_governor.hpp"

namespace spnl {

/// Workload balance measure (Eqs. 1 and 2 of the paper).
enum class BalanceMode {
  kVertex,  ///< capacity counts vertices; bounds δv
  kEdge,    ///< capacity counts assigned out-edges; bounds δe
  kBoth,    ///< multi-constraint: bounds δv with `slack` AND δe with
            ///< `edge_slack` (how the paper configures XtraPuLP: δv=1.0,
            ///< δe=50)
};

struct PartitionConfig {
  PartitionId num_partitions = 2;
  BalanceMode balance = BalanceMode::kVertex;
  /// Capacity slack δ: each partition holds at most slack*|G|/K load units.
  /// The paper's measured δv of 1.0-1.2 corresponds to slack ≈ 1.1-1.2.
  double slack = 1.1;
  /// Edge-side slack, used only by BalanceMode::kBoth.
  double edge_slack = 4.0;
};

/// A one-pass streaming vertex partitioner. Vertices must each be offered
/// exactly once via place(); the decision is irrevocable (Sec. II).
class StreamingPartitioner {
 public:
  virtual ~StreamingPartitioner() = default;

  /// Decide the partition of v given its out-adjacency list, and commit it.
  virtual PartitionId place(VertexId v, std::span<const VertexId> out) = 0;

  /// The route table built so far (kUnassigned for unseen vertices).
  virtual const std::vector<PartitionId>& route() const = 0;

  /// Precise accounting of this partitioner's own data structures — the MC
  /// metric of the paper's Table IV.
  virtual std::size_t memory_footprint_bytes() const = 0;

  virtual std::string name() const = 0;

  /// Checkpoint support. A partitioner that overrides save_state/restore_state
  /// guarantees that an instance constructed with the same parameters and
  /// restored from a snapshot continues the stream with decisions identical
  /// to the uninterrupted run (the kill-and-resume determinism contract).
  virtual bool supports_checkpoint() const { return false; }
  virtual void save_state(StateWriter&) const {
    throw CheckpointError("save_state: " + name() + " does not support checkpoints");
  }
  virtual void restore_state(StateReader&) {
    throw CheckpointError("restore_state: " + name() +
                          " does not support checkpoints");
  }

  /// Attach a per-stage stats sink (nullptr detaches — the default). Only
  /// the instrumented partitioners (SPN/SPNL) record stage timings; others
  /// ignore the sink and the drivers still attribute stream-wait time.
  virtual void set_perf_stats(PerfStats*) {}

  /// Resource-governor hook: apply one rung of the degradation ladder and
  /// return true if the step actually freed/changed anything. kShrinkWindow
  /// is repeatable (each call halves the Γ window until W == 1); the other
  /// rungs are one-shot. The default — partitioners with no windowed state —
  /// has nothing to give back.
  virtual bool apply_degradation(DegradationStage) { return false; }

  /// The deepest degradation rung this partitioner is currently running at.
  virtual DegradationStage degradation_stage() const {
    return DegradationStage::kNone;
  }
};

/// Shared machinery for greedy streaming heuristics: the route table,
/// per-partition vertex/edge loads, the remaining-capacity penalty
/// w_t(i) = 1 - |P_i|/C of Algorithm 1, and deterministic best-partition
/// selection (hard capacity, ties to the least-loaded then lowest id).
class GreedyStreamingBase : public StreamingPartitioner {
 public:
  GreedyStreamingBase(VertexId num_vertices, EdgeId num_edges,
                      const PartitionConfig& config);

  const std::vector<PartitionId>& route() const override { return route_; }
  std::size_t memory_footprint_bytes() const override;

  /// Base state (route + loads) with structural guards on n/m/K/balance.
  /// Derived partitioners with extra state call these first, then append.
  bool supports_checkpoint() const override { return true; }
  void save_state(StateWriter& out) const override;
  void restore_state(StateReader& in) override;

  void set_perf_stats(PerfStats* perf) override { perf_ = perf; }

  PartitionId num_partitions() const { return config_.num_partitions; }
  VertexId vertex_count(PartitionId i) const { return vertex_counts_[i]; }
  EdgeId edge_count(PartitionId i) const { return edge_counts_[i]; }

 protected:
  /// Current load of partition i under the configured balance mode. For
  /// kBoth this is the binding (relative) constraint: max of the vertex and
  /// edge utilizations scaled into the vertex capacity's units.
  double load(PartitionId i) const;

  /// w_t(i) = 1 - load_i / C. May go slightly negative when a partition is
  /// at capacity; such partitions are excluded by pick_best anyway.
  double remaining_weight(PartitionId i) const { return 1.0 - load(i) / capacity_; }

  bool is_full(PartitionId i) const { return load(i) >= capacity_; }

  /// Highest score among non-full partitions; ties broken by lower load,
  /// then lower id. Falls back to the globally least-loaded partition when
  /// every partition is full (keeps δ bounded by slack + one record).
  PartitionId pick_best(std::span<const double> scores) const;

  /// Record the decision: route, loads.
  void commit(VertexId v, std::span<const VertexId> out, PartitionId pid);

  const PartitionConfig config_;
  const VertexId num_vertices_;
  const EdgeId num_edges_;
  const double capacity_;
  /// Edge-side capacity (kBoth only; 0 otherwise).
  const double edge_capacity_;

  std::vector<PartitionId> route_;
  std::vector<VertexId> vertex_counts_;
  std::vector<EdgeId> edge_counts_;
  /// Scratch score buffer reused across place() calls.
  mutable std::vector<double> scores_;
  /// Optional per-stage instrumentation sink (not owned; nullptr = off).
  PerfStats* perf_ = nullptr;
};

/// δ·|G|/K with |G| by balance mode (Algorithm 1, line 4 commentary).
double partition_capacity(VertexId num_vertices, EdgeId num_edges,
                          const PartitionConfig& config);

}  // namespace spnl
