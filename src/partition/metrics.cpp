#include "partition/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace spnl {

namespace {

// Ratios shared by both evaluate_partition overloads.
void finalize_metrics(QualityMetrics& metrics, VertexId n, EdgeId m, PartitionId k) {
  metrics.ecr = m == 0 ? 0.0 : static_cast<double>(metrics.cut_edges) / m;
  const VertexId max_v = n == 0 ? 0
                                : *std::max_element(metrics.vertices_per_partition.begin(),
                                                    metrics.vertices_per_partition.end());
  const EdgeId max_e = m == 0 ? 0
                              : *std::max_element(metrics.edges_per_partition.begin(),
                                                  metrics.edges_per_partition.end());
  metrics.delta_v = n == 0 ? 0.0 : static_cast<double>(max_v) * k / n;
  metrics.delta_e = m == 0 ? 0.0 : static_cast<double>(max_e) * k / m;
}

// Route-side accumulation (vertex balance + assignment validation) shared by
// both overloads; adjacency-side accumulation differs.
QualityMetrics count_vertices(const std::vector<PartitionId>& route, PartitionId k) {
  QualityMetrics metrics;
  metrics.vertices_per_partition.assign(k, 0);
  metrics.edges_per_partition.assign(k, 0);
  for (VertexId v = 0; v < route.size(); ++v) {
    const PartitionId p = route[v];
    if (p >= k) {
      throw std::invalid_argument("evaluate_partition: vertex " + std::to_string(v) +
                                  " unassigned or partition id out of range");
    }
    ++metrics.vertices_per_partition[p];
  }
  return metrics;
}

}  // namespace

QualityMetrics evaluate_partition(const Graph& graph,
                                  const std::vector<PartitionId>& route,
                                  PartitionId k) {
  const VertexId n = graph.num_vertices();
  if (route.size() != n) {
    throw std::invalid_argument("evaluate_partition: route size != |V|");
  }
  if (k == 0) throw std::invalid_argument("evaluate_partition: k must be >= 1");

  QualityMetrics metrics = count_vertices(route, k);
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId p = route[v];
    metrics.edges_per_partition[p] += graph.out_degree(v);
    for (VertexId u : graph.out_neighbors(v)) {
      if (route[u] != p) ++metrics.cut_edges;
    }
  }
  finalize_metrics(metrics, n, graph.num_edges(), k);
  return metrics;
}

QualityMetrics evaluate_partition(AdjacencyStream& stream,
                                  const std::vector<PartitionId>& route,
                                  PartitionId k) {
  const VertexId n = stream.num_vertices();
  if (route.size() != n) {
    throw std::invalid_argument("evaluate_partition: route size != |V|");
  }
  if (k == 0) throw std::invalid_argument("evaluate_partition: k must be >= 1");

  QualityMetrics metrics = count_vertices(route, k);
  while (auto record = stream.next()) {
    if (record->id >= n) {
      throw std::invalid_argument("evaluate_partition: stream record " +
                                  std::to_string(record->id) + " out of range");
    }
    const PartitionId p = route[record->id];
    metrics.edges_per_partition[p] += record->out.size();
    for (VertexId u : record->out) {
      if (u >= n) {
        throw std::invalid_argument("evaluate_partition: neighbor " +
                                    std::to_string(u) + " out of range");
      }
      if (route[u] != p) ++metrics.cut_edges;
    }
  }
  finalize_metrics(metrics, n, stream.num_edges(), k);
  return metrics;
}

EdgeId communication_volume(const Graph& graph, const std::vector<PartitionId>& route) {
  EdgeId messages = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId u : graph.out_neighbors(v)) {
      if (route[u] != route[v]) ++messages;
    }
  }
  return messages;
}

bool is_complete_assignment(const std::vector<PartitionId>& route, PartitionId k) {
  for (PartitionId p : route) {
    if (p >= k) return false;
  }
  return true;
}

double recovery_rate(const std::vector<PartitionId>& truth,
                     PartitionId num_communities,
                     const std::vector<PartitionId>& route, PartitionId k) {
  if (truth.size() != route.size()) {
    throw std::invalid_argument("recovery_rate: truth size != route size");
  }
  if (num_communities == 0 || k == 0) {
    throw std::invalid_argument("recovery_rate: need >= 1 community/partition");
  }
  const std::size_t n = truth.size();
  if (n == 0) return 1.0;

  // C x K confusion matrix.
  std::vector<std::uint64_t> cells(static_cast<std::size_t>(num_communities) * k,
                                   0);
  for (std::size_t v = 0; v < n; ++v) {
    if (truth[v] >= num_communities) {
      throw std::invalid_argument("recovery_rate: truth label out of range");
    }
    if (route[v] >= k) {
      throw std::invalid_argument("recovery_rate: partition id out of range");
    }
    ++cells[static_cast<std::size_t>(truth[v]) * k + route[v]];
  }

  // Greedy matching: take the largest remaining cell, retire its community
  // row and partition column, repeat min(C, K) times. Ties break toward the
  // lowest (community, partition) pair, keeping the metric deterministic.
  std::uint64_t matched = 0;
  std::vector<bool> row_done(num_communities, false), col_done(k, false);
  const PartitionId rounds = std::min(num_communities, k);
  for (PartitionId round = 0; round < rounds; ++round) {
    std::uint64_t best = 0;
    PartitionId best_row = 0, best_col = 0;
    bool found = false;
    for (PartitionId r = 0; r < num_communities; ++r) {
      if (row_done[r]) continue;
      for (PartitionId col = 0; col < k; ++col) {
        if (col_done[col]) continue;
        const std::uint64_t cell = cells[static_cast<std::size_t>(r) * k + col];
        if (!found || cell > best) {
          best = cell;
          best_row = r;
          best_col = col;
          found = true;
        }
      }
    }
    if (!found) break;
    matched += best;
    row_done[best_row] = true;
    col_done[best_col] = true;
  }

  // Cyclic-shift floor (C == K only): greedy matching is a 1/2-approximation
  // of the optimal assignment, which can dip below n/K on adversarial
  // confusion matrices; the best of the K cyclic shifts cannot.
  if (num_communities == k) {
    for (PartitionId shift = 0; shift < k; ++shift) {
      std::uint64_t agree = 0;
      for (PartitionId r = 0; r < k; ++r) {
        agree += cells[static_cast<std::size_t>(r) * k + (r + shift) % k];
      }
      if (agree > matched) matched = agree;
    }
  }
  return static_cast<double>(matched) / static_cast<double>(n);
}

std::string summarize(const QualityMetrics& metrics) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "ECR=%.4f dv=%.2f de=%.2f cut=%llu", metrics.ecr,
                metrics.delta_v, metrics.delta_e,
                static_cast<unsigned long long>(metrics.cut_edges));
  return buf;
}

}  // namespace spnl
