#include "partition/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace spnl {

QualityMetrics evaluate_partition(const Graph& graph,
                                  const std::vector<PartitionId>& route,
                                  PartitionId k) {
  const VertexId n = graph.num_vertices();
  if (route.size() != n) {
    throw std::invalid_argument("evaluate_partition: route size != |V|");
  }
  if (k == 0) throw std::invalid_argument("evaluate_partition: k must be >= 1");

  QualityMetrics metrics;
  metrics.vertices_per_partition.assign(k, 0);
  metrics.edges_per_partition.assign(k, 0);

  for (VertexId v = 0; v < n; ++v) {
    const PartitionId p = route[v];
    if (p >= k) {
      throw std::invalid_argument("evaluate_partition: vertex " + std::to_string(v) +
                                  " unassigned or partition id out of range");
    }
    ++metrics.vertices_per_partition[p];
    metrics.edges_per_partition[p] += graph.out_degree(v);
    for (VertexId u : graph.out_neighbors(v)) {
      if (route[u] != p) ++metrics.cut_edges;
    }
  }

  const EdgeId m = graph.num_edges();
  metrics.ecr = m == 0 ? 0.0 : static_cast<double>(metrics.cut_edges) / m;
  const VertexId max_v = n == 0 ? 0
                                : *std::max_element(metrics.vertices_per_partition.begin(),
                                                    metrics.vertices_per_partition.end());
  const EdgeId max_e = m == 0 ? 0
                              : *std::max_element(metrics.edges_per_partition.begin(),
                                                  metrics.edges_per_partition.end());
  metrics.delta_v = n == 0 ? 0.0 : static_cast<double>(max_v) * k / n;
  metrics.delta_e = m == 0 ? 0.0 : static_cast<double>(max_e) * k / m;
  return metrics;
}

EdgeId communication_volume(const Graph& graph, const std::vector<PartitionId>& route) {
  EdgeId messages = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId u : graph.out_neighbors(v)) {
      if (route[u] != route[v]) ++messages;
    }
  }
  return messages;
}

bool is_complete_assignment(const std::vector<PartitionId>& route, PartitionId k) {
  for (PartitionId p : route) {
    if (p >= k) return false;
  }
  return true;
}

std::string summarize(const QualityMetrics& metrics) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "ECR=%.4f dv=%.2f de=%.2f cut=%llu", metrics.ecr,
                metrics.delta_v, metrics.delta_e,
                static_cast<unsigned long long>(metrics.cut_edges));
  return buf;
}

}  // namespace spnl
