#include "partition/range_partitioner.hpp"

#include <stdexcept>

namespace spnl {

RangeTable::RangeTable(VertexId num_vertices, PartitionId k)
    : k_(k), num_vertices_(num_vertices) {
  if (k == 0) throw std::invalid_argument("RangeTable: k must be >= 1");
  base_ = num_vertices / k;
  big_ranges_ = static_cast<PartitionId>(num_vertices % k);
  split_ = (base_ + 1) * big_ranges_;
}

RangePartitioner::RangePartitioner(VertexId num_vertices, EdgeId num_edges,
                                   const PartitionConfig& config)
    : GreedyStreamingBase(num_vertices, num_edges, config),
      table_(num_vertices, config.num_partitions) {}

PartitionId RangePartitioner::place(VertexId v, std::span<const VertexId> out) {
  const PartitionId pid = table_.partition_of(v);
  commit(v, out, pid);
  return pid;
}

}  // namespace spnl
