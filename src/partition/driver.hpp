// Sequential streaming driver: pumps a stream through a partitioner while
// measuring the paper's PT (first record load -> complete route table) and
// MC (partitioner structure bytes) metrics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/adjacency_stream.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

struct RunResult {
  std::string partitioner_name;
  std::vector<PartitionId> route;
  double partition_seconds = 0.0;   ///< PT
  std::size_t peak_partitioner_bytes = 0;  ///< MC (algorithm structures)
  VertexId vertices_placed = 0;
};

/// Drains the stream through the partitioner. The stream is consumed from
/// its current position; callers reset() beforehand if reusing streams.
RunResult run_streaming(AdjacencyStream& stream, StreamingPartitioner& partitioner);

}  // namespace spnl
