// Sequential streaming driver: pumps a stream through a partitioner while
// measuring the paper's PT (first record load -> complete route table) and
// MC (partitioner structure bytes) metrics.
//
// Fault tolerance: the driver can snapshot the partitioner's full decision
// state (route, loads, Γ window, SPNL logical tables) plus the stream cursor
// every N placements, and resume_streaming() continues an interrupted run
// from the latest snapshot with a byte-identical final route.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "graph/adjacency_stream.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

struct RunResult {
  std::string partitioner_name;
  std::vector<PartitionId> route;
  double partition_seconds = 0.0;   ///< PT
  std::size_t peak_partitioner_bytes = 0;  ///< MC (algorithm structures)
  VertexId vertices_placed = 0;
  /// Snapshots written during this run (0 when checkpointing is off).
  std::uint64_t checkpoints_written = 0;
  /// Stream position the run was resumed from (0 for a fresh run).
  std::uint64_t resumed_at = 0;
  /// Ladder transitions the resource governor applied (empty without a
  /// governor or when the run stayed within budget).
  std::vector<DegradationEvent> degradations;
  /// True when the run stopped early because the caller's stop flag was
  /// raised (graceful SIGINT/SIGTERM): the current record was finished, a
  /// final checkpoint was written when checkpointing is enabled, and
  /// `route` holds the consistent partial assignment.
  bool interrupted = false;
};

/// Checkpoint cadence for run_streaming / resume_streaming: snapshot the
/// partitioner state into `path` every `every` placements (0 = disabled).
struct StreamingCheckpointOptions {
  std::string path;
  std::uint64_t every = 0;
};

/// Drains the stream through the partitioner. The stream is consumed from
/// its current position; callers reset() beforehand if reusing streams.
/// `perf`, when non-null, is attached to the partitioner for per-stage
/// timings and additionally records stream-fetch time under kQueueWait;
/// detached again before returning. Instrumentation overhead when null is a
/// handful of untaken branches per record.
///
/// `governor`, when non-null and enabled, is sampled every
/// governor->options().sample_interval placements with the partitioner's
/// precise footprint; memory/deadline breaches step the degradation ladder
/// (DegradePolicy::kLadder), throw BudgetExceededError (kAbort), or are
/// recorded only (kOff). After a memory breach the ladder is stepped until
/// the footprint is back under budget or the ladder is exhausted, so the
/// budget holds at every subsequent sample point.
///
/// `stop`, when non-null, is polled after every placed record: once true
/// the driver finishes that record, writes a final snapshot (when
/// checkpointing is enabled) and returns with result.interrupted set — the
/// graceful-signal path of spnl_partition (util/shutdown.hpp) feeds the
/// process-global SIGINT/SIGTERM flag through here.
RunResult run_streaming(AdjacencyStream& stream, StreamingPartitioner& partitioner,
                        const StreamingCheckpointOptions& checkpoint = {},
                        PerfStats* perf = nullptr,
                        ResourceGovernor* governor = nullptr,
                        const std::atomic<bool>* stop = nullptr);

/// Resumes an interrupted run: restores the partitioner from
/// `checkpoint_path`, fast-forwards `stream` (which must be reset and emit
/// the same record order as the original run) past the already-committed
/// prefix, and drains the remainder. `checkpoint` optionally continues
/// snapshotting. Throws CheckpointError on a corrupt/mismatched snapshot or
/// if the stream is shorter than the snapshot cursor. Degraded snapshots
/// restore the degraded shape (window size, slide mode, hash fallback), and
/// `governor` continues enforcement from there.
RunResult resume_streaming(AdjacencyStream& stream, StreamingPartitioner& partitioner,
                           const std::string& checkpoint_path,
                           const StreamingCheckpointOptions& checkpoint = {},
                           PerfStats* perf = nullptr,
                           ResourceGovernor* governor = nullptr,
                           const std::atomic<bool>* stop = nullptr);

}  // namespace spnl
