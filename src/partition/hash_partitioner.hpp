// Hash partitioner: the trivial baseline most distributed graph systems
// (e.g. Pregel) default to. Placement ignores topology entirely; expected
// ECR ≈ 1 - 1/K.
#pragma once

#include <cstdint>

#include "partition/partitioning.hpp"

namespace spnl {

class HashPartitioner final : public GreedyStreamingBase {
 public:
  HashPartitioner(VertexId num_vertices, EdgeId num_edges,
                  const PartitionConfig& config, std::uint64_t seed = 1);

  PartitionId place(VertexId v, std::span<const VertexId> out) override;
  std::string name() const override { return "Hash"; }

 private:
  std::uint64_t seed_;
};

}  // namespace spnl
