// Hybrid buffered streaming partitioning (the Faraj & Schulz line of work
// the paper cites as [8]): instead of deciding one vertex at a time, buffer
// a batch of B records, optimize the batch jointly against the already
// committed prefix (a few label-propagation sweeps inside the buffer), then
// commit the whole batch and move on.
//
// The paper's claim (Sec. I) is that its pure streaming heuristics can serve
// as the underlying component of such hybrid frameworks; this module shows
// the integration: the batch initializer is pluggable between the LDG rule
// and the SPNL rule (in-neighbor expectation + logical locality prior).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/adjacency_stream.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

enum class BufferSeedRule {
  kLdg,   ///< batch initialized with the LDG score against the prefix
  kSpnl,  ///< batch initialized with SPNL (Γ expectation + range prior)
};

struct BufferedOptions {
  VertexId buffer_size = 4096;
  /// Refinement sweeps inside each buffer before committing.
  int sweeps = 3;
  BufferSeedRule seed_rule = BufferSeedRule::kSpnl;
};

struct BufferedResult {
  std::vector<PartitionId> route;
  double partition_seconds = 0.0;
  std::size_t peak_bytes = 0;
  int batches = 0;
};

BufferedResult buffered_partition(AdjacencyStream& stream,
                                  const PartitionConfig& config,
                                  const BufferedOptions& options = {});

}  // namespace spnl
