// Re-streaming partitioning (Nishimura & Ugander, KDD'13), the related-work
// extension of Sec. III-B: the stream is replayed for several passes and each
// pass scores a vertex's neighbors by their assignment in the PREVIOUS pass
// (a full route table, not just the prefix), progressively refining quality
// at the cost of extra scans. Works as a wrapper over the one-pass scoring
// rules; this module provides the LDG-style variant (ReLDG) and an
// SPNL-seeded variant where pass 1 is SPNL.
#pragma once

#include <vector>

#include "graph/adjacency_stream.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

/// Scoring rule used by refinement passes (pass 2 onwards).
enum class RestreamRule {
  kLdg,     ///< ReLDG: neighbor agreement x remaining-capacity penalty
  kFennel,  ///< ReFENNEL: neighbor agreement - alpha*gamma*|V_i|^(gamma-1)
};

struct RestreamOptions {
  /// Total passes including the initial one; 1 = plain single-pass.
  int passes = 3;
  /// Partitioner for pass 1: LDG or SPNL.
  bool seed_with_spnl = false;
  RestreamRule rule = RestreamRule::kLdg;
  /// Partial re-streaming (Echbarthi & Kheddouci): only this fraction of
  /// vertices (a deterministic hash-selected subset) is re-decided per
  /// refinement pass; the rest keep their previous assignment. 1.0 = full.
  double restream_fraction = 1.0;
  std::uint64_t selection_seed = 1;
  /// Optional logical-hint table for the SPNL seed pass (requires
  /// seed_with_spnl; see SpnlOptions::logical_hints for the contract).
  /// Borrowed — must outlive the call. Typically the 2PS prepass output.
  const std::vector<PartitionId>* spnl_hints = nullptr;
};

/// Runs `passes` scans over the stream (reset() between passes) and returns
/// the final route table.
std::vector<PartitionId> restream_partition(AdjacencyStream& stream,
                                            const PartitionConfig& config,
                                            const RestreamOptions& options = {});

}  // namespace spnl
