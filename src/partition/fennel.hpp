// FENNEL streaming partitioner (Tsourakakis et al., WSDM'14).
//
// Interpolates between locality maximization and cut minimization via the
// objective  score_i(v) = |V_i ∩ N_out(v)| − α·γ·|V_i|^{γ−1}  with the
// paper-recommended γ = 1.5, α = √K · |E| / |V|^{1.5}, under the hard
// balance constraint |V_i| ≤ ν·|V|/K (ν = config slack).
#pragma once

#include "partition/partitioning.hpp"

namespace spnl {

struct FennelOptions {
  double gamma = 1.5;
  /// 0 selects the recommended α = sqrt(K)·|E|/|V|^1.5.
  double alpha = 0.0;
};

class FennelPartitioner final : public GreedyStreamingBase {
 public:
  FennelPartitioner(VertexId num_vertices, EdgeId num_edges,
                    const PartitionConfig& config, FennelOptions options = {});

  PartitionId place(VertexId v, std::span<const VertexId> out) override;
  std::string name() const override { return "FENNEL"; }

  double alpha() const { return alpha_; }
  double gamma() const { return gamma_; }

 private:
  double gamma_;
  double alpha_;
};

}  // namespace spnl
