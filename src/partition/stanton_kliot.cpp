#include "partition/stanton_kliot.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spnl {

SkPartitioner::SkPartitioner(VertexId num_vertices, EdgeId num_edges,
                             const PartitionConfig& config, SkHeuristic heuristic,
                             const Graph* graph)
    : GreedyStreamingBase(num_vertices, num_edges, config),
      heuristic_(heuristic),
      graph_(graph) {
  if (heuristic_ == SkHeuristic::kTriangles && graph_ == nullptr) {
    throw std::invalid_argument("SkPartitioner: Triangles needs the graph");
  }
}

std::string SkPartitioner::name() const {
  switch (heuristic_) {
    case SkHeuristic::kBalanced: return "Balanced";
    case SkHeuristic::kDeterministicGreedy: return "DG";
    case SkHeuristic::kExponentialGreedy: return "EDG";
    case SkHeuristic::kTriangles: return "Triangles";
  }
  return "SK";
}

double SkPartitioner::triangle_score(std::span<const VertexId> out,
                                     PartitionId p) const {
  // Count edges (u, w) between placed neighbors of v that both live in P_p.
  // Adjacency lists are sorted for generated graphs; fall back to a linear
  // scan when not (correctness over speed for a reference heuristic).
  double triangles = 0.0;
  for (VertexId u : out) {
    if (u >= route_.size() || route_[u] != p) continue;
    const auto adj = graph_->out_neighbors(u);
    for (VertexId w : out) {
      if (w == u || w >= route_.size() || route_[w] != p) continue;
      if (std::find(adj.begin(), adj.end(), w) != adj.end()) triangles += 1.0;
    }
  }
  return triangles;
}

PartitionId SkPartitioner::place(VertexId v, std::span<const VertexId> out) {
  const PartitionId k = num_partitions();
  scores_.assign(k, 0.0);

  if (heuristic_ != SkHeuristic::kBalanced) {
    for (VertexId u : out) {
      if (u < route_.size() && route_[u] != kUnassigned) scores_[route_[u]] += 1.0;
    }
  }

  switch (heuristic_) {
    case SkHeuristic::kBalanced:
      // All-zero scores: pick_best falls through to the least-loaded rule.
      break;
    case SkHeuristic::kDeterministicGreedy:
      // Raw agreement under the hard cap only.
      break;
    case SkHeuristic::kExponentialGreedy: {
      const double capacity =
          partition_capacity(num_vertices_, num_edges_, config_);
      for (PartitionId i = 0; i < k; ++i) {
        scores_[i] *= 1.0 - std::exp(load(i) - capacity);
      }
      break;
    }
    case SkHeuristic::kTriangles: {
      for (PartitionId i = 0; i < k; ++i) {
        scores_[i] = (scores_[i] + triangle_score(out, i)) * remaining_weight(i);
      }
      break;
    }
  }

  const PartitionId pid = pick_best(scores_);
  commit(v, out, pid);
  return pid;
}

}  // namespace spnl
