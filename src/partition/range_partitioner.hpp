// Range partitioner: contiguous id ranges of (near-)equal size. This is
// exactly the logical pre-assignment policy SPNL uses (Sec. IV-C); as a
// standalone partitioner it shows how much of SPNL's win comes from raw id
// locality alone.
#pragma once

#include "partition/partitioning.hpp"

namespace spnl {

/// O(1) logical range lookup shared by RangePartitioner and SPNL.
/// Vertices 0..n-1 are split into K contiguous ranges; the first n % K
/// ranges get one extra vertex, so sizes differ by at most 1.
class RangeTable {
 public:
  RangeTable(VertexId num_vertices, PartitionId k);

  PartitionId partition_of(VertexId v) const {
    // Two-piece linear mapping: big ranges (size base_+1) first.
    if (v < split_) return static_cast<PartitionId>(v / (base_ + 1));
    return static_cast<PartitionId>(big_ranges_ + (v - split_) / base_);
  }

  VertexId range_size(PartitionId i) const {
    return i < big_ranges_ ? base_ + 1 : base_;
  }

  PartitionId num_partitions() const { return k_; }
  VertexId num_vertices() const { return num_vertices_; }

 private:
  PartitionId k_ = 1;
  VertexId num_vertices_ = 0;
  VertexId base_ = 0;        // floor(n / k)
  PartitionId big_ranges_ = 0;  // n % k ranges of size base_+1
  VertexId split_ = 0;       // first id of the small ranges
};

class RangePartitioner final : public GreedyStreamingBase {
 public:
  RangePartitioner(VertexId num_vertices, EdgeId num_edges,
                   const PartitionConfig& config);

  PartitionId place(VertexId v, std::span<const VertexId> out) override;
  std::string name() const override { return "Range"; }

 private:
  RangeTable table_;
};

}  // namespace spnl
