// The remaining streaming heuristics from the original study LDG comes from
// (Stanton & Kliot, KDD'12), completing the baseline zoo:
//
//  * Balanced          — always the least-loaded partition (topology-blind
//                        lower bound on quality, perfect balance),
//  * DeterministicGreedy — unweighted neighbor agreement |N(v) ∩ P_i| with
//                        only the hard capacity (no penalty term),
//  * ExponentialGreedy — agreement weighted by 1 − e^(load − C),
//  * Triangles         — agreement counts closed triangles: edges among v's
//                        already-placed neighbors inside P_i. NOTE: this
//                        heuristic needs random access to the graph's
//                        adjacency (as in the original study, where the
//                        graph was resident); it is not one-pass in the
//                        strict sense and serves as a quality reference.
//
// Hashing and Chunking from the same study are HashPartitioner and
// RangePartitioner; Linear Deterministic Greedy is LdgPartitioner.
#pragma once

#include "graph/graph.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

enum class SkHeuristic {
  kBalanced,
  kDeterministicGreedy,
  kExponentialGreedy,
  kTriangles,
};

class SkPartitioner final : public GreedyStreamingBase {
 public:
  /// `graph` is only required (and only dereferenced) for kTriangles.
  SkPartitioner(VertexId num_vertices, EdgeId num_edges,
                const PartitionConfig& config, SkHeuristic heuristic,
                const Graph* graph = nullptr);

  PartitionId place(VertexId v, std::span<const VertexId> out) override;
  std::string name() const override;

 private:
  /// Edges among v's placed neighbors assigned to partition p.
  double triangle_score(std::span<const VertexId> out, PartitionId p) const;

  SkHeuristic heuristic_;
  const Graph* graph_;
};

}  // namespace spnl
