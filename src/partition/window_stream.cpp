#include "partition/window_stream.hpp"

#include <stdexcept>
#include <unordered_map>

#include "partition/range_partitioner.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

namespace spnl {

namespace {

struct Slot {
  OwnedVertexRecord record;
  /// Number of this record's out-neighbors already placed (kept current by
  /// the reverse index).
  std::uint32_t confidence = 0;
  /// Bumped on every reuse so stale reverse-index entries are ignored.
  std::uint32_t generation = 0;
  bool occupied = false;
};

struct IndexEntry {
  std::uint32_t slot;
  std::uint32_t generation;
};

}  // namespace

WindowStreamResult window_stream_partition(AdjacencyStream& stream,
                                           const PartitionConfig& config,
                                           const WindowStreamOptions& options) {
  if (options.window_size == 0) {
    throw std::invalid_argument("window_stream_partition: window_size must be >= 1");
  }
  const VertexId n = stream.num_vertices();
  const EdgeId m = stream.num_edges();
  const PartitionId k = config.num_partitions;
  const double capacity = partition_capacity(n, m, config);
  const RangeTable logical(n, k);

  Timer timer;
  WindowStreamResult result;
  result.route.assign(n, kUnassigned);
  std::vector<VertexId> loads(k, 0);
  std::vector<double> scores(k);

  std::vector<Slot> window(options.window_size);
  // target id -> slots whose record lists it (for confidence maintenance).
  std::unordered_map<VertexId, std::vector<IndexEntry>> reverse_index;
  std::size_t occupied = 0;
  bool exhausted = false;

  auto fill_window = [&] {
    while (!exhausted && occupied < window.size()) {
      auto record = stream.next();
      if (!record) {
        exhausted = true;
        break;
      }
      for (std::uint32_t s = 0; s < window.size(); ++s) {
        if (window[s].occupied) continue;
        Slot& slot = window[s];
        slot.record = OwnedVertexRecord::from(*record);
        slot.confidence = 0;
        ++slot.generation;
        for (VertexId u : slot.record.out) {
          if (u < n && result.route[u] != kUnassigned) {
            ++slot.confidence;
          } else {
            reverse_index[u].push_back({s, slot.generation});
          }
        }
        slot.occupied = true;
        ++occupied;
        break;
      }
    }
  };

  auto place_slot = [&](std::uint32_t s) {
    Slot& slot = window[s];
    const VertexId v = slot.record.id;
    scores.assign(k, 0.0);
    for (VertexId u : slot.record.out) {
      if (u < n && result.route[u] != kUnassigned) {
        scores[result.route[u]] += 1.0;
      } else if (options.logical_weight > 0.0 && u < n) {
        scores[logical.partition_of(u)] += options.logical_weight;
      }
    }
    PartitionId best = kUnassigned;
    double best_score = 0.0;
    for (PartitionId p = 0; p < k; ++p) {
      if (static_cast<double>(loads[p]) >= capacity) continue;
      const double score = scores[p] * (1.0 - loads[p] / capacity);
      if (best == kUnassigned || score > best_score ||
          (score == best_score && loads[p] < loads[best])) {
        best = p;
        best_score = score;
      }
    }
    if (best == kUnassigned) {
      best = 0;
      for (PartitionId p = 1; p < k; ++p) {
        if (loads[p] < loads[best]) best = p;
      }
    }
    result.route[v] = best;
    ++loads[best];
    slot.occupied = false;
    --occupied;

    // The placement raises the confidence of windowed records listing v.
    if (auto it = reverse_index.find(v); it != reverse_index.end()) {
      for (const IndexEntry& entry : it->second) {
        Slot& dependent = window[entry.slot];
        if (dependent.occupied && dependent.generation == entry.generation) {
          ++dependent.confidence;
        }
      }
      reverse_index.erase(it);
    }
  };

  fill_window();
  while (occupied > 0) {
    // Most-confident-first selection (ties: lowest id keeps near-stream
    // order, which preserves the crawl locality benefits).
    std::uint32_t best_slot = 0;
    bool found = false;
    for (std::uint32_t s = 0; s < window.size(); ++s) {
      if (!window[s].occupied) continue;
      if (!found ||
          window[s].confidence > window[best_slot].confidence ||
          (window[s].confidence == window[best_slot].confidence &&
           window[s].record.id < window[best_slot].record.id)) {
        best_slot = s;
        found = true;
      }
    }
    place_slot(best_slot);
    fill_window();
    // The reverse index only grows with in-flight records; entries for
    // placed slots are pruned lazily via the occupied check above.
  }

  result.partition_seconds = timer.seconds();
  result.peak_bytes = vector_bytes(result.route) + vector_bytes(loads) +
                      window.size() * sizeof(Slot) +
                      reverse_index.size() * (sizeof(VertexId) + sizeof(std::uint32_t));
  return result;
}

}  // namespace spnl
