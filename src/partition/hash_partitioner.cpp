#include "partition/hash_partitioner.hpp"

#include "util/rng.hpp"

namespace spnl {

HashPartitioner::HashPartitioner(VertexId num_vertices, EdgeId num_edges,
                                 const PartitionConfig& config, std::uint64_t seed)
    : GreedyStreamingBase(num_vertices, num_edges, config), seed_(seed) {}

PartitionId HashPartitioner::place(VertexId v, std::span<const VertexId> out) {
  const auto pid = static_cast<PartitionId>(mix64(seed_ ^ v) % num_partitions());
  commit(v, out, pid);
  return pid;
}

}  // namespace spnl
