#include "partition/ldg.hpp"

namespace spnl {

LdgPartitioner::LdgPartitioner(VertexId num_vertices, EdgeId num_edges,
                               const PartitionConfig& config)
    : GreedyStreamingBase(num_vertices, num_edges, config) {}

PartitionId LdgPartitioner::place(VertexId v, std::span<const VertexId> out) {
  const PartitionId k = num_partitions();
  scores_.assign(k, 0.0);
  for (VertexId u : out) {
    if (u < route_.size() && route_[u] != kUnassigned) scores_[route_[u]] += 1.0;
  }
  for (PartitionId i = 0; i < k; ++i) scores_[i] *= remaining_weight(i);
  const PartitionId pid = pick_best(scores_);
  commit(v, out, pid);
  return pid;
}

}  // namespace spnl
