#include "partition/partitioning.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/memory.hpp"

namespace spnl {

double partition_capacity(VertexId num_vertices, EdgeId num_edges,
                          const PartitionConfig& config) {
  if (config.num_partitions == 0) {
    throw std::invalid_argument("partition_capacity: K must be >= 1");
  }
  if (config.slack < 1.0) {
    throw std::invalid_argument("partition_capacity: slack must be >= 1.0");
  }
  const double total = config.balance == BalanceMode::kEdge
                           ? static_cast<double>(num_edges)
                           : static_cast<double>(num_vertices);
  // Guard against zero-capacity partitions on degenerate inputs (e.g. an
  // edgeless graph under edge balance): one load unit is always allowed.
  const double capacity = config.slack * total / config.num_partitions;
  return capacity > 1.0 ? capacity : 1.0;
}

GreedyStreamingBase::GreedyStreamingBase(VertexId num_vertices, EdgeId num_edges,
                                         const PartitionConfig& config)
    : config_(config),
      num_vertices_(num_vertices),
      num_edges_(num_edges),
      capacity_(partition_capacity(num_vertices, num_edges, config)),
      edge_capacity_(config.balance == BalanceMode::kBoth
                         ? std::max(1.0, config.edge_slack *
                                             static_cast<double>(num_edges) /
                                             config.num_partitions)
                         : 0.0),
      route_(num_vertices, kUnassigned),
      vertex_counts_(config.num_partitions, 0),
      edge_counts_(config.num_partitions, 0),
      scores_(config.num_partitions, 0.0) {}

double GreedyStreamingBase::load(PartitionId i) const {
  switch (config_.balance) {
    case BalanceMode::kVertex:
      return static_cast<double>(vertex_counts_[i]);
    case BalanceMode::kEdge:
      return static_cast<double>(edge_counts_[i]);
    case BalanceMode::kBoth: {
      // Binding constraint: the larger utilization, expressed in vertex
      // capacity units so remaining_weight/is_full keep their meaning.
      const double vertex_util = static_cast<double>(vertex_counts_[i]);
      const double edge_util =
          static_cast<double>(edge_counts_[i]) / edge_capacity_ * capacity_;
      return std::max(vertex_util, edge_util);
    }
  }
  return 0.0;
}

PartitionId GreedyStreamingBase::pick_best(std::span<const double> scores) const {
  const PartitionId k = config_.num_partitions;
  PartitionId best = kUnassigned;
  for (PartitionId i = 0; i < k; ++i) {
    if (is_full(i)) continue;
    if (best == kUnassigned || scores[i] > scores[best] ||
        (scores[i] == scores[best] &&
         (load(i) < load(best) || (load(i) == load(best) && i < best)))) {
      best = i;
    }
  }
  if (best != kUnassigned) return best;
  // Every partition is at capacity (possible when slack is tight and loads
  // are granular): overflow into the least-loaded one.
  best = 0;
  for (PartitionId i = 1; i < k; ++i) {
    if (load(i) < load(best)) best = i;
  }
  return best;
}

void GreedyStreamingBase::commit(VertexId v, std::span<const VertexId> out,
                                 PartitionId pid) {
  if (v >= num_vertices_) throw std::out_of_range("commit: vertex id out of range");
  if (route_[v] != kUnassigned) {
    throw std::logic_error("commit: vertex placed twice (stream replayed a record?)");
  }
  route_[v] = pid;
  ++vertex_counts_[pid];
  edge_counts_[pid] += out.size();
}

void GreedyStreamingBase::save_state(StateWriter& out) const {
  out.put_u64(num_vertices_);
  out.put_u64(num_edges_);
  out.put_u32(config_.num_partitions);
  out.put_u32(static_cast<std::uint32_t>(config_.balance));
  out.put_vec(route_);
  out.put_vec(vertex_counts_);
  out.put_vec(edge_counts_);
}

void GreedyStreamingBase::restore_state(StateReader& in) {
  in.expect_u64(num_vertices_, "vertex count");
  in.expect_u64(num_edges_, "edge count");
  in.expect_u32(config_.num_partitions, "partition count");
  in.expect_u32(static_cast<std::uint32_t>(config_.balance), "balance mode");
  auto route = in.get_vec<PartitionId>();
  auto vertex_counts = in.get_vec<VertexId>();
  auto edge_counts = in.get_vec<EdgeId>();
  if (route.size() != route_.size() || vertex_counts.size() != vertex_counts_.size() ||
      edge_counts.size() != edge_counts_.size()) {
    throw CheckpointError("restore_state: table sizes do not match configuration");
  }
  route_ = std::move(route);
  vertex_counts_ = std::move(vertex_counts);
  edge_counts_ = std::move(edge_counts);
}

std::size_t GreedyStreamingBase::memory_footprint_bytes() const {
  return vector_bytes(route_) + vector_bytes(vertex_counts_) +
         vector_bytes(edge_counts_) + vector_bytes(scores_);
}

}  // namespace spnl
