// Partition quality metrics (Sec. VI-A of the paper):
//  * ECR  — edge cut ratio |D|/|E|,
//  * δv   — vertex balance factor max_i |V_i| * K / |V|,
//  * δe   — edge balance factor max_i |E_i| * K / |E| (|E_i| = out-edges of
//           the vertices assigned to P_i, matching vertex partitioning where
//           a vertex carries its adjacency list),
// plus the communication volume used by the PageRank example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/adjacency_stream.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spnl {

struct QualityMetrics {
  EdgeId cut_edges = 0;
  double ecr = 0.0;
  double delta_v = 0.0;
  double delta_e = 0.0;
  std::vector<VertexId> vertices_per_partition;
  std::vector<EdgeId> edges_per_partition;
};

/// Evaluates a complete route table against the graph. Throws if any vertex
/// is unassigned or any partition id >= k.
QualityMetrics evaluate_partition(const Graph& graph,
                                  const std::vector<PartitionId>& route,
                                  PartitionId k);

/// Streaming variant for runs that never materialize the graph: one extra
/// pass over the stream (reset() it first if already consumed). Vertices the
/// stream does not mention count as degree-0; results are identical to the
/// Graph overload whenever the stream covers every vertex.
QualityMetrics evaluate_partition(AdjacencyStream& stream,
                                  const std::vector<PartitionId>& route,
                                  PartitionId k);

/// Total number of cross-partition messages one superstep of a push-style
/// vertex-centric computation (e.g. PageRank) would send: the count of edges
/// (u,v) with route[u] != route[v] — identical to cut_edges for directed
/// graphs, exposed under its systems name for the examples.
EdgeId communication_volume(const Graph& graph, const std::vector<PartitionId>& route);

/// True iff every vertex has a partition id < k.
bool is_complete_assignment(const std::vector<PartitionId>& route, PartitionId k);

/// Ground-truth recovery rate against planted labels: the fraction of
/// vertices whose assigned partition maps onto their true community under
/// the best label matching found. Partition labels are arbitrary, so the
/// metric matches communities to partitions over the C x K confusion matrix
/// by greedy matching (repeatedly take the largest remaining cell, retiring
/// its row and column); when C == K the best cyclic label shift is taken as
/// a floor, which guarantees rate >= 1/K (for every vertex exactly one of
/// the K shifts agrees, so the best shift covers >= n/K vertices). Range is
/// therefore [1/K, 1] for C == K and [0, 1] otherwise; 1.0 means the
/// partition is the planted one up to label renaming. Empty inputs score 1.
/// Throws if sizes mismatch or any label is out of range.
double recovery_rate(const std::vector<PartitionId>& truth,
                     PartitionId num_communities,
                     const std::vector<PartitionId>& route, PartitionId k);

/// Compact "ECR=0.12 dv=1.05 de=2.31" summary for logs.
std::string summarize(const QualityMetrics& metrics);

}  // namespace spnl
