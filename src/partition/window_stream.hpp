// Window-based streaming partitioning in the style of WSGP (Li et al.,
// CCGrid'21 — the paper's Ref. [23]): instead of deciding vertices strictly
// in arrival order, keep a small candidate window and always place the
// vertex with the most already-placed out-neighbors first. Confident
// decisions are made early; hard ones wait until the prefix has grown.
//
// Included as a related-work baseline the paper's buffered/hybrid discussion
// references; scoring is the LDG rule plus an optional SPNL-style logical
// range prior for still-unplaced neighbors.
#pragma once

#include <cstdint>

#include "graph/adjacency_stream.hpp"
#include "partition/partitioning.hpp"

namespace spnl {

struct WindowStreamOptions {
  VertexId window_size = 1024;
  /// Weight of the logical range prior (0 disables; the SPNL transplant).
  double logical_weight = 0.0;
};

struct WindowStreamResult {
  std::vector<PartitionId> route;
  double partition_seconds = 0.0;
  std::size_t peak_bytes = 0;
};

WindowStreamResult window_stream_partition(AdjacencyStream& stream,
                                           const PartitionConfig& config,
                                           const WindowStreamOptions& options = {});

}  // namespace spnl
