#include "partition/restream.hpp"

#include <cmath>
#include <stdexcept>

#include "core/spnl.hpp"
#include "partition/ldg.hpp"
#include "util/rng.hpp"

namespace spnl {

namespace {

/// One re-streaming pass: scoring against the previous pass's complete
/// route table with fresh capacity bookkeeping. Supports the ReLDG and
/// ReFENNEL rules and partial re-streaming (a hash-selected kept subset).
class RestreamPass final : public GreedyStreamingBase {
 public:
  RestreamPass(VertexId num_vertices, EdgeId num_edges, const PartitionConfig& config,
               const std::vector<PartitionId>& previous, const RestreamOptions& options)
      : GreedyStreamingBase(num_vertices, num_edges, config),
        previous_(&previous),
        options_(&options) {
    if (options.rule == RestreamRule::kFennel) {
      fennel_alpha_ =
          num_vertices == 0
              ? 1.0
              : std::sqrt(static_cast<double>(config.num_partitions)) *
                    static_cast<double>(num_edges) /
                    std::pow(static_cast<double>(num_vertices), 1.5);
    }
  }

  PartitionId place(VertexId v, std::span<const VertexId> out) override {
    const PartitionId k = num_partitions();
    const PartitionId prev =
        v < previous_->size() ? (*previous_)[v] : kUnassigned;

    // Partial re-streaming: kept vertices re-commit their previous home
    // (unless it is hard-full, in which case they are re-decided anyway).
    if (prev < k && options_->restream_fraction < 1.0) {
      const double draw =
          static_cast<double>(mix64(options_->selection_seed ^ v) >> 11) *
          0x1.0p-53;
      if (draw >= options_->restream_fraction && !is_full(prev)) {
        commit(v, out, prev);
        return prev;
      }
    }

    scores_.assign(k, 0.0);
    for (VertexId u : out) {
      if (u < previous_->size() && (*previous_)[u] != kUnassigned) {
        scores_[(*previous_)[u]] += 1.0;
      }
    }
    // Inertia: prefer the vertex's previous home on near-ties. Damps the
    // oscillation label-propagation-style refinements are prone to.
    if (prev < k) scores_[prev] += 0.5;

    if (options_->rule == RestreamRule::kLdg) {
      for (PartitionId i = 0; i < k; ++i) scores_[i] *= remaining_weight(i);
    } else {
      constexpr double kGamma = 1.5;
      for (PartitionId i = 0; i < k; ++i) {
        scores_[i] -= fennel_alpha_ * kGamma *
                      std::pow(static_cast<double>(vertex_count(i)), kGamma - 1.0);
      }
    }
    const PartitionId pid = pick_best(scores_);
    commit(v, out, pid);
    return pid;
  }

  std::string name() const override {
    return options_->rule == RestreamRule::kLdg ? "ReLDG" : "ReFENNEL";
  }

 private:
  const std::vector<PartitionId>* previous_;
  const RestreamOptions* options_;
  double fennel_alpha_ = 1.0;
};

void drain(AdjacencyStream& stream, StreamingPartitioner& partitioner) {
  while (auto record = stream.next()) partitioner.place(record->id, record->out);
}

}  // namespace

std::vector<PartitionId> restream_partition(AdjacencyStream& stream,
                                            const PartitionConfig& config,
                                            const RestreamOptions& options) {
  if (options.passes < 1) {
    throw std::invalid_argument("restream_partition: passes must be >= 1");
  }
  if (options.restream_fraction <= 0.0 || options.restream_fraction > 1.0) {
    throw std::invalid_argument("restream_partition: fraction must be in (0, 1]");
  }
  const VertexId n = stream.num_vertices();
  const EdgeId m = stream.num_edges();

  std::vector<PartitionId> route;
  if (options.seed_with_spnl) {
    SpnlOptions spnl_options;
    spnl_options.logical_hints = options.spnl_hints;
    SpnlPartitioner seed(n, m, config, spnl_options);
    drain(stream, seed);
    route = seed.route();
  } else {
    if (options.spnl_hints != nullptr) {
      throw std::invalid_argument(
          "restream_partition: spnl_hints requires seed_with_spnl");
    }
    LdgPartitioner seed(n, m, config);
    drain(stream, seed);
    route = seed.route();
  }

  for (int pass = 1; pass < options.passes; ++pass) {
    stream.reset();
    RestreamPass refine(n, m, config, route, options);
    drain(stream, refine);
    route = refine.route();
  }
  return route;
}

}  // namespace spnl
