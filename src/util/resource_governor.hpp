// Resource governor: enforced memory/deadline budgets with graceful quality
// degradation for the streaming drivers.
//
// The paper's sliding Γ window exists precisely to bound memory (Sec. V-A,
// Table IV) — but a bound that is merely configured is advisory, not
// enforced. The governor makes it enforced: the drivers sample the
// partitioner's precise footprint (memory_footprint_bytes(), the MC metric)
// and process RSS at window-slide boundaries, and on a breach step down a
// degradation ladder instead of OOMing or blowing the deadline:
//
//   kShrinkWindow   halve the Γ window (repeatable until one row)
//   kCoarseSlide    fine -> coarse slide mode (cheaper bookkeeping)
//   kHashFallback   capacity-weighted hash scoring for the rest of the
//                   stream; the Γ window is released entirely
//
// Every applied transition is recorded as a typed DegradationEvent and
// surfaced in RunResult / ParallelRunResult / --perf-json. The ladder trades
// quality for staying up — the partitioner keeps answering and the run
// finishes with a full valid route, which is what a production streaming
// partitioner owes its callers under pressure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace spnl {

/// Rungs of the degradation ladder, ordered from mildest to harshest.
/// kNone means "undegraded"; partitioners report false from
/// apply_degradation() for rungs they have exhausted or do not support.
enum class DegradationStage : std::uint8_t {
  kNone = 0,
  kShrinkWindow = 1,
  kCoarseSlide = 2,
  kHashFallback = 3,
};

const char* degradation_stage_name(DegradationStage stage);

/// Fixed seed for the kHashFallback rung's mix64 vote: the degraded run stays
/// deterministic (and kill-and-resume reproducible) without threading a seed
/// through every partitioner constructor.
inline constexpr std::uint64_t kDegradedHashSeed = 0x9E3779B97F4A7C15ull;

/// What the governor does when a budget is breached.
enum class DegradePolicy : std::uint8_t {
  kLadder,  ///< step down the ladder (default)
  kAbort,   ///< throw BudgetExceededError (caller wants the budget hard)
  kOff,     ///< observe + record samples only, never intervene
};

/// Thrown under DegradePolicy::kAbort when a budget is breached.
class BudgetExceededError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One applied ladder transition.
struct DegradationEvent {
  DegradationStage stage = DegradationStage::kNone;
  std::uint64_t at_placement = 0;
  /// Footprint observed at the triggering sample / after the step applied.
  std::size_t partitioner_bytes = 0;
  std::size_t post_bytes = 0;
  /// Process RSS at the triggering sample (0 when unreadable even through
  /// the getrusage fallback).
  std::size_t rss_bytes = 0;
  std::size_t budget_bytes = 0;
  double elapsed_seconds = 0.0;
  /// "memory" or "deadline".
  std::string reason;
};

/// Compact JSON array of events, spliced into --perf-json by the CLI.
std::string degradation_events_json(const std::vector<DegradationEvent>& events);

/// Parses "4096", "64K", "12M", "1.5G" into bytes. Throws
/// std::invalid_argument on malformed input.
std::size_t parse_byte_size(const std::string& text);

/// Budget enforcement + ladder bookkeeping. Thread-safe: in the parallel
/// driver the producer samples while the watchdog monitor may be recording
/// rescue-driven events.
class ResourceGovernor {
 public:
  struct Options {
    /// Budget on the partitioner's own structures (the MC metric). 0 = off.
    std::size_t memory_budget_bytes = 0;
    /// Wall-clock deadline from governor construction. 0 = off.
    double deadline_seconds = 0.0;
    DegradePolicy policy = DegradePolicy::kLadder;
    /// Placements between samples; footprint accounting is a few adds but
    /// the RSS read walks /proc, so sampling is amortized.
    std::uint64_t sample_interval = 256;
  };

  /// One breach observation handed back to the driver, which owns applying
  /// ladder steps (only it can reach into the partitioner).
  struct Breach {
    bool over_memory = false;
    bool over_deadline = false;
    std::size_t partitioner_bytes = 0;
    std::size_t rss_bytes = 0;
    double elapsed_seconds = 0.0;
  };

  ResourceGovernor() = default;
  explicit ResourceGovernor(const Options& options);

  bool enabled() const {
    return options_.memory_budget_bytes > 0 || options_.deadline_seconds > 0.0;
  }
  bool due(std::uint64_t placements) const {
    return enabled() && placements > 0 && placements % options_.sample_interval == 0;
  }

  /// Crossing-aware variant for batched producers (see Checkpointer::due):
  /// true when [prev, now] crossed at least one sample boundary.
  bool due(std::uint64_t prev, std::uint64_t now) const {
    return enabled() && now / options_.sample_interval > prev / options_.sample_interval;
  }

  /// Records a sample; returns the breach descriptor when a budget is
  /// exceeded (nullopt = within budget). Under DegradePolicy::kAbort a
  /// breach throws BudgetExceededError instead of returning.
  std::optional<Breach> sample(std::size_t partitioner_bytes);

  /// True while `partitioner_bytes` exceeds the memory budget (used by the
  /// drivers' enforcement loop after each applied ladder step).
  bool over_memory_budget(std::size_t partitioner_bytes) const {
    return options_.memory_budget_bytes > 0 &&
           partitioner_bytes > options_.memory_budget_bytes;
  }

  /// Ladder cursor: the harshest stage applied so far / the rung to try
  /// next. next_stage(kNone) == kShrinkWindow; next_stage(kHashFallback) ==
  /// kNone (exhausted).
  static DegradationStage next_stage(DegradationStage after);
  DegradationStage stage() const;
  void set_stage(DegradationStage stage);

  /// The ladder ran out while still over budget; recorded once so the
  /// drivers stop retrying every sample.
  bool exhausted() const;
  void mark_exhausted();

  void record_event(DegradationEvent event);
  std::vector<DegradationEvent> events() const;

  std::uint64_t samples_taken() const;
  std::size_t peak_partitioner_bytes() const;
  const Options& options() const { return options_; }
  double elapsed_seconds() const { return timer_.seconds(); }

 private:
  Options options_;
  Timer timer_;
  mutable std::mutex mutex_;
  std::vector<DegradationEvent> events_;
  DegradationStage stage_ = DegradationStage::kNone;
  bool exhausted_ = false;
  std::uint64_t samples_ = 0;
  std::size_t peak_partitioner_bytes_ = 0;
};

}  // namespace spnl
