#include "util/rng.hpp"

namespace spnl {

std::uint64_t mix64(std::uint64_t x) {
  SplitMix64 sm(x);
  return sm.next();
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256StarStar::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256StarStar::next_below(std::uint64_t bound) {
  // Lemire's method: map a 64-bit draw into [0, bound) via 128-bit multiply,
  // rejecting the small biased region.
  __uint128_t m = static_cast<__uint128_t>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256StarStar::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256StarStar::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace spnl
