#include "util/checked_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>

#include "graph/io.hpp"
#include "util/fault_fs.hpp"

namespace spnl {

namespace {

// Flush threshold: large enough that the text writers see a handful of
// syscalls per megabyte, small enough that a torn-write fault plan can
// target meaningful boundaries.
constexpr std::size_t kFlushBytes = 1u << 20;

}  // namespace

FdWriter::FdWriter(const std::string& path, bool append) : path_(path) {
  const int flags = O_WRONLY | O_CREAT | O_CLOEXEC | (append ? O_APPEND : O_TRUNC);
  fd_ = faultfs::open(path.c_str(), flags, 0644);
  if (fd_ < 0) fail("cannot open for write", errno);
  buffer_.reserve(kFlushBytes);
}

FdWriter::~FdWriter() {
  if (fd_ >= 0) {
    // Destructor path: best-effort, never throws. Callers that care about
    // the final flush call close() explicitly.
    ::close(fd_);
    fd_ = -1;
  }
}

void FdWriter::fail(const std::string& what, int err) const {
  throw IoError(what + ": " + path_ + ": " + std::strerror(err));
}

void FdWriter::append(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
  if (buffer_.size() >= kFlushBytes) flush();
}

void FdWriter::append_char(char c) {
  buffer_.push_back(c);
  if (buffer_.size() >= kFlushBytes) flush();
}

void FdWriter::append_u64(std::uint64_t value) {
  char digits[20];
  const auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), value);
  (void)ec;  // uint64 always fits in 20 digits
  append(digits, static_cast<std::size_t>(end - digits));
}

void FdWriter::flush() {
  if (fd_ < 0) fail("write after close", EBADF);
  std::size_t done = 0;
  while (done < buffer_.size()) {
    const ssize_t n =
        faultfs::write(fd_, buffer_.data() + done, buffer_.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      buffer_.clear();  // don't re-fail forever on the same bytes
      fail("write error", err);
    }
    done += static_cast<std::size_t>(n);
    bytes_written_ += static_cast<std::uint64_t>(n);
  }
  buffer_.clear();
}

void FdWriter::patch(std::uint64_t offset, const void* data, std::size_t size) {
  flush();
  const char* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = faultfs::pwrite(fd_, p + done, size - done,
                                      static_cast<std::int64_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("patch write error", errno);
    }
    done += static_cast<std::size_t>(n);
  }
}

void FdWriter::fsync() {
  flush();
  while (faultfs::fsync(fd_) != 0) {
    if (errno != EINTR) fail("fsync failed", errno);
  }
}

void FdWriter::close() {
  if (fd_ < 0) return;
  flush();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) fail("close failed", errno);
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

AtomicFileWriter::AtomicFileWriter(const std::string& path)
    : path_(path), tmp_(path + ".tmp"), writer_(tmp_) {}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    // Abandoned mid-write (an exception is unwinding): drop the partial tmp
    // so a later reader can't mistake it for anything. Best-effort — a
    // crash before this line leaves a stale tmp, which the next publish
    // simply overwrites.
    ::unlink(tmp_.c_str());
  }
}

void AtomicFileWriter::commit() {
  if (committed_) return;
  writer_.fsync();
  writer_.close();
  if (faultfs::rename(tmp_.c_str(), path_.c_str()) != 0) {
    throw IoError("rename failed: " + tmp_ + " -> " + path_ + ": " +
                  std::strerror(errno));
  }
  committed_ = true;
  fsync_parent_dir(path_);
}

}  // namespace spnl
