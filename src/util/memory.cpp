#include "util/memory.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace spnl {

namespace {
std::size_t read_status_kb(const char* key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  const std::size_t key_len = std::strlen(key);
  while (std::getline(status, line)) {
    if (line.compare(0, key_len, key) == 0) {
      std::istringstream iss(line.substr(key_len));
      std::size_t kb = 0;
      iss >> kb;
      return kb;
    }
  }
  return 0;
}

// Portable fallback when /proc is unavailable: getrusage reports the peak
// RSS (ru_maxrss) on every POSIX system — in KB on Linux, bytes on macOS.
// Keeps the resource governor's RSS sampling degraded-but-working instead
// of silently disabled off-Linux.
std::size_t rusage_peak_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0 || usage.ru_maxrss <= 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}
}  // namespace

std::size_t peak_rss_bytes() {
  if (const std::size_t kb = read_status_kb("VmHWM:")) return kb * 1024;
  return rusage_peak_bytes();
}

std::size_t current_rss_bytes() {
  if (const std::size_t kb = read_status_kb("VmRSS:")) return kb * 1024;
  // No /proc: the peak is the tightest available upper bound on the current
  // RSS; callers budgeting against it degrade conservatively.
  return rusage_peak_bytes();
}

std::string format_bytes(std::size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", value, units[unit]);
  }
  return buf;
}

}  // namespace spnl
