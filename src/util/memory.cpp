#include "util/memory.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace spnl {

namespace {
std::size_t read_status_kb(const char* key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  const std::size_t key_len = std::strlen(key);
  while (std::getline(status, line)) {
    if (line.compare(0, key_len, key) == 0) {
      std::istringstream iss(line.substr(key_len));
      std::size_t kb = 0;
      iss >> kb;
      return kb;
    }
  }
  return 0;
}
}  // namespace

std::size_t peak_rss_bytes() { return read_status_kb("VmHWM:") * 1024; }

std::size_t current_rss_bytes() { return read_status_kb("VmRSS:") * 1024; }

std::string format_bytes(std::size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", value, units[unit]);
  }
  return buf;
}

}  // namespace spnl
