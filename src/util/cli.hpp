// Tiny command-line flag parser shared by benches and examples.
//
// Syntax: --key=value or --key value or bare --flag (boolean true).
// Unknown flags are collected and can be rejected by the caller.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spnl {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// All flag keys seen, for unknown-flag validation.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace spnl
