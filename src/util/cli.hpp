// Tiny command-line flag parser shared by benches and examples.
//
// Syntax: --key=value or --key value or bare --flag (boolean true).
// Unknown flags are collected and can be rejected by the caller.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace spnl {

/// Typed error for malformed flag values (--batch-size=abc, --k=4x). The
/// numeric getters throw it instead of silently parsing a prefix (or 0);
/// front-ends catch it and exit with usage status.
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  /// Throws CliError when the flag is present but not a full valid integer
  /// (empty value, trailing garbage, overflow). Absent flag -> fallback.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  /// Throws CliError when the flag is present but not a full valid number.
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// All flag keys seen, for unknown-flag validation.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace spnl
