// Memory accounting for the MC (memory consumption) metric of the paper.
//
// Two complementary sources:
//  * Precise per-partitioner accounting: every partitioner reports
//    memory_footprint_bytes(), a sum over its own data structures. This is
//    what the MC tables in EXPERIMENTS.md use — it isolates the algorithm's
//    cost from allocator noise, matching the space-complexity analysis of
//    the paper (Table IV).
//  * Process-level peak RSS (Linux /proc/self/status VmHWM), reported by the
//    benches for context.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace spnl {

/// Bytes held by a vector's heap buffer (capacity, not size — capacity is
/// what the allocator actually reserved).
template <typename T>
std::size_t vector_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Peak resident set size of this process in bytes (VmHWM), falling back to
/// getrusage(RUSAGE_SELF).ru_maxrss when /proc is unavailable. Returns 0
/// only when neither source works.
std::size_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS). Without /proc the getrusage
/// peak is returned as a conservative upper bound; 0 only when neither
/// source works.
std::size_t current_rss_bytes();

/// Pretty-print a byte count, e.g. "1.50GB", "12.3MB", "420B".
std::string format_bytes(std::size_t bytes);

}  // namespace spnl
