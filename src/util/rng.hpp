// Deterministic pseudo-random number generation for reproducible experiments.
//
// All generators and partitioners in this library take explicit seeds and use
// SplitMix64 / xoshiro256** rather than std::mt19937 so that results are
// bit-stable across standard library implementations.
#pragma once

#include <cstdint>

namespace spnl {

/// SplitMix64: tiny, fast, passes BigCrush when used to seed other PRNGs.
/// Used directly for hashing and for seeding Xoshiro256StarStar.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit mix; usable as a hash for dependency tables and
/// hash-partitioning. Identical to one SplitMix64 step from `x`.
std::uint64_t mix64(std::uint64_t x);

/// xoshiro256**: the main PRNG. Satisfies std::uniform_random_bit_generator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool next_bool(double p);

 private:
  std::uint64_t s_[4];
};

using Rng = Xoshiro256StarStar;

}  // namespace spnl
