// Process-global, seeded storage-fault injector for the file I/O layer.
//
// Every durable write path in the tree (checkpoint writer, sadj writer,
// route/graph writers, quarantine log) and the mmap open path routes its
// syscalls through the thin wrappers below. With no plan armed the wrappers
// are the raw syscalls behind one relaxed atomic-bool test (the PerfStats
// pattern: a disabled run pays a single predictable branch per call and the
// call sites never change shape). With a plan armed — `--inject-io-faults=`
// on spnl_partition / spnl_convert / spnl_server / spnl_client — operations
// are counted per kind and the plan's deterministic fault schedule fires at
// exact operation indices, so an ENOSPC at the third checkpoint write or a
// SIGKILL inside the sadj body is a reproducible test vector, not a chaos
// monkey.
//
// Plan grammar (comma-separated items; N is a 1-based operation index of the
// named kind, or `rN` for a seeded uniform draw from [1, N]):
//
//   seed:S            seed for the rN draws (default 1; parse-time, so a plan
//                     is fully determined by its string)
//   fail:OP@N[@ERR]   the Nth OP fails once with ERR (default eio; names:
//                     eio enospc eintr eacces emfile enosys, or a number)
//   eintr:OP@N[@R]    EINTR storm: attempts N..N+R-1 of OP return EINTR
//                     (default R=3); a retrying caller then succeeds
//   short:OP@N[@D]    the Nth read/write transfers only ceil(count/D) bytes
//                     (default D=2) — a short transfer, not an error
//   enospc:BYTES      writes succeed until BYTES total bytes (K/M/G suffixes)
//                     have been written, the crossing write is short, and
//                     every later write fails ENOSPC — a filling disk
//   torn:N[@BYTES]    the Nth write writes only min(BYTES, count) bytes
//                     (default half) and the process _exit()s — a torn write
//                     followed by a crash, the classic fsync-ordering trap
//   kill:OP@N         raise SIGKILL immediately before the Nth OP — the
//                     crash-consistency harness's deterministic kill-9 sites
//
// OP is one of: open read write fsync rename mmap.
//
// Faults are injected at the wrapper, so callers exercise their REAL error
// handling: retry loops see genuine EINTR returns, ENOSPC propagates through
// whatever typing the call site applies, and a kill is indistinguishable
// from a power cut at that syscall boundary.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <sys/types.h>

namespace spnl {
namespace faultfs {

/// Operation kinds the injector schedules against.
enum class Op : unsigned {
  kOpen = 0,
  kRead,
  kWrite,
  kFsync,
  kRename,
  kMmap,
};
inline constexpr std::size_t kOpCount = 6;

/// Stable lower-case name ("open", "write", ...) used by the plan grammar
/// and error messages.
const char* op_name(Op op);

/// Exit status used by `torn:` plans (distinguishable from a SIGKILL death
/// in the harness's waitpid bookkeeping).
inline constexpr int kTornExitCode = 86;

/// Parses `spec` and arms the injector. Throws std::runtime_error on bad
/// grammar. An empty spec disarms. Not thread-safe against in-flight I/O —
/// call during startup (the tools configure before opening anything).
void configure(const std::string& spec);

/// Disarms and clears all counters.
void disarm();

namespace detail {
extern std::atomic<bool> g_armed;
}

/// True when a plan is armed. Inline relaxed load — the only cost the
/// wrappers add to an uninstrumented process.
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Total faults injected since configure() (EINTRs, failures, short
/// transfers; kills obviously don't return to be counted).
std::uint64_t injected_faults();

/// Operations of `op` attempted since configure() (counted only while
/// armed).
std::uint64_t op_count(Op op);

// ---------------------------------------------------------------------------
// Syscall wrappers. Signatures mirror POSIX; error returns set errno exactly
// as the raw syscalls do, so call sites keep their existing errno handling.

int open(const char* path, int flags, unsigned mode = 0644);
ssize_t read(int fd, void* buf, std::size_t count);
ssize_t write(int fd, const void* buf, std::size_t count);
ssize_t pwrite(int fd, const void* buf, std::size_t count, std::int64_t offset);
int fsync(int fd);
int rename(const char* from, const char* to);
/// Whole-file read-only mapping (the MmapFile use case). Returns MAP_FAILED
/// with errno set on failure, like ::mmap.
void* mmap_file(std::size_t length, int prot, int flags, int fd);

}  // namespace faultfs
}  // namespace spnl
