#include "util/resource_governor.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/memory.hpp"

namespace spnl {

const char* degradation_stage_name(DegradationStage stage) {
  switch (stage) {
    case DegradationStage::kNone:
      return "none";
    case DegradationStage::kShrinkWindow:
      return "shrink-window";
    case DegradationStage::kCoarseSlide:
      return "coarse-slide";
    case DegradationStage::kHashFallback:
      return "hash-fallback";
  }
  return "unknown";
}

std::string degradation_events_json(const std::vector<DegradationEvent>& events) {
  std::string out = "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const DegradationEvent& e = events[i];
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"stage\":\"%s\",\"reason\":\"%s\",\"at_placement\":%llu,"
                  "\"partitioner_bytes\":%zu,\"post_bytes\":%zu,\"rss_bytes\":%zu,"
                  "\"budget_bytes\":%zu,\"elapsed_seconds\":%.3f}",
                  i == 0 ? "" : ",", degradation_stage_name(e.stage),
                  e.reason.c_str(),
                  static_cast<unsigned long long>(e.at_placement),
                  e.partitioner_bytes, e.post_bytes, e.rss_bytes, e.budget_bytes,
                  e.elapsed_seconds);
    out += buf;
  }
  out += "]";
  return out;
}

std::size_t parse_byte_size(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("parse_byte_size: empty string");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_byte_size: not a number: " + text);
  }
  if (value < 0.0) throw std::invalid_argument("parse_byte_size: negative: " + text);
  double scale = 1.0;
  if (pos < text.size()) {
    std::string suffix = text.substr(pos);
    if (!suffix.empty() && (suffix.back() == 'b' || suffix.back() == 'B')) {
      suffix.pop_back();
    }
    if (suffix.size() != 1) {
      throw std::invalid_argument("parse_byte_size: bad suffix in " + text);
    }
    switch (std::toupper(static_cast<unsigned char>(suffix[0]))) {
      case 'K': scale = 1024.0; break;
      case 'M': scale = 1024.0 * 1024.0; break;
      case 'G': scale = 1024.0 * 1024.0 * 1024.0; break;
      default:
        throw std::invalid_argument("parse_byte_size: bad suffix in " + text);
    }
  }
  return static_cast<std::size_t>(std::llround(value * scale));
}

ResourceGovernor::ResourceGovernor(const Options& options) : options_(options) {
  if (options_.sample_interval == 0) options_.sample_interval = 1;
}

std::optional<ResourceGovernor::Breach> ResourceGovernor::sample(
    std::size_t partitioner_bytes) {
  Breach breach;
  breach.partitioner_bytes = partitioner_bytes;
  breach.elapsed_seconds = timer_.seconds();
  breach.over_memory = over_memory_budget(partitioner_bytes);
  breach.over_deadline = options_.deadline_seconds > 0.0 &&
                         breach.elapsed_seconds > options_.deadline_seconds;
  {
    std::lock_guard lock(mutex_);
    ++samples_;
    if (partitioner_bytes > peak_partitioner_bytes_) {
      peak_partitioner_bytes_ = partitioner_bytes;
    }
  }
  if (!breach.over_memory && !breach.over_deadline) return std::nullopt;
  // RSS only read on a breach — it walks /proc (or falls back to getrusage)
  // and is reporting context, not the enforced budget.
  breach.rss_bytes = current_rss_bytes();
  if (options_.policy == DegradePolicy::kAbort) {
    throw BudgetExceededError(
        std::string("resource budget exceeded (") +
        (breach.over_memory ? "memory" : "deadline") +
        "): partitioner=" + format_bytes(partitioner_bytes) +
        " budget=" + format_bytes(options_.memory_budget_bytes) +
        " elapsed=" + std::to_string(breach.elapsed_seconds) + "s");
  }
  return breach;
}

DegradationStage ResourceGovernor::next_stage(DegradationStage after) {
  switch (after) {
    case DegradationStage::kNone:
      return DegradationStage::kShrinkWindow;
    case DegradationStage::kShrinkWindow:
      return DegradationStage::kCoarseSlide;
    case DegradationStage::kCoarseSlide:
      return DegradationStage::kHashFallback;
    case DegradationStage::kHashFallback:
      return DegradationStage::kNone;  // ladder exhausted
  }
  return DegradationStage::kNone;
}

DegradationStage ResourceGovernor::stage() const {
  std::lock_guard lock(mutex_);
  return stage_;
}

void ResourceGovernor::set_stage(DegradationStage stage) {
  std::lock_guard lock(mutex_);
  if (stage > stage_) stage_ = stage;
}

bool ResourceGovernor::exhausted() const {
  std::lock_guard lock(mutex_);
  return exhausted_;
}

void ResourceGovernor::mark_exhausted() {
  std::lock_guard lock(mutex_);
  exhausted_ = true;
}

void ResourceGovernor::record_event(DegradationEvent event) {
  std::lock_guard lock(mutex_);
  if (event.stage > stage_) stage_ = event.stage;
  events_.push_back(std::move(event));
}

std::vector<DegradationEvent> ResourceGovernor::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::uint64_t ResourceGovernor::samples_taken() const {
  std::lock_guard lock(mutex_);
  return samples_;
}

std::size_t ResourceGovernor::peak_partitioner_bytes() const {
  std::lock_guard lock(mutex_);
  return peak_partitioner_bytes_;
}

}  // namespace spnl
