#include "util/shutdown.hpp"

#include <csignal>

namespace spnl {

namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void shutdown_handler(int) {
  // Async-signal-safe: one relaxed store. After the first signal the
  // handlers are re-armed as one-shot via SA_RESETHAND, so a second
  // SIGINT/SIGTERM falls through to the default disposition and terminates
  // a drain that itself got stuck.
  g_shutdown.store(true, std::memory_order_relaxed);
}

}  // namespace

void arm_shutdown_flag() {
  struct sigaction action = {};
  action.sa_handler = shutdown_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool shutdown_requested() { return g_shutdown.load(std::memory_order_relaxed); }

const std::atomic<bool>& shutdown_flag() { return g_shutdown; }

void reset_shutdown_flag() { g_shutdown.store(false, std::memory_order_relaxed); }

}  // namespace spnl
