// Hot-path instrumentation for the streaming pipeline.
//
// The per-record place() path is the product of this library (the paper's PT
// claim lives or dies there), so the drivers can attribute wall-clock time to
// the stages of every placement: scoring, Γ increments, window advancement,
// commit bookkeeping, and queue/stream wait. Instrumentation is opt-in via a
// nullable PerfStats*: a disabled run pays exactly one predictable
// null-pointer test per stage and touches no clock — the scoring kernel
// itself is unchanged either way.
//
// Besides the timed stages, PerfStats carries a plane of untimed COUNTERS
// for contention observability in the lock-free parallel hot path: CAS
// retries, contended lock acquisitions, and Γ delta-buffer merge traffic.
// Counters are plain adds (no clock), so the structures that maintain them
// (Rct, WatermarkTracker, BoundedQueue) can count on their slow paths and the
// driver folds the totals in after the pipeline joins.
//
// PerfStats is deliberately NOT thread-safe: single-threaded call sites use
// one instance directly, and the parallel driver gives each worker a private
// instance and merge()s them after join (no atomics or shared cache lines on
// the hot path). report() renders a human table; to_json() a machine-readable
// object for BENCH_*.json trajectories.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace spnl {

/// Stages of the streaming hot path, in per-record execution order.
enum class PerfStage : unsigned {
  kQueueWait = 0,    ///< blocked on the stream / bounded queue for the record
  kWindowAdvance,    ///< Γ window slide (slot retirement)
  kScore,            ///< Eq. 5/6 scoring + partition selection
  kCommit,           ///< route/load bookkeeping after the decision
  kGammaIncrement,   ///< Γ row bumps for the placed vertex's out-neighbors
  kGammaPublish,     ///< epoch-local Γ delta merges into the shared window
  kQueueLockWait,    ///< time blocked acquiring the bounded queue's mutex
  kQueueLockHold,    ///< time holding the bounded queue's mutex
};

inline constexpr std::size_t kPerfStageCount = 8;

/// Untimed contention counters for the lock-free parallel hot path.
enum class PerfCounter : unsigned {
  kWatermarkCasRetries = 0,  ///< failed CAS advances of the completion watermark
  kGammaHeadCasRetries,      ///< failed fetch-max CASes on the Γ pending head
  kGammaAdvanceContended,    ///< Γ slides ceded because another worker held the lock
  kGammaDeltaPublishes,      ///< epoch-local delta buffers merged into the window
  kGammaDeltaCells,          ///< non-zero delta cells published
  kGammaDeltaDropped,        ///< delta cells dropped (row retired before publish)
  kRctSharedContended,       ///< contended shared (reader) shard acquisitions
  kRctExclusiveContended,    ///< contended exclusive (writer) shard acquisitions
  kRctExclusiveAcquires,     ///< total exclusive shard acquisitions (hot path)
  kRctClaimCasRetries,       ///< lock-free slot-claim CASes that lost the race
  kRctDecrementCasRetries,   ///< counter-decrement CASes that lost the race
  kQueueLockContended,       ///< bounded-queue mutex acquisitions that blocked
  kQueueLockAcquires,        ///< total bounded-queue mutex acquisitions
};

inline constexpr std::size_t kPerfCounterCount = 13;

/// Stable lower-case stage name (used by report() and to_json()).
const char* perf_stage_name(PerfStage stage);

/// Stable lower-case counter name (used by report() and to_json()).
const char* perf_counter_name(PerfCounter counter);

class PerfStats {
 public:
  void add(PerfStage stage, std::uint64_t nanos, std::uint64_t calls = 1) {
    auto& cell = cells_[static_cast<std::size_t>(stage)];
    cell.nanos += nanos;
    cell.calls += calls;
  }

  void add_count(PerfCounter counter, std::uint64_t value) {
    counters_[static_cast<std::size_t>(counter)] += value;
  }

  std::uint64_t nanos(PerfStage stage) const {
    return cells_[static_cast<std::size_t>(stage)].nanos;
  }
  std::uint64_t calls(PerfStage stage) const {
    return cells_[static_cast<std::size_t>(stage)].calls;
  }
  std::uint64_t count(PerfCounter counter) const {
    return counters_[static_cast<std::size_t>(counter)];
  }

  /// Sum of all stage times (the instrumented fraction of the run).
  std::uint64_t total_nanos() const;

  /// Accumulate another instance (used to fold per-worker stats together;
  /// callers synchronize).
  void merge(const PerfStats& other);

  void reset();

  /// Human-readable per-stage table (time, calls, mean ns/call, share),
  /// followed by the non-zero contention counters.
  std::string report() const;

  /// One-line JSON object:
  ///   {"total_nanos":N,"stages":[{"stage":"score","calls":C,"nanos":N,
  ///    "mean_nanos":M},...],"counters":[{"counter":"...","value":V},...]}
  std::string to_json() const;

 private:
  struct Cell {
    std::uint64_t nanos = 0;
    std::uint64_t calls = 0;
  };
  std::array<Cell, kPerfStageCount> cells_{};
  std::array<std::uint64_t, kPerfCounterCount> counters_{};
};

/// RAII stage timer. With stats == nullptr the constructor and destructor
/// reduce to one branch each — safe to leave in the hot path permanently.
class PerfScope {
 public:
  PerfScope(PerfStats* stats, PerfStage stage) noexcept
      : stats_(stats), stage_(stage) {
    if (stats_ != nullptr) start_ = Clock::now();
  }
  ~PerfScope() {
    if (stats_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - start_)
                          .count();
      stats_->add(stage_, static_cast<std::uint64_t>(ns));
    }
  }

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  using Clock = std::chrono::steady_clock;
  PerfStats* stats_;
  PerfStage stage_;
  Clock::time_point start_;
};

}  // namespace spnl
