#include "util/fault_fs.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <random>
#include <stdexcept>
#include <vector>

#include "util/resource_governor.hpp"  // parse_byte_size

namespace spnl {
namespace faultfs {

namespace detail {
std::atomic<bool> g_armed{false};
}

namespace {

struct FailEntry {
  Op op;
  std::uint64_t nth;
  int err;
};

struct EintrEntry {
  Op op;
  std::uint64_t start;
  std::uint64_t len;
};

struct ShortEntry {
  Op op;
  std::uint64_t nth;
  std::uint64_t divisor;
};

struct TornEntry {
  std::uint64_t nth;       // write index
  std::uint64_t max_bytes;  // UINT64_MAX = half of the requested count
};

struct KillEntry {
  Op op;
  std::uint64_t nth;
};

// The armed plan. Entries are immutable after configure(); only the counters
// mutate, and those are atomics, so concurrent I/O (server handler threads,
// the parallel pipeline's checkpoint thread) consults the plan race-free.
struct Plan {
  std::vector<FailEntry> fails;
  std::vector<EintrEntry> eintrs;
  std::vector<ShortEntry> shorts;
  std::vector<TornEntry> torn;
  std::vector<KillEntry> kills;
  std::uint64_t enospc_budget = UINT64_MAX;  // total write bytes allowed
};

Plan g_plan;
std::array<std::atomic<std::uint64_t>, kOpCount> g_attempts{};
std::atomic<std::uint64_t> g_bytes_written{0};
std::atomic<std::uint64_t> g_injected{0};

[[noreturn]] void grammar_error(const std::string& what) {
  throw std::runtime_error("--inject-io-faults: " + what);
}

Op parse_op(const std::string& name) {
  for (unsigned i = 0; i < kOpCount; ++i) {
    if (name == op_name(static_cast<Op>(i))) return static_cast<Op>(i);
  }
  grammar_error("unknown operation '" + name +
                "' (want open|read|write|fsync|rename|mmap)");
}

int parse_errno(const std::string& name) {
  if (name == "eio") return EIO;
  if (name == "enospc") return ENOSPC;
  if (name == "eintr") return EINTR;
  if (name == "eacces") return EACCES;
  if (name == "emfile") return EMFILE;
  if (name == "enosys") return ENOSYS;
  try {
    std::size_t used = 0;
    const int value = std::stoi(name, &used);
    if (used != name.size() || value <= 0) grammar_error("bad errno '" + name + "'");
    return value;
  } catch (const std::logic_error&) {
    grammar_error("bad errno '" + name + "'");
  }
}

// Operation index: a plain integer, or "rN" for a seeded uniform draw from
// [1, N]. Draws consume `rng` in item order, so a plan string (with its
// seed) names one exact schedule.
std::uint64_t parse_index(const std::string& token, std::mt19937_64& rng) {
  std::string digits = token;
  bool randomized = false;
  if (!token.empty() && token[0] == 'r') {
    randomized = true;
    digits = token.substr(1);
  }
  std::uint64_t value = 0;
  try {
    std::size_t used = 0;
    value = std::stoull(digits, &used);
    if (used != digits.size()) grammar_error("bad operation index '" + token + "'");
  } catch (const std::logic_error&) {
    grammar_error("bad operation index '" + token + "'");
  }
  if (value == 0) grammar_error("operation indices are 1-based: '" + token + "'");
  if (!randomized) return value;
  return std::uniform_int_distribution<std::uint64_t>(1, value)(rng);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t next = text.find(sep, pos);
    if (next == std::string::npos) next = text.size();
    out.push_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

void reset_counters() {
  for (auto& a : g_attempts) a.store(0, std::memory_order_relaxed);
  g_bytes_written.store(0, std::memory_order_relaxed);
  g_injected.store(0, std::memory_order_relaxed);
}

// Consults the armed plan for attempt `n` of `op`. Returns an errno to
// inject (0 = proceed), and via `clamp` an optional byte cap for the
// transfer. May not return at all (kill/torn).
int consult(Op op, std::uint64_t n, const void* buf, std::size_t count, int fd,
            std::size_t* clamp) {
  for (const KillEntry& k : g_plan.kills) {
    if (k.op == op && k.nth == n) {
      // A real SIGKILL: the process dies at this syscall boundary exactly as
      // it would under `kill -9`, with no atexit handlers, no stream
      // flushing, no unwinding.
      ::raise(SIGKILL);
    }
  }
  for (const FailEntry& f : g_plan.fails) {
    if (f.op == op && f.nth == n) {
      g_injected.fetch_add(1, std::memory_order_relaxed);
      return f.err;
    }
  }
  for (const EintrEntry& e : g_plan.eintrs) {
    if (e.op == op && n >= e.start && n < e.start + e.len) {
      g_injected.fetch_add(1, std::memory_order_relaxed);
      return EINTR;
    }
  }
  if (op == Op::kWrite) {
    for (const TornEntry& t : g_plan.torn) {
      if (t.nth == n) {
        std::size_t keep = t.max_bytes == UINT64_MAX
                               ? count / 2
                               : static_cast<std::size_t>(
                                     t.max_bytes < count ? t.max_bytes : count);
        // Tear the write, then die without flushing anything else: the bytes
        // that made it are whatever the kernel got, the rest never existed.
        if (keep > 0) {
          const ssize_t rc = ::write(fd, buf, keep);
          (void)rc;
        }
        ::_exit(kTornExitCode);
      }
    }
    const std::uint64_t budget = g_plan.enospc_budget;
    if (budget != UINT64_MAX) {
      const std::uint64_t used = g_bytes_written.load(std::memory_order_relaxed);
      if (used >= budget) {
        g_injected.fetch_add(1, std::memory_order_relaxed);
        return ENOSPC;
      }
      const std::uint64_t room = budget - used;
      if (room < count && clamp != nullptr) {
        g_injected.fetch_add(1, std::memory_order_relaxed);
        *clamp = static_cast<std::size_t>(room);
      }
    }
  }
  if (op == Op::kRead || op == Op::kWrite) {
    for (const ShortEntry& s : g_plan.shorts) {
      if (s.op == op && s.nth == n && count > 1 && clamp != nullptr) {
        g_injected.fetch_add(1, std::memory_order_relaxed);
        const std::size_t cut = (count + s.divisor - 1) / s.divisor;
        if (cut < *clamp) *clamp = cut;
      }
    }
  }
  return 0;
}

// Shared prologue: count the attempt and consult the plan. Returns false
// (with errno set) when the op must fail.
bool admit(Op op, const void* buf, std::size_t count, int fd,
           std::size_t* clamp) {
  const std::uint64_t n =
      g_attempts[static_cast<std::size_t>(op)].fetch_add(
          1, std::memory_order_relaxed) +
      1;
  const int err = consult(op, n, buf, count, fd, clamp);
  if (err != 0) {
    errno = err;
    return false;
  }
  return true;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kOpen: return "open";
    case Op::kRead: return "read";
    case Op::kWrite: return "write";
    case Op::kFsync: return "fsync";
    case Op::kRename: return "rename";
    case Op::kMmap: return "mmap";
  }
  return "?";
}

void configure(const std::string& spec) {
  disarm();
  if (spec.empty()) return;

  // Two passes: the seed must be known before any rN draw, wherever it
  // appears in the string.
  std::uint64_t seed = 1;
  for (const std::string& item : split(spec, ',')) {
    if (item.rfind("seed:", 0) == 0) {
      const std::string value = item.substr(5);
      try {
        std::size_t used = 0;
        seed = std::stoull(value, &used);
        if (used != value.size()) grammar_error("bad seed '" + value + "'");
      } catch (const std::logic_error&) {
        grammar_error("bad seed '" + value + "'");
      }
    }
  }
  std::mt19937_64 rng(seed);

  Plan plan;
  for (const std::string& item : split(spec, ',')) {
    if (item.empty() || item.rfind("seed:", 0) == 0) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      grammar_error("expected key:value in '" + item + "'");
    }
    const std::string key = item.substr(0, colon);
    const std::vector<std::string> parts = split(item.substr(colon + 1), '@');
    if (key == "fail") {
      if (parts.size() < 2 || parts.size() > 3) grammar_error("fail wants OP@N[@ERR]");
      plan.fails.push_back({parse_op(parts[0]), parse_index(parts[1], rng),
                            parts.size() == 3 ? parse_errno(parts[2]) : EIO});
    } else if (key == "eintr") {
      if (parts.size() < 2 || parts.size() > 3) grammar_error("eintr wants OP@N[@R]");
      EintrEntry e{parse_op(parts[0]), parse_index(parts[1], rng), 3};
      if (parts.size() == 3) e.len = parse_index(parts[2], rng);
      plan.eintrs.push_back(e);
    } else if (key == "short") {
      if (parts.size() < 2 || parts.size() > 3) grammar_error("short wants OP@N[@D]");
      ShortEntry s{parse_op(parts[0]), parse_index(parts[1], rng), 2};
      if (parts.size() == 3) s.divisor = parse_index(parts[2], rng);
      if (s.op != Op::kRead && s.op != Op::kWrite) {
        grammar_error("short applies to read|write only");
      }
      plan.shorts.push_back(s);
    } else if (key == "enospc") {
      if (parts.size() != 1) grammar_error("enospc wants BYTES");
      try {
        plan.enospc_budget = parse_byte_size(parts[0]);
      } catch (const std::invalid_argument& e) {
        grammar_error(e.what());
      }
    } else if (key == "torn") {
      if (parts.size() < 1 || parts.size() > 2) grammar_error("torn wants N[@BYTES]");
      TornEntry t{parse_index(parts[0], rng), UINT64_MAX};
      if (parts.size() == 2) {
        try {
          t.max_bytes = parse_byte_size(parts[1]);
        } catch (const std::invalid_argument& e) {
          grammar_error(e.what());
        }
      }
      plan.torn.push_back(t);
    } else if (key == "kill") {
      if (parts.size() != 2) grammar_error("kill wants OP@N");
      plan.kills.push_back({parse_op(parts[0]), parse_index(parts[1], rng)});
    } else {
      grammar_error("unknown key '" + key + "'");
    }
  }

  g_plan = std::move(plan);
  reset_counters();
  detail::g_armed.store(true, std::memory_order_release);
}

void disarm() {
  detail::g_armed.store(false, std::memory_order_release);
  g_plan = Plan{};
  reset_counters();
}

std::uint64_t injected_faults() {
  return g_injected.load(std::memory_order_relaxed);
}

std::uint64_t op_count(Op op) {
  return g_attempts[static_cast<std::size_t>(op)].load(std::memory_order_relaxed);
}

int open(const char* path, int flags, unsigned mode) {
  if (armed()) {
    if (!admit(Op::kOpen, nullptr, 0, -1, nullptr)) return -1;
  }
  return ::open(path, flags, static_cast<mode_t>(mode));
}

ssize_t read(int fd, void* buf, std::size_t count) {
  if (armed()) {
    std::size_t clamp = count;
    if (!admit(Op::kRead, buf, count, fd, &clamp)) return -1;
    return ::read(fd, buf, clamp);
  }
  return ::read(fd, buf, count);
}

ssize_t write(int fd, const void* buf, std::size_t count) {
  if (armed()) {
    std::size_t clamp = count;
    if (!admit(Op::kWrite, buf, count, fd, &clamp)) return -1;
    const ssize_t n = ::write(fd, buf, clamp);
    if (n > 0) {
      g_bytes_written.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
    }
    return n;
  }
  return ::write(fd, buf, count);
}

ssize_t pwrite(int fd, const void* buf, std::size_t count, std::int64_t offset) {
  if (armed()) {
    std::size_t clamp = count;
    if (!admit(Op::kWrite, buf, count, fd, &clamp)) return -1;
    const ssize_t n = ::pwrite(fd, buf, clamp, static_cast<off_t>(offset));
    if (n > 0) {
      g_bytes_written.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
    }
    return n;
  }
  return ::pwrite(fd, buf, count, static_cast<off_t>(offset));
}

int fsync(int fd) {
  if (armed()) {
    if (!admit(Op::kFsync, nullptr, 0, fd, nullptr)) return -1;
  }
  return ::fsync(fd);
}

int rename(const char* from, const char* to) {
  if (armed()) {
    if (!admit(Op::kRename, nullptr, 0, -1, nullptr)) return -1;
  }
  return ::rename(from, to);
}

void* mmap_file(std::size_t length, int prot, int flags, int fd) {
  if (armed()) {
    if (!admit(Op::kMmap, nullptr, length, fd, nullptr)) return MAP_FAILED;
  }
  return ::mmap(nullptr, length, prot, flags, fd, 0);
}

}  // namespace faultfs
}  // namespace spnl
