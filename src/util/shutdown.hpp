// Process-wide graceful-shutdown flag shared by the CLI tools and the
// partitioning daemon.
//
// arm_shutdown_flag() installs SIGINT/SIGTERM handlers whose only action is
// setting a process-global atomic (the async-signal-safe subset — no locks,
// no allocation, no I/O from the handler). Long-running loops poll
// shutdown_requested() at record/accept granularity and wind down cleanly:
// spnl_partition finishes the in-flight record and writes a final
// checkpoint; spnl_server stops accepting and drains every live session to
// its checkpoint directory. A second signal while winding down restores the
// default disposition, so a stuck drain can still be killed the ordinary
// way.
#pragma once

#include <atomic>

namespace spnl {

/// Installs the SIGINT/SIGTERM -> flag handlers (idempotent).
void arm_shutdown_flag();

/// True once a SIGINT/SIGTERM arrived after arm_shutdown_flag().
bool shutdown_requested();

/// The flag itself, for code that polls through a pointer (the streaming
/// drivers take `const std::atomic<bool>*` so tests can drive interruption
/// without raising real signals).
const std::atomic<bool>& shutdown_flag();

/// Clears the flag (tests; also lets a drained-and-restarted in-process
/// server distinguish a fresh signal from the one it already honored).
void reset_shutdown_flag();

/// Distinct exit code for "interrupted by signal but wound down cleanly"
/// (route/checkpoint state consistent) — distinguishable from success (0),
/// errors (1) and usage (2).
inline constexpr int kExitInterrupted = 3;

}  // namespace spnl
