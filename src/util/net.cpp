#include "util/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace spnl {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

/// Waits for `events` on `fd`; false on timeout, throws on poll error.
bool wait_fd(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;  // signal (e.g. the drain SIGTERM) — retry
    throw_errno("poll");
  }
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw NetError("unix socket path too long (" + std::to_string(path.size()) +
                   " >= " + std::to_string(sizeof(addr.sun_path)) + "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  const std::string host = endpoint.host.empty() ? "127.0.0.1" : endpoint.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("endpoint: bad IPv4 host '" + host + "'");
  }
  return addr;
}

int open_socket(Endpoint::Kind kind) {
  const int fd =
      ::socket(kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET,
               SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.kind = Kind::kUnix;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty()) throw NetError("endpoint: empty unix path in '" + spec + "'");
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    endpoint.kind = Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon + 1 == rest.size()) {
      throw NetError("endpoint: want tcp:<host>:<port> in '" + spec + "'");
    }
    endpoint.host = rest.substr(0, colon);
    // Whole-token parse: stoul accepted "80abc" (and leading whitespace/sign),
    // silently connecting to a different port than the operator wrote.
    const std::string port_str = rest.substr(colon + 1);
    std::uint32_t port = 0;
    const char* port_end = port_str.data() + port_str.size();
    auto [next, ec] = std::from_chars(port_str.data(), port_end, port);
    if (ec != std::errc() || next != port_end || port > 65535) {
      throw NetError("endpoint: bad port in '" + spec + "'");
    }
    endpoint.port = static_cast<std::uint16_t>(port);
    return endpoint;
  }
  throw NetError("endpoint: want unix:<path> or tcp:<host>:<port>, got '" + spec + "'");
}

std::string Endpoint::describe() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + (host.empty() ? std::string("127.0.0.1") : host) + ":" +
         std::to_string(port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

IoStatus Socket::read_exact(void* buf, std::size_t size, int timeout_ms) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < size) {
    if (!wait_fd(fd_, POLLIN, timeout_ms)) {
      if (got > 0) throw NetError("read: timed out mid-message");
      return IoStatus::kTimeout;
    }
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got > 0) throw NetError("read: peer closed mid-message (torn read)");
      return IoStatus::kEof;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_errno("recv");
  }
  return IoStatus::kOk;
}

void Socket::write_all(const void* buf, std::size_t size, int timeout_ms) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < size) {
    if (!wait_fd(fd_, POLLOUT, timeout_ms)) {
      throw NetError("write: timed out (peer not draining)");
    }
    // MSG_NOSIGNAL: a peer that vanished mid-write surfaces as EPIPE, not a
    // process-killing SIGPIPE — one misbehaving client must never take the
    // daemon down.
    const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    throw_errno("send");
  }
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Socket connect_endpoint(const Endpoint& endpoint, int timeout_ms) {
  Socket sock(open_socket(endpoint.kind));
  set_nonblocking(sock.fd());

  int rc;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = make_unix_addr(endpoint.path);
    rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } else {
    const sockaddr_in addr = make_tcp_addr(endpoint);
    rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }
  if (rc < 0 && errno != EINPROGRESS && errno != EAGAIN) {
    throw_errno("connect " + endpoint.describe());
  }
  if (rc < 0) {
    if (!wait_fd(sock.fd(), POLLOUT, timeout_ms)) {
      throw NetError("connect " + endpoint.describe() + ": timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      throw NetError("connect " + endpoint.describe() + ": " + std::strerror(err));
    }
  }
  return sock;
}

ListenSocket::ListenSocket(const Endpoint& endpoint, int backlog)
    : fd_(open_socket(endpoint.kind)), endpoint_(endpoint) {
  try {
    if (endpoint_.kind == Endpoint::Kind::kUnix) {
      ::unlink(endpoint_.path.c_str());  // stale socket from a crashed server
      const sockaddr_un addr = make_unix_addr(endpoint_.path);
      if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        throw_errno("bind " + endpoint_.describe());
      }
    } else {
      const int one = 1;
      ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      const sockaddr_in addr = make_tcp_addr(endpoint_);
      if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        throw_errno("bind " + endpoint_.describe());
      }
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        endpoint_.port = ntohs(bound.sin_port);
      }
    }
    if (::listen(fd_, backlog) < 0) throw_errno("listen " + endpoint_.describe());
    set_nonblocking(fd_);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

ListenSocket::~ListenSocket() { close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), endpoint_(std::move(other.endpoint_)) {
  other.fd_ = -1;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    other.fd_ = -1;
  }
  return *this;
}

std::optional<Socket> ListenSocket::accept(int timeout_ms) {
  if (!wait_fd(fd_, POLLIN, timeout_ms)) return std::nullopt;
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return std::nullopt;  // raced away; the accept loop just re-polls
    }
    throw_errno("accept");
  }
  return Socket(fd);
}

void ListenSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (endpoint_.kind == Endpoint::Kind::kUnix) {
      ::unlink(endpoint_.path.c_str());
    }
  }
}

}  // namespace spnl
