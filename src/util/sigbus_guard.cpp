#include "util/sigbus_guard.hpp"

#include <signal.h>

#include <atomic>
#include <mutex>

namespace spnl {

namespace {

// Innermost active guard per thread. The handler walks outward until a
// guard's range contains the faulting address, so nested guards (a header
// check inside a larger decode pass) resolve to the tightest owner.
thread_local SigbusGuard* t_top_guard = nullptr;

std::once_flag g_install_once;
std::atomic<bool> g_installed{false};

}  // namespace

// Friend of SigbusGuard: finds the owning guard for `addr` on this thread
// and siglongjmps through it (never returns in that case). Returns normally
// when no active guard covers the address — the fault is not ours.
void sigbus_guard_handler_hook(void* addr) {
  const char* fault = static_cast<const char*>(addr);
  for (SigbusGuard* g = t_top_guard; g != nullptr; g = g->prev_) {
    if (fault == nullptr || (fault >= g->begin_ && fault < g->end_)) {
      // A null si_addr (some kernels/filesystems omit it) is attributed to
      // the innermost guard: a SIGBUS while a guard is armed is, with
      // overwhelming likelihood, the mapping it protects.
      g->tripped_ = true;
      g->fault_offset_ =
          fault != nullptr && fault >= g->begin_
              ? static_cast<std::size_t>(fault - g->begin_)
              : 0;
      siglongjmp(g->env_, 1);
    }
  }
}

namespace {

void sigbus_handler(int sig, siginfo_t* info, void* /*uctx*/) {
  // Async-signal-safety: the hook touches only TLS, POD fields and
  // siglongjmp. If it returns, the fault is outside every guarded range —
  // restore the default disposition and re-raise so a real bug still
  // crashes loudly with the right signal.
  sigbus_guard_handler_hook(info != nullptr ? info->si_addr : nullptr);
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void install_handler() {
  struct sigaction sa{};
  sa.sa_sigaction = sigbus_handler;
  sigemptyset(&sa.sa_mask);
  // SA_NODEFER keeps SIGBUS unblocked inside the handler, which is what
  // lets sigsetjmp(env, 0) skip the per-call sigprocmask: the mask is never
  // changed, so there is nothing to restore on the jump.
  sa.sa_flags = SA_SIGINFO | SA_NODEFER;
  if (::sigaction(SIGBUS, &sa, nullptr) == 0) {
    g_installed.store(true, std::memory_order_release);
  }
}

}  // namespace

SigbusGuard::SigbusGuard(const void* data, std::size_t size) noexcept
    : begin_(static_cast<const char*>(data)),
      end_(static_cast<const char*>(data) + size),
      prev_(t_top_guard) {
  std::call_once(g_install_once, install_handler);
  t_top_guard = this;
}

SigbusGuard::~SigbusGuard() noexcept { t_top_guard = prev_; }

bool sigbus_handler_installed() noexcept {
  return g_installed.load(std::memory_order_acquire);
}

}  // namespace spnl
