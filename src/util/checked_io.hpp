// Hardened, fault-injectable file writers.
//
// Every durable artifact the partitioner produces (checkpoints, sadj
// conversions, route tables, graph exports, the quarantine log) used to go
// through its own ad-hoc ofstream or fd loop — several of which never
// checked stream state, so a full disk "succeeded". These two classes give
// all of them one write path with the properties storage faults demand:
//
//  * every byte is written through faultfs::write with short-write and EINTR
//    retry, so an injected EINTR storm or a genuinely interrupted syscall is
//    absorbed, and a persistent error (ENOSPC, EIO) surfaces as a typed
//    IoError naming the file and the errno — never a silent success;
//  * close() checks the final flush AND the close itself (NFS and
//    quota-on-close failures land there);
//  * AtomicFileWriter implements the PR-1 crash-atomic publish protocol —
//    write <path>.tmp, fsync, close, rename over <path>, fsync the parent
//    directory — so a crash (or an injected kill-9) at ANY syscall boundary
//    leaves either the old file intact or the new one complete, never a torn
//    artifact at the published path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spnl {

/// Buffered append-only writer over a raw fd. All errors throw IoError
/// (graph/io.hpp) with the path and strerror text. The destructor closes
/// best-effort without throwing — call close() explicitly to observe
/// errors (writers that skip it are fire-and-forget by design, like the
/// quarantine log's drop-counting wrapper).
class FdWriter {
 public:
  /// Opens `path` for writing (O_CREAT, truncating by default).
  explicit FdWriter(const std::string& path, bool append = false);
  ~FdWriter();

  FdWriter(const FdWriter&) = delete;
  FdWriter& operator=(const FdWriter&) = delete;

  void append(const void* data, std::size_t size);
  void append(std::string_view text) { append(text.data(), text.size()); }
  void append_char(char c);
  /// Decimal text, no allocation (std::to_chars).
  void append_u64(std::uint64_t value);

  /// Drains the buffer to the fd (short-write/EINTR-retrying). On a write
  /// error the buffered bytes are discarded before throwing, so a caller
  /// that swallows the error (quarantine log) doesn't re-fail forever on
  /// the same bytes.
  void flush();

  /// Flush, then overwrite `size` bytes at absolute `offset` (pwrite): the
  /// sadj writer patches its record count into the header after the body.
  void patch(std::uint64_t offset, const void* data, std::size_t size);

  void fsync();

  /// Flush + close, checking both. Idempotent.
  void close();

  const std::string& path() const { return path_; }
  /// Bytes successfully handed to the kernel so far (excludes buffered).
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  [[noreturn]] void fail(const std::string& what, int err) const;

  std::string path_;
  int fd_ = -1;
  std::vector<char> buffer_;
  std::uint64_t bytes_written_ = 0;
};

/// Crash-atomic file publish: writes to `<path>.tmp` and renames into place
/// only after the data is on stable storage. Abandoning the object (scope
/// exit without commit(), e.g. after a mid-write throw) unlinks the tmp file
/// best-effort; the published path is never touched until commit().
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(const std::string& path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  FdWriter& out() { return writer_; }

  /// flush + fsync + close + rename(tmp, path) + fsync(parent dir).
  /// Throws IoError on any failure; the destructor then removes the partial
  /// tmp file (a crash that skips the destructor leaves a stale tmp, which
  /// the next publish simply overwrites).
  void commit();

  bool committed() const { return committed_; }

 private:
  std::string path_;
  std::string tmp_;
  FdWriter writer_;
  bool committed_ = false;
};

/// fsyncs the directory containing `path` so a just-renamed file survives a
/// power cut (best-effort: some filesystems reject directory fsync, which
/// leaves us no worse than before).
void fsync_parent_dir(const std::string& path);

}  // namespace spnl
