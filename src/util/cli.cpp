#include "util/cli.hpp"

#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace spnl {

namespace {

// std::from_chars with a whole-string match: "4x", "abc", "" and overflow all
// fail instead of yielding a silent prefix parse the way strtoll/strtod with
// a null endptr did.
template <typename T>
T parse_full(const std::string& key, const std::string& value) {
  T parsed{};
  const char* begin = value.data();
  const char* end = begin + value.size();
  auto [next, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc() || next != end || value.empty()) {
    throw CliError("--" + key + ": invalid numeric value '" + value + "'");
  }
  return parsed;
}

}  // namespace

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return parse_full<std::int64_t>(key, it->second);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return parse_full<double>(key, it->second);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliArgs::keys() const {
  std::vector<std::string> out;
  out.reserve(flags_.size());
  for (const auto& [k, _] : flags_) out.push_back(k);
  return out;
}

}  // namespace spnl
