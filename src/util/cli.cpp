#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace spnl {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliArgs::keys() const {
  std::vector<std::string> out;
  out.reserve(flags_.size());
  for (const auto& [k, _] : flags_) out.push_back(k);
  return out;
}

}  // namespace spnl
