#include "util/table_printer.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace spnl {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TablePrinter: no headers");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row has " +
                                std::to_string(cells.size()) + " cells, want " +
                                std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt(std::size_t v) { return std::to_string(v); }

std::string TablePrinter::fmt(int v) { return std::to_string(v); }

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::print() const { std::cout << to_string() << std::flush; }

}  // namespace spnl
