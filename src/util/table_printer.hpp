// Minimal fixed-width table formatting for the bench harness.
//
// The benches reproduce the paper's tables (Table III/IV/V) and figure data
// series as plain-text tables on stdout; this utility keeps all of them
// aligned and consistent.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace spnl {

class TablePrinter {
 public:
  /// Column headers fix the column count. Widths adapt to contents.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Add a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::size_t v);
  static std::string fmt(int v);

  /// Render the full table (header, separator, rows) as a string.
  std::string to_string() const;

  /// Print to stdout.
  void print() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spnl
