// Minimal POSIX socket layer for the partitioning service: RAII fd wrappers,
// unix-domain and loopback-TCP endpoints, and poll-based timed I/O.
//
// Design constraints, driven by the server's robustness contract
// (docs/server.md): every blocking operation takes an explicit timeout so a
// slow-loris peer can never wedge a handler thread; every failure mode is a
// typed NetError (callers distinguish "peer went away" — kEof from
// read_exact — from "wire is garbage", which the frame codec layers on top);
// and sockets are move-only owners so a thrown exception can never leak an
// fd across the soak test's hundreds of connections.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace spnl {

/// Typed error for every socket-layer failure: refused/failed connects,
/// send/recv errors, bind/listen failures, malformed endpoint specs.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parseable server address: "unix:<path>" or "tcp:<host>:<port>".
/// TCP is intended for loopback/lab use; the daemon speaks the same framed
/// protocol over both.
struct Endpoint {
  enum class Kind : std::uint8_t { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;           ///< unix socket path (kind == kUnix)
  std::string host;           ///< kind == kTcp
  std::uint16_t port = 0;     ///< kind == kTcp; 0 = ephemeral (server only)

  /// Parses the spec; throws NetError naming the malformed part.
  static Endpoint parse(const std::string& spec);
  std::string describe() const;
};

/// Outcome of a timed read: distinguishes data, orderly shutdown by the
/// peer, and timeout — three situations the server reacts to differently
/// (keep reading / detach session / close slow connection).
enum class IoStatus : std::uint8_t { kOk, kEof, kTimeout };

/// Move-only owner of a connected socket fd with poll-based timed I/O.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Reads exactly `size` bytes unless the peer shuts down or the deadline
  /// passes. kEof with partial data already consumed is reported as a
  /// NetError ("torn read") — an orderly EOF is only clean on a message
  /// boundary, i.e. at byte 0. Hard socket errors throw NetError.
  IoStatus read_exact(void* buf, std::size_t size, int timeout_ms);

  /// Writes all of `buf` within the deadline; throws NetError on error,
  /// peer reset, or timeout (a blocked peer past the deadline is treated as
  /// dead — the server never queues unboundedly on a slow reader).
  void write_all(const void* buf, std::size_t size, int timeout_ms);

  /// Half-close of the write side (client end-of-stream signalling in
  /// tests; the framed protocol itself uses explicit Bye frames).
  void shutdown_write();

 private:
  int fd_ = -1;
};

/// Connects to `endpoint` within `timeout_ms`; throws NetError on refusal,
/// unreachable path, or timeout.
Socket connect_endpoint(const Endpoint& endpoint, int timeout_ms);

/// Move-only listening socket. For unix endpoints a stale socket file left
/// by a previous (crashed) server instance is unlinked before bind, and the
/// path is unlinked again on destruction.
class ListenSocket {
 public:
  ListenSocket() = default;
  explicit ListenSocket(const Endpoint& endpoint, int backlog = 64);
  ~ListenSocket();

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Accepts one connection; nullopt on timeout (the server's accept loop
  /// uses short timeouts so drain/shutdown flags are polled promptly).
  std::optional<Socket> accept(int timeout_ms);

  /// The endpoint clients should dial: for tcp port 0 requests, `port` is
  /// rewritten to the kernel-assigned listening port after bind.
  const Endpoint& endpoint() const { return endpoint_; }

  void close();

 private:
  int fd_ = -1;
  Endpoint endpoint_;
};

}  // namespace spnl
