// Bounded blocking multi-producer/multi-consumer queue.
//
// Used by the parallel streaming driver (Sec. V-B of the paper): one producer
// thread pushes adjacency-list records in vertex-id order; M worker threads
// pop and compute placement scores. close() signals end-of-stream; pop()
// returns nullopt once the queue is both closed and drained.
// The timed variants (push_for / try_pop_for) and abort() exist for the
// pipeline watchdog: with them no thread ever blocks on the queue
// unboundedly — a wedged peer surfaces as a timeout the caller can act on,
// and abort() tears the whole pipeline down, waking every waiter and
// discarding undelivered items (unlike close(), which drains them).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace spnl {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false if the queue was closed
  /// (the item is dropped — pushing after close is a caller bug but must not
  /// deadlock).
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || done_(); });
    if (done_()) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Timed push. Moves from `item` and returns true only on success; on
  /// timeout, close or abort the item is left intact so the caller can retry
  /// (after checking aborted()/closed()) or dispose of it.
  template <typename Rep, typename Period>
  bool push_for(T& item, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    if (!not_full_.wait_for(lock, timeout,
                            [&] { return items_.size() < capacity_ || done_(); })) {
      return false;  // timed out while full
    }
    if (done_()) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  /// After abort() returns nullopt immediately, dropping undelivered items.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_ || aborted_; });
    if (aborted_ || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt if empty (regardless of closed state).
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (aborted_ || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Timed pop: nullopt on timeout, abort, or closed-and-drained — callers
  /// distinguish "retry" from "stop" via finished().
  template <typename Rep, typename Period>
  std::optional<T> try_pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return !items_.empty() || closed_ || aborted_; });
    if (aborted_ || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Ends the stream: blocked consumers wake up and drain remaining items;
  /// subsequent pops return nullopt once empty.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Kills the stream: every waiter (producers AND consumers) wakes up,
  /// pending items are discarded, pushes fail. Unlike close(), nothing is
  /// drained — this is the watchdog's "pipeline is dead" teardown.
  void abort() {
    {
      std::lock_guard lock(mutex_);
      aborted_ = true;
      items_.clear();
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  bool aborted() const {
    std::lock_guard lock(mutex_);
    return aborted_;
  }

  /// No item will ever be delivered again: aborted, or closed and drained.
  bool finished() const {
    std::lock_guard lock(mutex_);
    return aborted_ || (closed_ && items_.empty());
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  bool done_() const { return closed_ || aborted_; }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  bool aborted_ = false;
};

}  // namespace spnl
