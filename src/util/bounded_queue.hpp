// Bounded blocking multi-producer/multi-consumer queue.
//
// Used by the parallel streaming driver (Sec. V-B of the paper): one producer
// thread pushes adjacency-list records in vertex-id order; M worker threads
// pop and compute placement scores. close() signals end-of-stream; pop()
// returns nullopt once the queue is both closed and drained.
// The timed variants (push_for / try_pop_for) and abort() exist for the
// pipeline watchdog: with them no thread ever blocks on the queue
// unboundedly — a wedged peer surfaces as a timeout the caller can act on,
// and abort() tears the whole pipeline down, waking every waiter and
// discarding undelivered items (unlike close(), which drains them).
//
// Micro-batched handoff: push_batch / pop_batch move whole record batches
// under one lock acquisition, amortizing the mutex + condvar traffic by the
// batch size. The drain path needs no special casing — close() wakes
// consumers, which take whatever partial batch remains.
//
// Wakeup protocol (audited for the batched variant):
//  * Every state transition that can unblock exactly one waiter class uses
//    notify_one on the matching condvar, issued after the lock is released
//    (legal, and avoids the woken thread immediately blocking on the mutex).
//  * Batched operations pass a baton instead of broadcasting: pop_batch
//    re-notifies not_empty_ when items remain after its take, and the push
//    paths re-notify not_full_ when free space remains after their insert,
//    so k items / k slots wake a chain of waiters without notify_all storms
//    or lost wakeups under multiple producers/consumers.
//  * notify_all is reserved for close() and abort(), the only transitions
//    that must wake EVERY waiter on both condvars.
//
// Contention accounting: attach a QueueStats (set_stats) and every push/pop
// path records mutex wait time (blocked acquisitions only), mutex hold time
// (condvar-wait spans excluded — the mutex is released inside cv.wait), and
// contended/total acquisition counts. With no sink attached each operation
// pays exactly one null-pointer branch and touches no clock — the same
// zero-overhead-when-disabled discipline as PerfStats. QueueStats cells are
// relaxed atomics (producers and consumers record concurrently);
// merge_into() folds the totals into a PerfStats after the pipeline joins.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/perf_stats.hpp"

namespace spnl {

/// Shared contention tally for one BoundedQueue. Thread-safe (relaxed
/// atomics); lives outside the queue so the driver can keep it on its own
/// cache line and fold it into the run's PerfStats after join.
struct QueueStats {
  std::atomic<std::uint64_t> lock_wait_nanos{0};
  std::atomic<std::uint64_t> lock_hold_nanos{0};
  std::atomic<std::uint64_t> contended_acquires{0};
  std::atomic<std::uint64_t> acquires{0};

  void merge_into(PerfStats& perf) const {
    perf.add(PerfStage::kQueueLockWait,
             lock_wait_nanos.load(std::memory_order_relaxed),
             contended_acquires.load(std::memory_order_relaxed));
    perf.add(PerfStage::kQueueLockHold,
             lock_hold_nanos.load(std::memory_order_relaxed),
             acquires.load(std::memory_order_relaxed));
    perf.add_count(PerfCounter::kQueueLockContended,
                   contended_acquires.load(std::memory_order_relaxed));
    perf.add_count(PerfCounter::kQueueLockAcquires,
                   acquires.load(std::memory_order_relaxed));
  }
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Attach (or detach with nullptr) the contention tally. Not synchronized
  /// against concurrent queue operations — set it before the pipeline starts.
  void set_stats(QueueStats* stats) { stats_ = stats; }

  /// Blocks while the queue is full. Returns false if the queue was closed
  /// (the item is dropped — pushing after close is a caller bug but must not
  /// deadlock).
  bool push(T item) {
    bool chain;
    {
      Guard g(*this);
      g.wait(not_full_, [&] { return items_.size() < capacity_ || done_(); });
      if (done_()) return false;
      items_.push_back(std::move(item));
      chain = items_.size() < capacity_;
    }
    not_empty_.notify_one();
    // Baton for a second waiting producer (multi-producer case): free space
    // remains, so the slot this push did not consume is advertised too.
    if (chain) not_full_.notify_one();
    return true;
  }

  /// Timed push. Moves from `item` and returns true only on success; on
  /// timeout, close or abort the item is left intact so the caller can retry
  /// (after checking aborted()/closed()) or dispose of it.
  template <typename Rep, typename Period>
  bool push_for(T& item, std::chrono::duration<Rep, Period> timeout) {
    bool chain;
    {
      Guard g(*this);
      if (!g.wait_for(not_full_, timeout,
                      [&] { return items_.size() < capacity_ || done_(); })) {
        return false;  // timed out while full
      }
      if (done_()) return false;
      items_.push_back(std::move(item));
      chain = items_.size() < capacity_;
    }
    not_empty_.notify_one();
    if (chain) not_full_.notify_one();
    return true;
  }

  /// Pushes every item of `batch` as one unit: blocks until the WHOLE batch
  /// fits (throws std::length_error if it can never fit), moves the items in
  /// under a single lock acquisition and leaves `batch` empty. Returns false
  /// with the batch intact if the queue was closed or aborted first.
  bool push_batch(std::vector<T>& batch) {
    if (batch.empty()) return true;
    if (batch.size() > capacity_) {
      throw std::length_error("BoundedQueue::push_batch: batch exceeds capacity");
    }
    bool chain;
    {
      Guard g(*this);
      g.wait(not_full_, [&] {
        return items_.size() + batch.size() <= capacity_ || done_();
      });
      if (done_()) return false;
      for (T& item : batch) items_.push_back(std::move(item));
      batch.clear();
      chain = items_.size() < capacity_;
    }
    // One consumer is woken; if it cannot drain everything, its pop_batch
    // passes the baton onward (see pop_batch).
    not_empty_.notify_one();
    if (chain) not_full_.notify_one();
    return true;
  }

  /// Timed batch push; same contract as push_batch but returns false (batch
  /// intact) on timeout so a watchdog-supervised producer never blocks
  /// unboundedly.
  template <typename Rep, typename Period>
  bool push_batch_for(std::vector<T>& batch,
                      std::chrono::duration<Rep, Period> timeout) {
    if (batch.empty()) return true;
    if (batch.size() > capacity_) {
      throw std::length_error("BoundedQueue::push_batch_for: batch exceeds capacity");
    }
    bool chain;
    {
      Guard g(*this);
      if (!g.wait_for(not_full_, timeout, [&] {
            return items_.size() + batch.size() <= capacity_ || done_();
          })) {
        return false;  // timed out while full
      }
      if (done_()) return false;
      for (T& item : batch) items_.push_back(std::move(item));
      batch.clear();
      chain = items_.size() < capacity_;
    }
    not_empty_.notify_one();
    if (chain) not_full_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  /// After abort() returns nullopt immediately, dropping undelivered items.
  std::optional<T> pop() {
    std::optional<T> item;
    bool chain;
    {
      Guard g(*this);
      g.wait(not_empty_, [&] { return !items_.empty() || closed_ || aborted_; });
      if (aborted_ || items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
      chain = !items_.empty();
    }
    not_full_.notify_one();
    // Baton for a second waiting consumer: items remain after this take.
    if (chain) not_empty_.notify_one();
    return item;
  }

  /// Pops up to `max_items` into `out` (cleared first) under one lock
  /// acquisition. Blocks while the queue is empty and open. Returns the
  /// number of items taken; 0 means no item will ever arrive again (aborted,
  /// or closed and drained). A partial batch at stream end is delivered
  /// as-is — the drain path needs no flush handshake.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    out.clear();
    if (max_items == 0) max_items = 1;
    bool more;
    {
      Guard g(*this);
      g.wait(not_empty_, [&] { return !items_.empty() || closed_ || aborted_; });
      if (aborted_ || items_.empty()) return 0;
      const std::size_t take = items_.size() < max_items ? items_.size() : max_items;
      out.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
      }
      more = !items_.empty();
    }
    not_full_.notify_one();
    if (more) not_empty_.notify_one();
    return out.size();
  }

  /// Non-blocking pop; nullopt if empty (regardless of closed state).
  std::optional<T> try_pop() {
    std::optional<T> item;
    bool chain;
    {
      Guard g(*this);
      if (aborted_ || items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
      chain = !items_.empty();
    }
    not_full_.notify_one();
    if (chain) not_empty_.notify_one();
    return item;
  }

  /// Timed pop: nullopt on timeout, abort, or closed-and-drained — callers
  /// distinguish "retry" from "stop" via finished().
  template <typename Rep, typename Period>
  std::optional<T> try_pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::optional<T> item;
    bool chain;
    {
      Guard g(*this);
      g.wait_for(not_empty_, timeout,
                 [&] { return !items_.empty() || closed_ || aborted_; });
      if (aborted_ || items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
      chain = !items_.empty();
    }
    not_full_.notify_one();
    if (chain) not_empty_.notify_one();
    return item;
  }

  /// Ends the stream: blocked consumers wake up and drain remaining items;
  /// subsequent pops return nullopt once empty.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Kills the stream: every waiter (producers AND consumers) wakes up,
  /// pending items are discarded, pushes fail. Unlike close(), nothing is
  /// drained — this is the watchdog's "pipeline is dead" teardown.
  void abort() {
    {
      std::lock_guard lock(mutex_);
      aborted_ = true;
      items_.clear();
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  bool aborted() const {
    std::lock_guard lock(mutex_);
    return aborted_;
  }

  /// No item will ever be delivered again: aborted, or closed and drained.
  bool finished() const {
    std::lock_guard lock(mutex_);
    return aborted_ || (closed_ && items_.empty());
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Instrumented unique_lock: records acquisition wait (blocked mutex
  /// acquisitions only — condvar blocking is the caller-visible kQueueWait,
  /// not lock contention) and hold time with the cv-wait spans excluded
  /// (cv.wait releases the mutex, so counting them as "held" would be a
  /// lie). With no stats attached every path collapses to plain lock/wait.
  class Guard {
   public:
    explicit Guard(BoundedQueue& q)
        : q_(q), lock_(q.mutex_, std::defer_lock) {
      if (q_.stats_ == nullptr) {
        lock_.lock();
        return;
      }
      q_.stats_->acquires.fetch_add(1, std::memory_order_relaxed);
      if (!lock_.try_lock()) {
        q_.stats_->contended_acquires.fetch_add(1, std::memory_order_relaxed);
        const auto t0 = Clock::now();
        lock_.lock();
        q_.stats_->lock_wait_nanos.fetch_add(nanos_since(t0),
                                             std::memory_order_relaxed);
      }
      held_since_ = Clock::now();
    }

    ~Guard() {
      if (q_.stats_ != nullptr) flush_hold();
    }

    template <typename Pred>
    void wait(std::condition_variable& cv, Pred pred) {
      if (q_.stats_ == nullptr) {
        cv.wait(lock_, pred);
        return;
      }
      flush_hold();
      cv.wait(lock_, pred);
      held_since_ = Clock::now();
    }

    template <typename Rep, typename Period, typename Pred>
    bool wait_for(std::condition_variable& cv,
                  std::chrono::duration<Rep, Period> timeout, Pred pred) {
      if (q_.stats_ == nullptr) return cv.wait_for(lock_, timeout, pred);
      flush_hold();
      const bool satisfied = cv.wait_for(lock_, timeout, pred);
      held_since_ = Clock::now();
      return satisfied;
    }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    static std::uint64_t nanos_since(Clock::time_point t0) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
              .count());
    }
    void flush_hold() {
      q_.stats_->lock_hold_nanos.fetch_add(nanos_since(held_since_),
                                           std::memory_order_relaxed);
    }

    BoundedQueue& q_;
    std::unique_lock<std::mutex> lock_;
    Clock::time_point held_since_{};
  };

  bool done_() const { return closed_ || aborted_; }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  QueueStats* stats_ = nullptr;
  bool closed_ = false;
  bool aborted_ = false;
};

}  // namespace spnl
