// Bounded blocking multi-producer/multi-consumer queue.
//
// Used by the parallel streaming driver (Sec. V-B of the paper): one producer
// thread pushes adjacency-list records in vertex-id order; M worker threads
// pop and compute placement scores. close() signals end-of-stream; pop()
// returns nullopt once the queue is both closed and drained.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace spnl {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false if the queue was closed
  /// (the item is dropped — pushing after close is a caller bug but must not
  /// deadlock).
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt if empty (regardless of closed state).
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Ends the stream: blocked consumers wake up and drain remaining items;
  /// subsequent pops return nullopt once empty.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace spnl
