#include "util/perf_stats.hpp"

#include <cstdio>

namespace spnl {

namespace {

constexpr PerfStage kAllStages[kPerfStageCount] = {
    PerfStage::kQueueWait,     PerfStage::kWindowAdvance,
    PerfStage::kScore,         PerfStage::kCommit,
    PerfStage::kGammaIncrement, PerfStage::kGammaPublish,
    PerfStage::kQueueLockWait, PerfStage::kQueueLockHold};

constexpr PerfCounter kAllCounters[kPerfCounterCount] = {
    PerfCounter::kWatermarkCasRetries,   PerfCounter::kGammaHeadCasRetries,
    PerfCounter::kGammaAdvanceContended, PerfCounter::kGammaDeltaPublishes,
    PerfCounter::kGammaDeltaCells,       PerfCounter::kGammaDeltaDropped,
    PerfCounter::kRctSharedContended,    PerfCounter::kRctExclusiveContended,
    PerfCounter::kRctExclusiveAcquires,  PerfCounter::kRctClaimCasRetries,
    PerfCounter::kRctDecrementCasRetries, PerfCounter::kQueueLockContended,
    PerfCounter::kQueueLockAcquires};

}  // namespace

const char* perf_stage_name(PerfStage stage) {
  switch (stage) {
    case PerfStage::kQueueWait:
      return "queue_wait";
    case PerfStage::kWindowAdvance:
      return "window_advance";
    case PerfStage::kScore:
      return "score";
    case PerfStage::kCommit:
      return "commit";
    case PerfStage::kGammaIncrement:
      return "gamma_increment";
    case PerfStage::kGammaPublish:
      return "gamma_publish";
    case PerfStage::kQueueLockWait:
      return "queue_lock_wait";
    case PerfStage::kQueueLockHold:
      return "queue_lock_hold";
  }
  return "unknown";
}

const char* perf_counter_name(PerfCounter counter) {
  switch (counter) {
    case PerfCounter::kWatermarkCasRetries:
      return "watermark_cas_retries";
    case PerfCounter::kGammaHeadCasRetries:
      return "gamma_head_cas_retries";
    case PerfCounter::kGammaAdvanceContended:
      return "gamma_advance_contended";
    case PerfCounter::kGammaDeltaPublishes:
      return "gamma_delta_publishes";
    case PerfCounter::kGammaDeltaCells:
      return "gamma_delta_cells";
    case PerfCounter::kGammaDeltaDropped:
      return "gamma_delta_dropped";
    case PerfCounter::kRctSharedContended:
      return "rct_shared_contended";
    case PerfCounter::kRctExclusiveContended:
      return "rct_exclusive_contended";
    case PerfCounter::kRctExclusiveAcquires:
      return "rct_exclusive_acquires";
    case PerfCounter::kRctClaimCasRetries:
      return "rct_claim_cas_retries";
    case PerfCounter::kRctDecrementCasRetries:
      return "rct_decrement_cas_retries";
    case PerfCounter::kQueueLockContended:
      return "queue_lock_contended";
    case PerfCounter::kQueueLockAcquires:
      return "queue_lock_acquires";
  }
  return "unknown";
}

std::uint64_t PerfStats::total_nanos() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) total += cell.nanos;
  return total;
}

void PerfStats::merge(const PerfStats& other) {
  for (std::size_t i = 0; i < kPerfStageCount; ++i) {
    cells_[i].nanos += other.cells_[i].nanos;
    cells_[i].calls += other.cells_[i].calls;
  }
  for (std::size_t i = 0; i < kPerfCounterCount; ++i) {
    counters_[i] += other.counters_[i];
  }
}

void PerfStats::reset() {
  cells_ = {};
  counters_ = {};
}

std::string PerfStats::report() const {
  const double total = static_cast<double>(total_nanos());
  std::string out =
      "perf: stage            time(ms)      calls   ns/call   share\n";
  char line[128];
  for (const PerfStage stage : kAllStages) {
    const std::uint64_t ns = nanos(stage);
    const std::uint64_t n = calls(stage);
    std::snprintf(line, sizeof(line),
                  "perf: %-15s %9.3f %10llu %9.1f  %5.1f%%\n",
                  perf_stage_name(stage), static_cast<double>(ns) / 1e6,
                  static_cast<unsigned long long>(n),
                  n == 0 ? 0.0 : static_cast<double>(ns) / static_cast<double>(n),
                  total == 0.0 ? 0.0 : 100.0 * static_cast<double>(ns) / total);
    out += line;
  }
  std::snprintf(line, sizeof(line), "perf: total instrumented %.3f ms\n",
                total / 1e6);
  out += line;
  // Contention counters: only the non-zero ones, to keep the sequential
  // report (where every counter is structurally zero) free of noise.
  bool header = false;
  for (const PerfCounter counter : kAllCounters) {
    const std::uint64_t value = count(counter);
    if (value == 0) continue;
    if (!header) {
      out += "perf: counter                         value\n";
      header = true;
    }
    std::snprintf(line, sizeof(line), "perf: %-27s %11llu\n",
                  perf_counter_name(counter),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  return out;
}

std::string PerfStats::to_json() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "{\"total_nanos\":%llu,\"stages\":[",
                static_cast<unsigned long long>(total_nanos()));
  std::string out = buf;
  bool first = true;
  for (const PerfStage stage : kAllStages) {
    const std::uint64_t ns = nanos(stage);
    const std::uint64_t n = calls(stage);
    std::snprintf(buf, sizeof(buf),
                  "%s{\"stage\":\"%s\",\"calls\":%llu,\"nanos\":%llu,"
                  "\"mean_nanos\":%.1f}",
                  first ? "" : ",", perf_stage_name(stage),
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(ns),
                  n == 0 ? 0.0 : static_cast<double>(ns) / static_cast<double>(n));
    out += buf;
    first = false;
  }
  out += "],\"counters\":[";
  first = true;
  for (const PerfCounter counter : kAllCounters) {
    std::snprintf(buf, sizeof(buf), "%s{\"counter\":\"%s\",\"value\":%llu}",
                  first ? "" : ",", perf_counter_name(counter),
                  static_cast<unsigned long long>(count(counter)));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace spnl
