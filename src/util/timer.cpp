#include "util/timer.hpp"

namespace spnl {

double Timer::seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

void AccumTimer::resume() {
  if (running_) return;
  timer_.restart();
  running_ = true;
}

void AccumTimer::pause() {
  if (!running_) return;
  accumulated_ += timer_.seconds();
  running_ = false;
}

}  // namespace spnl
