// Scoped SIGBUS protection for mmap decode loops.
//
// A file truncated while memory-mapped turns every access beyond the new EOF
// page into SIGBUS — and an unhandled SIGBUS kills the whole process, which
// for a multi-session daemon means one bad client file takes down every
// other session. The guard converts exactly that case into a recoverable
// control transfer:
//
//   SigbusGuard guard(map.data(), map.size());
//   if (sigsetjmp(guard.env(), 0) != 0) {
//     throw IoError("... truncated while streamed ...");   // typed, catchable
//   }
//   ... decode loop dereferencing the mapping ...
//
// Semantics:
//  * The process-wide SIGBUS handler is installed once (first guard ever
//    constructed) with SA_SIGINFO | SA_NODEFER. It consults a thread-local
//    stack of active guards, so concurrent sessions on different threads
//    each recover independently.
//  * The handler siglongjmps ONLY when the faulting address lies inside the
//    innermost active guard's registered range — any other SIGBUS (a real
//    bug, a hardware fault) re-raises with the default disposition and
//    crashes loudly, exactly as before.
//  * sigsetjmp is called with savesigs=0 and the handler with SA_NODEFER,
//    so no signal-mask syscall is paid per record: a guard costs two TLS
//    stores plus one register-save setjmp — cheap enough for the per-next()
//    decode hot path (the ingest bench's throughput gate stays green).
//  * Escaping via siglongjmp skips destructors of objects constructed after
//    the sigsetjmp. Guarded regions therefore keep their decode state in
//    members / pre-declared locals; a transient allocation mid-fault can
//    leak once, on a path whose stream is dead anyway.
//
// The guard catches truncation that happens MID-pass. Truncation that
// already happened is cheaper to detect up front: MmapFile::throw_if_shrunk
// (an fstat-vs-mapping length check) runs at stream reset so a shrunk file
// fails with a precise message before any page is touched.
#pragma once

#include <csetjmp>
#include <cstddef>

namespace spnl {

class SigbusGuard {
 public:
  /// Registers [data, data+size) as a recoverable range on this thread.
  SigbusGuard(const void* data, std::size_t size) noexcept;
  ~SigbusGuard() noexcept;

  SigbusGuard(const SigbusGuard&) = delete;
  SigbusGuard& operator=(const SigbusGuard&) = delete;

  /// Jump target storage for the caller's sigsetjmp. Call
  /// sigsetjmp(guard.env(), 0) before the first dereference of the range.
  sigjmp_buf& env() noexcept { return env_; }

  /// After the jump fired: byte offset of the faulting access into the
  /// registered range (0 when the kernel gave no address).
  std::size_t fault_offset() const noexcept { return fault_offset_; }

  /// True once the handler has jumped through this guard.
  bool tripped() const noexcept { return tripped_; }

 private:
  friend void sigbus_guard_handler_hook(void* addr);

  const char* begin_;
  const char* end_;
  SigbusGuard* prev_;  // enclosing guard on this thread (nesting)
  sigjmp_buf env_;
  std::size_t fault_offset_ = 0;
  volatile bool tripped_ = false;
};

/// Test hook: true when the process-wide handler has been installed.
bool sigbus_handler_installed() noexcept;

}  // namespace spnl
