// Wall-clock timing helpers used by the bench harness to measure PT
// (partitioning time) as defined in the paper: from the first adjacency list
// load to the completed route table.
#pragma once

#include <chrono>
#include <cstdint>

namespace spnl {

/// Monotonic stopwatch. Started on construction; restart() resets.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last restart().
  double seconds() const;

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating timer: total time across multiple resume()/pause() intervals.
class AccumTimer {
 public:
  void resume();
  void pause();
  double seconds() const { return accumulated_; }
  bool running() const { return running_; }

 private:
  Timer timer_;
  double accumulated_ = 0.0;
  bool running_ = false;
};

}  // namespace spnl
