// Incremental partition maintenance for evolving graphs.
//
// The paper's introduction motivates cheap partitioning with "real graphs
// are frequently updated": after the initial streaming pass, updates keep
// arriving. This module maintains a live partitioning under
//  * vertex arrivals (placed SPNL-style: physical neighbor agreement in both
//    directions + the logical range prior, capacity-penalized),
//  * edge insertions and deletions between existing vertices,
// and offers bounded local refinement: dirty vertices (touched by updates)
// are re-evaluated best-gain-first, with moves capped per call so the cost
// of staying good is predictable.
//
// The structure kept is deliberately streaming-grade: the dynamic adjacency
// (needed to evaluate moves), per-partition loads and the route table —
// O(|V| + |E|) total, no Γ windows (updates are not id-ordered).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/types.hpp"
#include "partition/partitioning.hpp"
#include "partition/range_partitioner.hpp"

namespace spnl {

struct IncrementalOptions {
  /// Weight of the logical range prior for unplaced out-neighbors of an
  /// arriving vertex (0 disables it; the SPNL transplant).
  double logical_weight = 0.5;
  /// Expected final vertex count (sizes the logical table; grows if
  /// exceeded). 0 = start from the initial route size.
  VertexId expected_vertices = 0;
};

struct RefineStats {
  std::uint64_t moves = 0;
  std::int64_t cut_improvement = 0;  ///< drop in directed cut edges
};

class IncrementalPartitioner {
 public:
  /// Starts from an existing partitioning (e.g. a streaming run). The graph
  /// edges are ingested as the initial adjacency; route must cover the
  /// graph's vertices.
  IncrementalPartitioner(const class Graph& graph, std::vector<PartitionId> route,
                         const PartitionConfig& config,
                         IncrementalOptions options = {});

  /// Starts empty (all placement decisions are incremental).
  IncrementalPartitioner(const PartitionConfig& config, VertexId expected_vertices,
                         EdgeId expected_edges, IncrementalOptions options = {});

  /// Place a new vertex with its (initial) out-adjacency. Ids may arrive in
  /// any order but must be new. Returns the chosen partition.
  PartitionId add_vertex(VertexId v, std::span<const VertexId> out);

  /// Insert/remove a directed edge between existing vertices. Unknown
  /// endpoints are auto-registered as isolated vertices first.
  void add_edge(VertexId from, VertexId to);
  /// Returns false if the edge was not present.
  bool remove_edge(VertexId from, VertexId to);

  /// Bounded local refinement: re-evaluates dirty vertices (and, for moved
  /// ones, their neighbors) best-gain-first, performing at most max_moves
  /// strictly-improving moves under the capacity constraint.
  RefineStats refine(std::uint64_t max_moves);

  /// Current number of cut edges (maintained incrementally, O(1)).
  EdgeId cut_edges() const { return cut_edges_; }
  double ecr() const {
    return num_edges_ == 0 ? 0.0
                           : static_cast<double>(cut_edges_) / num_edges_;
  }
  double delta_v() const;

  const std::vector<PartitionId>& route() const { return route_; }
  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return num_edges_; }
  PartitionId partition_of(VertexId v) const { return route_[v]; }
  std::size_t dirty_count() const { return dirty_.size(); }

  std::size_t memory_footprint_bytes() const;

 private:
  void ensure_vertex(VertexId v);
  /// Gain (cut-edge reduction) of moving v to p, and load feasibility.
  std::int64_t move_gain(VertexId v, PartitionId p) const;
  PartitionId best_target(VertexId v, std::int64_t& gain) const;
  void apply_move(VertexId v, PartitionId to);
  void mark_dirty(VertexId v);

  PartitionConfig config_;
  IncrementalOptions options_;
  double capacity_ = 0.0;

  std::vector<PartitionId> route_;
  std::vector<std::vector<VertexId>> out_adj_;
  std::vector<std::vector<VertexId>> in_adj_;
  std::vector<std::uint64_t> loads_;  // vertex counts per partition
  RangeTable logical_;
  VertexId num_vertices_ = 0;  // placed vertices
  EdgeId num_edges_ = 0;
  EdgeId cut_edges_ = 0;
  std::unordered_set<VertexId> dirty_;
};

}  // namespace spnl
