#include "dynamic/incremental.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/graph.hpp"
#include "util/memory.hpp"

namespace spnl {

namespace {
PartitionId clamp_partition(PartitionId p, PartitionId k) {
  return p < k ? p : k - 1;
}
}  // namespace

IncrementalPartitioner::IncrementalPartitioner(const Graph& graph,
                                               std::vector<PartitionId> route,
                                               const PartitionConfig& config,
                                               IncrementalOptions options)
    : config_(config),
      options_(options),
      route_(std::move(route)),
      loads_(config.num_partitions, 0),
      logical_(options.expected_vertices > 0 ? options.expected_vertices
                                             : graph.num_vertices(),
               config.num_partitions) {
  if (config_.balance != BalanceMode::kVertex) {
    throw std::invalid_argument(
        "IncrementalPartitioner: only vertex balance is supported");
  }
  if (route_.size() != graph.num_vertices()) {
    throw std::invalid_argument("IncrementalPartitioner: route size != |V|");
  }
  const VertexId n = graph.num_vertices();
  out_adj_.resize(n);
  in_adj_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    if (route_[v] >= config_.num_partitions) {
      throw std::invalid_argument("IncrementalPartitioner: bad partition id");
    }
    ++loads_[route_[v]];
    ++num_vertices_;
    const auto out = graph.out_neighbors(v);
    out_adj_[v].assign(out.begin(), out.end());
    for (VertexId u : out) {
      if (route_[u] != route_[v]) ++cut_edges_;
      ++num_edges_;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : out_adj_[v]) in_adj_[u].push_back(v);
  }
  const VertexId expected = options_.expected_vertices > 0
                                ? options_.expected_vertices
                                : graph.num_vertices();
  capacity_ = partition_capacity(std::max(num_vertices_, expected), num_edges_,
                                 config_);
}

IncrementalPartitioner::IncrementalPartitioner(const PartitionConfig& config,
                                               VertexId expected_vertices,
                                               EdgeId expected_edges,
                                               IncrementalOptions options)
    : config_(config),
      options_(options),
      loads_(config.num_partitions, 0),
      logical_(std::max<VertexId>(expected_vertices, 1), config.num_partitions) {
  if (config_.balance != BalanceMode::kVertex) {
    throw std::invalid_argument(
        "IncrementalPartitioner: only vertex balance is supported");
  }
  capacity_ = partition_capacity(std::max<VertexId>(expected_vertices, 1),
                                 expected_edges, config_);
}

void IncrementalPartitioner::ensure_vertex(VertexId v) {
  if (v >= route_.size()) {
    route_.resize(v + 1, kUnassigned);
    out_adj_.resize(v + 1);
    in_adj_.resize(v + 1);
  }
  if (route_[v] != kUnassigned) return;
  // Auto-registration (an edge referenced an unseen vertex): place with the
  // information at hand — the logical prior and the capacity penalty.
  add_vertex(v, {});
}

PartitionId IncrementalPartitioner::add_vertex(VertexId v,
                                               std::span<const VertexId> out) {
  if (v >= route_.size()) {
    route_.resize(v + 1, kUnassigned);
    out_adj_.resize(v + 1);
    in_adj_.resize(v + 1);
  }
  if (route_[v] != kUnassigned) {
    // Already auto-registered: keep its partition, ingest the adjacency.
    for (VertexId u : out) add_edge(v, u);
    return route_[v];
  }

  const PartitionId k = config_.num_partitions;
  std::vector<double> scores(k, 0.0);
  for (VertexId u : out) {
    if (u < route_.size() && route_[u] != kUnassigned) {
      scores[route_[u]] += 1.0;
    } else if (options_.logical_weight > 0.0 && u < logical_.num_vertices()) {
      scores[clamp_partition(logical_.partition_of(u), k)] += options_.logical_weight;
    }
  }
  // Note: in_adj_[v] is necessarily empty here — any earlier edge (u, v)
  // auto-registered v before appending to in_adj_, so a fresh vertex cannot
  // have recorded in-edges. (Their cut contribution was accounted by
  // add_edge at insertion time.)

  // Grow capacity as the graph outgrows the initial estimate.
  ++num_vertices_;
  capacity_ = std::max(
      capacity_, partition_capacity(num_vertices_, num_edges_, config_));

  PartitionId best = kUnassigned;
  double best_score = 0.0;
  for (PartitionId p = 0; p < k; ++p) {
    if (static_cast<double>(loads_[p]) >= capacity_) continue;
    const double score = scores[p] * (1.0 - loads_[p] / capacity_);
    if (best == kUnassigned || score > best_score ||
        (score == best_score && loads_[p] < loads_[best])) {
      best = p;
      best_score = score;
    }
  }
  if (best == kUnassigned) {
    best = 0;
    for (PartitionId p = 1; p < k; ++p) {
      if (loads_[p] < loads_[best]) best = p;
    }
  }

  route_[v] = best;
  ++loads_[best];
  for (VertexId u : out) add_edge(v, u);
  mark_dirty(v);
  return best;
}

void IncrementalPartitioner::add_edge(VertexId from, VertexId to) {
  ensure_vertex(from);
  ensure_vertex(to);
  out_adj_[from].push_back(to);
  in_adj_[to].push_back(from);
  ++num_edges_;
  if (route_[from] != route_[to]) ++cut_edges_;
  mark_dirty(from);
  mark_dirty(to);
}

bool IncrementalPartitioner::remove_edge(VertexId from, VertexId to) {
  if (from >= out_adj_.size() || to >= in_adj_.size()) return false;
  auto& out = out_adj_[from];
  auto it = std::find(out.begin(), out.end(), to);
  if (it == out.end()) return false;
  out.erase(it);
  auto& in = in_adj_[to];
  in.erase(std::find(in.begin(), in.end(), from));
  --num_edges_;
  if (route_[from] != route_[to]) --cut_edges_;
  mark_dirty(from);
  mark_dirty(to);
  return true;
}

std::int64_t IncrementalPartitioner::move_gain(VertexId v, PartitionId p) const {
  // Gain = (edges made local) - (edges made remote), over both directions.
  std::int64_t local_now = 0, local_then = 0;
  const PartitionId current = route_[v];
  for (VertexId u : out_adj_[v]) {
    if (u == v) continue;
    if (route_[u] == current) ++local_now;
    if (route_[u] == p) ++local_then;
  }
  for (VertexId u : in_adj_[v]) {
    if (u == v) continue;
    if (route_[u] == current) ++local_now;
    if (route_[u] == p) ++local_then;
  }
  return local_then - local_now;
}

PartitionId IncrementalPartitioner::best_target(VertexId v, std::int64_t& gain) const {
  const PartitionId current = route_[v];
  PartitionId best = current;
  gain = 0;
  for (PartitionId p = 0; p < config_.num_partitions; ++p) {
    if (p == current) continue;
    if (static_cast<double>(loads_[p]) + 1.0 > capacity_) continue;
    const std::int64_t g = move_gain(v, p);
    if (g > gain) {
      gain = g;
      best = p;
    }
  }
  return best;
}

void IncrementalPartitioner::apply_move(VertexId v, PartitionId to) {
  const PartitionId from = route_[v];
  std::int64_t cut_delta = 0;
  for (VertexId u : out_adj_[v]) {
    if (u == v) continue;
    if (route_[u] == from) ++cut_delta;
    if (route_[u] == to) --cut_delta;
  }
  for (VertexId u : in_adj_[v]) {
    if (u == v) continue;
    if (route_[u] == from) ++cut_delta;
    if (route_[u] == to) --cut_delta;
  }
  cut_edges_ = static_cast<EdgeId>(static_cast<std::int64_t>(cut_edges_) + cut_delta);
  --loads_[from];
  ++loads_[to];
  route_[v] = to;
  for (VertexId u : out_adj_[v]) mark_dirty(u);
  for (VertexId u : in_adj_[v]) mark_dirty(u);
}

void IncrementalPartitioner::mark_dirty(VertexId v) { dirty_.insert(v); }

RefineStats IncrementalPartitioner::refine(std::uint64_t max_moves) {
  RefineStats stats;
  while (stats.moves < max_moves && !dirty_.empty()) {
    // Snapshot the dirty set, order by current best gain, apply greedily
    // (gains are re-validated right before each move).
    std::vector<std::pair<std::int64_t, VertexId>> candidates;
    candidates.reserve(dirty_.size());
    for (VertexId v : dirty_) {
      std::int64_t gain = 0;
      best_target(v, gain);
      candidates.emplace_back(gain, v);
    }
    dirty_.clear();
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                return a.first > b.first || (a.first == b.first && a.second < b.second);
              });
    bool moved_any = false;
    for (const auto& [stale_gain, v] : candidates) {
      if (stale_gain <= 0 || stats.moves >= max_moves) break;
      std::int64_t gain = 0;
      const PartitionId target = best_target(v, gain);
      if (gain <= 0 || target == route_[v]) continue;
      apply_move(v, target);
      ++stats.moves;
      stats.cut_improvement += gain;
      moved_any = true;
    }
    if (!moved_any) break;
  }
  return stats;
}

double IncrementalPartitioner::delta_v() const {
  if (num_vertices_ == 0) return 0.0;
  const std::uint64_t max_load = *std::max_element(loads_.begin(), loads_.end());
  return static_cast<double>(max_load) * config_.num_partitions / num_vertices_;
}

std::size_t IncrementalPartitioner::memory_footprint_bytes() const {
  std::size_t bytes = vector_bytes(route_) + vector_bytes(loads_) +
                      dirty_.size() * sizeof(VertexId) * 2;
  for (const auto& list : out_adj_) bytes += vector_bytes(list);
  for (const auto& list : in_adj_) bytes += vector_bytes(list);
  return bytes;
}

}  // namespace spnl
