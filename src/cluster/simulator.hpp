// Cluster cost simulator: converts a BSP job's per-superstep traffic
// matrices into simulated wall-clock time under an explicit cluster model.
//
// This closes the paper's motivating loop quantitatively: ECR is a proxy
// for network traffic; the simulator turns that traffic into time. The
// model captures the first-order distributed-runtime effects:
//  * compute: each worker processes its emitted messages at compute_rate;
//    the phase ends at the slowest worker (BSP),
//  * communication: each worker serializes its cross-worker sends over its
//    uplink and its receives over its downlink at bandwidth message/s;
//    the phase ends when the busiest link drains, plus a per-superstep
//    barrier latency,
//  * overlap: optionally overlap compute and communication phases
//    (asynchronous send while computing), taking max instead of sum.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/bsp.hpp"
#include "graph/types.hpp"

namespace spnl {

struct ClusterModel {
  /// Messages a worker can produce/apply per second.
  double compute_rate = 50e6;
  /// Cross-worker messages per second over one worker's up/down link.
  double bandwidth = 2e6;
  /// Per-superstep synchronization latency (barrier + RPC overhead), sec.
  double barrier_latency = 2e-3;
  /// Overlap compute with communication inside a superstep.
  bool overlap = false;
};

/// Seeded worker-failure model layered onto the BSP timing simulation: each
/// worker independently fails with failure_prob per superstep. A failure
/// costs recovery_seconds (restart + state reload from the latest
/// checkpoint) and, because BSP supersteps are all-or-nothing, re-executes
/// the superstep when restart_superstep is set. Deterministic per seed.
struct ClusterFaultModel {
  double failure_prob = 0.0;
  double recovery_seconds = 0.5;
  bool restart_superstep = true;
  std::uint64_t seed = 17;
};

struct SuperstepTiming {
  double compute_seconds = 0.0;
  double network_seconds = 0.0;
  double total_seconds = 0.0;
  /// Worker failures injected into this superstep and the recovery +
  /// re-execution time they added (0 when no fault model is active).
  std::uint32_t failures = 0;
  double recovery_seconds = 0.0;
};

struct ClusterTimeline {
  std::vector<SuperstepTiming> supersteps;
  double total_seconds = 0.0;
  double compute_seconds = 0.0;  ///< Σ per-superstep compute phases
  double network_seconds = 0.0;  ///< Σ per-superstep network phases
  std::uint64_t worker_failures = 0;   ///< Σ injected failures
  double recovery_seconds = 0.0;       ///< Σ recovery + re-execution time
  double network_fraction() const {
    return total_seconds == 0.0 ? 0.0 : network_seconds / total_seconds;
  }
};

/// Simulates the job whose traffic the BSP engine recorded
/// (BspOptions::record_traffic must have been set). k must match the
/// matrices' dimension.
ClusterTimeline simulate_cluster(const BspResult& job, PartitionId k,
                                 const ClusterModel& model = {});

/// As above, with seeded worker failures folded into the timeline.
ClusterTimeline simulate_cluster(const BspResult& job, PartitionId k,
                                 const ClusterModel& model,
                                 const ClusterFaultModel& faults);

}  // namespace spnl
