#include "cluster/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace spnl {

ClusterTimeline simulate_cluster(const BspResult& job, PartitionId k,
                                 const ClusterModel& model) {
  if (job.traffic.size() != job.compute.size()) {
    throw std::invalid_argument("simulate_cluster: inconsistent recording");
  }
  if (model.compute_rate <= 0.0 || model.bandwidth <= 0.0) {
    throw std::invalid_argument("simulate_cluster: rates must be positive");
  }
  ClusterTimeline timeline;
  timeline.supersteps.reserve(job.traffic.size());

  std::vector<std::uint64_t> sends(k), receives(k);
  for (std::size_t step = 0; step < job.traffic.size(); ++step) {
    const auto& matrix = job.traffic[step];
    if (matrix.size() != static_cast<std::size_t>(k) * k) {
      throw std::invalid_argument("simulate_cluster: matrix dimension != k^2");
    }
    std::fill(sends.begin(), sends.end(), 0u);
    std::fill(receives.begin(), receives.end(), 0u);
    for (PartitionId from = 0; from < k; ++from) {
      for (PartitionId to = 0; to < k; ++to) {
        if (from == to) continue;  // local delivery: no network
        const std::uint64_t count = matrix[static_cast<std::size_t>(from) * k + to];
        sends[from] += count;
        receives[to] += count;
      }
    }

    SuperstepTiming timing;
    std::uint64_t max_compute = 0;
    for (PartitionId w = 0; w < k; ++w) {
      max_compute = std::max(max_compute, job.compute[step][w]);
    }
    timing.compute_seconds = static_cast<double>(max_compute) / model.compute_rate;

    std::uint64_t busiest_link = 0;
    for (PartitionId w = 0; w < k; ++w) {
      busiest_link = std::max({busiest_link, sends[w], receives[w]});
    }
    timing.network_seconds =
        static_cast<double>(busiest_link) / model.bandwidth + model.barrier_latency;

    timing.total_seconds =
        model.overlap
            ? std::max(timing.compute_seconds, timing.network_seconds)
            : timing.compute_seconds + timing.network_seconds;

    timeline.compute_seconds += timing.compute_seconds;
    timeline.network_seconds += timing.network_seconds;
    timeline.total_seconds += timing.total_seconds;
    timeline.supersteps.push_back(timing);
  }
  return timeline;
}

}  // namespace spnl
