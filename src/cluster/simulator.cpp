#include "cluster/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace spnl {

ClusterTimeline simulate_cluster(const BspResult& job, PartitionId k,
                                 const ClusterModel& model) {
  return simulate_cluster(job, k, model, ClusterFaultModel{});
}

ClusterTimeline simulate_cluster(const BspResult& job, PartitionId k,
                                 const ClusterModel& model,
                                 const ClusterFaultModel& faults) {
  if (faults.failure_prob < 0.0 || faults.failure_prob > 1.0) {
    throw std::invalid_argument("simulate_cluster: failure_prob must be in [0,1]");
  }
  if (faults.recovery_seconds < 0.0) {
    throw std::invalid_argument("simulate_cluster: recovery_seconds must be >= 0");
  }
  if (job.traffic.size() != job.compute.size()) {
    throw std::invalid_argument("simulate_cluster: inconsistent recording");
  }
  if (model.compute_rate <= 0.0 || model.bandwidth <= 0.0) {
    throw std::invalid_argument("simulate_cluster: rates must be positive");
  }
  ClusterTimeline timeline;
  timeline.supersteps.reserve(job.traffic.size());

  Rng fault_rng(faults.seed);
  std::vector<std::uint64_t> sends(k), receives(k);
  for (std::size_t step = 0; step < job.traffic.size(); ++step) {
    const auto& matrix = job.traffic[step];
    if (matrix.size() != static_cast<std::size_t>(k) * k) {
      throw std::invalid_argument("simulate_cluster: matrix dimension != k^2");
    }
    std::fill(sends.begin(), sends.end(), 0u);
    std::fill(receives.begin(), receives.end(), 0u);
    for (PartitionId from = 0; from < k; ++from) {
      for (PartitionId to = 0; to < k; ++to) {
        if (from == to) continue;  // local delivery: no network
        const std::uint64_t count = matrix[static_cast<std::size_t>(from) * k + to];
        sends[from] += count;
        receives[to] += count;
      }
    }

    SuperstepTiming timing;
    std::uint64_t max_compute = 0;
    for (PartitionId w = 0; w < k; ++w) {
      max_compute = std::max(max_compute, job.compute[step][w]);
    }
    timing.compute_seconds = static_cast<double>(max_compute) / model.compute_rate;

    std::uint64_t busiest_link = 0;
    for (PartitionId w = 0; w < k; ++w) {
      busiest_link = std::max({busiest_link, sends[w], receives[w]});
    }
    timing.network_seconds =
        static_cast<double>(busiest_link) / model.bandwidth + model.barrier_latency;

    timing.total_seconds =
        model.overlap
            ? std::max(timing.compute_seconds, timing.network_seconds)
            : timing.compute_seconds + timing.network_seconds;

    // Injected worker failures: each failed worker pays the recovery cost;
    // the superstep barrier means everyone waits for the LAST recovery, and
    // (optionally) the whole superstep re-executes afterwards. One draw per
    // worker per superstep in fixed order keeps the timeline seeded.
    if (faults.failure_prob > 0.0) {
      const double clean_superstep = timing.total_seconds;
      for (PartitionId w = 0; w < k; ++w) {
        if (fault_rng.next_double() < faults.failure_prob) ++timing.failures;
      }
      if (timing.failures > 0) {
        timing.recovery_seconds =
            faults.recovery_seconds +
            (faults.restart_superstep ? clean_superstep : 0.0);
        timing.total_seconds += timing.recovery_seconds;
        timeline.worker_failures += timing.failures;
        timeline.recovery_seconds += timing.recovery_seconds;
      }
    }

    timeline.compute_seconds += timing.compute_seconds;
    timeline.network_seconds += timing.network_seconds;
    timeline.total_seconds += timing.total_seconds;
    timeline.supersteps.push_back(timing);
  }
  return timeline;
}

}  // namespace spnl
