#include "core/rct.hpp"

#include <algorithm>
#include <stdexcept>

namespace spnl {

namespace {

/// splitmix64 finalizer: vertex ids are dense and sequential, so the probe
/// start must be decorrelated from the shard stripe (v mod S) or every id in
/// a shard would land on the same few slots.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t next_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

std::uint32_t Rct::recommended_shards(unsigned num_threads) {
  return static_cast<std::uint32_t>(next_pow2(num_threads ? num_threads : 1));
}

Rct::Rct(std::size_t capacity, std::uint32_t num_shards)
    : capacity_(capacity ? capacity : 1) {
  const std::size_t shards = next_pow2(num_shards ? num_shards : 1);
  shard_mask_ = static_cast<std::uint32_t>(shards - 1);
  shard_capacity_ = (capacity_ + shards - 1) / shards;
  shards_ = std::vector<Shard>(shards);
  const std::size_t table_size =
      next_pow2(std::max<std::size_t>(2 * shard_capacity_, 4));
  for (Shard& shard : shards_) {
    shard.table.assign(table_size, Slot{});
    shard.table_mask = table_size - 1;
    shard.parked.reserve(shard_capacity_);
  }
}

std::size_t Rct::probe_home(const Shard& shard, VertexId v) {
  return static_cast<std::size_t>(mix64(v)) & shard.table_mask;
}

std::size_t Rct::find_locked(const Shard& shard, VertexId v) {
  std::size_t i = probe_home(shard, v);
  while (shard.table[i].id != kInvalidVertex) {
    if (shard.table[i].id == v) return i;
    i = (i + 1) & shard.table_mask;
  }
  return shard.table.size();
}

void Rct::grow_locked(Shard& shard) {
  std::vector<Slot> old = std::move(shard.table);
  shard.table.assign(old.size() * 2, Slot{});
  shard.table_mask = shard.table.size() - 1;
  for (const Slot& slot : old) {
    if (slot.id == kInvalidVertex) continue;
    std::size_t i = probe_home(shard, slot.id);
    while (shard.table[i].id != kInvalidVertex) i = (i + 1) & shard.table_mask;
    shard.table[i] = slot;
  }
}

std::size_t Rct::insert_locked(Shard& shard, VertexId v) {
  // Keep the load factor <= 1/2 so probes stay short; only restore_parked
  // can push a shard past its nominal capacity and trigger growth.
  if (2 * (shard.entries + 1) > shard.table.size()) grow_locked(shard);
  std::size_t i = probe_home(shard, v);
  while (shard.table[i].id != kInvalidVertex) i = (i + 1) & shard.table_mask;
  shard.table[i] = Slot{v, 0, false};
  ++shard.entries;
  return i;
}

void Rct::erase_locked(Shard& shard, std::size_t hole) {
  // Backward-shift deletion: walk the probe chain after the hole and pull
  // back any slot whose home position precedes the hole in probe order, so
  // lookups never need tombstones.
  std::size_t i = hole;
  std::size_t j = hole;
  for (;;) {
    j = (j + 1) & shard.table_mask;
    if (shard.table[j].id == kInvalidVertex) break;
    const std::size_t home = probe_home(shard, shard.table[j].id);
    if (((j - home) & shard.table_mask) >= ((j - i) & shard.table_mask)) {
      shard.table[i] = shard.table[j];
      i = j;
    }
  }
  shard.table[i] = Slot{};
  --shard.entries;
}

bool Rct::register_vertex(VertexId v) {
  // Global admission: claim a ticket against the *total* capacity before
  // touching the shard. The old per-shard bound (capacity_/S entries per
  // shard) degenerated with ε·M ≈ 2·next_pow2(M): every shard could hold 2
  // entries, so three in-flight vertices striping to one shard overflowed
  // while the table as a whole was nearly empty (the M=4 untracked_overflow
  // spike in BENCH_parallel.json). The shard tables themselves grow on
  // demand (insert_locked), so only the global count needs bounding.
  const std::size_t ticket = entry_count_.fetch_add(1, std::memory_order_relaxed);
  if (ticket >= capacity_) {
    entry_count_.fetch_sub(1, std::memory_order_relaxed);
    untracked_overflow_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = shard_of(v);
  std::lock_guard lock(shard.mutex);
  if (find_locked(shard, v) != shard.table.size()) {
    entry_count_.fetch_sub(1, std::memory_order_relaxed);
    return false;  // duplicate (not an overflow)
  }
  insert_locked(shard, v);
  return true;
}

void Rct::bump_if_present(VertexId u) {
  Shard& shard = shard_of(u);
  std::lock_guard lock(shard.mutex);
  const std::size_t i = find_locked(shard, u);
  if (i == shard.table.size()) return;
  if (shard.table[i].counter == 0) {
    nonzero_count_.fetch_add(1, std::memory_order_relaxed);
  }
  ++shard.table[i].counter;
  nonzero_sum_.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t Rct::count(VertexId v) const {
  const Shard& shard = shard_of(v);
  std::lock_guard lock(shard.mutex);
  const std::size_t i = find_locked(shard, v);
  return i == shard.table.size() ? 0 : shard.table[i].counter;
}

double Rct::mean_nonzero_count() const {
  const std::uint32_t count = nonzero_count_.load(std::memory_order_relaxed);
  if (count == 0) return 0.0;
  return static_cast<double>(nonzero_sum_.load(std::memory_order_relaxed)) /
         count;
}

bool Rct::should_delay(VertexId v) const {
  std::uint32_t counter;
  {
    const Shard& shard = shard_of(v);
    std::lock_guard lock(shard.mutex);
    const std::size_t i = find_locked(shard, v);
    if (i == shard.table.size()) return false;
    counter = shard.table[i].counter;
  }
  if (counter == 0) return false;
  return static_cast<double>(counter) >= std::max(1.0, mean_nonzero_count());
}

bool Rct::park(OwnedVertexRecord&& record) {
  // Same global-ticket admission as register_vertex: the parked bound is the
  // table capacity, not capacity_/S per shard.
  const std::size_t ticket = parked_count_.fetch_add(1, std::memory_order_relaxed);
  if (ticket >= capacity_) {
    parked_count_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = shard_of(record.id);
  std::lock_guard lock(shard.mutex);
  const std::size_t i = find_locked(shard, record.id);
  if (i == shard.table.size() || shard.table[i].parked) {
    // Untracked vertices cannot park; a double-park would lose a record.
    parked_count_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  shard.table[i].parked = true;
  shard.parked.push_back(std::move(record));
  return true;
}

std::vector<OwnedVertexRecord> Rct::on_placed(VertexId v,
                                              std::span<const VertexId> out) {
  std::vector<OwnedVertexRecord> ready;
  {
    Shard& shard = shard_of(v);
    std::lock_guard lock(shard.mutex);
    const std::size_t i = find_locked(shard, v);
    if (i != shard.table.size()) {
      if (shard.table[i].counter > 0) {
        nonzero_sum_.fetch_sub(shard.table[i].counter,
                               std::memory_order_relaxed);
        nonzero_count_.fetch_sub(1, std::memory_order_relaxed);
      }
      // If the caller force-placed a still-parked vertex, drop the orphaned
      // parked record too.
      if (shard.table[i].parked) {
        auto it = std::find_if(shard.parked.begin(), shard.parked.end(),
                               [&](const auto& r) { return r.id == v; });
        if (it != shard.parked.end()) {
          shard.parked.erase(it);
          parked_count_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      erase_locked(shard, i);
      entry_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // One shard lock at a time: the self shard above is released before any
  // neighbor shard is taken, so there is no lock-ordering hazard.
  for (VertexId u : out) {
    Shard& shard = shard_of(u);
    std::lock_guard lock(shard.mutex);
    const std::size_t i = find_locked(shard, u);
    if (i == shard.table.size() || shard.table[i].counter == 0) continue;
    --shard.table[i].counter;
    nonzero_sum_.fetch_sub(1, std::memory_order_relaxed);
    if (shard.table[i].counter == 0) {
      nonzero_count_.fetch_sub(1, std::memory_order_relaxed);
      if (shard.table[i].parked) {
        // Counter drained: release the parked record for immediate placement.
        // The entry stays (counter 0, parked=false) until u's own on_placed.
        shard.table[i].parked = false;
        auto it = std::find_if(shard.parked.begin(), shard.parked.end(),
                               [&](const auto& r) { return r.id == u; });
        if (it != shard.parked.end()) {
          ready.push_back(std::move(*it));
          shard.parked.erase(it);
          parked_count_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
    }
  }
  return ready;
}

std::vector<OwnedVertexRecord> Rct::drain_parked() {
  std::vector<OwnedVertexRecord> rest;
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (OwnedVertexRecord& record : shard.parked) {
      const std::size_t i = find_locked(shard, record.id);
      if (i != shard.table.size()) shard.table[i].parked = false;
      rest.push_back(std::move(record));
    }
    parked_count_.fetch_sub(shard.parked.size(), std::memory_order_relaxed);
    shard.parked.clear();
  }
  std::sort(rest.begin(), rest.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  return rest;
}

std::vector<Rct::ParkedState> Rct::snapshot_parked() const {
  std::vector<ParkedState> parked;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const OwnedVertexRecord& record : shard.parked) {
      const std::size_t i = find_locked(shard, record.id);
      const std::uint32_t counter =
          i == shard.table.size() ? 0 : shard.table[i].counter;
      parked.push_back({record.id, counter, record.out});
    }
  }
  std::sort(parked.begin(), parked.end(),
            [](const ParkedState& a, const ParkedState& b) { return a.id < b.id; });
  return parked;
}

void Rct::restore_parked(std::vector<ParkedState> parked) {
  if (entry_count_.load(std::memory_order_relaxed) != 0 ||
      parked_count_.load(std::memory_order_relaxed) != 0) {
    throw std::logic_error("Rct::restore_parked: table not empty");
  }
  for (auto& p : parked) {
    Shard& shard = shard_of(p.id);
    std::lock_guard lock(shard.mutex);
    // Deliberately no shard_capacity_ check: a snapshot taken by a run with
    // more workers (larger ε·M table) must restore losslessly; the table
    // grows as needed.
    const std::size_t i = insert_locked(shard, p.id);
    shard.table[i].counter = p.counter;
    shard.table[i].parked = true;
    entry_count_.fetch_add(1, std::memory_order_relaxed);
    if (p.counter > 0) {
      nonzero_sum_.fetch_add(p.counter, std::memory_order_relaxed);
      nonzero_count_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.parked.push_back(OwnedVertexRecord{p.id, std::move(p.out)});
    parked_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t Rct::memory_footprint_bytes() const {
  std::size_t bytes = shards_.size() * sizeof(Shard);
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    bytes += shard.table.capacity() * sizeof(Slot);
    bytes += shard.parked.capacity() * sizeof(OwnedVertexRecord);
    for (const OwnedVertexRecord& record : shard.parked) {
      bytes += record.out.capacity() * sizeof(VertexId);
    }
  }
  return bytes;
}

}  // namespace spnl
