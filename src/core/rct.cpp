#include "core/rct.hpp"

#include <algorithm>
#include <stdexcept>

namespace spnl {

Rct::Rct(std::size_t capacity) : capacity_(capacity ? capacity : 1) {
  entries_.reserve(capacity_ * 2);
}

bool Rct::register_vertex(VertexId v) {
  std::lock_guard lock(mutex_);
  if (entries_.size() >= capacity_) return false;
  return entries_.emplace(v, Entry{}).second;
}

void Rct::bump_if_present(VertexId u) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(u);
  if (it == entries_.end()) return;
  if (it->second.counter == 0) ++nonzero_count_;
  ++it->second.counter;
  ++nonzero_sum_;
}

std::uint32_t Rct::count(VertexId v) const {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(v);
  return it == entries_.end() ? 0 : it->second.counter;
}

double Rct::mean_nonzero_count() const {
  std::lock_guard lock(mutex_);
  return nonzero_count_ == 0
             ? 0.0
             : static_cast<double>(nonzero_sum_) / nonzero_count_;
}

bool Rct::should_delay(VertexId v) const {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(v);
  if (it == entries_.end() || it->second.counter == 0) return false;
  const double mean = nonzero_count_ == 0
                          ? 0.0
                          : static_cast<double>(nonzero_sum_) / nonzero_count_;
  return static_cast<double>(it->second.counter) >= std::max(1.0, mean);
}

bool Rct::park(OwnedVertexRecord&& record) {
  std::lock_guard lock(mutex_);
  if (parked_.size() >= capacity_) return false;
  auto it = entries_.find(record.id);
  if (it == entries_.end()) return false;  // untracked vertices cannot park
  if (it->second.parked) return false;     // double-park would lose a record
  it->second.parked = true;
  parked_.emplace(record.id, std::move(record));
  return true;
}

std::vector<OwnedVertexRecord> Rct::release_ready_locked() {
  std::vector<OwnedVertexRecord> ready;
  for (auto it = parked_.begin(); it != parked_.end();) {
    auto entry = entries_.find(it->first);
    if (entry != entries_.end() && entry->second.counter == 0) {
      entry->second.parked = false;
      ready.push_back(std::move(it->second));
      it = parked_.erase(it);
    } else {
      ++it;
    }
  }
  return ready;
}

std::vector<OwnedVertexRecord> Rct::on_placed(VertexId v,
                                              std::span<const VertexId> out) {
  std::lock_guard lock(mutex_);
  if (auto self = entries_.find(v); self != entries_.end()) {
    if (self->second.counter > 0) {
      nonzero_sum_ -= self->second.counter;
      --nonzero_count_;
    }
    // If the caller force-placed a still-parked vertex, drop the orphaned
    // parked record too.
    if (self->second.parked) parked_.erase(v);
    entries_.erase(self);
  }
  bool released_any = false;
  for (VertexId u : out) {
    auto it = entries_.find(u);
    if (it == entries_.end() || it->second.counter == 0) continue;
    --it->second.counter;
    --nonzero_sum_;
    if (it->second.counter == 0) {
      --nonzero_count_;
      if (it->second.parked) released_any = true;
    }
  }
  if (!released_any) return {};
  return release_ready_locked();
}

std::vector<OwnedVertexRecord> Rct::drain_parked() {
  std::lock_guard lock(mutex_);
  std::vector<OwnedVertexRecord> rest;
  rest.reserve(parked_.size());
  for (auto& [id, record] : parked_) {
    auto entry = entries_.find(id);
    if (entry != entries_.end()) entry->second.parked = false;
    rest.push_back(std::move(record));
  }
  parked_.clear();
  std::sort(rest.begin(), rest.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  return rest;
}

std::vector<Rct::ParkedState> Rct::snapshot_parked() const {
  std::lock_guard lock(mutex_);
  std::vector<ParkedState> parked;
  parked.reserve(parked_.size());
  for (const auto& [id, record] : parked_) {
    auto entry = entries_.find(id);
    const std::uint32_t counter =
        entry == entries_.end() ? 0 : entry->second.counter;
    parked.push_back({id, counter, record.out});
  }
  std::sort(parked.begin(), parked.end(),
            [](const ParkedState& a, const ParkedState& b) { return a.id < b.id; });
  return parked;
}

void Rct::restore_parked(std::vector<ParkedState> parked) {
  std::lock_guard lock(mutex_);
  if (!entries_.empty() || !parked_.empty()) {
    throw std::logic_error("Rct::restore_parked: table not empty");
  }
  for (auto& p : parked) {
    entries_.emplace(p.id, Entry{p.counter, /*parked=*/true});
    if (p.counter > 0) {
      nonzero_sum_ += p.counter;
      ++nonzero_count_;
    }
    parked_.emplace(p.id, OwnedVertexRecord{p.id, std::move(p.out)});
  }
}

std::size_t Rct::memory_footprint_bytes() const {
  std::lock_guard lock(mutex_);
  // Hash-map nodes approximated as key + payload + two pointers of overhead;
  // parked records add their adjacency storage. The table is ε·M entries so
  // this is tiny next to the Γ window, but the governor's MC sample should
  // still see it.
  std::size_t bytes =
      entries_.size() * (sizeof(VertexId) + sizeof(Entry) + 2 * sizeof(void*));
  for (const auto& [id, record] : parked_) {
    bytes += sizeof(OwnedVertexRecord) + 2 * sizeof(void*) +
             record.out.capacity() * sizeof(VertexId);
  }
  return bytes;
}

std::size_t Rct::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::size_t Rct::parked_size() const {
  std::lock_guard lock(mutex_);
  return parked_.size();
}

}  // namespace spnl
