#include "core/rct.hpp"

#include <algorithm>
#include <stdexcept>

namespace spnl {

namespace {

/// splitmix64 finalizer: vertex ids are dense and sequential, so the probe
/// start must be decorrelated from the shard stripe (v mod S) or every id in
/// a shard would land on the same few slots.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t next_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

/// RAII shard guard implementing the mode split (see rct.hpp). "Shared
/// intent" (exclusive=false) acquires shared in kLockFree mode, exclusive in
/// kStriped mode — so the striped baseline runs the identical call sites with
/// every operation serialized, and exclusive_acquires() measures the
/// difference deterministically. try_lock-first detects contention without a
/// clock.
class Rct::Guard {
 public:
  Guard(const Rct& rct, const Shard& shard, bool exclusive)
      : shard_(shard), exclusive_(exclusive || rct.mode_ == RctMode::kStriped) {
    if (exclusive_) {
      rct.exclusive_acquires_.fetch_add(1, std::memory_order_relaxed);
      if (!shard_.mutex.try_lock()) {
        rct.exclusive_contended_.fetch_add(1, std::memory_order_relaxed);
        shard_.mutex.lock();
      }
    } else {
      if (!shard_.mutex.try_lock_shared()) {
        rct.shared_contended_.fetch_add(1, std::memory_order_relaxed);
        shard_.mutex.lock_shared();
      }
    }
  }

  ~Guard() {
    if (exclusive_) {
      shard_.mutex.unlock();
    } else {
      shard_.mutex.unlock_shared();
    }
  }

  bool exclusive() const { return exclusive_; }

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  const Shard& shard_;
  bool exclusive_;
};

std::uint32_t Rct::recommended_shards(unsigned num_threads) {
  return static_cast<std::uint32_t>(next_pow2(num_threads ? num_threads : 1));
}

Rct::Rct(std::size_t capacity, std::uint32_t num_shards, RctMode mode)
    : capacity_(capacity ? capacity : 1), mode_(mode) {
  const std::size_t shards = next_pow2(num_shards ? num_shards : 1);
  shard_mask_ = static_cast<std::uint32_t>(shards - 1);
  shard_capacity_ = (capacity_ + shards - 1) / shards;
  shards_ = std::vector<Shard>(shards);
  const std::size_t table_size =
      next_pow2(std::max<std::size_t>(2 * shard_capacity_, 4));
  for (Shard& shard : shards_) {
    alloc_table(shard, table_size);
    shard.parked.reserve(shard_capacity_);
  }
}

void Rct::alloc_table(Shard& shard, std::size_t size) {
  shard.table = std::make_unique<Slot[]>(size);  // value-init: empty slots
  shard.table_size = size;
  shard.table_mask = size - 1;
}

std::size_t Rct::probe_home(const Shard& shard, VertexId v) {
  return static_cast<std::size_t>(mix64(v)) & shard.table_mask;
}

std::size_t Rct::find_locked(const Shard& shard, VertexId v) {
  // Probe chains only change under the exclusive lock (erase/grow), so a
  // shared holder's walk is stable. The acquire load pairs with the claim
  // CAS's release so a freshly claimed id is seen fully initialized (an
  // empty slot's counter is 0 by invariant, so there is nothing else to
  // see). The probe count is bounded defensively: a transiently full table
  // (concurrent claims overshooting the load limit on a tiny table) must
  // terminate as "absent" instead of spinning.
  std::size_t i = probe_home(shard, v);
  for (std::size_t probes = 0; probes < shard.table_size; ++probes) {
    const VertexId id = shard.table[i].id.load(std::memory_order_acquire);
    if (id == kInvalidVertex) return shard.table_size;
    if (id == v) return i;
    i = (i + 1) & shard.table_mask;
  }
  return shard.table_size;
}

void Rct::grow_locked(Shard& shard) {
  const std::size_t old_size = shard.table_size;
  std::unique_ptr<Slot[]> old = std::move(shard.table);
  alloc_table(shard, old_size * 2);
  for (std::size_t s = 0; s < old_size; ++s) {
    const VertexId id = old[s].id.load(std::memory_order_relaxed);
    if (id == kInvalidVertex) continue;
    std::size_t i = probe_home(shard, id);
    while (shard.table[i].id.load(std::memory_order_relaxed) != kInvalidVertex) {
      i = (i + 1) & shard.table_mask;
    }
    shard.table[i].id.store(id, std::memory_order_relaxed);
    shard.table[i].counter.store(old[s].counter.load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
    shard.table[i].parked = old[s].parked;
  }
}

std::size_t Rct::insert_locked(Shard& shard, VertexId v) {
  // Keep the load factor <= 1/2 so probes stay short. Plain relaxed stores:
  // the caller holds the lock exclusively, and the mutex release publishes
  // the writes to every later shared holder.
  if (2 * (shard.entries.load(std::memory_order_relaxed) + 1) > shard.table_size) {
    grow_locked(shard);
  }
  std::size_t i = probe_home(shard, v);
  while (shard.table[i].id.load(std::memory_order_relaxed) != kInvalidVertex) {
    i = (i + 1) & shard.table_mask;
  }
  shard.table[i].id.store(v, std::memory_order_relaxed);
  shard.table[i].counter.store(0, std::memory_order_relaxed);
  shard.table[i].parked = false;
  shard.entries.fetch_add(1, std::memory_order_relaxed);
  return i;
}

void Rct::erase_locked(Shard& shard, std::size_t hole) {
  // Backward-shift deletion: walk the probe chain after the hole and pull
  // back any slot whose home position precedes the hole in probe order, so
  // lookups never need tombstones. Exclusive lock held: no concurrent probe
  // can observe the chain mid-rewrite.
  std::size_t i = hole;
  std::size_t j = hole;
  for (;;) {
    j = (j + 1) & shard.table_mask;
    const VertexId jid = shard.table[j].id.load(std::memory_order_relaxed);
    if (jid == kInvalidVertex) break;
    const std::size_t home = probe_home(shard, jid);
    if (((j - home) & shard.table_mask) >= ((j - i) & shard.table_mask)) {
      shard.table[i].id.store(jid, std::memory_order_relaxed);
      shard.table[i].counter.store(
          shard.table[j].counter.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      shard.table[i].parked = shard.table[j].parked;
      i = j;
    }
  }
  // Restore the empty-slot invariant (counter 0, parked false) so a future
  // lock-free claim of this slot needs no initialization.
  shard.table[i].id.store(kInvalidVertex, std::memory_order_relaxed);
  shard.table[i].counter.store(0, std::memory_order_relaxed);
  shard.table[i].parked = false;
  shard.entries.fetch_sub(1, std::memory_order_relaxed);
}

bool Rct::register_exclusive(VertexId v) {
  // Exclusive-path insert: used by the striped mode for every registration
  // and by the lock-free claim when the shard needs growth. The global
  // admission ticket is already held; refund on duplicate.
  Shard& shard = shard_of(v);
  Guard guard(*this, shard, /*exclusive=*/true);
  if (find_locked(shard, v) != shard.table_size) {
    entry_count_.fetch_sub(1, std::memory_order_relaxed);
    return false;  // duplicate (not an overflow)
  }
  insert_locked(shard, v);
  return true;
}

bool Rct::register_vertex(VertexId v) {
  // Global admission: claim a ticket against the *total* capacity before
  // touching the shard. The old per-shard bound (capacity_/S entries per
  // shard) degenerated with ε·M ≈ 2·next_pow2(M): every shard could hold 2
  // entries, so three in-flight vertices striping to one shard overflowed
  // while the table as a whole was nearly empty (the M=4 untracked_overflow
  // spike in BENCH_parallel.json). The shard tables themselves grow on
  // demand, so only the global count needs bounding.
  const std::size_t ticket = entry_count_.fetch_add(1, std::memory_order_relaxed);
  if (ticket >= capacity_) {
    entry_count_.fetch_sub(1, std::memory_order_relaxed);
    untracked_overflow_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (mode_ == RctMode::kStriped) return register_exclusive(v);

  Shard& shard = shard_of(v);
  {
    Guard guard(*this, shard, /*exclusive=*/false);
    std::size_t i = probe_home(shard, v);
    for (std::size_t probes = 0; probes < shard.table_size; ++probes) {
      const VertexId id = shard.table[i].id.load(std::memory_order_acquire);
      if (id == v) {
        entry_count_.fetch_sub(1, std::memory_order_relaxed);
        return false;  // duplicate (not an overflow)
      }
      if (id == kInvalidVertex) {
        // Load check BEFORE claiming: growth is impossible under the shared
        // lock, so an over-half claim must divert to the exclusive path.
        // Concurrent claimers can overshoot the limit by at most M slots —
        // find_locked's bounded probe tolerates even a transiently full
        // table on the minimum-size table.
        if (2 * (shard.entries.load(std::memory_order_relaxed) + 1) >
            shard.table_size) {
          break;
        }
        VertexId expected = kInvalidVertex;
        if (shard.table[i].id.compare_exchange_strong(
                expected, v, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          // Claimed: the slot's counter is 0 by the empty-slot invariant.
          shard.entries.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        claim_cas_retries_.fetch_add(1, std::memory_order_relaxed);
        if (expected == v) {
          entry_count_.fetch_sub(1, std::memory_order_relaxed);
          return false;  // lost the claim to a duplicate of v
        }
        // Lost to a different id: the slot is occupied now, keep probing.
      }
      i = (i + 1) & shard.table_mask;
    }
  }
  // AUDIT (PR 9, lock-free claim): the shard needs growth (or the probe
  // wrapped), which requires the EXCLUSIVE lock. PR 4's "never-nested"
  // invariant covered cross-SHARD sequencing only; with CAS registration the
  // hazard is same-shard — upgrading shared→exclusive in place self-deadlocks
  // on shared_mutex, so the shared lock is released first (the scope above)
  // and the exclusive path re-probes for a duplicate before inserting.
  return register_exclusive(v);
}

void Rct::bump_if_present(VertexId u) {
  Shard& shard = shard_of(u);
  Guard guard(*this, shard, /*exclusive=*/false);
  const std::size_t i = find_locked(shard, u);
  if (i == shard.table_size) return;
  // Exactly one fetch_add observes the 0→nonzero transition (prev == 0), so
  // the threshold stats stay exact under concurrent bumps.
  const std::uint32_t prev =
      shard.table[i].counter.fetch_add(1, std::memory_order_relaxed);
  if (prev == 0) nonzero_count_.fetch_add(1, std::memory_order_relaxed);
  nonzero_sum_.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t Rct::count(VertexId v) const {
  const Shard& shard = shard_of(v);
  Guard guard(*this, shard, /*exclusive=*/false);
  const std::size_t i = find_locked(shard, v);
  return i == shard.table_size
             ? 0
             : shard.table[i].counter.load(std::memory_order_relaxed);
}

double Rct::mean_nonzero_count() const {
  const std::uint32_t count = nonzero_count_.load(std::memory_order_relaxed);
  if (count == 0) return 0.0;
  return static_cast<double>(nonzero_sum_.load(std::memory_order_relaxed)) /
         count;
}

bool Rct::should_delay(VertexId v) const {
  std::uint32_t counter;
  {
    const Shard& shard = shard_of(v);
    Guard guard(*this, shard, /*exclusive=*/false);
    const std::size_t i = find_locked(shard, v);
    if (i == shard.table_size) return false;
    counter = shard.table[i].counter.load(std::memory_order_relaxed);
  }
  if (counter == 0) return false;
  return static_cast<double>(counter) >= std::max(1.0, mean_nonzero_count());
}

bool Rct::park(OwnedVertexRecord&& record) {
  // Same global-ticket admission as register_vertex: the parked bound is the
  // table capacity, not capacity_/S per shard.
  const std::size_t ticket = parked_count_.fetch_add(1, std::memory_order_relaxed);
  if (ticket >= capacity_) {
    parked_count_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = shard_of(record.id);
  // Exclusive in both modes: park mutates the parked flag and the parked
  // vector, both of which shared holders rely on being writer-excluded.
  Guard guard(*this, shard, /*exclusive=*/true);
  const std::size_t i = find_locked(shard, record.id);
  if (i == shard.table_size || shard.table[i].parked) {
    // Untracked vertices cannot park; a double-park would lose a record.
    parked_count_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  shard.table[i].parked = true;
  shard.parked.push_back(std::move(record));
  return true;
}

std::vector<OwnedVertexRecord> Rct::on_placed(VertexId v,
                                              std::span<const VertexId> out) {
  std::vector<OwnedVertexRecord> ready;
  // Helper for the moment a counter drains to zero with the record parked:
  // hand the record back for immediate placement. Caller holds the shard
  // lock EXCLUSIVE and has already cleared/validated the parked flag.
  auto unpark_locked = [&](Shard& shard, VertexId u) {
    auto it = std::find_if(shard.parked.begin(), shard.parked.end(),
                           [&](const auto& r) { return r.id == u; });
    if (it != shard.parked.end()) {
      ready.push_back(std::move(*it));
      shard.parked.erase(it);
      parked_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  };

  {
    Shard& shard = shard_of(v);
    // Exclusive: erase rewrites the probe chain (backward shift), which
    // would invalidate concurrent shared-side probes. Holding it also
    // excludes every shared-side bump/decrement on this shard, so the
    // residual counter subtracted below cannot move mid-erase.
    Guard guard(*this, shard, /*exclusive=*/true);
    const std::size_t i = find_locked(shard, v);
    if (i != shard.table_size) {
      const std::uint32_t residual =
          shard.table[i].counter.exchange(0, std::memory_order_relaxed);
      if (residual > 0) {
        nonzero_sum_.fetch_sub(residual, std::memory_order_relaxed);
        nonzero_count_.fetch_sub(1, std::memory_order_relaxed);
      }
      // If the caller force-placed a still-parked vertex, drop the orphaned
      // parked record too.
      if (shard.table[i].parked) {
        auto it = std::find_if(shard.parked.begin(), shard.parked.end(),
                               [&](const auto& r) { return r.id == v; });
        if (it != shard.parked.end()) {
          shard.parked.erase(it);
          parked_count_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      erase_locked(shard, i);
      entry_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // One shard lock at a time: the self shard above is released before any
  // neighbor shard is taken, so there is no cross-shard ordering hazard.
  for (VertexId u : out) {
    Shard& shard = shard_of(u);
    bool need_unpark = false;
    {
      Guard guard(*this, shard, /*exclusive=*/false);
      const std::size_t i = find_locked(shard, u);
      if (i == shard.table_size) continue;
      // CAS-loop decrement that never goes below zero: exactly one CAS
      // installs the 1→0 transition, so that winner owns the stats update
      // and the unpark handoff.
      std::uint32_t c = shard.table[i].counter.load(std::memory_order_relaxed);
      while (c != 0) {
        if (shard.table[i].counter.compare_exchange_weak(
                c, c - 1, std::memory_order_relaxed,
                std::memory_order_relaxed)) {
          nonzero_sum_.fetch_sub(1, std::memory_order_relaxed);
          if (c == 1) {
            nonzero_count_.fetch_sub(1, std::memory_order_relaxed);
            if (guard.exclusive()) {
              // Striped mode: already writer-excluded, unpark inline.
              if (shard.table[i].parked) {
                shard.table[i].parked = false;
                unpark_locked(shard, u);
              }
            } else if (shard.table[i].parked) {
              // Reading the flag under the shared lock is race-free (it is
              // only written under exclusive), but clearing it is not:
              // divert to the exclusive reacquisition below.
              need_unpark = true;
            }
          }
          break;
        }
        decrement_cas_retries_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (need_unpark) {
      // AUDIT (PR 9, lock-free decrement): same-shard shared→exclusive
      // upgrade self-deadlocks, so the shared lock is RELEASED first (scope
      // above) and the slot re-validated here — another placer may have
      // unparked u, or u may have been force-placed and erased, in the
      // window between our 1→0 CAS and this reacquisition. We own that 1→0
      // transition, so if the record is still parked it is released now even
      // if the counter has been re-bumped meanwhile (eager semantics:
      // release happens at the drain instant).
      Guard guard(*this, shard, /*exclusive=*/true);
      const std::size_t i = find_locked(shard, u);
      if (i != shard.table_size && shard.table[i].parked) {
        shard.table[i].parked = false;
        unpark_locked(shard, u);
      }
    }
  }
  return ready;
}

std::vector<OwnedVertexRecord> Rct::drain_parked() {
  std::vector<OwnedVertexRecord> rest;
  for (Shard& shard : shards_) {
    Guard guard(*this, shard, /*exclusive=*/true);
    for (OwnedVertexRecord& record : shard.parked) {
      const std::size_t i = find_locked(shard, record.id);
      if (i != shard.table_size) shard.table[i].parked = false;
      rest.push_back(std::move(record));
    }
    parked_count_.fetch_sub(shard.parked.size(), std::memory_order_relaxed);
    shard.parked.clear();
  }
  std::sort(rest.begin(), rest.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  return rest;
}

std::vector<Rct::ParkedState> Rct::snapshot_parked() const {
  std::vector<ParkedState> parked;
  for (const Shard& shard : shards_) {
    Guard guard(*this, shard, /*exclusive=*/true);
    for (const OwnedVertexRecord& record : shard.parked) {
      const std::size_t i = find_locked(shard, record.id);
      const std::uint32_t counter =
          i == shard.table_size
              ? 0
              : shard.table[i].counter.load(std::memory_order_relaxed);
      parked.push_back({record.id, counter, record.out});
    }
  }
  std::sort(parked.begin(), parked.end(),
            [](const ParkedState& a, const ParkedState& b) { return a.id < b.id; });
  return parked;
}

void Rct::restore_parked(std::vector<ParkedState> parked) {
  if (entry_count_.load(std::memory_order_relaxed) != 0 ||
      parked_count_.load(std::memory_order_relaxed) != 0) {
    throw std::logic_error("Rct::restore_parked: table not empty");
  }
  for (auto& p : parked) {
    Shard& shard = shard_of(p.id);
    Guard guard(*this, shard, /*exclusive=*/true);
    // Deliberately no shard_capacity_ check: a snapshot taken by a run with
    // more workers (larger ε·M table) must restore losslessly; the table
    // grows as needed.
    const std::size_t i = insert_locked(shard, p.id);
    shard.table[i].counter.store(p.counter, std::memory_order_relaxed);
    shard.table[i].parked = true;
    entry_count_.fetch_add(1, std::memory_order_relaxed);
    if (p.counter > 0) {
      nonzero_sum_.fetch_add(p.counter, std::memory_order_relaxed);
      nonzero_count_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.parked.push_back(OwnedVertexRecord{p.id, std::move(p.out)});
    parked_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Rct::merge_contention_into(PerfStats& perf) const {
  perf.add_count(PerfCounter::kRctSharedContended, shared_contended());
  perf.add_count(PerfCounter::kRctExclusiveContended, exclusive_contended());
  perf.add_count(PerfCounter::kRctExclusiveAcquires, exclusive_acquires());
  perf.add_count(PerfCounter::kRctClaimCasRetries, claim_cas_retries());
  perf.add_count(PerfCounter::kRctDecrementCasRetries, decrement_cas_retries());
}

std::size_t Rct::memory_footprint_bytes() const {
  std::size_t bytes = shards_.size() * sizeof(Shard);
  for (const Shard& shard : shards_) {
    Guard guard(*this, shard, /*exclusive=*/true);
    bytes += shard.table_size * sizeof(Slot);
    bytes += shard.parked.capacity() * sizeof(OwnedVertexRecord);
    for (const OwnedVertexRecord& record : shard.parked) {
      bytes += record.out.capacity() * sizeof(VertexId);
    }
  }
  return bytes;
}

}  // namespace spnl
