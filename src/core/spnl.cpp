#include "core/spnl.hpp"

#include <stdexcept>

#include "util/memory.hpp"

namespace spnl {

namespace {
std::uint32_t resolve_shards(std::uint32_t requested, VertexId n, PartitionId k) {
  return requested == 0 ? GammaWindow::recommended_shards(n, k) : requested;
}
}  // namespace

SpnlPartitioner::SpnlPartitioner(VertexId num_vertices, EdgeId num_edges,
                                 const PartitionConfig& config, SpnlOptions options)
    : GreedyStreamingBase(num_vertices, num_edges, config),
      options_(options),
      gamma_(num_vertices, config.num_partitions,
             resolve_shards(options.num_shards, num_vertices, config.num_partitions),
             options.slide),
      logical_(num_vertices, config.num_partitions),
      logical_counts_(config.num_partitions, 0) {
  if (options_.lambda < 0.0 || options_.lambda > 1.0) {
    throw std::invalid_argument("SPNL: lambda must be in [0,1]");
  }
  for (PartitionId i = 0; i < config.num_partitions; ++i) {
    logical_counts_[i] = logical_.range_size(i);
  }
}

double SpnlPartitioner::eta(PartitionId i) const {
  switch (options_.eta_policy) {
    case EtaPolicy::kPaper: {
      const double lt = logical_counts_[i];
      if (lt <= 0.0) return 0.0;
      const double e = (lt - static_cast<double>(vertex_count(i))) / lt;
      return e > 0.0 ? e : 0.0;
    }
    case EtaPolicy::kLinear:
      return num_vertices_ == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(placed_total_) / num_vertices_;
    case EtaPolicy::kConstant:
      return options_.eta0;
    case EtaPolicy::kZero:
      return 0.0;
  }
  return 0.0;
}

PartitionId SpnlPartitioner::place(VertexId v, std::span<const VertexId> out) {
  const PartitionId k = num_partitions();
  const double lambda = options_.lambda;

  gamma_.advance_to(v);

  // Out-neighbor term, split into physical and logical contributions
  // (Eq. 6 weights the two intersection sizes separately).
  scores_.assign(k, 0.0);
  static thread_local std::vector<double> physical, logical;
  physical.assign(k, 0.0);
  logical.assign(k, 0.0);
  for (VertexId u : out) {
    if (u >= route_.size()) continue;
    if (route_[u] != kUnassigned) {
      physical[route_[u]] += 1.0;
    } else {
      logical[logical_.partition_of(u)] += 1.0;
    }
  }
  for (PartitionId i = 0; i < k; ++i) {
    const double e = eta(i);
    scores_[i] = lambda * ((1.0 - e) * physical[i] + e * logical[i]);
  }

  // In-neighbor expectation term (see spn.hpp for the Eq. 5 fidelity note).
  if (options_.estimator == InNeighborEstimator::kSelf) {
    const auto row = gamma_.row(v);
    for (PartitionId i = 0; i < static_cast<PartitionId>(row.size()); ++i) {
      scores_[i] += (1.0 - lambda) * row[i];
    }
  } else {
    for (VertexId u : out) {
      const auto row = gamma_.row(u);
      for (PartitionId i = 0; i < static_cast<PartitionId>(row.size()); ++i) {
        scores_[i] += (1.0 - lambda) * row[i];
      }
    }
  }

  for (PartitionId i = 0; i < k; ++i) scores_[i] *= remaining_weight(i);
  const PartitionId pid = pick_best(scores_);
  commit(v, out, pid);

  // v leaves its logical partition the moment it is physically placed.
  const PartitionId lp = logical_.partition_of(v);
  if (logical_counts_[lp] > 0) --logical_counts_[lp];
  ++placed_total_;

  for (VertexId u : out) gamma_.increment(pid, u);
  return pid;
}

void SpnlPartitioner::save_state(StateWriter& out) const {
  GreedyStreamingBase::save_state(out);
  gamma_.save(out);
  out.put_vec(logical_counts_);
  out.put_u32(placed_total_);
}

void SpnlPartitioner::restore_state(StateReader& in) {
  GreedyStreamingBase::restore_state(in);
  gamma_.restore(in);
  auto logical_counts = in.get_vec<VertexId>();
  if (logical_counts.size() != logical_counts_.size()) {
    throw CheckpointError("SPNL restore: logical table size mismatch");
  }
  logical_counts_ = std::move(logical_counts);
  placed_total_ = in.get_u32();
}

std::size_t SpnlPartitioner::memory_footprint_bytes() const {
  return GreedyStreamingBase::memory_footprint_bytes() +
         gamma_.memory_footprint_bytes() + vector_bytes(logical_counts_) +
         2 * sizeof(VertexId) * num_partitions();  // the O(2K) range bounds
}

}  // namespace spnl
