#include "core/spnl.hpp"

#include <stdexcept>

#include "core/score_kernel.hpp"
#include "util/memory.hpp"
#include "util/rng.hpp"

namespace spnl {

namespace {
std::uint32_t resolve_shards(std::uint32_t requested, VertexId n, PartitionId k) {
  return requested == 0 ? GammaWindow::recommended_shards(n, k) : requested;
}
}  // namespace

SpnlPartitioner::SpnlPartitioner(VertexId num_vertices, EdgeId num_edges,
                                 const PartitionConfig& config, SpnlOptions options)
    : GreedyStreamingBase(num_vertices, num_edges, config),
      options_(options),
      gamma_(num_vertices, config.num_partitions,
             resolve_shards(options.num_shards, num_vertices, config.num_partitions),
             options.slide),
      logical_(num_vertices, config.num_partitions),
      logical_counts_(config.num_partitions, 0) {
  if (options_.lambda < 0.0 || options_.lambda > 1.0) {
    throw std::invalid_argument("SPNL: lambda must be in [0,1]");
  }
  if (options_.logical_hints != nullptr) {
    const std::vector<PartitionId>& hints = *options_.logical_hints;
    if (hints.size() != num_vertices) {
      throw std::invalid_argument("SPNL: logical hint table size != |V|");
    }
    for (PartitionId hint : hints) {
      if (hint >= config.num_partitions) {
        throw std::invalid_argument("SPNL: logical hint partition out of range");
      }
      ++logical_counts_[hint];
    }
  } else {
    for (PartitionId i = 0; i < config.num_partitions; ++i) {
      logical_counts_[i] = logical_.range_size(i);
    }
  }
}

double SpnlPartitioner::eta(PartitionId i) const {
  switch (options_.eta_policy) {
    case EtaPolicy::kPaper: {
      const double lt = logical_counts_[i];
      if (lt <= 0.0) return 0.0;
      const double e = (lt - static_cast<double>(vertex_count(i))) / lt;
      return e > 0.0 ? e : 0.0;
    }
    case EtaPolicy::kLinear:
      return num_vertices_ == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(placed_total_) / num_vertices_;
    case EtaPolicy::kConstant:
      return options_.eta0;
    case EtaPolicy::kZero:
      return 0.0;
  }
  return 0.0;
}

PartitionId SpnlPartitioner::place(VertexId v, std::span<const VertexId> out) {
  const PartitionId k = num_partitions();
  const double lambda = options_.lambda;

  if (hash_fallback_) {
    // Last-rung degraded mode — see SpnPartitioner::place. The logical-table
    // bookkeeping below still runs so a later checkpoint stays coherent, but
    // the Eq. 6 score is replaced by a deterministic hash vote.
    PartitionId pid;
    {
      PerfScope t(perf_, PerfStage::kScore);
      scores_.assign(k, 0.0);
      scores_[static_cast<PartitionId>(mix64(kDegradedHashSeed ^ v) % k)] = 1.0;
      compute_loads(config_.balance, vertex_counts_, edge_counts_, capacity_,
                    edge_capacity_, scratch_.loads);
      pid = weigh_and_pick(scores_, scratch_.loads, capacity_);
    }
    PerfScope t(perf_, PerfStage::kCommit);
    commit(v, out, pid);
    const PartitionId lp = logical_partition_of(v);
    if (logical_counts_[lp] > 0) --logical_counts_[lp];
    ++placed_total_;
    return pid;
  }

  // Prefetch pass — see spn.cpp: the row addresses are final before the
  // slide (a vertex's ring slot is u % W regardless of the window base), so
  // the misses overlap with the row-retirement clear and the scoring work.
  const std::uint32_t* gamma_data = gamma_.data();
  const PartitionId* route = route_.data();
  const std::size_t route_size = route_.size();
  for (VertexId u : out) {
    if (u < route_size) prefetch_read(route + u);
    if (gamma_.contains(u)) prefetch_write(gamma_data + gamma_.row_offset(u));
  }

  {
    PerfScope t(perf_, PerfStage::kWindowAdvance);
    gamma_.advance_to(v);
  }

  PartitionId pid;
  auto& gamma_rows = scratch_.gamma_rows;
  {
    PerfScope t(perf_, PerfStage::kScore);

    // Stash pass over the out-list: each neighbor's post-slide Γ-window
    // membership and row offset, computed once and reused by the
    // kNeighborSum reads and the post-commit increments.
    scores_.assign(k, 0.0);
    physical_.assign(k, 0.0);
    logical_hits_.assign(k, 0.0);
    gamma_rows.clear();
    for (VertexId u : out) {
      if (gamma_.contains(u)) gamma_rows.push_back(gamma_.row_offset(u));
    }

    // Out-neighbor term: the physical/logical tallies (Eq. 6 weights the two
    // intersection sizes separately). Per-bucket accumulation chains are
    // unchanged from the reference, so the sums are bit-identical.
    for (VertexId u : out) {
      if (u < route_size) {
        if (route[u] != kUnassigned) {
          physical_[route[u]] += 1.0;
        } else {
          logical_hits_[logical_partition_of(u)] += 1.0;
        }
      }
    }
    for (PartitionId i = 0; i < k; ++i) {
      const double e = eta(i);
      scores_[i] = lambda * ((1.0 - e) * physical_[i] + e * logical_hits_[i]);
    }

    // In-neighbor expectation term (see spn.hpp for the Eq. 5 fidelity note).
    if (options_.estimator == InNeighborEstimator::kSelf) {
      if (gamma_.contains(v)) {
        const std::uint32_t* row = gamma_data + gamma_.row_offset(v);
        for (PartitionId i = 0; i < k; ++i) {
          scores_[i] += (1.0 - lambda) * row[i];
        }
      }
    } else {
      for (const std::size_t offset : gamma_rows) {
        const std::uint32_t* row = gamma_data + offset;
        for (PartitionId i = 0; i < k; ++i) {
          scores_[i] += (1.0 - lambda) * row[i];
        }
      }
    }

    compute_loads(config_.balance, vertex_counts_, edge_counts_, capacity_,
                  edge_capacity_, scratch_.loads);
    pid = weigh_and_pick(scores_, scratch_.loads, capacity_);
  }

  {
    PerfScope t(perf_, PerfStage::kCommit);
    commit(v, out, pid);

    // v leaves its logical partition the moment it is physically placed.
    const PartitionId lp = logical_partition_of(v);
    if (logical_counts_[lp] > 0) --logical_counts_[lp];
    ++placed_total_;
  }

  {
    // The window cannot have moved since the scoring pass, so the stashed
    // row offsets are still the live slots.
    PerfScope t(perf_, PerfStage::kGammaIncrement);
    for (const std::size_t offset : gamma_rows) gamma_.increment_at(offset, pid);
  }
  return pid;
}

bool SpnlPartitioner::apply_degradation(DegradationStage stage) {
  const auto raise_to = [this](DegradationStage s) {
    if (static_cast<int>(s) > static_cast<int>(stage_)) stage_ = s;
  };
  switch (stage) {
    case DegradationStage::kShrinkWindow: {
      const VertexId w = gamma_.window_size();
      if (w <= 1) return false;
      gamma_.shrink_to(w / 2);
      raise_to(stage);
      return true;
    }
    case DegradationStage::kCoarseSlide:
      if (gamma_.slide_mode() == SlideMode::kCoarse || gamma_.window_size() <= 1) {
        return false;
      }
      gamma_.set_slide_mode(SlideMode::kCoarse);
      raise_to(stage);
      return true;
    case DegradationStage::kHashFallback:
      if (hash_fallback_) return false;
      hash_fallback_ = true;
      gamma_.shrink_to(1);
      raise_to(stage);
      return true;
    case DegradationStage::kNone:
      break;
  }
  return false;
}

void SpnlPartitioner::save_state(StateWriter& out) const {
  GreedyStreamingBase::save_state(out);
  gamma_.save(out);
  out.put_vec(logical_counts_);
  out.put_u32(placed_total_);
  out.put_u32(static_cast<std::uint32_t>(stage_));
}

void SpnlPartitioner::restore_state(StateReader& in) {
  GreedyStreamingBase::restore_state(in);
  gamma_.restore(in);
  auto logical_counts = in.get_vec<VertexId>();
  if (logical_counts.size() != logical_counts_.size()) {
    throw CheckpointError("SPNL restore: logical table size mismatch");
  }
  logical_counts_ = std::move(logical_counts);
  placed_total_ = in.get_u32();
  stage_ = static_cast<DegradationStage>(in.get_u32());
  hash_fallback_ = stage_ == DegradationStage::kHashFallback;
}

std::size_t SpnlPartitioner::memory_footprint_bytes() const {
  // An injected hint table replaces the O(2K) range bounds with O(|V|)
  // borrowed state that is nonetheless required to run — charge it.
  const std::size_t logical_bytes =
      options_.logical_hints != nullptr
          ? options_.logical_hints->size() * sizeof(PartitionId)
          : 2 * sizeof(VertexId) * num_partitions();
  return GreedyStreamingBase::memory_footprint_bytes() +
         gamma_.memory_footprint_bytes() + vector_bytes(logical_counts_) +
         logical_bytes;
}

}  // namespace spnl
