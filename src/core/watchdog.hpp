// Pipeline watchdog for the parallel streaming driver (robustness layer).
//
// Every worker owns a slot with an atomic heartbeat and a small state
// machine over its in-flight record:
//
//   kIdle ──publish──▶ kPublished ──claim──▶ kProcessing ──complete──▶ kIdle
//                          │
//                      (monitor, heartbeat older than the timeout)
//                          ▼
//                       kStolen ──▶ record rescued by the monitor thread
//
// A worker PUBLISHES a copy of each record before touching shared state and
// then CLAIMS it; the claim is a CAS, so a worker that wedges between
// publish and claim loses the race to the monitor, which rescues (places)
// the record itself — the stream completes without the sick worker. A worker
// that wedges INSIDE a placement (kProcessing) cannot be stolen from —
// rescuing would double-place — so the monitor marks it stalled; when every
// worker is wedged that way the pipeline cannot make progress and the
// monitor aborts the run (on_abort tears down the bounded queue, waking all
// waiters) instead of hanging. Timed queue operations on the producer side
// complete the no-unbounded-block guarantee.
//
// All cross-thread state is atomics or mutex-guarded; the monitor is a
// single thread, so rescues never race each other.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graph/adjacency_stream.hpp"

namespace spnl {

class PipelineWatchdog {
 public:
  struct Options {
    /// A slot whose heartbeat is older than this is stalled. <= 0 disables
    /// monitoring entirely (publish/claim/complete become cheap bookkeeping).
    double timeout_seconds = 5.0;
    /// Monitor poll cadence; 0 picks timeout/4 (clamped to [1ms, 250ms]).
    double poll_seconds = 0.0;
  };

  /// Called from the monitor thread with a stolen record; must place it
  /// (typically under the pipeline's shared lock).
  using RescueFn = std::function<void(unsigned worker, OwnedVertexRecord record)>;
  /// Called once when the pipeline is declared dead (all workers wedged).
  using AbortFn = std::function<void()>;

  PipelineWatchdog(unsigned num_workers, const Options& options, RescueFn rescue,
                   AbortFn on_abort);
  ~PipelineWatchdog();

  PipelineWatchdog(const PipelineWatchdog&) = delete;
  PipelineWatchdog& operator=(const PipelineWatchdog&) = delete;

  /// Launch / join the monitor thread. stop() is idempotent and also runs
  /// from the destructor.
  void start();
  void stop();

  /// Worker-side protocol (all bump the heartbeat).
  void publish(unsigned worker, const OwnedVertexRecord& record);
  /// False = the monitor stole the record while the worker stalled; the
  /// worker must drop its copy and move on.
  bool claim(unsigned worker);
  void complete(unsigned worker);
  void heartbeat(unsigned worker);

  /// Fault-injection/test helper: block until this worker's in-flight record
  /// is stolen, the pipeline aborts, or `max_seconds` passes. Returns true if
  /// the record was stolen.
  bool wait_until_stolen(unsigned worker, double max_seconds) const;
  /// Fault-injection/test helper: block until the pipeline aborts or
  /// `max_seconds` passes. Returns aborted().
  bool wait_until_aborted(double max_seconds) const;

  void request_abort(const std::string& reason);
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  std::string abort_reason() const;

  /// Distinct workers ever declared stalled / records rescued by the monitor.
  std::uint64_t stalled_workers() const {
    return stalled_workers_.load(std::memory_order_relaxed);
  }
  std::uint64_t rescued_records() const {
    return rescued_records_.load(std::memory_order_relaxed);
  }

 private:
  // Slot states (uint8_t payload of an atomic; enum class would force casts
  // at every CAS).
  static constexpr std::uint8_t kIdle = 0;
  static constexpr std::uint8_t kPublished = 1;
  static constexpr std::uint8_t kProcessing = 2;
  static constexpr std::uint8_t kStolen = 3;

  // Cache-line aligned: each worker hammers its own heartbeat on every
  // commit, and the monitor polls all of them — without the alignment the
  // slots would share lines and every heartbeat would ping-pong the others.
  struct alignas(64) Slot {
    std::atomic<std::uint8_t> state{kIdle};
    std::atomic<std::int64_t> heartbeat_nanos{0};
    /// Counted into stalled_workers() at most once.
    std::atomic<bool> ever_stalled{false};
    /// The published record copy; guarded because publish (worker) and steal
    /// (monitor) both touch it. The state CAS decides ownership, the mutex
    /// only orders the move itself.
    std::mutex record_mutex;
    std::optional<OwnedVertexRecord> record;
  };

  static std::int64_t now_nanos();
  void monitor_loop();
  void mark_stalled(Slot& slot);

  Options options_;
  RescueFn rescue_;
  AbortFn on_abort_;
  std::vector<Slot> slots_;

  std::thread monitor_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};

  std::atomic<bool> aborted_{false};
  mutable std::mutex reason_mutex_;
  std::string abort_reason_;

  std::atomic<std::uint64_t> stalled_workers_{0};
  std::atomic<std::uint64_t> rescued_records_{0};
};

}  // namespace spnl
