#include "core/parallel_driver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/concurrent_gamma.hpp"
#include "core/rct.hpp"
#include "partition/range_partitioner.hpp"
#include "util/bounded_queue.hpp"
#include "util/timer.hpp"

namespace spnl {

namespace {

/// Tracks the contiguous prefix of placed vertex ids. The Γ window base
/// follows this low-watermark so a delayed vertex's row survives its delay.
class WatermarkTracker {
 public:
  explicit WatermarkTracker(std::size_t span)
      : ring_(std::max<std::size_t>(span, 1), false) {}

  /// Mark id placed; returns the new watermark (first unplaced id).
  VertexId mark_done(VertexId id) {
    std::lock_guard lock(mutex_);
    const std::size_t slot = id % ring_.size();
    ring_[slot] = true;
    while (ring_[watermark_ % ring_.size()]) {
      ring_[watermark_ % ring_.size()] = false;
      ++watermark_;
    }
    return watermark_;
  }

 private:
  std::mutex mutex_;
  std::vector<bool> ring_;
  VertexId watermark_ = 0;
};

struct SharedState {
  SharedState(VertexId n, EdgeId m, const PartitionConfig& config,
              const ParallelOptions& options, std::uint32_t shards)
      : config(config),
        num_vertices(n),
        capacity(partition_capacity(n, m, config)),
        route(n),
        vertex_counts(config.num_partitions),
        edge_counts(config.num_partitions),
        logical_counts(config.num_partitions),
        gamma(n, config.num_partitions, shards),
        logical(n, config.num_partitions),
        options(options) {
    for (auto& r : route) r.store(kUnassigned, std::memory_order_relaxed);
    for (PartitionId i = 0; i < config.num_partitions; ++i) {
      vertex_counts[i].store(0, std::memory_order_relaxed);
      edge_counts[i].store(0, std::memory_order_relaxed);
      logical_counts[i].store(options.use_locality ? logical.range_size(i) : 0,
                              std::memory_order_relaxed);
    }
  }

  double load(PartitionId i) const {
    // kBoth degrades to the vertex constraint in the parallel driver (the
    // paper's primary constraint; racy dual-capacity checks are not worth
    // the extra synchronization).
    return config.balance == BalanceMode::kEdge
               ? static_cast<double>(edge_counts[i].load(std::memory_order_relaxed))
               : static_cast<double>(vertex_counts[i].load(std::memory_order_relaxed));
  }

  const PartitionConfig config;
  const VertexId num_vertices;
  const double capacity;
  std::vector<std::atomic<PartitionId>> route;
  std::vector<std::atomic<std::uint64_t>> vertex_counts;
  std::vector<std::atomic<std::uint64_t>> edge_counts;
  std::vector<std::atomic<std::uint64_t>> logical_counts;
  ConcurrentGammaWindow gamma;
  RangeTable logical;
  const ParallelOptions options;
  std::atomic<std::uint64_t> placed_total{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> forced{0};
};

class Worker {
 public:
  Worker(SharedState& state, Rct* rct, WatermarkTracker& watermark)
      : state_(state), rct_(rct), watermark_(watermark) {}

  /// Score + pick; bumps RCT counters of in-flight out-neighbors along the
  /// out-list traversal (the "no additional runtime cost" counting of the
  /// paper).
  PartitionId choose(const OwnedVertexRecord& record, bool bump_rct) {
    const PartitionId k = state_.config.num_partitions;
    const double lambda = state_.options.spnl.lambda;
    physical_.assign(k, 0.0);
    logical_.assign(k, 0.0);
    scores_.assign(k, 0.0);

    for (VertexId u : record.out) {
      if (bump_rct && rct_ != nullptr && u != record.id) rct_->bump_if_present(u);
      if (u >= state_.route.size()) continue;
      const PartitionId placed = state_.route[u].load(std::memory_order_relaxed);
      if (placed != kUnassigned) {
        physical_[placed] += 1.0;
      } else if (state_.options.use_locality) {
        logical_[state_.logical.partition_of(u)] += 1.0;
      }
    }

    const double placed_total =
        static_cast<double>(state_.placed_total.load(std::memory_order_relaxed));
    for (PartitionId i = 0; i < k; ++i) {
      double e = 0.0;
      if (state_.options.use_locality) {
        switch (state_.options.spnl.eta_policy) {
          case EtaPolicy::kPaper: {
            const double lt = static_cast<double>(
                state_.logical_counts[i].load(std::memory_order_relaxed));
            const double pt = static_cast<double>(
                state_.vertex_counts[i].load(std::memory_order_relaxed));
            e = lt > 0.0 ? std::max(0.0, (lt - pt) / lt) : 0.0;
            break;
          }
          case EtaPolicy::kLinear:
            e = state_.num_vertices == 0 ? 0.0
                                         : 1.0 - placed_total / state_.num_vertices;
            break;
          case EtaPolicy::kConstant:
            e = state_.options.spnl.eta0;
            break;
          case EtaPolicy::kZero:
            e = 0.0;
            break;
        }
      }
      scores_[i] = lambda * ((1.0 - e) * physical_[i] + e * logical_[i]);
    }

    if (state_.options.spnl.estimator == InNeighborEstimator::kSelf) {
      for (PartitionId i = 0; i < k; ++i) {
        scores_[i] += (1.0 - lambda) * state_.gamma.get(i, record.id);
      }
    } else {
      for (VertexId u : record.out) {
        for (PartitionId i = 0; i < k; ++i) {
          scores_[i] += (1.0 - lambda) * state_.gamma.get(i, u);
        }
      }
    }

    PartitionId best = kUnassigned;
    double best_score = 0.0, best_load = 0.0;
    for (PartitionId i = 0; i < k; ++i) {
      const double load = state_.load(i);
      if (load >= state_.capacity) continue;
      const double score = scores_[i] * (1.0 - load / state_.capacity);
      if (best == kUnassigned || score > best_score ||
          (score == best_score && load < best_load)) {
        best = i;
        best_score = score;
        best_load = load;
      }
    }
    if (best == kUnassigned) {
      best = 0;
      for (PartitionId i = 1; i < k; ++i) {
        if (state_.load(i) < state_.load(best)) best = i;
      }
    }
    return best;
  }

  void commit(const OwnedVertexRecord& record, PartitionId pid) {
    state_.route[record.id].store(pid, std::memory_order_relaxed);
    state_.vertex_counts[pid].fetch_add(1, std::memory_order_relaxed);
    state_.edge_counts[pid].fetch_add(record.out.size(), std::memory_order_relaxed);
    state_.placed_total.fetch_add(1, std::memory_order_relaxed);
    if (state_.options.use_locality) {
      const PartitionId lp = state_.logical.partition_of(record.id);
      state_.logical_counts[lp].fetch_sub(1, std::memory_order_relaxed);
    }
    for (VertexId u : record.out) state_.gamma.increment(pid, u);
    state_.gamma.advance_to(watermark_.mark_done(record.id));
  }

  /// Place a record and everything its placement releases from the RCT.
  void place_chain(OwnedVertexRecord record) {
    std::vector<OwnedVertexRecord> stack;
    stack.push_back(std::move(record));
    while (!stack.empty()) {
      OwnedVertexRecord current = std::move(stack.back());
      stack.pop_back();
      const PartitionId pid = choose(current, /*bump_rct=*/false);
      commit(current, pid);
      if (rct_ != nullptr) {
        auto released = rct_->on_placed(current.id, current.out);
        for (auto& r : released) stack.push_back(std::move(r));
      }
    }
  }

  void process(OwnedVertexRecord record) {
    if (rct_ == nullptr) {
      const PartitionId pid = choose(record, false);
      commit(record, pid);
      return;
    }
    const bool tracked = rct_->register_vertex(record.id);
    const PartitionId pid = choose(record, /*bump_rct=*/true);
    if (tracked && rct_->should_delay(record.id)) {
      // park() only consumes the record on success.
      if (rct_->park(std::move(record))) {
        state_.delayed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Parked set full: place immediately with the score already computed.
    }
    commit(record, pid);
    auto released = rct_->on_placed(record.id, record.out);
    for (auto& r : released) place_chain(std::move(r));
  }

 private:
  SharedState& state_;
  Rct* rct_;
  WatermarkTracker& watermark_;
  std::vector<double> physical_, logical_, scores_;
};

}  // namespace

ParallelRunResult run_parallel(AdjacencyStream& stream, const PartitionConfig& config,
                               const ParallelOptions& options) {
  if (options.num_threads == 0) {
    throw std::invalid_argument("run_parallel: need at least one worker");
  }
  const VertexId n = stream.num_vertices();
  const EdgeId m = stream.num_edges();
  const std::uint32_t shards =
      options.spnl.num_shards == 0
          ? GammaWindow::recommended_shards(n, config.num_partitions)
          : options.spnl.num_shards;

  SharedState state(n, m, config, options, shards);
  const auto rct_capacity = static_cast<std::size_t>(
      std::ceil(options.epsilon * options.num_threads));
  Rct rct(rct_capacity);
  Rct* rct_ptr = options.use_rct ? &rct : nullptr;
  // The watermark ring must span the maximum in-flight id spread.
  WatermarkTracker watermark(options.queue_capacity + rct_capacity +
                             options.num_threads + 16);
  BoundedQueue<OwnedVertexRecord> queue(options.queue_capacity);

  Timer timer;
  std::thread producer([&] {
    while (auto record = stream.next()) {
      queue.push(OwnedVertexRecord::from(*record));
    }
    queue.close();
  });

  std::vector<std::thread> workers;
  workers.reserve(options.num_threads);
  for (unsigned t = 0; t < options.num_threads; ++t) {
    workers.emplace_back([&] {
      Worker worker(state, rct_ptr, watermark);
      while (auto record = queue.pop()) worker.process(std::move(*record));
    });
  }
  producer.join();
  for (auto& w : workers) w.join();

  // Cyclically-parked leftovers: force-place in id order.
  if (options.use_rct) {
    Worker finisher(state, rct_ptr, watermark);
    auto rest = rct.drain_parked();
    state.forced.fetch_add(rest.size(), std::memory_order_relaxed);
    for (auto& record : rest) {
      const PartitionId pid = finisher.choose(record, false);
      finisher.commit(record, pid);
    }
  }

  ParallelRunResult result;
  result.partition_seconds = timer.seconds();
  result.route.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.route[v] = state.route[v].load(std::memory_order_relaxed);
  }
  result.peak_partitioner_bytes =
      state.gamma.memory_footprint_bytes() + n * sizeof(PartitionId) +
      3 * config.num_partitions * sizeof(std::uint64_t);
  result.delayed_vertices = state.delayed.load();
  result.forced_vertices = state.forced.load();
  return result;
}

}  // namespace spnl
